//! The shared experiment engine: sweeps, Orion end-to-end runs,
//! baselines, ablations, and energy accounting over the workloads.

use orion_alloc::realize::{allocate, AllocOptions, SlotBudget};
use orion_core::compiler::KernelVersion;
use orion_core::orion::Orion;
use orion_core::runtime::tune_loop;
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::SimError;
use orion_gpusim::power::{energy, EnergyReport, PowerModel};
use orion_gpusim::sim::{run_launch_opts, LaunchOptions, RunResult};
use orion_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Harness failure.
#[derive(Debug)]
pub enum ExperimentError {
    Orion(orion_core::OrionError),
    Sim(SimError),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Orion(e) => write!(f, "{e}"),
            ExperimentError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<orion_core::OrionError> for ExperimentError {
    fn from(e: orion_core::OrionError) -> Self {
        ExperimentError::Orion(e)
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

/// One point of an occupancy/performance curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CurvePoint {
    pub warps: u32,
    pub occupancy: f64,
    pub cycles: u64,
    pub regs_per_thread: u16,
    pub smem_slots: u16,
    pub local_slots: u16,
    /// Total energy of the launch (pJ, default power model).
    pub energy_pj: f64,
}

/// Run one launch of a compiled version on the workload's representative
/// parameters (fresh global memory each time).
pub fn run_version_once(
    dev: &DeviceSpec,
    w: &Workload,
    v: &KernelVersion,
) -> Result<RunResult, SimError> {
    let mut global = w.init_global.clone();
    run_launch_opts(
        dev,
        &v.machine,
        w.launch(),
        &w.params,
        &mut global,
        LaunchOptions {
            extra_smem_per_block: v.extra_smem,
            cta_range: None,
            cycle_budget: None,
            ..LaunchOptions::default()
        },
    )
}

/// Sweep every achievable occupancy level of `w` on `dev` — the engine
/// behind Figures 1, 2, 10, 14, 15 and the Orion-Min/Max bars.
pub fn sweep_curve(dev: &DeviceSpec, w: &Workload) -> Result<Vec<CurvePoint>, ExperimentError> {
    let orion = Orion::new(dev.clone(), w.block);
    let versions = orion.sweep(&w.module)?;
    let model = PowerModel::default();
    let mut out = Vec::with_capacity(versions.len());
    for v in &versions {
        match run_version_once(dev, w, v) {
            Ok(r) => out.push(CurvePoint {
                warps: v.achieved_warps,
                occupancy: v.occupancy,
                cycles: r.cycles,
                regs_per_thread: v.machine.regs_per_thread,
                smem_slots: v.machine.smem_slots_per_thread,
                local_slots: v.machine.local_slots_per_thread,
                energy_pj: energy(
                    &model,
                    dev,
                    &r.stats,
                    r.cycles,
                    &r.occupancy,
                    v.machine.regs_per_thread,
                )
                .total(),
            }),
            // Levels that cannot launch (e.g. not enough smem) are
            // skipped, like the paper's empty Table 3 cells.
            Err(SimError::Unlaunchable(_)) => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(out)
}

/// Iterations the paper's applications typically run; tuning overhead
/// amortizes over this horizon in the Orion-Select numbers.
pub const AMORTIZATION_ITERS: u32 = 100;

/// Relative slowdown tolerated while tuning downward. The paper uses 2%
/// on real hardware; our finite grids add wave-tail quantization noise
/// of a few percent between adjacent residencies, so the reproduction
/// widens the band accordingly (documented in EXPERIMENTS.md).
pub const DOWNWARD_THRESHOLD: f64 = 0.05;

/// Outcome of an end-to-end Orion run on a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectOutcome {
    /// Steady-state cycles of the finalized version.
    pub selected_cycles: u64,
    /// Average cycles per iteration with tuning overhead amortized over
    /// [`AMORTIZATION_ITERS`] application iterations — what Orion-Select
    /// reports in Figure 11.
    pub select_avg_cycles: f64,
    /// nvcc-baseline cycles.
    pub nvcc_cycles: u64,
    /// Best and worst cycles over the full sweep.
    pub best_cycles: u64,
    pub worst_cycles: u64,
    /// Occupancy (warps) of selection / baseline / sweep-best.
    pub selected_warps: u32,
    pub nvcc_warps: u32,
    pub best_warps: u32,
    /// Registers per thread of selection and baseline.
    pub selected_regs: u16,
    pub nvcc_regs: u16,
    /// Iterations the tuner spent exploring.
    pub converged_after: usize,
    /// Candidate versions the compiler emitted (≤ 5 in the paper).
    pub candidates: usize,
    /// Energy of the selected version and of the sweep's energy-optimal
    /// version, and the baseline's (Figure 13).
    pub selected_energy: f64,
    pub ideal_energy: f64,
    pub nvcc_energy: f64,
}

/// Full Orion pipeline on a workload: compile (Fig 8), tune (Fig 9),
/// compare against the nvcc baseline and the exhaustive sweep.
pub fn orion_select(dev: &DeviceSpec, w: &Workload) -> Result<SelectOutcome, ExperimentError> {
    orion_select_impl(dev, w, true)
}

/// Like [`orion_select`] but without the exhaustive sweep (Table 3 only
/// needs selected-vs-nvcc; skipping the sweep keeps it tractable).
pub fn orion_select_lite(dev: &DeviceSpec, w: &Workload) -> Result<SelectOutcome, ExperimentError> {
    orion_select_impl(dev, w, false)
}

fn orion_select_impl(
    dev: &DeviceSpec,
    w: &Workload,
    with_sweep: bool,
) -> Result<SelectOutcome, ExperimentError> {
    let mut orion = Orion::new(dev.clone(), w.block);
    orion.cfg.can_tune = w.can_tune;
    orion.cfg.slowdown_threshold = DOWNWARD_THRESHOLD;
    let compiled = orion.compile(&w.module)?;
    let baseline = orion.baseline(&w.module)?;
    let sweep = if with_sweep { sweep_curve(dev, w)? } else { Vec::new() };
    let model = PowerModel::default();

    // Tune across the application's iterations (per-iteration params for
    // variable-work apps; global memory persists across iterations as in
    // the real application loop).
    let mut global = w.init_global.clone();
    let iters = w.iterations.max(1);
    let mut iter_no = 0u32;
    let outcome = tune_loop(&compiled, iters, orion.cfg.slowdown_threshold, |v| {
        let params = w.params_for(iter_no);
        iter_no += 1;
        run_launch_opts(
            dev,
            &v.machine,
            w.launch(),
            params,
            &mut global,
            LaunchOptions {
                extra_smem_per_block: v.extra_smem,
                cta_range: None,
                cycle_budget: None,
                ..LaunchOptions::default()
            },
        )
        .map(|r| r.cycles)
    })?;
    let selected = &compiled.versions[outcome.selected];
    let sel_run = run_version_once(dev, w, selected)?;
    let nvcc_run = run_version_once(dev, w, &baseline)?;
    // Tuning overhead amortized over the application horizon.
    let explored: u64 =
        outcome.iterations.iter().take(outcome.converged_after).map(|&(_, c)| c).sum();
    let horizon = u64::from(AMORTIZATION_ITERS);
    let amortized = (explored + (horizon - outcome.converged_after as u64) * sel_run.cycles) as f64
        / horizon as f64;

    let energy_of = |r: &RunResult, regs: u16| -> EnergyReport {
        energy(&model, dev, &r.stats, r.cycles, &r.occupancy, regs)
    };
    let sel_energy = energy_of(&sel_run, selected.machine.regs_per_thread).total();
    let nvcc_energy = energy_of(&nvcc_run, baseline.machine.regs_per_thread).total();
    // Ideal energy straight from the sweep's per-point accounting.
    let ideal_energy = sweep.iter().map(|p| p.energy_pj).fold(f64::MAX, f64::min).min(sel_energy);

    let fallback = CurvePoint {
        warps: selected.achieved_warps,
        occupancy: selected.occupancy,
        cycles: sel_run.cycles,
        regs_per_thread: selected.machine.regs_per_thread,
        smem_slots: selected.machine.smem_slots_per_thread,
        local_slots: selected.machine.local_slots_per_thread,
        energy_pj: sel_energy,
    };
    let best = sweep.iter().min_by_key(|p| p.cycles).unwrap_or(&fallback);
    let worst = sweep.iter().max_by_key(|p| p.cycles).unwrap_or(&fallback);
    Ok(SelectOutcome {
        selected_cycles: sel_run.cycles,
        select_avg_cycles: amortized,
        nvcc_cycles: nvcc_run.cycles,
        best_cycles: best.cycles,
        worst_cycles: worst.cycles,
        selected_warps: selected.achieved_warps,
        nvcc_warps: baseline.achieved_warps,
        best_warps: best.warps,
        selected_regs: selected.machine.regs_per_thread,
        nvcc_regs: baseline.machine.regs_per_thread,
        converged_after: outcome.converged_after,
        candidates: compiled.num_candidates(),
        selected_energy: sel_energy,
        ideal_energy,
        nvcc_energy,
    })
}

/// Run a workload once with explicit allocator options at the baseline
/// register budget — the Figure 5 ablation engine.
pub fn run_with_alloc_options(
    dev: &DeviceSpec,
    w: &Workload,
    budget: SlotBudget,
    opts: &AllocOptions,
) -> Result<(u64, u32), ExperimentError> {
    let alloc = allocate(&w.module, budget, opts).map_err(orion_core::OrionError::from)?;
    let mut global = w.init_global.clone();
    let r = run_launch_opts(
        dev,
        &alloc.machine,
        w.launch(),
        &w.params,
        &mut global,
        LaunchOptions::default(),
    )?;
    Ok((r.cycles, alloc.machine.static_stack_moves))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulator sweeps need --release")]
    fn sweep_produces_monotone_occupancies() {
        let dev = DeviceSpec::c2075();
        let w = orion_workloads::by_name("gaussian").unwrap();
        let curve = sweep_curve(&dev, &w).unwrap();
        assert!(curve.len() >= 4);
        assert!(curve.windows(2).all(|p| p[0].warps < p[1].warps));
        assert!(curve.iter().all(|p| p.cycles > 0));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulator sweeps need --release")]
    fn orion_select_runs_end_to_end() {
        let dev = DeviceSpec::c2075();
        let w = orion_workloads::by_name("srad").unwrap();
        let out = orion_select(&dev, &w).unwrap();
        assert!(out.candidates <= 5);
        assert!(out.best_cycles <= out.worst_cycles);
        assert!(out.selected_cycles >= out.best_cycles);
    }
}
