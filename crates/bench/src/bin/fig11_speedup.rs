//! Figure 11: Orion-Min / nvcc / Orion-Max / Orion-Select on both devices.
use orion_gpusim::DeviceSpec;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    orion_bench::emit(&orion_bench::figures::fig11(&DeviceSpec::c2075())?)?;
    println!();
    orion_bench::emit(&orion_bench::figures::fig11(&DeviceSpec::gtx680())?)?;
    Ok(())
}
