//! Figure 10: srad runtime vs occupancy on Tesla C2075.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    orion_bench::emit(&orion_bench::figures::fig10()?)?;
    Ok(())
}
