//! Figure 14: gaussian and streamcluster occupancy curves on C2075.
use orion_gpusim::DeviceSpec;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    orion_bench::emit(&orion_bench::figures::curve_pair(
        &DeviceSpec::c2075(),
        ["gaussian", "streamcluster"],
        "Figure 14",
        "paper: gaussian insensitive to occupancy; streamcluster skewed bell, best ~0.75, flat above 0.5",
    )?)?;
    Ok(())
}
