//! `orion-bench --bin perf` — the repo's perf trajectory point.
//!
//! Measures, for three representative workloads:
//!
//! * **compile**: wall-time of the Figure 8 candidate-set build with a
//!   cold vs warm compiled-candidate cache, plus the cache hit/miss
//!   counters of each phase. A warm rebuild must not re-allocate any
//!   already-realized candidate: `warm.misses > 0` makes the binary
//!   exit non-zero, which is what the CI `perf-smoke` job asserts.
//! * **simulate**: wall-time and simulated SM-cycles/second for the
//!   same launch under four engine configurations — `serial` (the seed
//!   path: one thread, linear-scan scheduler, AoS lane state),
//!   `heap_serial` (one thread, event-heap scheduler, AoS: the
//!   pre-SoA engine, isolating the O(W)→O(log W) scheduling win),
//!   `soa_serial` (one thread, event heap, pooled SoA lane arenas:
//!   isolating the batched-execution win), and `parallel` (event heap,
//!   SoA, one worker per host core capped at the SM count). All four
//!   must report bit-identical cycle counts, or the binary exits
//!   non-zero.
//!
//! The **sim-throughput floor** gates the SoA win: the geomean over
//! the three workloads of `soa_serial.sim_cycles_per_sec /
//! heap_serial.sim_cycles_per_sec` must be ≥ 1.25, or the binary exits
//! 2. The pre-SoA figure is measured in the same process and build, so
//! the gate is self-calibrating across hosts and profiles.
//! `--inject-slow` deliberately measures the `soa_serial` label with
//! the reference AoS layout (speedup ≈ 1.0×) to prove the gate fires.
//!
//! Writes `BENCH_perf.json`; see README "Performance" for the field
//! reference. `--quick` runs one repetition per configuration (CI
//! smoke mode); the default is three, keeping the minimum wall-time
//! per configuration.

use orion_bench::figures::Figure;
use orion_core::cache;
use orion_core::orion::Orion;
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::sim::{run_launch_opts, LaunchOptions};
use orion_gpusim::{LaneLayout, Scheduler};
use orion_workloads::by_name;
use serde::Serialize;
use std::time::Instant;

const WORKLOADS: [&str; 3] = ["matrixMul", "backprop", "hotspot"];

/// Minimum acceptable geomean SoA-over-pre-SoA sim-throughput ratio.
const SIM_THROUGHPUT_FLOOR: f64 = 1.25;

#[derive(Serialize)]
struct CachePhase {
    wall_ms: f64,
    hits: u64,
    misses: u64,
}

#[derive(Serialize)]
struct SimConfig {
    wall_ms: f64,
    /// Simulated SM-cycles (device cycles × SMs) per wall-second.
    sim_cycles_per_sec: f64,
}

#[derive(Serialize)]
struct WorkloadPerf {
    name: String,
    cycles: u64,
    compile_cold: CachePhase,
    compile_warm: CachePhase,
    serial: SimConfig,
    heap_serial: SimConfig,
    soa_serial: SimConfig,
    parallel: SimConfig,
    /// serial wall / parallel wall (the full engine vs the seed path).
    speedup_parallel_over_serial: f64,
    /// serial wall / heap_serial wall (scheduler win alone).
    speedup_heap_over_scan: f64,
    /// heap_serial wall / soa_serial wall (lane-layout win alone —
    /// equal cycles, so also the sim_cycles_per_sec ratio).
    speedup_soa_over_heap: f64,
}

#[derive(Serialize)]
struct SimGate {
    floor: f64,
    geomean_soa_over_heap: f64,
    passed: bool,
    /// True when `--inject-slow` deliberately measured the reference
    /// layout under the `soa_serial` label (gate-inversion proof).
    injected_slow: bool,
}

#[derive(Serialize)]
struct PerfDoc {
    device: String,
    num_sms: u32,
    host_cores: u32,
    reps: u32,
    /// `quick` (CI smoke, 1 rep) or `full` (3 reps, min-of wall).
    mode: String,
    /// Build profile the numbers were taken under (`debug`/`release`).
    build_profile: String,
    workloads: Vec<WorkloadPerf>,
    geomean_speedup_parallel_over_serial: f64,
    geomean_speedup_heap_over_scan: f64,
    sim_gate: SimGate,
    warm_cache_recompiles: u64,
}

fn time_runs(
    reps: u32,
    dev: &DeviceSpec,
    w: &orion_workloads::Workload,
    machine: &orion_kir::mir::MModule,
    extra_smem: u32,
    opts: LaunchOptions,
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..reps {
        let mut global = w.init_global.clone();
        let started = Instant::now();
        let r = run_launch_opts(
            dev,
            machine,
            w.launch(),
            &w.params,
            &mut global,
            LaunchOptions { extra_smem_per_block: extra_smem, ..opts },
        )
        .unwrap_or_else(|e| panic!("{}: launch failed: {e}", w.name));
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
        cycles = r.cycles;
    }
    (best, cycles)
}

fn sim_config(wall_ms: f64, cycles: u64, num_sms: u32) -> SimConfig {
    SimConfig {
        wall_ms,
        sim_cycles_per_sec: if wall_ms > 0.0 {
            (cycles as f64) * f64::from(num_sms) / (wall_ms / 1e3)
        } else {
            0.0
        },
    }
}

fn geomean(xs: impl Iterator<Item = f64> + Clone) -> f64 {
    let n = xs.clone().count();
    if n == 0 {
        return 0.0;
    }
    (xs.map(f64::ln).sum::<f64>() / n as f64).exp()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let inject_slow = std::env::args().any(|a| a == "--inject-slow");
    let reps: u32 = if quick { 1 } else { 3 };
    let dev = DeviceSpec::gtx680(); // 8 SMs
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get() as u32);
    let mut rows: Vec<WorkloadPerf> = Vec::new();
    let mut failed = false;
    // The inversion proof: measure the reference layout under the
    // `soa_serial` label, so the gate sees a ~1.0x "win" and must trip.
    let soa_layout = if inject_slow { LaneLayout::Aos } else { LaneLayout::Soa };

    for name in WORKLOADS {
        let w = by_name(name).expect("workload");
        let orion = Orion::new(dev.clone(), w.block);

        // Compile: cold then warm candidate-set builds.
        cache::reset();
        let started = Instant::now();
        let compiled = orion.compile(&w.module).expect("compile");
        let cold_ms = started.elapsed().as_secs_f64() * 1e3;
        let cold = cache::stats();
        let started = Instant::now();
        let _again = orion.compile(&w.module).expect("compile");
        let warm_ms = started.elapsed().as_secs_f64() * 1e3;
        let warm = cache::stats();
        let delta = warm.delta_since(&cold);
        let (warm_hits, warm_misses) = (delta.hits, delta.misses);
        if warm_misses > 0 {
            eprintln!(
                "FAIL {name}: warm candidate-set rebuild re-allocated {warm_misses} \
                 already-realized candidate(s)"
            );
            failed = true;
        }

        // Simulate: the original candidate under the four configs.
        let v = &compiled.versions[compiled.original];
        let serial_opts = LaunchOptions {
            parallelism: 1,
            scheduler: Scheduler::LinearScan,
            layout: LaneLayout::Aos,
            ..LaunchOptions::default()
        };
        let heap_opts = LaunchOptions {
            parallelism: 1,
            scheduler: Scheduler::EventHeap,
            layout: LaneLayout::Aos,
            ..LaunchOptions::default()
        };
        let soa_opts = LaunchOptions {
            parallelism: 1,
            scheduler: Scheduler::EventHeap,
            layout: soa_layout,
            ..LaunchOptions::default()
        };
        let par_opts = LaunchOptions {
            parallelism: 0, // one worker per host core
            scheduler: Scheduler::EventHeap,
            layout: LaneLayout::Soa,
            ..LaunchOptions::default()
        };
        let (serial_ms, serial_cycles) =
            time_runs(reps, &dev, &w, &v.machine, v.extra_smem, serial_opts);
        let (heap_ms, heap_cycles) = time_runs(reps, &dev, &w, &v.machine, v.extra_smem, heap_opts);
        let (soa_ms, soa_cycles) = time_runs(reps, &dev, &w, &v.machine, v.extra_smem, soa_opts);
        let (par_ms, par_cycles) = time_runs(reps, &dev, &w, &v.machine, v.extra_smem, par_opts);
        if serial_cycles != heap_cycles
            || serial_cycles != soa_cycles
            || serial_cycles != par_cycles
        {
            eprintln!(
                "FAIL {name}: configurations disagree on cycles \
                 (serial {serial_cycles}, heap {heap_cycles}, soa {soa_cycles}, \
                 parallel {par_cycles})"
            );
            failed = true;
        }

        rows.push(WorkloadPerf {
            name: name.to_string(),
            cycles: serial_cycles,
            compile_cold: CachePhase { wall_ms: cold_ms, hits: cold.hits, misses: cold.misses },
            compile_warm: CachePhase { wall_ms: warm_ms, hits: warm_hits, misses: warm_misses },
            serial: sim_config(serial_ms, serial_cycles, dev.num_sms),
            heap_serial: sim_config(heap_ms, heap_cycles, dev.num_sms),
            soa_serial: sim_config(soa_ms, soa_cycles, dev.num_sms),
            parallel: sim_config(par_ms, par_cycles, dev.num_sms),
            speedup_parallel_over_serial: serial_ms / par_ms,
            speedup_heap_over_scan: serial_ms / heap_ms,
            speedup_soa_over_heap: heap_ms / soa_ms,
        });
    }

    // The sim-throughput floor: SoA must beat the pre-SoA engine
    // (event heap, AoS) measured in this same process and build.
    let geomean_soa = geomean(rows.iter().map(|r| r.speedup_soa_over_heap));
    let gate_passed = geomean_soa >= SIM_THROUGHPUT_FLOOR;
    if !gate_passed {
        eprintln!(
            "FAIL: geomean sim-throughput {geomean_soa:.3}x is below the \
             {SIM_THROUGHPUT_FLOOR:.2}x SoA floor (soa_serial vs heap_serial)"
        );
        failed = true;
    }

    let doc = PerfDoc {
        device: dev.name.clone(),
        num_sms: dev.num_sms,
        host_cores,
        reps,
        mode: if quick { "quick" } else { "full" }.to_string(),
        build_profile: if cfg!(debug_assertions) { "debug" } else { "release" }.to_string(),
        geomean_speedup_parallel_over_serial: geomean(
            rows.iter().map(|r| r.speedup_parallel_over_serial),
        ),
        geomean_speedup_heap_over_scan: geomean(rows.iter().map(|r| r.speedup_heap_over_scan)),
        sim_gate: SimGate {
            floor: SIM_THROUGHPUT_FLOOR,
            geomean_soa_over_heap: geomean_soa,
            passed: gate_passed,
            injected_slow: inject_slow,
        },
        warm_cache_recompiles: rows.iter().map(|r| r.compile_warm.misses).sum(),
        workloads: rows,
    };

    let mut text = format!(
        "Perf trajectory ({} SMs, {} host cores, {} rep(s), {} build)\n\
         {:<12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}\n",
        dev.num_sms,
        host_cores,
        reps,
        doc.build_profile,
        "workload",
        "cycles",
        "serial",
        "heap",
        "soa",
        "par",
        "x_heap",
        "x_soa",
        "x_par",
    );
    for r in &doc.workloads {
        text.push_str(&format!(
            "{:<12} {:>12} {:>9.1}ms {:>9.1}ms {:>9.1}ms {:>9.1}ms {:>7.2}x {:>7.2}x {:>7.2}x\n",
            r.name,
            r.cycles,
            r.serial.wall_ms,
            r.heap_serial.wall_ms,
            r.soa_serial.wall_ms,
            r.parallel.wall_ms,
            r.speedup_heap_over_scan,
            r.speedup_soa_over_heap,
            r.speedup_parallel_over_serial,
        ));
    }
    text.push_str(&format!(
        "geomean speedup: heap/scan {:.2}x, soa/heap {:.2}x (floor {:.2}x: {}), \
         parallel/serial {:.2}x; warm-cache recompiles: {}\n",
        doc.geomean_speedup_heap_over_scan,
        doc.sim_gate.geomean_soa_over_heap,
        doc.sim_gate.floor,
        if doc.sim_gate.passed { "pass" } else { "FAIL" },
        doc.geomean_speedup_parallel_over_serial,
        doc.warm_cache_recompiles,
    ));

    let data = match serde_json::to_value(&doc) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: perf doc does not serialize: {e}");
            std::process::exit(1);
        }
    };
    let fig = Figure::new("perf", text, data);
    if let Err(e) = orion_bench::emit(&fig) {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }

    if failed {
        std::process::exit(2);
    }
}
