//! Figure 2: matrixMul occupancy plateau.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", orion_bench::figures::fig02()?);
    Ok(())
}
