//! Figure 2: matrixMul occupancy plateau.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    orion_bench::emit(&orion_bench::figures::fig02()?)?;
    Ok(())
}
