//! Figure 13: energy of the selected kernels on Tesla C2075.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    orion_bench::emit(&orion_bench::figures::fig13()?)?;
    Ok(())
}
