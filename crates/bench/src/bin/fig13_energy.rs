//! Figure 13: energy of the selected kernels on Tesla C2075.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", orion_bench::figures::fig13()?);
    Ok(())
}
