//! Table 3: small-cache vs large-cache configuration speedups.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    orion_bench::emit(&orion_bench::figures::tab03()?)?;
    Ok(())
}
