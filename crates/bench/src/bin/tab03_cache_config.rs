//! Table 3: small-cache vs large-cache configuration speedups.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    print!("{}", orion_bench::figures::tab03()?);
    Ok(())
}
