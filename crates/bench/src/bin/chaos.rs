//! Chaos bench: sweep seeded fault rates across three workloads and
//! check the resilient tuner still converges near the fault-free pick.
//! Writes `BENCH_chaos.json`. Build with `--features faults` (forwarding
//! `orion-gpusim/faults`) for actual injection; without it the sweep
//! degenerates to a fault-free control run.

use orion_gpusim::device::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if !orion_gpusim::faults::INJECTION_COMPILED {
        eprintln!(
            "note: built without the `faults` feature; no faults will be injected \
             (rebuild with `--features faults` for the real chaos sweep)"
        );
    }
    let fig = orion_bench::chaos::chaos_figure(&DeviceSpec::c2075())?;
    orion_bench::emit(&fig)?;
    Ok(())
}
