//! `orion-bench --bin regress` — the perf-regression gate.
//!
//! ```sh
//! # Record (or refresh) the committed baseline:
//! cargo run --release -p orion-bench --bin regress -- --record --quick
//! # Gate a working tree against it (CI obs-smoke):
//! cargo run --release -p orion-bench --bin regress -- --quick
//! ```
//!
//! Exits 2 when the fresh capture regresses the committed
//! `BENCH_baseline.json` by more than the threshold (default 10%) on
//! the geomean of either simulated cycles or simulation throughput.
//! `--inject <frac>` inflates the captured cycle counts by `frac`
//! before diffing — the CI job uses `--inject 0.2` to prove the gate
//! actually fires. `--baseline <path>` points at an alternative
//! baseline file.

use orion_bench::regress::{self, BaselineDoc};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("regress: {msg}");
    std::process::exit(1)
}

fn main() {
    let mut record = false;
    let mut quick = false;
    let mut baseline_path = regress::DEFAULT_BASELINE.to_string();
    let mut threshold = regress::DEFAULT_THRESHOLD;
    let mut inject: f64 = 0.0;
    let mut cycles_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--record" => record = true,
            "--quick" => quick = true,
            "--cycles-only" => cycles_only = true,
            "--baseline" => {
                baseline_path = args.next().unwrap_or_else(|| fail("--baseline needs a path"));
            }
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--threshold needs a fraction (e.g. 0.10)"));
            }
            "--inject" => {
                inject = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--inject needs a fraction (e.g. 0.2)"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: regress [--record] [--quick] [--cycles-only] \
                     [--baseline FILE] [--threshold FRAC] [--inject FRAC]"
                );
                return;
            }
            other => fail(format!("unknown argument {other}")),
        }
    }

    let mut current = match regress::capture(quick) {
        Ok(doc) => doc,
        Err(e) => fail(format!("capture failed: {e}")),
    };

    if record {
        let json = current.to_json().unwrap_or_else(|e| fail(e));
        if let Err(e) = orion_bench::error::write_file("baseline", &baseline_path, &json) {
            fail(e);
        }
        eprintln!("recorded {baseline_path} ({} workloads)", current.workloads.len());
        return;
    }

    if inject > 0.0 {
        // Simulate a uniform slowdown to prove the gate fires (CI).
        for w in &mut current.workloads {
            w.cycles = (w.cycles as f64 * (1.0 + inject)) as u64;
            w.sim_cycles_per_sec /= 1.0 + inject;
        }
        eprintln!("injected a uniform {:.0}% slowdown into the capture", inject * 100.0);
    }

    let raw = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => fail(format!(
            "cannot read baseline {baseline_path}: {e} (run `regress --record` first)"
        )),
    };
    let baseline = BaselineDoc::from_json(&raw).unwrap_or_else(|e| fail(e));
    if baseline.schema != regress::BASELINE_SCHEMA {
        fail(format!(
            "baseline schema {} != supported {} — re-record",
            baseline.schema,
            regress::BASELINE_SCHEMA
        ));
    }
    if baseline.device != current.device {
        eprintln!(
            "note: baseline device {} != current {} — cycle ratios may be meaningless",
            baseline.device, current.device
        );
    }

    let report = regress::diff_with(&baseline, &current, threshold, !cycles_only);
    print!("{}", regress::render(&report));
    if report.regressed {
        std::process::exit(2);
    }
}
