//! `orion-bench --bin chaos-service` — the service-resilience chaos
//! gate.
//!
//! Where `--bin chaos` stresses one resilient *session*, this binary
//! stresses the *service plane*: batches of tier-1 kernel jobs run
//! through [`OrionService`]'s event loop under a seeded
//! [`ServiceFaultPlan`] — launch faults, injected panics that unwind
//! **inside the completion callback** (the scheduler's second
//! panic-isolation boundary), injected deadline pressure that trips
//! mid-flight between completions, a fault storm — plus
//! admission-queue saturation and a forced compile-cache poisoning.
//! One invariant is gated, hard:
//!
//! > **Jobs in == definite outcomes out.** Every submitted job comes
//! > back with exactly one [`JobDisposition`] — `Finalized`,
//! > `Quarantined`, `Degraded`, or `Rejected` — coherent with its
//! > outcome. No job lost, no hang, at every fault rate.
//!
//! Secondary gates:
//!
//! * **Determinism under chaos** — per-kernel outcomes, dispositions,
//!   cycle-domain histograms, and the dispatch order are bit-identical
//!   between the strictly sequential event loop (1 worker, in-flight
//!   limit 1) and the fully multiplexed one (4 workers, every session
//!   in flight) at every fault rate (fault draws are pure in
//!   `(seed, job index)`; only sim-cycle deadlines are used, never
//!   wall-clock budgets).
//! * **Poison recovery** — after a deliberately poisoned compile-cache
//!   shard, subsequent batches tune cleanly and
//!   `cache/poison_recovered` counts the event.
//! * **Fault visibility** — with injection compiled in, the sweep must
//!   actually draw worker panics and shed jobs (a chaos gate that
//!   never injects anything gates nothing).
//!
//! Writes `BENCH_chaos_service.json`. `--quick` shrinks the sweep for
//! CI. `--inject-hang` gives every job a 1-cycle deadline: every job
//! must resolve `Degraded` and the binary exits **non-zero**, proving
//! the deadline gate actually fires (CI inverts the exit code, exactly
//! like `regress --inject`).
//!
//! Build with `--features faults` for real injection; without it the
//! sweep degenerates to a fault-free control run of the same invariant.
//!
//! [`JobDisposition`]: orion_core::service::JobDisposition

use orion_bench::figures::Figure;
use orion_core::backend::SimBackend;
use orion_core::cache;
use orion_core::compiler::TuningConfig;
use orion_core::service::{
    JobDisposition, JobPolicy, KernelJob, KernelReport, OrionService, ServiceConfig, ServiceReport,
};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::faults::{FaultStorm, ServiceFaultPlan};
use orion_workloads::by_name;
use serde::Serialize;

const TIER1: [&str; 3] = ["matrixMul", "backprop", "hotspot"];
const SEED: u64 = 0x0710_2024;
const PANIC_RATE: f64 = 0.25;

#[derive(Serialize)]
struct ScenarioRow {
    fault_rate: f64,
    jobs: usize,
    queue_capacity: Option<usize>,
    finalized: usize,
    quarantined: usize,
    degraded: usize,
    rejected: usize,
    /// Quarantines specifically caused by a caught injected panic
    /// (unwinding inside the event loop's completion callback).
    panics_caught: usize,
    /// In-flight session cap of the concurrent run (0 configured =
    /// every admitted session; the recorded effective value).
    in_flight_limit: usize,
    deterministic_across_workers: bool,
}

#[derive(Serialize)]
struct ChaosServiceDoc {
    device: String,
    injection_compiled: bool,
    seed: u64,
    host_cores: usize,
    iterations_per_kernel: u32,
    scenarios: Vec<ScenarioRow>,
    poison_recovered: u64,
    all_jobs_accounted: bool,
}

fn batch(n: usize, iterations: u32, deadline_cycles: Option<u64>) -> Vec<KernelJob> {
    (0..n)
        .map(|i| {
            let w = by_name(TIER1[i % TIER1.len()]).expect("tier-1 workload");
            KernelJob {
                name: format!("{}#{i}", w.name),
                module: w.module.clone(),
                launch: w.launch(),
                params: w.params.clone(),
                global: w.init_global.clone(),
                iterations,
                tuning: TuningConfig::new(w.block),
                policy: JobPolicy {
                    deadline_cycles,
                    // Wall budgets are non-deterministic; the chaos gate
                    // compares worker counts bit-for-bit, so only
                    // sim-cycle budgets are allowed here.
                    wall_budget: None,
                    retry_budget: None,
                    // Spread priorities so saturation sheds a
                    // deterministic, non-trivial subset.
                    priority: 50 + ((i as u8) % 3) * 50,
                    search: None,
                },
            }
        })
        .collect()
}

fn run(cfg: ServiceConfig, jobs: Vec<KernelJob>) -> ServiceReport {
    OrionService::new(SimBackend::new(DeviceSpec::gtx680()), cfg).run(jobs)
}

/// The invariant: every submitted job has exactly one definite,
/// coherent disposition. Returns a failure description instead of
/// asserting so the sweep reports every violation.
fn check_accounting(submitted: usize, report: &ServiceReport) -> Vec<String> {
    let mut problems = Vec::new();
    if report.kernels.len() != submitted {
        problems.push(format!("{} jobs in, {} reports out", submitted, report.kernels.len()));
    }
    for k in &report.kernels {
        let coherent = match k.disposition {
            JobDisposition::Finalized => k.outcome.is_ok(),
            JobDisposition::Degraded(_) => k
                .outcome
                .as_ref()
                .is_ok_and(|o| o.state == orion_core::session::SessionState::Degraded),
            // Quarantines carry either an error or a session that died
            // with every candidate quarantined.
            JobDisposition::Quarantined => match &k.outcome {
                Err(_) => true,
                Ok(o) => o.state == orion_core::session::SessionState::Quarantined,
            },
            JobDisposition::Rejected => k.outcome.as_ref().is_err_and(|e| {
                matches!(e.root_cause(), orion_core::error::OrionError::Overloaded { .. })
            }),
        };
        if !coherent {
            problems.push(format!(
                "{}: disposition {:?} incoherent with outcome {:?}",
                k.name, k.disposition, k.outcome
            ));
        }
    }
    problems
}

fn count(report: &ServiceReport, pred: impl Fn(JobDisposition) -> bool) -> usize {
    report.count_dispositions(pred)
}

fn panics_caught(report: &ServiceReport) -> usize {
    report
        .kernels
        .iter()
        .filter(|k| {
            k.outcome.as_ref().is_err_and(|e| {
                matches!(e.root_cause(), orion_core::error::OrionError::SessionPanicked { .. })
            })
        })
        .count()
}

/// Per-kernel equality across worker counts: disposition, outcome (or
/// rendered error), and the deterministic cycle-domain histograms.
fn reports_equal(a: &KernelReport, b: &KernelReport) -> bool {
    a.disposition == b.disposition
        && a.metrics.cycle_domain() == b.metrics.cycle_domain()
        && match (&a.outcome, &b.outcome) {
            (Ok(x), Ok(y)) => x == y,
            (Err(x), Err(y)) => x.to_string() == y.to_string(),
            _ => false,
        }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let inject_hang = std::env::args().any(|a| a == "--inject-hang");
    let jobs_per_batch: usize = if quick { 9 } else { 18 };
    let iterations: u32 = if quick { 8 } else { 16 };
    let dev = DeviceSpec::gtx680();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    orion_telemetry::set_enabled(false);
    if !orion_gpusim::faults::INJECTION_COMPILED {
        eprintln!(
            "note: built without the `faults` feature; the sweep is a fault-free \
             control run (rebuild with `--features faults` for real chaos)"
        );
    }
    // Injected worker panics are the test subject; keep the default
    // hook's backtrace spam out of the logs without hiding anything
    // else.
    let prior_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| m.starts_with("chaos:"));
        if !injected {
            prior_hook(info);
        }
    }));
    let mut failures: Vec<String> = Vec::new();

    // --inject-hang: a 1-cycle deadline on every job. Without the
    // deadline gate these sessions would run their full walk (or, on a
    // hanging backend, forever); with it, every job must land Degraded
    // and the binary exits non-zero to prove the gate fires.
    if inject_hang {
        let report = run(
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
            batch(jobs_per_batch, iterations, Some(1)),
        );
        let degraded = count(&report, |d| matches!(d, JobDisposition::Degraded(_)));
        let problems = check_accounting(jobs_per_batch, &report);
        if degraded == jobs_per_batch && problems.is_empty() {
            eprintln!(
                "inject-hang: deadline gate fired on all {degraded}/{jobs_per_batch} jobs \
                 (every disposition Degraded) — exiting non-zero as proof"
            );
            std::process::exit(3);
        }
        eprintln!(
            "FAIL inject-hang: deadline gate did NOT fire cleanly \
             ({degraded}/{jobs_per_batch} degraded; problems: {problems:?})"
        );
        std::process::exit(0); // CI inverts: exit 0 here fails the job.
    }

    // The sweep: three fault rates, each with injected panics and
    // deadline pressure, run at 1 and 4 workers and compared
    // bit-for-bit. The 25% scenario adds a fault storm and a saturated
    // admission queue.
    let mut scenarios = Vec::new();
    let mut total_panics = 0usize;
    let mut total_shed = 0usize;
    for &rate in &[0.0, 0.10, 0.25] {
        let mut plan = ServiceFaultPlan::chaos(SEED ^ (rate * 100.0) as u64, rate, PANIC_RATE);
        if rate == 0.0 {
            plan = ServiceFaultPlan::none(SEED);
        }
        let mut queue_capacity = None;
        if rate >= 0.25 {
            plan.storm = Some(FaultStorm {
                start_job: jobs_per_batch / 3,
                len: jobs_per_batch / 3,
                multiplier: 2.0,
            });
            queue_capacity = Some(jobs_per_batch - 2);
        }
        let mk_cfg = |workers, in_flight_limit| ServiceConfig {
            workers,
            in_flight_limit,
            queue_capacity,
            chaos: Some(plan),
            ..ServiceConfig::default()
        };
        cache::reset();
        // Strictly sequential event loop vs fully multiplexed: same
        // code path, different in-flight caps and worker pools.
        let seq = run(mk_cfg(1, 1), batch(jobs_per_batch, iterations, None));
        let conc = run(mk_cfg(4, 0), batch(jobs_per_batch, iterations, None));
        for r in [&seq, &conc] {
            failures.extend(
                check_accounting(jobs_per_batch, r)
                    .into_iter()
                    .map(|p| format!("rate {rate}: {p}")),
            );
        }
        let deterministic = seq.dispatch_order == conc.dispatch_order
            && seq.kernels.iter().zip(&conc.kernels).all(|(a, b)| reports_equal(a, b));
        if !deterministic {
            failures.push(format!(
                "rate {rate}: outcomes differ between sequential and multiplexed event loops"
            ));
        }
        let rejected = count(&conc, |d| d == JobDisposition::Rejected);
        if let Some(cap) = queue_capacity {
            if rejected != jobs_per_batch - cap {
                failures.push(format!(
                    "rate {rate}: capacity {cap} should shed exactly {} jobs, shed {rejected}",
                    jobs_per_batch - cap
                ));
            }
        }
        if rate == 0.0
            && panics_caught(&conc) + rejected + count(&conc, |d| d != JobDisposition::Finalized)
                > 0
        {
            failures.push("rate 0: clean batch did not finalize everything".into());
        }
        total_panics += panics_caught(&conc);
        total_shed += rejected;
        scenarios.push(ScenarioRow {
            fault_rate: rate,
            jobs: jobs_per_batch,
            queue_capacity,
            finalized: count(&conc, |d| d == JobDisposition::Finalized),
            quarantined: count(&conc, |d| d == JobDisposition::Quarantined),
            degraded: count(&conc, |d| matches!(d, JobDisposition::Degraded(_))),
            rejected,
            panics_caught: panics_caught(&conc),
            in_flight_limit: conc.in_flight_limit,
            deterministic_across_workers: deterministic,
        });
    }

    // A chaos gate that never injects anything gates nothing: with
    // injection compiled, the sweep must have produced at least one
    // caught panic and one shed job.
    if orion_gpusim::faults::INJECTION_COMPILED {
        if total_panics == 0 {
            failures.push("sweep drew zero worker panics despite a 25% panic rate".into());
        }
        if total_shed == 0 {
            failures.push("sweep shed zero jobs despite a saturated queue".into());
        }
    }

    // Poison recovery: poison a cache shard on purpose, then run a
    // clean batch — every job must still tune, and the recovery must be
    // counted.
    cache::reset();
    cache::poison_for_chaos();
    let after_poison = run(
        ServiceConfig { workers: 2, ..ServiceConfig::default() },
        batch(6, iterations.min(8), None),
    );
    failures.extend(check_accounting(6, &after_poison));
    if !after_poison.all_ok() {
        failures.push("batch after forced cache poisoning did not tune cleanly".into());
    }
    let poison_recovered = cache::stats().poison_recovered;
    if poison_recovered == 0 {
        failures.push("forced cache poisoning was never counted as recovered".into());
    }

    let doc = ChaosServiceDoc {
        device: dev.name.clone(),
        injection_compiled: orion_gpusim::faults::INJECTION_COMPILED,
        seed: SEED,
        host_cores,
        iterations_per_kernel: iterations,
        scenarios,
        poison_recovered,
        all_jobs_accounted: failures.is_empty(),
    };
    let mut text = format!(
        "Chaos-service gate on {} ({} host cores, injection {}): \
         {} jobs/batch x {} iterations\n",
        dev.name,
        host_cores,
        if doc.injection_compiled { "ON" } else { "OFF (control)" },
        jobs_per_batch,
        iterations,
    );
    for s in &doc.scenarios {
        text.push_str(&format!(
            "rate {:>4.0}%: {:>2} finalized / {:>2} quarantined ({} panics) / \
             {:>2} degraded / {:>2} rejected; deterministic: {}\n",
            s.fault_rate * 100.0,
            s.finalized,
            s.quarantined,
            s.panics_caught,
            s.degraded,
            s.rejected,
            s.deterministic_across_workers,
        ));
    }
    text.push_str(&format!("cache poison recoveries: {poison_recovered}\n"));
    for f in &failures {
        text.push_str(&format!("FAIL: {f}\n"));
    }

    let data = match serde_json::to_value(&doc) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: chaos-service doc does not serialize: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = orion_bench::emit(&Figure::new("chaos_service", text, data)) {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }
    if !failures.is_empty() {
        std::process::exit(2);
    }
}
