//! Exploratory tool: print each workload's occupancy curve on both
//! devices (used during development to calibrate workload parameters).
//! Pass a name fragment to filter workloads; for stall-attributed
//! per-level detail use the `profile` binary instead.

use orion_bench::sweep_curve;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let filter = args.get(1).cloned();
    for dev in [orion_gpusim::DeviceSpec::c2075(), orion_gpusim::DeviceSpec::gtx680()] {
        for w in orion_workloads::all_workloads() {
            if let Some(f) = &filter {
                if !w.name.contains(f.as_str()) {
                    continue;
                }
            }
            match sweep_curve(&dev, &w) {
                Ok(curve) => print!(
                    "{}",
                    orion_bench::report::render_curve(
                        &format!("{} on {}", w.name, dev.name),
                        &curve
                    )
                ),
                Err(e) => println!("{} on {}: ERROR {e}", w.name, dev.name),
            }
        }
    }
}
