//! Profiler CLI: run a workload's occupancy sweep with telemetry
//! enabled, print stall-attributed counters per level, and export the
//! recorded events as a Chrome `trace_event` timeline plus a flat JSON
//! metrics report.
//!
//! ```sh
//! cargo run --release -p orion-bench --bin profile -- \
//!     [workload] [gtx680|c2075] [--warps N] \
//!     [--trace trace.json] [--metrics metrics.json]
//! ```
//!
//! The trace loads in `chrome://tracing` / Perfetto: one lane per SM on
//! a cycle axis, one slice per CTA. The metrics report nests every
//! version under `occ<warps>/` and checks the stall-accounting
//! invariant: the six stall buckets sum to `cycles × num_sms` exactly.

use orion_bench::experiment::run_version_once;
use orion_core::orion::Orion;
use orion_gpusim::DeviceSpec;
use orion_telemetry::metrics::{aggregate_counters, MetricsReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut workload = "imageDenoising".to_string();
    let mut device = "gtx680".to_string();
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut warps_filter: Option<u32> = None;
    let mut positionals = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => trace_path = Some(args.next().ok_or("--trace needs a path")?),
            "--metrics" => metrics_path = Some(args.next().ok_or("--metrics needs a path")?),
            "--warps" => {
                warps_filter = Some(args.next().ok_or("--warps needs a number")?.parse()?);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: profile [workload] [gtx680|c2075] [--warps N] [--trace FILE] [--metrics FILE]"
                );
                return Ok(());
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}").into()),
            pos => {
                match positionals {
                    0 => workload = pos.to_string(),
                    1 => device = pos.to_string(),
                    _ => return Err("too many positional arguments".into()),
                }
                positionals += 1;
            }
        }
    }
    let dev = match device.as_str() {
        "c2075" => DeviceSpec::c2075(),
        "gtx680" => DeviceSpec::gtx680(),
        other => return Err(format!("unknown device {other} (gtx680|c2075)").into()),
    };
    let w = orion_workloads::by_name(&workload)
        .ok_or_else(|| format!("unknown workload {workload}"))?;

    orion_telemetry::set_enabled(true);
    orion_telemetry::clear();
    if !orion_telemetry::is_enabled() {
        eprintln!(
            "note: telemetry feature disabled (--no-default-features); trace/metrics will be empty"
        );
    }

    let orion = Orion::new(dev.clone(), w.block);
    let versions = orion.sweep(&w.module)?;
    let mut report = MetricsReport::new();
    report.set("workload", w.name);
    report.set("device", dev.name.as_str());

    println!("{} on {}", w.name, dev.name);
    println!(
        "{:>5} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "warps",
        "regs",
        "cycles",
        "issued",
        "scoreboard",
        "mem_pend",
        "barrier",
        "no_elig",
        "drain",
        "ipc"
    );
    for v in &versions {
        if warps_filter.is_some_and(|f| v.achieved_warps != f) {
            continue;
        }
        let r = match run_version_once(&dev, &w, v) {
            Ok(r) => r,
            Err(e) => {
                println!("{:>5} ERROR {e}", v.achieved_warps);
                continue;
            }
        };
        let st = &r.stats.stalls;
        let d = r.derived();
        println!(
            "{:>5} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10.3}",
            v.achieved_warps,
            v.machine.regs_per_thread,
            r.cycles,
            st.issued,
            st.scoreboard,
            st.mem_pending,
            st.barrier,
            st.no_eligible,
            st.drain,
            d.ipc,
        );
        let sm_cycles = r.cycles * u64::from(r.num_sms);
        assert_eq!(st.total(), sm_cycles, "stall buckets must sum to cycles x num_sms");
        let mut vr = MetricsReport::new();
        vr.set("cycles", r.cycles);
        vr.set("sm_cycles", sm_cycles);
        vr.set("warp_insts", r.stats.warp_insts);
        for (name, val) in st.as_named() {
            vr.set(format!("stall/{name}"), val);
        }
        vr.set("ipc", d.ipc);
        vr.set("simd_efficiency", d.simd_efficiency);
        vr.set("l1_hit_rate", d.l1_hit_rate);
        vr.set("l2_hit_rate", d.l2_hit_rate);
        vr.set("issue_utilization", d.issue_utilization);
        report.merge_prefixed(&format!("occ{}", v.achieved_warps), &vr);
    }

    let events = orion_telemetry::take_events();
    report.merge_prefixed("counters", &aggregate_counters(&events));
    if let Some(path) = &trace_path {
        std::fs::write(path, orion_telemetry::chrome::trace_json(&events))?;
        eprintln!("wrote {path} ({} events)", events.len());
    }
    if let Some(path) = &metrics_path {
        std::fs::write(path, report.to_json())?;
        eprintln!("wrote {path} ({} metrics)", report.len());
    }
    Ok(())
}
