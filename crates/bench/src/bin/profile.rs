//! Print detailed simulator counters for each occupancy level of one
//! workload (development tool).

use orion_bench::experiment::run_version_once;
use orion_core::orion::Orion;
use orion_gpusim::DeviceSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("imageDenoising");
    let dev = match args.get(2).map(String::as_str) {
        Some("c2075") => DeviceSpec::c2075(),
        _ => DeviceSpec::gtx680(),
    };
    let w = orion_workloads::by_name(name).expect("workload");
    let orion = Orion::new(dev.clone(), w.block);
    println!("{} on {}", w.name, dev.name);
    println!("{:>5} {:>4} {:>5} {:>5} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "warps","regs","smem","local","cycles","warp_insts","moves","smem_slot","local_trans","l1_miss","l2_miss","dram");
    for v in orion.sweep(&w.module).unwrap() {
        match run_version_once(&dev, &w, &v) {
            Ok(r) => println!(
                "{:>5} {:>4} {:>5} {:>5} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10}",
                v.achieved_warps,
                v.machine.regs_per_thread,
                v.machine.smem_slots_per_thread,
                v.machine.local_slots_per_thread,
                r.cycles,
                r.stats.warp_insts,
                r.stats.stack_moves,
                r.stats.smem_slot_accesses,
                r.stats.local_transactions,
                r.stats.mem.l1_misses,
                r.stats.mem.l2_misses,
                r.stats.mem.dram_transactions,
            ),
            Err(e) => println!("{:>5} ERROR {e}", v.achieved_warps),
        }
    }
}
