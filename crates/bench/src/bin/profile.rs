//! Profiler CLI: run a workload's occupancy sweep with telemetry
//! enabled, print stall-attributed counters per level, and export the
//! recorded events as a Chrome `trace_event` timeline plus a flat JSON
//! metrics report — and, since the observability PR, the full
//! service-plane surface: registry snapshots (Prometheus text or
//! JSON), the structured run journal, and a per-lane critical-path
//! timeline.
//!
//! ```sh
//! cargo run --release -p orion-bench --bin profile -- \
//!     [workload] [gtx680|c2075] [--warps N] [--tune N] \
//!     [--trace trace.json] [--metrics metrics.json] \
//!     [--out snapshot.json] [--prom metrics.prom] [--journal] [--timeline]
//! ```
//!
//! The trace loads in `chrome://tracing` / Perfetto: one lane per SM on
//! a cycle axis, one slice per CTA. The metrics report nests every
//! version under `occ<warps>/` and checks the stall-accounting
//! invariant: the six stall buckets sum to `cycles × num_sms` exactly.
//!
//! `--tune N` additionally drives an `OrionService` tuning run (N
//! application iterations) over the workload, which populates the
//! latency histograms, gauges, and journal that `--out` / `--prom` /
//! `--journal` export. The CLI exits non-zero when the capture is
//! empty (telemetry compiled out or nothing recorded) instead of
//! silently writing hollow artifacts.

use orion_bench::error::write_file;
use orion_bench::experiment::run_version_once;
use orion_core::backend::SimBackend;
use orion_core::compiler::TuningConfig;
use orion_core::orion::Orion;
use orion_core::service::{JobPolicy, KernelJob, OrionService, ServiceConfig};
use orion_gpusim::DeviceSpec;
use orion_telemetry::metrics::{aggregate_counters, MetricsReport};
use orion_telemetry::{export, journal, registry, timeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut workload = "imageDenoising".to_string();
    let mut device = "gtx680".to_string();
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut prom_path: Option<String> = None;
    let mut warps_filter: Option<u32> = None;
    let mut tune_iters: Option<u32> = None;
    let mut dump_journal = false;
    let mut dump_timeline = false;
    let mut positionals = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => trace_path = Some(args.next().ok_or("--trace needs a path")?),
            "--metrics" => metrics_path = Some(args.next().ok_or("--metrics needs a path")?),
            "--out" => out_path = Some(args.next().ok_or("--out needs a path")?),
            "--prom" => prom_path = Some(args.next().ok_or("--prom needs a path")?),
            "--journal" => dump_journal = true,
            "--timeline" => dump_timeline = true,
            "--warps" => {
                warps_filter = Some(args.next().ok_or("--warps needs a number")?.parse()?);
            }
            "--tune" => {
                tune_iters = Some(args.next().ok_or("--tune needs an iteration count")?.parse()?);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: profile [workload] [gtx680|c2075] [--warps N] [--tune N] \
                     [--trace FILE] [--metrics FILE] [--out FILE] [--prom FILE] \
                     [--journal] [--timeline]"
                );
                return Ok(());
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}").into()),
            pos => {
                match positionals {
                    0 => workload = pos.to_string(),
                    1 => device = pos.to_string(),
                    _ => return Err("too many positional arguments".into()),
                }
                positionals += 1;
            }
        }
    }
    let dev = match device.as_str() {
        "c2075" => DeviceSpec::c2075(),
        "gtx680" => DeviceSpec::gtx680(),
        other => return Err(format!("unknown device {other} (gtx680|c2075)").into()),
    };
    let w = orion_workloads::by_name(&workload)
        .ok_or_else(|| format!("unknown workload {workload}"))?;

    orion_telemetry::set_enabled(true);
    orion_telemetry::clear();
    journal::clear();
    if !orion_telemetry::is_enabled() {
        eprintln!(
            "note: telemetry feature disabled (--no-default-features); trace/metrics will be empty"
        );
    }

    let orion = Orion::new(dev.clone(), w.block);
    let versions = orion.sweep(&w.module)?;
    let mut report = MetricsReport::new();
    report.set("workload", w.name);
    report.set("device", dev.name.as_str());

    println!("{} on {}", w.name, dev.name);
    println!(
        "{:>5} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "warps",
        "regs",
        "cycles",
        "issued",
        "scoreboard",
        "mem_pend",
        "barrier",
        "no_elig",
        "drain",
        "ipc"
    );
    for v in &versions {
        if warps_filter.is_some_and(|f| v.achieved_warps != f) {
            continue;
        }
        let r = match run_version_once(&dev, &w, v) {
            Ok(r) => r,
            Err(e) => {
                println!("{:>5} ERROR {e}", v.achieved_warps);
                continue;
            }
        };
        let st = &r.stats.stalls;
        let d = r.derived();
        println!(
            "{:>5} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10.3}",
            v.achieved_warps,
            v.machine.regs_per_thread,
            r.cycles,
            st.issued,
            st.scoreboard,
            st.mem_pending,
            st.barrier,
            st.no_eligible,
            st.drain,
            d.ipc,
        );
        let sm_cycles = r.cycles * u64::from(r.num_sms);
        assert_eq!(st.total(), sm_cycles, "stall buckets must sum to cycles x num_sms");
        let mut vr = MetricsReport::new();
        vr.set("cycles", r.cycles);
        vr.set("sm_cycles", sm_cycles);
        vr.set("warp_insts", r.stats.warp_insts);
        for (name, val) in st.as_named() {
            vr.set(format!("stall/{name}"), val);
        }
        vr.set("ipc", d.ipc);
        vr.set("simd_efficiency", d.simd_efficiency);
        vr.set("l1_hit_rate", d.l1_hit_rate);
        vr.set("l2_hit_rate", d.l2_hit_rate);
        vr.set("issue_utilization", d.issue_utilization);
        report.merge_prefixed(&format!("occ{}", v.achieved_warps), &vr);
    }

    // Optional tuning run: drives the service plane so the registry
    // histograms/gauges and the journal have live data to export.
    if let Some(iterations) = tune_iters {
        let svc = OrionService::new(
            SimBackend::new(dev.clone()),
            ServiceConfig { workers: 1, policy: None, ..ServiceConfig::default() },
        );
        let sr = svc.run(vec![KernelJob {
            name: w.name.to_string(),
            module: w.module.clone(),
            launch: w.launch(),
            params: w.params.clone(),
            global: w.init_global.clone(),
            iterations,
            tuning: TuningConfig::new(w.block),
            policy: JobPolicy::default(),
        }]);
        let l = &sr.metrics.launch_cycles;
        println!(
            "tune: {iterations} iterations; launch cycles p50 {} / p99 {} (n={}); \
             cache {} hits / {} misses; journal {} records ({} dropped)",
            l.p50(),
            l.p99(),
            l.count(),
            sr.cache.hits,
            sr.cache.misses,
            sr.journal.records.len(),
            sr.journal.dropped,
        );
        if dump_journal {
            for rec in &sr.journal.records {
                println!(
                    "journal[{}] lane {} +{}us {}",
                    rec.seq,
                    rec.lane,
                    rec.ts_us,
                    rec.event.tag()
                );
            }
        }
    } else if dump_journal {
        let drained = journal::drain();
        for rec in &drained.records {
            println!("journal[{}] lane {} +{}us {}", rec.seq, rec.lane, rec.ts_us, rec.event.tag());
        }
    }

    let events = orion_telemetry::take_events();
    if events.is_empty() {
        eprintln!(
            "profile: empty capture — no telemetry events were recorded \
             (built with --no-default-features?); refusing to write hollow artifacts"
        );
        std::process::exit(2);
    }

    if dump_timeline {
        let lanes = timeline::lane_timelines(&events);
        print!("{}", timeline::render_text(&lanes));
    }

    report.merge_prefixed("counters", &aggregate_counters(&events));
    if let Some(path) = &trace_path {
        write_file("chrome trace", path, &orion_telemetry::chrome::trace_json(&events))?;
        eprintln!("wrote {path} ({} events)", events.len());
    }
    if let Some(path) = &metrics_path {
        write_file("metrics report", path, &report.to_json())?;
        eprintln!("wrote {path} ({} metrics)", report.len());
    }
    let snap = registry::global().snapshot();
    if let Some(path) = &prom_path {
        write_file("prometheus snapshot", path, &export::prometheus_text(&snap))?;
        eprintln!("wrote {path} ({} metrics)", snap.samples.len());
    }
    if let Some(path) = &out_path {
        // One combined observability document: the flat metrics report,
        // the registry snapshot, and the lane timelines. The parts are
        // already JSON strings, so compose them textually.
        let lanes = timeline::lane_timelines(&events);
        let doc = format!(
            "{{\"metrics\":{},\"registry\":{},\"lanes\":{}}}\n",
            report.to_json(),
            export::snapshot_json(&snap),
            lanes.len(),
        );
        write_file("observability snapshot", path, &doc)?;
        eprintln!("wrote {path}");
    }
    Ok(())
}
