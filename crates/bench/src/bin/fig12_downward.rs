//! Figure 12: downward tuning — registers and runtime, both devices.
use orion_gpusim::DeviceSpec;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    orion_bench::emit(&orion_bench::figures::fig12(&DeviceSpec::c2075())?)?;
    println!();
    orion_bench::emit(&orion_bench::figures::fig12(&DeviceSpec::gtx680())?)?;
    Ok(())
}
