//! `orion-bench --bin search` — the search-policy ablation.
//!
//! Runs the tier-1 workloads through the widened candidate space
//! (occupancy level × L1/shared split × split granularity, see
//! [`CandidateSpace`]) under both shipped
//! [`SearchPolicy`](orion_core::policy::SearchPolicy)
//! implementations — the paper's Figure 9 walk and the bound-pruned
//! UCB bandit — across clean and seeded-chaos measurement streams,
//! and records two axes per (workload, seed, policy) cell:
//!
//! * **launches-to-converge** — simulated launches (each grid slice
//!   counts) spent before the policy finalizes;
//! * **final-pick cycles** — one clean whole-grid run of the selected
//!   arm under its steady-state launch options, so picks are compared
//!   on quality, not on the noise they were measured under.
//!
//! Two gates:
//!
//! 1. **Quality** (hard, every cell): the bandit's final pick is never
//!    more than 2% slower than the walk's on the same (workload, seed).
//! 2. **Convergence cost** (hard, aggregate): the bandit's mean
//!    launches-to-converge is ≤ the walk's on at least 2 of the 3
//!    workloads. Bound pruning is the whole point — dominated arms
//!    must never be launched.
//!
//! `--inject-greedy` is the gate-inversion proof: it disables pruning
//! and inflates the exploration schedule so the bandit sweeps and
//! re-pulls every arm — the run must then exit 2, demonstrating the
//! convergence gate actually fires. `--quick` shrinks the seed sweep
//! for the CI smoke job.
//!
//! Writes `BENCH_search.json`.

use orion_bench::figures::Figure;
use orion_core::orion::Orion;
use orion_core::policy::{
    analytic_bound, BanditConfig, BanditPolicy, BoundCtx, Measurement, PolicyKind, PolicyVerdict,
    SearchPolicy,
};
use orion_core::splitting::{split_ranges, SplitConfig};
use orion_core::version::CandidateSpace;
use orion_core::CompiledKernel;
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::faults::{FaultInjector, FaultPlan};
use orion_gpusim::sim::{run_launch_faulty, LaunchOptions};
use orion_workloads::{by_name, Workload};
use serde::Serialize;

const TIER1: [&str; 3] = ["matrixMul", "backprop", "hotspot"];
const SEEDS: [u64; 3] = [0, 7, 1337]; // 0 = clean, rest = chaos plans
const THRESHOLD: f64 = 0.05;
/// Per-arm launch-failure strikes before the bench quarantines it —
/// mirrors the session's strike policy.
const STRIKES: u32 = 2;

/// The bandit schedule the ablation ships: prune on the analytic bound
/// at default slack, confirm the incumbent once, and stop after at most
/// two pulls per surviving arm. Deterministic for a fixed seed.
fn bandit_config() -> BanditConfig {
    BanditConfig {
        seed: 0x5EA_2C4,
        exploration_milli: 200,
        prune_slack_pct: 15,
        confirm_pulls: 1,
        max_pulls: 2,
    }
}

/// `--inject-greedy`: no pruning, every arm swept, incumbent confirmed
/// over and over — the convergence gate must catch this.
fn greedy_config() -> BanditConfig {
    BanditConfig {
        seed: 0x5EA_2C4,
        exploration_milli: 4000,
        prune_slack_pct: u32::MAX,
        confirm_pulls: 16,
        max_pulls: 16,
    }
}

#[derive(Serialize)]
struct Cell {
    workload: String,
    seed: u64,
    policy: String,
    arms: usize,
    arms_pruned: usize,
    launches_to_converge: u64,
    quarantined: usize,
    selected_label: String,
    final_pick_cycles: u64,
}

#[derive(Serialize)]
struct WorkloadSummary {
    workload: String,
    arms: usize,
    walk_mean_launches: f64,
    bandit_mean_launches: f64,
    /// Convergence-cost axis: bandit mean ≤ walk mean on this workload.
    bandit_converges_no_slower: bool,
    /// Worst bandit/walk final-pick cycle ratio across seeds.
    worst_pick_ratio: f64,
}

#[derive(Serialize)]
struct SearchDoc {
    device: String,
    seeds: Vec<u64>,
    threshold: f64,
    bandit: BanditConfig,
    inject_greedy: bool,
    /// Gate 1: bandit pick ≤ 1.02 × walk pick on every cell.
    quality_gate_ok: bool,
    /// Gate 2: bandit launches ≤ walk launches on ≥ 2 of 3 workloads.
    convergence_gate_ok: bool,
    workloads: Vec<WorkloadSummary>,
    cells: Vec<Cell>,
}

struct SearchRun {
    launches: u64,
    quarantined: usize,
    selected: usize,
}

/// Drive one policy over the space: the same propose → launch slices →
/// observe loop `Orion::tune_space` runs, plus the fault seam — a
/// failed slice aborts the pull, and `STRIKES` failed pulls quarantine
/// the arm (the session's strike policy, at bench scale).
fn drive(
    dev: &DeviceSpec,
    w: &Workload,
    space: &CandidateSpace,
    policy: &mut dyn SearchPolicy,
    injector: Option<&FaultInjector>,
) -> SearchRun {
    let mut global = w.init_global.clone();
    let mut iter_no = 0u32;
    let mut launches = 0u64;
    let mut strikes = vec![0u32; space.arms.len()];
    let budget = 32 * space.arms.len().max(1) as u64;
    while matches!(policy.verdict(), PolicyVerdict::Exploring) && launches < budget {
        let Some(i) = policy.propose() else { break };
        let arm = &space.arms[i];
        let mut cycles = 0u64;
        let mut failed = false;
        for range in split_ranges(w.launch().grid, arm.pieces, 1) {
            let params = w.params_for(iter_no);
            iter_no += 1;
            let opts = LaunchOptions {
                extra_smem_per_block: arm.version.extra_smem,
                cta_range: Some(range),
                ..LaunchOptions::default()
            };
            let opts = match arm.cache_config {
                Some(c) => opts.with_cache_config(c),
                None => opts,
            };
            launches += 1;
            match run_launch_faulty(
                dev,
                &arm.version.machine,
                w.launch(),
                params,
                &mut global,
                opts,
                injector,
            ) {
                Ok(r) => cycles = cycles.saturating_add(r.cycles),
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            strikes[i] += 1;
            if strikes[i] >= STRIKES {
                policy.quarantine(i);
            }
        } else {
            policy.observe(i, Measurement::raw(cycles));
        }
    }
    SearchRun { launches, quarantined: policy.quarantined_count(), selected: policy.select() }
}

/// One clean whole-grid run of the selected arm under its steady-state
/// launch options — the quality axis, noise-free on both sides.
fn final_pick_cycles(dev: &DeviceSpec, w: &Workload, space: &CandidateSpace, arm: usize) -> u64 {
    let arm = &space.arms[arm];
    let mut global = w.init_global.clone();
    let opts =
        LaunchOptions { extra_smem_per_block: arm.version.extra_smem, ..LaunchOptions::default() };
    let opts = match arm.cache_config {
        Some(c) => opts.with_cache_config(c),
        None => opts,
    };
    run_launch_faulty(
        dev,
        &arm.version.machine,
        w.launch(),
        w.params_for(0),
        &mut global,
        opts,
        None,
    )
    .expect("clean steady-state run")
    .cycles
}

fn compile(dev: &DeviceSpec, w: &Workload) -> CompiledKernel {
    let mut orion = Orion::new(dev.clone(), w.block);
    orion.cfg.can_tune = w.can_tune;
    orion.compile(&w.module).expect("tier-1 workload compiles")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let inject_greedy = std::env::args().any(|a| a == "--inject-greedy");
    let seeds: Vec<u64> = if quick { vec![0, 7] } else { SEEDS.to_vec() };
    let dev = DeviceSpec::gtx680();
    orion_telemetry::set_enabled(false);
    let cfg = if inject_greedy { greedy_config() } else { bandit_config() };

    let mut cells: Vec<Cell> = Vec::new();
    let mut summaries: Vec<WorkloadSummary> = Vec::new();
    let mut quality_ok = true;

    for name in TIER1 {
        let w = by_name(name).expect("tier-1 workload");
        let ck = compile(&dev, &w);
        let space = CandidateSpace::enumerate(
            &dev,
            w.block,
            &w.module,
            ck.direction,
            w.launch().grid,
            SplitConfig::default(),
        )
        .expect("candidate space enumerates");
        let synthetic = space.to_compiled(ck.max_live);
        let ctx = BoundCtx::new(w.block, w.launch().grid, dev.num_sms, dev.warp_size);
        // Launch-economy bounds: one pull of a `pieces`-way split arm
        // costs `pieces` simulated launches for the same steady-state
        // behavior as its unsplit twin (split granularity only shapes
        // measurement), so the bound is cost-weighted by the split
        // factor. Under the default slack this prunes split twins
        // unless their unsplit version is itself dominated.
        let bounds: Vec<Option<u64>> = space
            .arms
            .iter()
            .map(|a| {
                Some(analytic_bound(&a.version, &ctx).saturating_mul(u64::from(a.pieces.max(1))))
            })
            .collect();

        let mut walk_launches = Vec::new();
        let mut bandit_launches = Vec::new();
        let mut worst_ratio = 0.0f64;
        for &seed in &seeds {
            let plan = (seed != 0).then(|| FaultPlan::chaos(seed, 0.10, 0.05));
            let mut per_policy: Vec<(String, SearchRun, usize)> = Vec::new();
            for kind in ["paper_walk", "bandit"] {
                let (mut policy, arms_pruned): (Box<dyn SearchPolicy>, usize) = match kind {
                    "bandit" => {
                        let p = BanditPolicy::new(&bounds, space.original, cfg);
                        let pruned = p.pruned_arms();
                        (Box::new(p), pruned)
                    }
                    _ => (PolicyKind::PaperWalk.build(&synthetic, THRESHOLD), 0),
                };
                let injector = plan.map(FaultInjector::new);
                let run = drive(&dev, &w, &space, policy.as_mut(), injector.as_ref());
                per_policy.push((kind.to_string(), run, arms_pruned));
            }
            let mut pick = [0u64; 2];
            for (k, (kind, run, arms_pruned)) in per_policy.iter().enumerate() {
                let cycles = final_pick_cycles(&dev, &w, &space, run.selected);
                pick[k] = cycles;
                cells.push(Cell {
                    workload: name.to_string(),
                    seed,
                    policy: kind.clone(),
                    arms: space.arms.len(),
                    arms_pruned: *arms_pruned,
                    launches_to_converge: run.launches,
                    quarantined: run.quarantined,
                    selected_label: space.arms[run.selected].version.label.clone(),
                    final_pick_cycles: cycles,
                });
            }
            let (walk_run, bandit_run) = (&per_policy[0].1, &per_policy[1].1);
            walk_launches.push(walk_run.launches as f64);
            bandit_launches.push(bandit_run.launches as f64);
            let ratio = pick[1] as f64 / pick[0].max(1) as f64;
            worst_ratio = worst_ratio.max(ratio);
            if ratio > 1.02 {
                eprintln!(
                    "FAIL {name} seed {seed}: bandit pick {} cycles vs walk {} ({:.1}% worse)",
                    pick[1],
                    pick[0],
                    (ratio - 1.0) * 100.0
                );
                quality_ok = false;
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let wm = mean(&walk_launches);
        let bm = mean(&bandit_launches);
        summaries.push(WorkloadSummary {
            workload: name.to_string(),
            arms: space.arms.len(),
            walk_mean_launches: wm,
            bandit_mean_launches: bm,
            bandit_converges_no_slower: bm <= wm,
            worst_pick_ratio: worst_ratio,
        });
    }

    let no_slower = summaries.iter().filter(|s| s.bandit_converges_no_slower).count();
    let convergence_ok = no_slower >= 2;
    if !convergence_ok {
        eprintln!(
            "FAIL: bandit converged within the walk's launch budget on only {no_slower} of \
             {} workloads (need >= 2)",
            summaries.len()
        );
    }

    let mut text = format!(
        "Search-policy ablation on {} ({} seeds, threshold {THRESHOLD}){}\n",
        dev.name,
        seeds.len(),
        if inject_greedy { " [--inject-greedy]" } else { "" },
    );
    for s in &summaries {
        text.push_str(&format!(
            "{:<10} {:>2} arms  walk {:>6.1} launches  bandit {:>6.1} launches  \
             worst pick ratio {:.3}  {}\n",
            s.workload,
            s.arms,
            s.walk_mean_launches,
            s.bandit_mean_launches,
            s.worst_pick_ratio,
            if s.bandit_converges_no_slower { "ok" } else { "SLOWER" },
        ));
    }
    text.push_str(&format!(
        "quality gate (bandit pick <= 1.02x walk, every cell): {}\n\
         convergence gate (bandit <= walk launches on >= 2/3 workloads): {}\n",
        if quality_ok { "ok" } else { "FAIL" },
        if convergence_ok { "ok" } else { "FAIL" },
    ));

    let doc = SearchDoc {
        device: dev.name.clone(),
        seeds,
        threshold: THRESHOLD,
        bandit: cfg,
        inject_greedy,
        quality_gate_ok: quality_ok,
        convergence_gate_ok: convergence_ok,
        workloads: summaries,
        cells,
    };
    let data = match serde_json::to_value(&doc) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: search doc does not serialize: {e}");
            std::process::exit(1);
        }
    };
    let fig = Figure::new("search", text, data);
    if let Err(e) = orion_bench::emit(&fig) {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }
    if !(quality_ok && convergence_ok) {
        std::process::exit(2);
    }
}
