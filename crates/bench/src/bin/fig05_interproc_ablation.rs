//! Figure 5: inter-procedure allocation ablations.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    orion_bench::emit(&orion_bench::figures::fig05()?)?;
    Ok(())
}
