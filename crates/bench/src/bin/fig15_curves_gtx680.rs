//! Figure 15: backprop and bfs occupancy curves on GTX680.
use orion_gpusim::DeviceSpec;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    orion_bench::emit(&orion_bench::figures::curve_pair(
        &DeviceSpec::gtx680(),
        ["backprop", "bfs"],
        "Figure 15",
        "paper: backprop skewed bell (best ~0.75); bfs best at max occupancy, flat above 0.5",
    )?)?;
    Ok(())
}
