//! Table 2: benchmark characteristics.
fn main() {
    print!("{}", orion_bench::figures::tab02());
}
