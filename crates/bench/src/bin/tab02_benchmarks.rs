//! Table 2: benchmark characteristics.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    orion_bench::emit(&orion_bench::figures::tab02())?;
    Ok(())
}
