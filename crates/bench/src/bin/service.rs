//! `orion-bench --bin service` — the multi-kernel tuning service bench.
//!
//! Builds a batch of 8 kernel jobs (the tier-1 workloads, cycled, so
//! duplicated modules also exercise compile-cache sharing) and runs it
//! twice through [`OrionService`] on the simulator backend:
//!
//! * **sequential** — one worker thread (the baseline an app doing its
//!   own per-kernel loops would get);
//! * **concurrent** — one worker per kernel (8 scoped threads over the
//!   shared compile cache and telemetry lanes).
//!
//! Three gates, in order of importance:
//!
//! 1. **Bit-identical outcomes** (hard, always enforced): every
//!    kernel's [`SessionOutcome`](orion_core::session::SessionOutcome)
//!    — selection, per-iteration trace,
//!    decision log, stats — must be equal across the two worker
//!    counts, or the binary exits non-zero. Concurrency must never
//!    change what the tuner decides.
//! 2. **Bit-identical latency histograms** (hard): each kernel's
//!    cycle-domain metrics — the launch-latency and queue-wait
//!    histograms in [`KernelMetrics`] — must also be equal across
//!    worker counts. The distributions are simulated-cycle-valued, so
//!    concurrency must not perturb them either.
//! 3. **Throughput** (enforced only when the host has ≥ 4 cores): the
//!    concurrent batch must finish ≥ 2× faster than the sequential
//!    one. On fewer cores the speedup is physically unavailable, so it
//!    is reported (with `host_cores`) but not gated — the CI
//!    `service-smoke` job runs on multi-core runners where it bites.
//!
//! Writes `BENCH_service.json` with per-kernel latency quantiles and
//! per-shard compile-cache hit rates (the concurrent run's deltas).
//! `--quick` shrinks iterations and reps for the CI smoke job.
//!
//! [`KernelMetrics`]: orion_core::service::KernelMetrics

use orion_bench::figures::Figure;
use orion_core::backend::SimBackend;
use orion_core::cache;
use orion_core::compiler::TuningConfig;
use orion_core::service::{JobPolicy, KernelJob, OrionService, ServiceConfig, ServiceReport};
use orion_gpusim::device::DeviceSpec;
use orion_workloads::by_name;
use serde::Serialize;
use std::time::Instant;

const TIER1: [&str; 3] = ["matrixMul", "backprop", "hotspot"];
const BATCH: usize = 8;

#[derive(Serialize)]
struct KernelRow {
    name: String,
    lane: u32,
    selected: usize,
    iterations: usize,
    converged_after: usize,
    total_cycles: u64,
    decisions: usize,
    state: String,
    launch_p50: u64,
    launch_p99: u64,
    queue_wait_p50: u64,
    queue_wait_p99: u64,
}

#[derive(Serialize)]
struct ShardRow {
    shard: usize,
    hits: u64,
    misses: u64,
    hit_rate: f64,
}

#[derive(Serialize)]
struct ServiceDoc {
    device: String,
    num_sms: u32,
    host_cores: u32,
    reps: u32,
    batch: usize,
    iterations_per_kernel: u32,
    sequential_wall_ms: f64,
    concurrent_wall_ms: f64,
    /// Worker threads the two runs actually used, as recorded by
    /// [`ServiceReport`] itself (not the requested counts) — makes a
    /// 0.95× single-core artifact self-explaining.
    sequential_workers: usize,
    concurrent_workers: usize,
    /// sequential wall / concurrent wall at 8 kernels.
    speedup_concurrent_over_sequential: f64,
    /// Whether the 2× throughput gate was enforced (host_cores ≥ 4).
    throughput_gated: bool,
    /// Why the throughput gate was skipped, when it was (`null` when
    /// it ran) — keeps the skip auditable from the artifact alone.
    throughput_gate_skip_reason: Option<String>,
    bit_identical_outcomes: bool,
    /// Whether the per-kernel cycle-domain histograms matched across
    /// worker counts (gate 2).
    bit_identical_histograms: bool,
    /// Compile-cache deltas of the *concurrent* run.
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    cache_coalesced: u64,
    per_shard: Vec<ShardRow>,
    /// Batch-wide launch-latency p50/p99 (simulated cycles).
    batch_launch_p50: u64,
    batch_launch_p99: u64,
    kernels: Vec<KernelRow>,
}

fn batch(iterations: u32) -> Vec<KernelJob> {
    (0..BATCH)
        .map(|i| {
            let w = by_name(TIER1[i % TIER1.len()]).expect("tier-1 workload");
            KernelJob {
                name: format!("{}#{i}", w.name),
                module: w.module.clone(),
                launch: w.launch(),
                params: w.params.clone(),
                global: w.init_global.clone(),
                iterations,
                tuning: TuningConfig::new(w.block),
                policy: JobPolicy::default(),
            }
        })
        .collect()
}

fn run_batch(workers: usize, iterations: u32) -> (f64, ServiceReport) {
    // The simulator backend is noise- and fault-free, so the sessions
    // run the paper's exact walk (`policy: None`) and finalize within
    // the iteration budget; the resilient path (7-sample warmup
    // passes) is exercised by the chaos bench instead.
    let svc = OrionService::new(
        SimBackend::new(DeviceSpec::gtx680()),
        ServiceConfig { workers, policy: None, ..ServiceConfig::default() },
    );
    let started = Instant::now();
    let report = svc.run(batch(iterations));
    (started.elapsed().as_secs_f64() * 1e3, report)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps: u32 = if quick { 1 } else { 3 };
    let iterations: u32 = if quick { 8 } else { 24 };
    let dev = DeviceSpec::gtx680();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get() as u32);
    orion_telemetry::set_enabled(false);
    let mut failed = false;

    // Sequential baseline: best wall over `reps` runs.
    cache::reset();
    let mut seq_ms = f64::INFINITY;
    let mut seq_report = None;
    for _ in 0..reps {
        let (ms, report) = run_batch(1, iterations);
        seq_ms = seq_ms.min(ms);
        seq_report = Some(report);
    }
    let seq_report = seq_report.expect("at least one sequential rep");

    // Concurrent: one worker per kernel, warm cache (sharing is the
    // point — the batch reuses the sequential runs' allocations).
    let mut conc_ms = f64::INFINITY;
    let mut conc_report = None;
    for _ in 0..reps {
        let (ms, report) = run_batch(BATCH, iterations);
        conc_ms = conc_ms.min(ms);
        conc_report = Some(report);
    }
    let conc_report = conc_report.expect("at least one concurrent rep");
    let cache_stats = &conc_report.cache;

    // Gate 1: per-kernel outcomes must be bit-identical across worker
    // counts (and every kernel must tune successfully).
    let mut bit_identical = true;
    for (a, b) in seq_report.kernels.iter().zip(&conc_report.kernels) {
        match (&a.outcome, &b.outcome) {
            (Ok(x), Ok(y)) if x == y => {}
            (Ok(_), Ok(_)) => {
                eprintln!("FAIL {}: outcome differs between 1 and {BATCH} workers", a.name);
                bit_identical = false;
            }
            (r, _) => {
                eprintln!(
                    "FAIL {}: kernel did not tune cleanly: {:?}",
                    a.name,
                    r.as_ref().err().or(b.outcome.as_ref().err())
                );
                bit_identical = false;
            }
        }
    }
    if !bit_identical {
        failed = true;
    }
    if seq_report.merged_decisions().len() != conc_report.merged_decisions().len() {
        eprintln!("FAIL: merged decision logs differ in length across worker counts");
        failed = true;
    }

    // Gate 2: per-kernel cycle-domain histograms (launch latency and
    // queue wait) must also be bit-identical — the distributions live
    // in simulated cycles, so worker count must not move them.
    let mut hist_identical = true;
    for (a, b) in seq_report.kernels.iter().zip(&conc_report.kernels) {
        if a.metrics.cycle_domain() != b.metrics.cycle_domain() {
            eprintln!("FAIL {}: latency histograms differ between 1 and {BATCH} workers", a.name);
            hist_identical = false;
        }
    }
    if !hist_identical {
        failed = true;
    }

    // Gate 3: ≥2× throughput at 8 kernels — only where the host can
    // physically provide it.
    let speedup = seq_ms / conc_ms;
    let throughput_gated = host_cores >= 4;
    let throughput_gate_skip_reason = (!throughput_gated)
        .then(|| format!("host has {host_cores} core(s); a 2x concurrency speedup needs >= 4"));
    if throughput_gated && speedup < 2.0 {
        eprintln!(
            "FAIL: concurrent batch only {speedup:.2}x faster than sequential \
             ({host_cores} host cores)"
        );
        failed = true;
    }

    let kernels: Vec<KernelRow> = conc_report
        .kernels
        .iter()
        .filter_map(|k| {
            let o = k.outcome.as_ref().ok()?;
            Some(KernelRow {
                name: k.name.clone(),
                lane: k.lane,
                selected: o.selected,
                iterations: o.iterations.len(),
                converged_after: o.converged_after,
                total_cycles: o.total_cycles,
                decisions: o.decisions.len(),
                state: format!("{:?}", o.state),
                launch_p50: k.metrics.launch_cycles.p50(),
                launch_p99: k.metrics.launch_cycles.p99(),
                queue_wait_p50: k.metrics.queue_wait_cycles.p50(),
                queue_wait_p99: k.metrics.queue_wait_cycles.p99(),
            })
        })
        .collect();

    let per_shard: Vec<ShardRow> = cache_stats
        .per_shard
        .iter()
        .enumerate()
        .map(|(i, s)| ShardRow { shard: i, hits: s.hits, misses: s.misses, hit_rate: s.hit_rate() })
        .collect();

    let doc = ServiceDoc {
        device: dev.name.clone(),
        num_sms: dev.num_sms,
        host_cores,
        reps,
        batch: BATCH,
        iterations_per_kernel: iterations,
        sequential_wall_ms: seq_ms,
        concurrent_wall_ms: conc_ms,
        sequential_workers: seq_report.workers,
        concurrent_workers: conc_report.workers,
        speedup_concurrent_over_sequential: speedup,
        throughput_gated,
        throughput_gate_skip_reason,
        bit_identical_outcomes: bit_identical,
        bit_identical_histograms: hist_identical,
        cache_hits: cache_stats.hits,
        cache_misses: cache_stats.misses,
        cache_hit_rate: cache_stats.hit_rate(),
        cache_coalesced: cache_stats.coalesced,
        per_shard,
        batch_launch_p50: conc_report.metrics.launch_cycles.p50(),
        batch_launch_p99: conc_report.metrics.launch_cycles.p99(),
        kernels,
    };

    let mut text = format!(
        "Service bench: {BATCH} kernels × {iterations} iterations on {} \
         ({host_cores} host cores, {reps} rep(s))\n\
         sequential {seq_ms:.1}ms, concurrent({BATCH} workers) {conc_ms:.1}ms \
         → {speedup:.2}x{}\n\
         cache (concurrent run): {} hits / {} misses ({:.0}% hit rate, {} coalesced); \
         outcomes bit-identical: {bit_identical}; histograms bit-identical: {hist_identical}\n",
        dev.name,
        if throughput_gated { "" } else { " (not gated: <4 cores)" },
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.hit_rate() * 100.0,
        cache_stats.coalesced,
    );
    for r in &doc.per_shard {
        text.push_str(&format!(
            "  shard {:>2}: {:>4} hits / {:>3} misses ({:.0}%)\n",
            r.shard,
            r.hits,
            r.misses,
            r.hit_rate * 100.0
        ));
    }
    for r in &doc.kernels {
        text.push_str(&format!(
            "{:<14} lane {:>2}  selected v{} after {:>2} trials  {:>12} cycles  \
             launch p50/p99 {:>8}/{:>8}  {}\n",
            r.name,
            r.lane,
            r.selected,
            r.converged_after,
            r.total_cycles,
            r.launch_p50,
            r.launch_p99,
            r.state,
        ));
    }

    let data = match serde_json::to_value(&doc) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: service doc does not serialize: {e}");
            std::process::exit(1);
        }
    };
    let fig = Figure::new("service", text, data);
    if let Err(e) = orion_bench::emit(&fig) {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }

    if failed {
        std::process::exit(2);
    }
}
