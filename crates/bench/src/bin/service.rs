//! `orion-bench --bin service` — the event-loop serving-plane bench.
//!
//! Builds a batch of 8 kernel jobs (the tier-1 workloads, cycled, so
//! duplicated modules also exercise compile-cache sharing) and runs it
//! twice through [`OrionService`] on the simulator backend. Both runs
//! are the **same code path** — the event loop — differing only in the
//! in-flight session cap, so the speedup ratio is apples-to-apples:
//!
//! * **sequential** — `in_flight_limit = 1`, one inline worker: one
//!   session runs start-to-finish before the next dispatches (the
//!   baseline an app doing its own per-kernel loops would get);
//! * **concurrent** — `in_flight_limit = 0` (every session in flight),
//!   one backend pool worker per kernel, longest-job-first dispatch.
//!
//! Three gates, in order of importance:
//!
//! 1. **Bit-identical outcomes** (hard, always enforced): every
//!    kernel's [`SessionOutcome`](orion_core::session::SessionOutcome)
//!    — selection, per-iteration trace, decision log, stats — must be
//!    equal across the two in-flight limits, or the binary exits
//!    non-zero. Concurrency must never change what the tuner decides.
//! 2. **Bit-identical latency histograms** (hard): each kernel's
//!    cycle-domain metrics — the launch-latency and queue-wait
//!    histograms in [`KernelMetrics`] — must also be equal. The
//!    distributions are simulated-cycle-valued, so multiplexing must
//!    not perturb them either. The dispatch order (a pure function of
//!    the job set) must match too.
//! 3. **Throughput** (enforced when the host has ≥ 4 cores): the
//!    concurrent batch must finish ≥ 2× faster than the sequential
//!    one. On fewer cores the speedup is physically unavailable, so it
//!    is reported (with `host_cores`) but not gated — the CI
//!    `service-smoke` job runs on multi-core runners where it bites.
//!
//! `--inject-serial` is the gate-inversion proof: it forces
//! `in_flight_limit = 1` under the *concurrent* label and forces the
//! throughput gate on regardless of core count — the run must exit 2,
//! demonstrating the ≥2× gate actually fires when concurrency is lost.
//!
//! Writes `BENCH_service.json` with the in-flight limits, scheduler
//! mode, dispatch order, per-phase (backend queue-wait vs execute)
//! wall-time split, per-kernel latency quantiles, and per-shard
//! compile-cache hit rates (the concurrent run's deltas). `--quick`
//! shrinks iterations and reps for the CI smoke job.
//!
//! [`KernelMetrics`]: orion_core::service::KernelMetrics

use orion_bench::figures::Figure;
use orion_core::backend::SimBackend;
use orion_core::cache;
use orion_core::compiler::TuningConfig;
use orion_core::service::{JobPolicy, KernelJob, OrionService, ServiceConfig, ServiceReport};
use orion_gpusim::device::DeviceSpec;
use orion_workloads::by_name;
use serde::Serialize;
use std::time::Instant;

const TIER1: [&str; 3] = ["matrixMul", "backprop", "hotspot"];
/// Full-run batch size: large enough that the ≥2× throughput gate
/// measures steady-state event-loop multiplexing, not startup effects.
/// `--quick` keeps the original 8-job smoke batch.
const BATCH: usize = 256;
const QUICK_BATCH: usize = 8;
/// Backend pool workers for the concurrent run — one per kernel up to a
/// sane thread cap (the pool multiplexes beyond it).
const MAX_WORKERS: usize = 16;

#[derive(Serialize)]
struct KernelRow {
    name: String,
    lane: u32,
    selected: usize,
    iterations: usize,
    converged_after: usize,
    total_cycles: u64,
    decisions: usize,
    state: String,
    launch_p50: u64,
    launch_p99: u64,
    queue_wait_p50: u64,
    queue_wait_p99: u64,
    /// Wall µs this kernel's launches waited behind the backend pool
    /// (concurrent run).
    dispatch_wait_us: u64,
    /// Wall µs this kernel's launches spent executing (concurrent run).
    execute_us: u64,
}

#[derive(Serialize)]
struct ShardRow {
    shard: usize,
    hits: u64,
    misses: u64,
    hit_rate: f64,
}

/// Per-run phase split: where the batch's wall time went, summed over
/// kernels (wall-clock — reported, never gated).
#[derive(Serialize)]
struct PhaseSplit {
    /// Total wall µs launches spent queued behind the backend pool.
    dispatch_wait_us: u64,
    /// Total wall µs launches spent executing on backend workers.
    execute_us: u64,
    /// Total wall µs spent compiling candidate sets.
    compile_wall_us: u64,
}

fn phase_split(report: &ServiceReport) -> PhaseSplit {
    PhaseSplit {
        dispatch_wait_us: report.kernels.iter().map(|k| k.metrics.dispatch_wait_us).sum(),
        execute_us: report.kernels.iter().map(|k| k.metrics.execute_us).sum(),
        compile_wall_us: report.kernels.iter().map(|k| k.metrics.compile_wall_us).sum(),
    }
}

#[derive(Serialize)]
struct ServiceDoc {
    device: String,
    num_sms: u32,
    host_cores: u32,
    reps: u32,
    batch: usize,
    iterations_per_kernel: u32,
    /// Scheduler mode both runs used (longest-job-first by default).
    scheduler: String,
    /// Session dispatch order of the concurrent run (job indices) — a
    /// pure function of the job set; the sequential run must match.
    dispatch_order: Vec<usize>,
    sequential_wall_ms: f64,
    concurrent_wall_ms: f64,
    /// In-flight session caps the two runs actually ran with, as
    /// recorded by [`ServiceReport`] itself (not the requested knobs).
    sequential_in_flight_limit: usize,
    concurrent_in_flight_limit: usize,
    /// Worker threads the two runs actually used.
    sequential_workers: usize,
    concurrent_workers: usize,
    /// Per-phase wall-time split of each run (queue wait vs execute).
    sequential_phases: PhaseSplit,
    concurrent_phases: PhaseSplit,
    /// sequential wall / concurrent wall at 8 kernels.
    speedup_concurrent_over_sequential: f64,
    /// Whether the 2× throughput gate was enforced (host_cores ≥ 4, or
    /// forced by `--inject-serial`).
    throughput_gated: bool,
    /// Why the throughput gate was skipped, when it was (`null` when
    /// it ran) — keeps the skip auditable from the artifact alone.
    throughput_gate_skip_reason: Option<String>,
    /// Whether `--inject-serial` deliberately serialized the
    /// concurrent label (the run is then *expected* to exit 2).
    inject_serial: bool,
    bit_identical_outcomes: bool,
    /// Whether the per-kernel cycle-domain histograms and the dispatch
    /// order matched across in-flight limits (gate 2).
    bit_identical_histograms: bool,
    /// Compile-cache deltas of the *concurrent* run.
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    cache_coalesced: u64,
    per_shard: Vec<ShardRow>,
    /// Batch-wide launch-latency p50/p99 (simulated cycles).
    batch_launch_p50: u64,
    batch_launch_p99: u64,
    kernels: Vec<KernelRow>,
}

fn batch(n: usize, iterations: u32) -> Vec<KernelJob> {
    (0..n)
        .map(|i| {
            let w = by_name(TIER1[i % TIER1.len()]).expect("tier-1 workload");
            KernelJob {
                name: format!("{}#{i}", w.name),
                module: w.module.clone(),
                launch: w.launch(),
                params: w.params.clone(),
                global: w.init_global.clone(),
                iterations,
                tuning: TuningConfig::new(w.block),
                policy: JobPolicy::default(),
            }
        })
        .collect()
}

fn run_batch(
    n: usize,
    workers: usize,
    in_flight_limit: usize,
    iterations: u32,
) -> (f64, ServiceReport) {
    // The simulator backend is noise- and fault-free, so the sessions
    // run the paper's exact walk (`policy: None`) and finalize within
    // the iteration budget; the resilient path (7-sample warmup
    // passes) is exercised by the chaos bench instead.
    let svc = OrionService::new(
        SimBackend::new(DeviceSpec::gtx680()),
        ServiceConfig { workers, in_flight_limit, policy: None, ..ServiceConfig::default() },
    );
    let started = Instant::now();
    let report = svc.run(batch(n, iterations));
    (started.elapsed().as_secs_f64() * 1e3, report)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let inject_serial = std::env::args().any(|a| a == "--inject-serial");
    // Best-of-N wall-clock reps: the old 8-kernel batch needed 3 to
    // tame scheduler noise, but a 256-job batch amortises it within a
    // single run (and would triple an already long record).
    let reps: u32 = 1;
    let iterations: u32 = if quick { 8 } else { 24 };
    let batch_size = if quick { QUICK_BATCH } else { BATCH };
    let dev = DeviceSpec::gtx680();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get() as u32);
    orion_telemetry::set_enabled(false);
    let mut failed = false;

    // Sequential baseline: the same event loop, capped at one in-flight
    // session on one inline worker. Best wall over `reps` runs.
    cache::reset();
    let mut seq_ms = f64::INFINITY;
    let mut seq_report = None;
    for _ in 0..reps {
        let (ms, report) = run_batch(batch_size, 1, 1, iterations);
        seq_ms = seq_ms.min(ms);
        seq_report = Some(report);
    }
    let seq_report = seq_report.expect("at least one sequential rep");

    // Concurrent: every session in flight over one pool worker per
    // kernel, warm cache (sharing is the point — the batch reuses the
    // sequential runs' allocations). `--inject-serial` sabotages this
    // run back to one in-flight session to prove the gate fires.
    let conc_limit = if inject_serial { 1 } else { 0 };
    let mut conc_ms = f64::INFINITY;
    let mut conc_report = None;
    for _ in 0..reps {
        let (ms, report) =
            run_batch(batch_size, batch_size.min(MAX_WORKERS), conc_limit, iterations);
        conc_ms = conc_ms.min(ms);
        conc_report = Some(report);
    }
    let conc_report = conc_report.expect("at least one concurrent rep");
    let cache_stats = &conc_report.cache;

    // Gate 1: per-kernel outcomes must be bit-identical across
    // in-flight limits (and every kernel must tune successfully).
    let mut bit_identical = true;
    for (a, b) in seq_report.kernels.iter().zip(&conc_report.kernels) {
        match (&a.outcome, &b.outcome) {
            (Ok(x), Ok(y)) if x == y => {}
            (Ok(_), Ok(_)) => {
                eprintln!("FAIL {}: outcome differs between in-flight 1 and {batch_size}", a.name);
                bit_identical = false;
            }
            (r, _) => {
                eprintln!(
                    "FAIL {}: kernel did not tune cleanly: {:?}",
                    a.name,
                    r.as_ref().err().or(b.outcome.as_ref().err())
                );
                bit_identical = false;
            }
        }
        if a.disposition != b.disposition {
            eprintln!("FAIL {}: disposition differs across in-flight limits", a.name);
            bit_identical = false;
        }
    }
    if !bit_identical {
        failed = true;
    }
    if seq_report.merged_decisions().len() != conc_report.merged_decisions().len() {
        eprintln!("FAIL: merged decision logs differ in length across in-flight limits");
        failed = true;
    }

    // Gate 2: per-kernel cycle-domain histograms (launch latency and
    // queue wait) must also be bit-identical — the distributions live
    // in simulated cycles, so multiplexing must not move them. The
    // dispatch order is a pure function of the job set and must match
    // too.
    let mut hist_identical = true;
    for (a, b) in seq_report.kernels.iter().zip(&conc_report.kernels) {
        if a.metrics.cycle_domain() != b.metrics.cycle_domain() {
            eprintln!("FAIL {}: latency histograms differ across in-flight limits", a.name);
            hist_identical = false;
        }
    }
    if seq_report.dispatch_order != conc_report.dispatch_order {
        eprintln!("FAIL: dispatch order differs across in-flight limits");
        hist_identical = false;
    }
    if !hist_identical {
        failed = true;
    }

    // Gate 3: ≥2× throughput at 8 kernels — where the host can
    // physically provide it, or unconditionally under --inject-serial
    // (whose whole point is proving the gate trips).
    let speedup = seq_ms / conc_ms;
    let throughput_gated = host_cores >= 4 || inject_serial;
    let throughput_gate_skip_reason = (!throughput_gated)
        .then(|| format!("host has {host_cores} core(s); a 2x concurrency speedup needs >= 4"));
    if throughput_gated && speedup < 2.0 {
        eprintln!(
            "FAIL: concurrent batch only {speedup:.2}x faster than sequential \
             ({host_cores} host cores{})",
            if inject_serial { ", in-flight serialized by --inject-serial" } else { "" }
        );
        failed = true;
    }

    let kernels: Vec<KernelRow> = conc_report
        .kernels
        .iter()
        .filter_map(|k| {
            let o = k.outcome.as_ref().ok()?;
            Some(KernelRow {
                name: k.name.clone(),
                lane: k.lane,
                selected: o.selected,
                iterations: o.iterations.len(),
                converged_after: o.converged_after,
                total_cycles: o.total_cycles,
                decisions: o.decisions.len(),
                state: format!("{:?}", o.state),
                launch_p50: k.metrics.launch_cycles.p50(),
                launch_p99: k.metrics.launch_cycles.p99(),
                queue_wait_p50: k.metrics.queue_wait_cycles.p50(),
                queue_wait_p99: k.metrics.queue_wait_cycles.p99(),
                dispatch_wait_us: k.metrics.dispatch_wait_us,
                execute_us: k.metrics.execute_us,
            })
        })
        .collect();

    let per_shard: Vec<ShardRow> = cache_stats
        .per_shard
        .iter()
        .enumerate()
        .map(|(i, s)| ShardRow { shard: i, hits: s.hits, misses: s.misses, hit_rate: s.hit_rate() })
        .collect();

    let doc = ServiceDoc {
        device: dev.name.clone(),
        num_sms: dev.num_sms,
        host_cores,
        reps,
        batch: batch_size,
        iterations_per_kernel: iterations,
        scheduler: conc_report.scheduler.name().to_string(),
        dispatch_order: conc_report.dispatch_order.clone(),
        sequential_wall_ms: seq_ms,
        concurrent_wall_ms: conc_ms,
        sequential_in_flight_limit: seq_report.in_flight_limit,
        concurrent_in_flight_limit: conc_report.in_flight_limit,
        sequential_workers: seq_report.workers,
        concurrent_workers: conc_report.workers,
        sequential_phases: phase_split(&seq_report),
        concurrent_phases: phase_split(&conc_report),
        speedup_concurrent_over_sequential: speedup,
        throughput_gated,
        throughput_gate_skip_reason,
        inject_serial,
        bit_identical_outcomes: bit_identical,
        bit_identical_histograms: hist_identical,
        cache_hits: cache_stats.hits,
        cache_misses: cache_stats.misses,
        cache_hit_rate: cache_stats.hit_rate(),
        cache_coalesced: cache_stats.coalesced,
        per_shard,
        batch_launch_p50: conc_report.metrics.launch_cycles.p50(),
        batch_launch_p99: conc_report.metrics.launch_cycles.p99(),
        kernels,
    };

    let mut text = format!(
        "Service bench: {batch_size} kernels × {iterations} iterations on {} \
         ({host_cores} host cores, {reps} rep(s), {} scheduler)\n\
         sequential(in-flight 1) {seq_ms:.1}ms, concurrent(in-flight {}, {} workers) \
         {conc_ms:.1}ms → {speedup:.2}x{}{}\n\
         phase split (concurrent): queue-wait {}us, execute {}us, compile {}us\n\
         cache (concurrent run): {} hits / {} misses ({:.0}% hit rate, {} coalesced); \
         outcomes bit-identical: {bit_identical}; histograms bit-identical: {hist_identical}\n",
        dev.name,
        doc.scheduler,
        doc.concurrent_in_flight_limit,
        doc.concurrent_workers,
        if throughput_gated { "" } else { " (not gated: <4 cores)" },
        if inject_serial { " [--inject-serial]" } else { "" },
        doc.concurrent_phases.dispatch_wait_us,
        doc.concurrent_phases.execute_us,
        doc.concurrent_phases.compile_wall_us,
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.hit_rate() * 100.0,
        cache_stats.coalesced,
    );
    for r in &doc.per_shard {
        text.push_str(&format!(
            "  shard {:>2}: {:>4} hits / {:>3} misses ({:.0}%)\n",
            r.shard,
            r.hits,
            r.misses,
            r.hit_rate * 100.0
        ));
    }
    for r in &doc.kernels {
        text.push_str(&format!(
            "{:<14} lane {:>2}  selected v{} after {:>2} trials  {:>12} cycles  \
             launch p50/p99 {:>8}/{:>8}  wait/exec {:>6}/{:>6}us  {}\n",
            r.name,
            r.lane,
            r.selected,
            r.converged_after,
            r.total_cycles,
            r.launch_p50,
            r.launch_p99,
            r.dispatch_wait_us,
            r.execute_us,
            r.state,
        ));
    }

    let data = match serde_json::to_value(&doc) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: service doc does not serialize: {e}");
            std::process::exit(1);
        }
    };
    let fig = Figure::new("service", text, data);
    if let Err(e) = orion_bench::emit(&fig) {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }

    if failed {
        std::process::exit(2);
    }
}
