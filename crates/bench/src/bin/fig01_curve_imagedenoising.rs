//! Figure 1: imageDenoising runtime vs occupancy on GTX680.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    orion_bench::emit(&orion_bench::figures::fig01()?)?;
    Ok(())
}
