//! The perf-regression gate behind `orion-bench --bin regress`.
//!
//! A baseline run (`regress --record`) captures, per tier-1 workload,
//! the deterministic simulated cycle count of the Orion-original
//! candidate plus the measured simulation throughput, and writes them
//! to `BENCH_baseline.json` (committed at the repo root). A gate run
//! (`regress`) re-captures the same numbers and compares:
//!
//! * **cycles** — deterministic, so *any* drift is a semantic change;
//!   the gate fails when the geomean cycle ratio exceeds the threshold
//!   (default 10%).
//! * **throughput** — wall-clock simulated-cycles/second; noisy, so it
//!   is likewise geomean-gated at the same threshold (a uniform >10%
//!   slowdown across workloads is a real engine regression, single-row
//!   jitter is not).
//!
//! `diff` is pure (no I/O, no clock), so the gate's decision logic is
//! unit-testable, including the injected-regression path used by the
//! `obs-smoke` CI job (`--inject 0.2` must exit non-zero).

use crate::error::BenchError;
use crate::experiment::ExperimentError;
use orion_core::orion::Orion;
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::sim::{run_launch_opts, LaunchOptions};
use orion_workloads::by_name;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema version stamped into the baseline document.
pub const BASELINE_SCHEMA: u32 = 1;
/// Default committed baseline path (repo root).
pub const DEFAULT_BASELINE: &str = "BENCH_baseline.json";
/// Default regression threshold: 10% on either geomean.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// The workloads the gate tracks (the tier-1 set).
pub const GATE_WORKLOADS: [&str; 3] = ["matrixMul", "backprop", "hotspot"];

/// One workload's captured numbers.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct WorkloadBaseline {
    /// Workload name (`by_name` key).
    pub name: String,
    /// Simulated device cycles of the Orion-original candidate —
    /// deterministic on the simulator.
    pub cycles: u64,
    /// Simulated SM-cycles per wall-second (best over reps).
    pub sim_cycles_per_sec: f64,
}

/// The committed baseline document.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BaselineDoc {
    /// [`BASELINE_SCHEMA`] at capture time.
    pub schema: u32,
    /// `"quick"` or `"full"` — reps used at capture.
    pub mode: String,
    /// Device the numbers were captured on.
    pub device: String,
    /// Per-workload rows.
    pub workloads: Vec<WorkloadBaseline>,
}

impl BaselineDoc {
    /// Serialize to the committed JSON form.
    ///
    /// # Errors
    /// [`BenchError::Json`] on serialization failure.
    pub fn to_json(&self) -> Result<String, BenchError> {
        serde_json::to_string_pretty(self).map_err(|e| BenchError::json("baseline doc", e))
    }

    /// Parse a committed baseline.
    ///
    /// # Errors
    /// [`BenchError::Json`] on malformed JSON or schema drift.
    pub fn from_json(s: &str) -> Result<Self, BenchError> {
        let doc: BaselineDoc =
            serde_json::from_str(s).map_err(|e| BenchError::json("baseline doc", e))?;
        Ok(doc)
    }
}

/// Capture a fresh baseline: simulate each gate workload's
/// Orion-original candidate `reps` times, keeping the deterministic
/// cycle count and the best throughput.
///
/// # Errors
/// Propagates compile/launch failures ([`ExperimentError`]).
pub fn capture(quick: bool) -> Result<BaselineDoc, ExperimentError> {
    let dev = DeviceSpec::gtx680();
    let reps = if quick { 1 } else { 3 };
    let mut workloads = Vec::new();
    for name in GATE_WORKLOADS {
        let w = by_name(name).expect("gate workload exists");
        let orion = Orion::new(dev.clone(), w.block);
        let compiled = orion.compile(&w.module)?;
        let v = &compiled.versions[compiled.original];
        let mut cycles = 0u64;
        let mut best_ms = f64::INFINITY;
        for _ in 0..reps {
            let mut global = w.init_global.clone();
            let started = Instant::now();
            let r = run_launch_opts(
                &dev,
                &v.machine,
                w.launch(),
                &w.params,
                &mut global,
                LaunchOptions { extra_smem_per_block: v.extra_smem, ..LaunchOptions::default() },
            )?;
            best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1e3);
            cycles = r.cycles;
        }
        let throughput = if best_ms > 0.0 {
            cycles as f64 * f64::from(dev.num_sms) / (best_ms / 1e3)
        } else {
            0.0
        };
        workloads.push(WorkloadBaseline {
            name: name.to_string(),
            cycles,
            sim_cycles_per_sec: throughput,
        });
    }
    Ok(BaselineDoc {
        schema: BASELINE_SCHEMA,
        mode: if quick { "quick" } else { "full" }.to_string(),
        device: dev.name.clone(),
        workloads,
    })
}

/// One workload's baseline-vs-current comparison.
#[derive(Debug, Clone, Serialize)]
pub struct RegressRow {
    pub name: String,
    pub base_cycles: u64,
    pub cur_cycles: u64,
    /// `cur/base`; > 1 is slower.
    pub cycle_ratio: f64,
    pub base_throughput: f64,
    pub cur_throughput: f64,
    /// `base/cur`; > 1 is slower (throughput dropped).
    pub throughput_ratio: f64,
}

/// The gate's verdict.
#[derive(Debug, Clone, Serialize)]
pub struct RegressReport {
    pub rows: Vec<RegressRow>,
    /// Workloads in the baseline the current run did not produce.
    pub missing: Vec<String>,
    pub geomean_cycle_ratio: f64,
    pub geomean_throughput_ratio: f64,
    pub threshold: f64,
    /// Whether either geomean exceeds `1 + threshold`.
    pub regressed: bool,
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Compare a current capture against the committed baseline. Pure —
/// the binary's exit code is `report.regressed`.
#[must_use]
pub fn diff(baseline: &BaselineDoc, current: &BaselineDoc, threshold: f64) -> RegressReport {
    diff_with(baseline, current, threshold, true)
}

/// [`diff`] with the throughput half of the gate optional. Cycle
/// counts are machine-independent; throughput is wall-clock, so a
/// baseline recorded on different hardware should gate cycles only
/// (`regress --cycles-only` — what cross-machine CI uses).
#[must_use]
pub fn diff_with(
    baseline: &BaselineDoc,
    current: &BaselineDoc,
    threshold: f64,
    gate_throughput: bool,
) -> RegressReport {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for b in &baseline.workloads {
        let Some(c) = current.workloads.iter().find(|c| c.name == b.name) else {
            missing.push(b.name.clone());
            continue;
        };
        let cycle_ratio = c.cycles as f64 / (b.cycles.max(1)) as f64;
        let throughput_ratio = if c.sim_cycles_per_sec > 0.0 {
            b.sim_cycles_per_sec / c.sim_cycles_per_sec
        } else {
            f64::INFINITY
        };
        rows.push(RegressRow {
            name: b.name.clone(),
            base_cycles: b.cycles,
            cur_cycles: c.cycles,
            cycle_ratio,
            base_throughput: b.sim_cycles_per_sec,
            cur_throughput: c.sim_cycles_per_sec,
            throughput_ratio,
        });
    }
    let geomean_cycle_ratio = geomean(&rows.iter().map(|r| r.cycle_ratio).collect::<Vec<_>>());
    let geomean_throughput_ratio =
        geomean(&rows.iter().map(|r| r.throughput_ratio).collect::<Vec<_>>());
    let regressed = !missing.is_empty()
        || geomean_cycle_ratio > 1.0 + threshold
        || (gate_throughput && geomean_throughput_ratio > 1.0 + threshold);
    RegressReport {
        rows,
        missing,
        geomean_cycle_ratio,
        geomean_throughput_ratio,
        threshold,
        regressed,
    }
}

/// Render the gate verdict as the table the binary prints.
#[must_use]
pub fn render(report: &RegressReport) -> String {
    let mut s = format!(
        "{:<12} {:>12} {:>12} {:>8} {:>14} {:>14} {:>8}\n",
        "workload", "base-cycles", "cur-cycles", "ratio", "base-Mcyc/s", "cur-Mcyc/s", "ratio"
    );
    for r in &report.rows {
        s.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>8.3} {:>14.1} {:>14.1} {:>8.3}\n",
            r.name,
            r.base_cycles,
            r.cur_cycles,
            r.cycle_ratio,
            r.base_throughput / 1e6,
            r.cur_throughput / 1e6,
            r.throughput_ratio,
        ));
    }
    for m in &report.missing {
        s.push_str(&format!("{m:<12} MISSING from current run\n"));
    }
    s.push_str(&format!(
        "geomean: cycles {:.3}, throughput {:.3} (threshold {:.0}%) → {}\n",
        report.geomean_cycle_ratio,
        report.geomean_throughput_ratio,
        report.threshold * 100.0,
        if report.regressed { "REGRESSED" } else { "ok" },
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, u64, f64)]) -> BaselineDoc {
        BaselineDoc {
            schema: BASELINE_SCHEMA,
            mode: "quick".into(),
            device: "test".into(),
            workloads: rows
                .iter()
                .map(|&(name, cycles, tput)| WorkloadBaseline {
                    name: name.into(),
                    cycles,
                    sim_cycles_per_sec: tput,
                })
                .collect(),
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let d = doc(&[("matrixMul", 1000, 2e9), ("hotspot", 500, 1e9)]);
        let parsed = BaselineDoc::from_json(&d.to_json().unwrap()).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn identical_runs_pass() {
        let d = doc(&[("a", 1000, 1e9), ("b", 2000, 2e9)]);
        let r = diff(&d, &d, DEFAULT_THRESHOLD);
        assert!(!r.regressed);
        assert!((r.geomean_cycle_ratio - 1.0).abs() < 1e-12);
        assert!((r.geomean_throughput_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_cycle_regression_beyond_threshold_fails() {
        let base = doc(&[("a", 1000, 1e9), ("b", 1000, 1e9)]);
        // +20% on every workload: geomean 1.2 > 1.1.
        let cur = doc(&[("a", 1200, 1e9), ("b", 1200, 1e9)]);
        assert!(diff(&base, &cur, DEFAULT_THRESHOLD).regressed);
        // +20% on one of two: geomean ≈ 1.095 < 1.1 — jitter-tolerant.
        let cur = doc(&[("a", 1200, 1e9), ("b", 1000, 1e9)]);
        assert!(!diff(&base, &cur, DEFAULT_THRESHOLD).regressed);
    }

    #[test]
    fn throughput_drop_beyond_threshold_fails() {
        let base = doc(&[("a", 1000, 1.2e9)]);
        let cur = doc(&[("a", 1000, 1.0e9)]);
        // base/cur = 1.2 > 1.1.
        assert!(diff(&base, &cur, DEFAULT_THRESHOLD).regressed);
        // ... unless the throughput half is ungated (cross-machine CI).
        assert!(!diff_with(&base, &cur, DEFAULT_THRESHOLD, false).regressed);
        // A speedup never trips the gate.
        let cur = doc(&[("a", 1000, 2.0e9)]);
        assert!(!diff(&base, &cur, DEFAULT_THRESHOLD).regressed);
    }

    #[test]
    fn missing_workload_fails_and_is_listed() {
        let base = doc(&[("a", 1000, 1e9), ("gone", 500, 1e9)]);
        let cur = doc(&[("a", 1000, 1e9)]);
        let r = diff(&base, &cur, DEFAULT_THRESHOLD);
        assert!(r.regressed);
        assert_eq!(r.missing, vec!["gone".to_string()]);
    }

    #[test]
    fn improvements_report_ratio_below_one() {
        let base = doc(&[("a", 1000, 1e9)]);
        let cur = doc(&[("a", 800, 1.5e9)]);
        let r = diff(&base, &cur, DEFAULT_THRESHOLD);
        assert!(!r.regressed);
        assert!(r.geomean_cycle_ratio < 1.0);
        assert!(r.geomean_throughput_ratio < 1.0);
    }
}
