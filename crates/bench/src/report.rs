//! Text rendering of experiment results (figure/table style output).

use crate::experiment::CurvePoint;

/// Render a runtime-vs-occupancy curve normalized to its best point,
/// like the paper's Figures 1/2/10/14/15.
pub fn render_curve(title: &str, curve: &[CurvePoint]) -> String {
    let best = curve.iter().map(|p| p.cycles).min().unwrap_or(1).max(1);
    let mut s = format!("{title}\n  occ    warps  regs  cycles      norm-runtime\n");
    for p in curve {
        let norm = p.cycles as f64 / best as f64;
        let bar = "#".repeat((norm * 20.0).round() as usize);
        s.push_str(&format!(
            "  {:>5.3}  {:>5}  {:>4}  {:>9}  {:>6.3}  {bar}\n",
            p.occupancy, p.warps, p.regs_per_thread, p.cycles, norm
        ));
    }
    s
}

/// A simple aligned table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut s = String::new();
    for (i, h) in headers.iter().enumerate() {
        s.push_str(&format!("{:>w$}  ", h, w = widths[i]));
    }
    s.push('\n');
    for (i, _) in headers.iter().enumerate() {
        s.push_str(&format!("{:>w$}  ", "-".repeat(widths[i]), w = widths[i]));
    }
    s.push('\n');
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_rendering_normalizes() {
        let curve = vec![
            CurvePoint {
                warps: 8,
                occupancy: 0.17,
                cycles: 200,
                regs_per_thread: 60,
                smem_slots: 0,
                local_slots: 4,
                energy_pj: 1.0,
            },
            CurvePoint {
                warps: 48,
                occupancy: 1.0,
                cycles: 100,
                regs_per_thread: 20,
                smem_slots: 0,
                local_slots: 4,
                energy_pj: 1.0,
            },
        ];
        let s = render_curve("t", &curve);
        assert!(s.contains("2.000"));
        assert!(s.contains("1.000"));
    }

    #[test]
    fn table_alignment() {
        let s = render_table(
            &["name", "x"],
            &[vec!["a".into(), "1.23".into()], vec!["longer".into(), "4".into()]],
        );
        assert!(s.lines().count() == 4);
        assert!(s.contains("longer"));
    }
}
