//! One function per table/figure of the paper. Each returns the rendered
//! text (and the structured numbers where the caller wants them), so the
//! per-figure binaries and `all_experiments` share one implementation.

use crate::experiment::{orion_select, orion_select_lite, run_with_alloc_options, sweep_curve, ExperimentError};
use crate::report::{render_curve, render_table};
use orion_alloc::realize::AllocOptions;
use orion_core::budget::budget_for_warps;
use orion_gpusim::device::{CacheConfig, DeviceSpec};
use orion_workloads::{by_name, downward_benchmarks, upward_benchmarks, Workload};

/// Figure 1: imageDenoising runtime vs occupancy on GTX680.
pub fn fig01() -> Result<String, ExperimentError> {
    let dev = DeviceSpec::gtx680();
    let w = by_name("imageDenoising").expect("workload");
    let curve = sweep_curve(&dev, &w)?;
    let mut s = render_curve(
        "Figure 1: imageDenoising, running time vs occupancy (GTX680)",
        &curve,
    );
    let best = curve.iter().min_by_key(|p| p.cycles).expect("curve");
    let worst = curve.iter().max_by_key(|p| p.cycles).expect("curve");
    s.push_str(&format!(
        "paper: worst/best ≈ 3x with best at occupancy 0.50\nmeasured: worst/best = {:.2}x, best at occupancy {:.2}\n",
        worst.cycles as f64 / best.cycles as f64,
        best.occupancy
    ));
    Ok(s)
}

/// Figure 2: matrixMul runtime vs occupancy (plateau above ~0.5).
pub fn fig02() -> Result<String, ExperimentError> {
    let dev = DeviceSpec::c2075();
    let w = by_name("matrixMul").expect("workload");
    let curve = sweep_curve(&dev, &w)?;
    let mut s = render_curve(
        "Figure 2: matrixMul, running time vs occupancy (C2075)",
        &curve,
    );
    let best = curve.iter().map(|p| p.cycles).min().expect("curve");
    let half_up: Vec<f64> = curve
        .iter()
        .filter(|p| p.occupancy >= 0.49)
        .map(|p| p.cycles as f64 / best as f64)
        .collect();
    s.push_str(&format!(
        "paper: performance plateaus from 0.5 occupancy upward\nmeasured: normalized runtime over [0.5,1.0] = {:?}\n",
        half_up.iter().map(|x| (x * 100.0).round() / 100.0).collect::<Vec<_>>()
    ));
    Ok(s)
}

/// Table 2: benchmark characteristics, measured from the IR.
pub fn tab02() -> String {
    let rows: Vec<Vec<String>> = orion_workloads::table2_benchmarks()
        .iter()
        .map(|w| {
            let ml = orion_alloc::realize::kernel_max_live(&w.module).expect("max-live");
            vec![
                w.name.to_string(),
                w.domain.to_string(),
                format!("{ml} (paper {})", w.expected.reg),
                format!("{} (paper {})", w.module.static_call_count(), w.expected.func),
                if w.module.user_smem_bytes > 0 { "Yes" } else { "No" }.to_string(),
            ]
        })
        .collect();
    format!(
        "Table 2: benchmark characteristics (measured vs paper)\n{}",
        render_table(&["benchmark", "domain", "Reg", "Func", "Smem"], &rows)
    )
}

/// Figure 5: inter-procedural allocation ablations on the call-heavy
/// benchmarks, at each benchmark's conservative budget.
pub fn fig05() -> Result<String, ExperimentError> {
    let dev = DeviceSpec::c2075();
    let mut rows = Vec::new();
    for w in upward_benchmarks() {
        if w.module.static_call_count() == 0 {
            continue; // FDTD3d / particles have no calls to ablate
        }
        let max_live = orion_alloc::realize::kernel_max_live(&w.module).expect("max-live");
        // The conservative operating point: highest occupancy fitting
        // everything on-chip.
        let mut budget = None;
        let wpb = w.block.div_ceil(32);
        let mut warps = dev.max_warps_per_sm;
        while warps >= wpb {
            if let Some(bud) = budget_for_warps(&dev, w.block, w.module.user_smem_bytes, warps) {
                if u32::from(bud.total()) >= max_live + 8 {
                    budget = Some(bud);
                    break;
                }
            }
            warps -= wpb;
        }
        let Some(budget) = budget else { continue };
        let full = run_with_alloc_options(
            &dev,
            &w,
            budget,
            &AllocOptions { compress_stack: true, optimize_layout: true },
        )?;
        let no_move = run_with_alloc_options(
            &dev,
            &w,
            budget,
            &AllocOptions { compress_stack: true, optimize_layout: false },
        )?;
        let no_space = run_with_alloc_options(
            &dev,
            &w,
            budget,
            &AllocOptions { compress_stack: false, optimize_layout: false },
        )?;
        rows.push(vec![
            w.name.to_string(),
            format!("{:.3}", no_space.0 as f64 / full.0 as f64),
            format!("{:.3}", no_move.0 as f64 / full.0 as f64),
            format!("{}", full.1),
            format!("{}", no_move.1),
        ]);
    }
    Ok(format!(
        "Figure 5: inter-procedure allocation ablations (normalized runtime vs optimized; C2075)\npaper: 1.02-1.18x slowdowns for both ablations\n{}",
        render_table(
            &["benchmark", "no-space-min", "no-move-min", "moves(opt)", "moves(unopt)"],
            &rows
        )
    ))
}

/// Figure 10: srad runtime vs occupancy on C2075.
pub fn fig10() -> Result<String, ExperimentError> {
    let dev = DeviceSpec::c2075();
    let w = by_name("srad").expect("workload");
    let curve = sweep_curve(&dev, &w)?;
    let mut s = render_curve("Figure 10: srad, running time vs occupancy (C2075)", &curve);
    let top: Vec<&crate::experiment::CurvePoint> =
        curve.iter().filter(|p| p.occupancy >= 0.49).collect();
    let best = top.iter().map(|p| p.cycles).min().unwrap_or(1);
    let worst_top = top.iter().map(|p| p.cycles).max().unwrap_or(1);
    s.push_str(&format!(
        "paper: halving occupancy from 1.0 costs almost nothing\nmeasured: spread over [0.5,1.0] = {:.1}%\n",
        (worst_top as f64 / best as f64 - 1.0) * 100.0
    ));
    Ok(s)
}

/// Figure 11: Orion-Min / nvcc / Orion-Max / Orion-Select per upward
/// benchmark on one device (normalized speedup over nvcc).
pub fn fig11(dev: &DeviceSpec) -> Result<String, ExperimentError> {
    let mut rows = Vec::new();
    let mut select_speedups = Vec::new();
    for w in upward_benchmarks() {
        let o = orion_select(dev, &w)?;
        let nv = o.nvcc_cycles as f64;
        let sel_speedup = nv / o.select_avg_cycles;
        select_speedups.push(nv / o.selected_cycles as f64);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.3}", nv / o.worst_cycles as f64),
            "1.000".to_string(),
            format!("{:.3}", nv / o.best_cycles as f64),
            format!("{:.3}", sel_speedup),
            format!("{}", o.candidates),
            format!("{}", o.converged_after),
        ]);
    }
    let avg = (select_speedups.iter().product::<f64>()).powf(1.0 / select_speedups.len() as f64);
    Ok(format!(
        "Figure 11: normalized speedup over nvcc ({})\npaper: avg Orion speedup 26.17% (C2075) / 24.94% (GTX680); Orion-Select ≈ Orion-Max\n{}\nmeasured geo-mean Orion-Select steady-state speedup: {:.1}%\n",
        dev.name,
        render_table(
            &["benchmark", "Orion-Min", "nvcc", "Orion-Max", "Orion-Select", "cands", "trials"],
            &rows
        ),
        (avg - 1.0) * 100.0
    ))
}

/// Table 3: small-cache vs large-cache speedup at Orion's occupancy.
pub fn tab03() -> Result<String, ExperimentError> {
    let mut rows = Vec::new();
    for w in upward_benchmarks() {
        let mut cells = vec![w.name.to_string()];
        for dev in [DeviceSpec::c2075(), DeviceSpec::gtx680()] {
            for cfg in [CacheConfig::SmallCache, CacheConfig::LargeCache] {
                let d = dev.with_cache_config(cfg);
                match orion_select_lite(&d, &w) {
                    Ok(o) => cells.push(format!(
                        "{:.3}",
                        o.nvcc_cycles as f64 / o.selected_cycles as f64
                    )),
                    // Hardware constraints (smem demand) — the paper's
                    // empty cells.
                    Err(_) => cells.push("-".to_string()),
                }
            }
        }
        rows.push(cells);
    }
    Ok(format!(
        "Table 3: speedup with Small Cache (SC) vs Large Cache (LC) at the selected occupancy\n{}",
        render_table(
            &["benchmark", "C2075 SC", "C2075 LC", "GTX680 SC", "GTX680 LC"],
            &rows
        )
    ))
}

/// Figure 12: downward tuning — normalized registers and runtime.
pub fn fig12(dev: &DeviceSpec) -> Result<String, ExperimentError> {
    let mut rows = Vec::new();
    let mut reg_savings = Vec::new();
    let mut speedups = Vec::new();
    for w in downward_benchmarks() {
        let o = orion_select(dev, &w)?;
        // Register-file utilization ∝ regs/thread × resident warps.
        let nvcc_util = f64::from(o.nvcc_regs) * f64::from(o.nvcc_warps);
        let sel_util = f64::from(o.selected_regs) * f64::from(o.selected_warps);
        let reg_norm = sel_util / nvcc_util;
        let rt_norm = o.selected_cycles as f64 / o.nvcc_cycles as f64;
        reg_savings.push(1.0 - reg_norm);
        speedups.push(1.0 / rt_norm);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.3}", reg_norm),
            format!("{:.3}", rt_norm),
            format!("{}", o.selected_warps),
            format!("{}", o.nvcc_warps),
        ]);
    }
    let avg_save = reg_savings.iter().sum::<f64>() / reg_savings.len() as f64 * 100.0;
    let avg_speed = (speedups.iter().product::<f64>()).powf(1.0 / speedups.len() as f64);
    Ok(format!(
        "Figure 12: downward occupancy tuning ({})\npaper: avg 19.17% register saving at ~no performance cost (avg +3.24% speed)\n{}\nmeasured: avg register-file saving {:.1}%, geo-mean speedup {:+.1}%\n",
        dev.name,
        render_table(
            &["benchmark", "norm-registers", "norm-runtime", "sel-warps", "orig-warps"],
            &rows
        ),
        avg_save,
        (avg_speed - 1.0) * 100.0
    ))
}

/// Figure 13: energy of the selected kernel vs the exhaustive ideal
/// (normalized to the original full-occupancy version), C2075.
pub fn fig13() -> Result<String, ExperimentError> {
    let dev = DeviceSpec::c2075();
    let mut rows = Vec::new();
    for w in downward_benchmarks() {
        let o = orion_select(&dev, &w)?;
        rows.push(vec![
            w.name.to_string(),
            format!("{:.3}", o.selected_energy / o.nvcc_energy),
            format!("{:.3}", o.ideal_energy / o.nvcc_energy),
        ]);
    }
    Ok(format!(
        "Figure 13: normalized energy of selected kernel (C2075)\npaper: up to 6.7% energy saving; selected close to ideal\n{}",
        render_table(&["benchmark", "selected", "ideal"], &rows)
    ))
}

/// Figures 14/15: occupancy curves for two benchmarks on one device.
pub fn curve_pair(
    dev: &DeviceSpec,
    names: [&str; 2],
    figure: &str,
    paper_note: &str,
) -> Result<String, ExperimentError> {
    let mut s = String::new();
    for name in names {
        let w = by_name(name).expect("workload");
        let curve = sweep_curve(dev, &w)?;
        s.push_str(&render_curve(
            &format!("{figure}: {} on {}", w.name, dev.name),
            &curve,
        ));
    }
    s.push_str(paper_note);
    s.push('\n');
    Ok(s)
}

/// Convenience wrapper for a single workload curve.
pub fn curve_for(dev: &DeviceSpec, w: &Workload, title: &str) -> Result<String, ExperimentError> {
    Ok(render_curve(title, &sweep_curve(dev, w)?))
}
