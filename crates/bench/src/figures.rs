//! One function per table/figure of the paper. Each returns a
//! [`Figure`]: the rendered text plus the structured numbers behind it,
//! so the per-figure binaries, `all_experiments`, and downstream tooling
//! (plotting, regression tracking) share one implementation. The
//! structured side is written as `BENCH_<slug>.json` artifacts by
//! [`crate::emit`] and by `all_experiments`.

use crate::error::BenchError;
use crate::experiment::{
    orion_select, orion_select_lite, run_with_alloc_options, sweep_curve, CurvePoint,
    ExperimentError,
};
use crate::report::{render_curve, render_table};
use orion_alloc::realize::AllocOptions;
use orion_core::budget::budget_for_warps;
use orion_gpusim::device::{CacheConfig, DeviceSpec};
use orion_workloads::{by_name, downward_benchmarks, upward_benchmarks, Workload};
use serde_json::Value;

/// A rendered experiment: human-readable text plus the structured data
/// it was rendered from.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Artifact stem: `BENCH_<slug>.json`.
    pub slug: String,
    /// The text block the paper-style binaries print.
    pub text: String,
    /// The numbers behind the text.
    pub data: Value,
}

impl Figure {
    pub fn new(slug: impl Into<String>, text: String, data: Value) -> Self {
        Figure { slug: slug.into(), text, data }
    }

    /// The JSON artifact document (slug + data).
    ///
    /// # Errors
    /// [`BenchError::Json`] if the document fails to serialize (carries
    /// the serializer error as its source).
    pub fn artifact_json(&self) -> Result<String, BenchError> {
        let doc = obj(vec![("slug", Value::from(self.slug.as_str())), ("data", self.data.clone())]);
        serde_json::to_string_pretty(&doc).map_err(|e| BenchError::json("figure artifact", e))
    }
}

impl std::fmt::Display for Figure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Lowercase a device name into a slug fragment (`Tesla C2075` →
/// `tesla_c2075`).
pub fn device_slug(dev: &DeviceSpec) -> String {
    dev.name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect()
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn curve_value(curve: &[CurvePoint]) -> Value {
    serde_json::to_value(curve).unwrap_or(Value::Null)
}

/// Figure 1: imageDenoising runtime vs occupancy on GTX680.
pub fn fig01() -> Result<Figure, ExperimentError> {
    let dev = DeviceSpec::gtx680();
    let w = by_name("imageDenoising").expect("workload");
    let curve = sweep_curve(&dev, &w)?;
    let mut s =
        render_curve("Figure 1: imageDenoising, running time vs occupancy (GTX680)", &curve);
    let best = curve.iter().min_by_key(|p| p.cycles).expect("curve");
    let worst = curve.iter().max_by_key(|p| p.cycles).expect("curve");
    let spread = worst.cycles as f64 / best.cycles as f64;
    s.push_str(&format!(
        "paper: worst/best ≈ 3x with best at occupancy 0.50\nmeasured: worst/best = {:.2}x, best at occupancy {:.2}\n",
        spread, best.occupancy
    ));
    let data = obj(vec![
        ("curve", curve_value(&curve)),
        ("worst_over_best", spread.into()),
        ("best_occupancy", best.occupancy.into()),
    ]);
    Ok(Figure::new("fig01", s, data))
}

/// Figure 2: matrixMul runtime vs occupancy (plateau above ~0.5).
pub fn fig02() -> Result<Figure, ExperimentError> {
    let dev = DeviceSpec::c2075();
    let w = by_name("matrixMul").expect("workload");
    let curve = sweep_curve(&dev, &w)?;
    let mut s = render_curve("Figure 2: matrixMul, running time vs occupancy (C2075)", &curve);
    let best = curve.iter().map(|p| p.cycles).min().expect("curve");
    let half_up: Vec<f64> = curve
        .iter()
        .filter(|p| p.occupancy >= 0.49)
        .map(|p| p.cycles as f64 / best as f64)
        .collect();
    s.push_str(&format!(
        "paper: performance plateaus from 0.5 occupancy upward\nmeasured: normalized runtime over [0.5,1.0] = {:?}\n",
        half_up.iter().map(|x| (x * 100.0).round() / 100.0).collect::<Vec<_>>()
    ));
    let data = obj(vec![
        ("curve", curve_value(&curve)),
        ("plateau_norm_runtime", Value::Seq(half_up.iter().map(|&x| Value::from(x)).collect())),
    ]);
    Ok(Figure::new("fig02", s, data))
}

/// Table 2: benchmark characteristics, measured from the IR.
pub fn tab02() -> Figure {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut data_rows: Vec<Value> = Vec::new();
    for w in orion_workloads::table2_benchmarks() {
        let ml = orion_alloc::realize::kernel_max_live(&w.module).expect("max-live");
        let has_smem = w.module.user_smem_bytes > 0;
        rows.push(vec![
            w.name.to_string(),
            w.domain.to_string(),
            format!("{ml} (paper {})", w.expected.reg),
            format!("{} (paper {})", w.module.static_call_count(), w.expected.func),
            if has_smem { "Yes" } else { "No" }.to_string(),
        ]);
        data_rows.push(obj(vec![
            ("benchmark", w.name.into()),
            ("domain", w.domain.into()),
            ("max_live", u64::from(ml).into()),
            ("paper_reg", u64::from(w.expected.reg).into()),
            ("calls", w.module.static_call_count().into()),
            ("paper_func", w.expected.func.into()),
            ("smem", has_smem.into()),
        ]));
    }
    let text = format!(
        "Table 2: benchmark characteristics (measured vs paper)\n{}",
        render_table(&["benchmark", "domain", "Reg", "Func", "Smem"], &rows)
    );
    Figure::new("tab02", text, obj(vec![("rows", Value::Seq(data_rows))]))
}

/// Figure 5: inter-procedural allocation ablations on the call-heavy
/// benchmarks, at each benchmark's conservative budget.
pub fn fig05() -> Result<Figure, ExperimentError> {
    let dev = DeviceSpec::c2075();
    let mut rows = Vec::new();
    let mut data_rows: Vec<Value> = Vec::new();
    for w in upward_benchmarks() {
        if w.module.static_call_count() == 0 {
            continue; // FDTD3d / particles have no calls to ablate
        }
        let max_live = orion_alloc::realize::kernel_max_live(&w.module).expect("max-live");
        // The conservative operating point: highest occupancy fitting
        // everything on-chip.
        let mut budget = None;
        let wpb = w.block.div_ceil(32);
        let mut warps = dev.max_warps_per_sm;
        while warps >= wpb {
            if let Some(bud) = budget_for_warps(&dev, w.block, w.module.user_smem_bytes, warps) {
                if u32::from(bud.total()) >= max_live + 8 {
                    budget = Some(bud);
                    break;
                }
            }
            warps -= wpb;
        }
        let Some(budget) = budget else { continue };
        let full = run_with_alloc_options(
            &dev,
            &w,
            budget,
            &AllocOptions { compress_stack: true, optimize_layout: true },
        )?;
        let no_move = run_with_alloc_options(
            &dev,
            &w,
            budget,
            &AllocOptions { compress_stack: true, optimize_layout: false },
        )?;
        let no_space = run_with_alloc_options(
            &dev,
            &w,
            budget,
            &AllocOptions { compress_stack: false, optimize_layout: false },
        )?;
        let no_space_norm = no_space.0 as f64 / full.0 as f64;
        let no_move_norm = no_move.0 as f64 / full.0 as f64;
        rows.push(vec![
            w.name.to_string(),
            format!("{no_space_norm:.3}"),
            format!("{no_move_norm:.3}"),
            format!("{}", full.1),
            format!("{}", no_move.1),
        ]);
        data_rows.push(obj(vec![
            ("benchmark", w.name.into()),
            ("no_space_min_norm", no_space_norm.into()),
            ("no_move_min_norm", no_move_norm.into()),
            ("moves_optimized", u64::from(full.1).into()),
            ("moves_unoptimized", u64::from(no_move.1).into()),
        ]));
    }
    let text = format!(
        "Figure 5: inter-procedure allocation ablations (normalized runtime vs optimized; C2075)\npaper: 1.02-1.18x slowdowns for both ablations\n{}",
        render_table(
            &["benchmark", "no-space-min", "no-move-min", "moves(opt)", "moves(unopt)"],
            &rows
        )
    );
    Ok(Figure::new("fig05", text, obj(vec![("rows", Value::Seq(data_rows))])))
}

/// Figure 10: srad runtime vs occupancy on C2075.
pub fn fig10() -> Result<Figure, ExperimentError> {
    let dev = DeviceSpec::c2075();
    let w = by_name("srad").expect("workload");
    let curve = sweep_curve(&dev, &w)?;
    let mut s = render_curve("Figure 10: srad, running time vs occupancy (C2075)", &curve);
    let top: Vec<&CurvePoint> = curve.iter().filter(|p| p.occupancy >= 0.49).collect();
    let best = top.iter().map(|p| p.cycles).min().unwrap_or(1);
    let worst_top = top.iter().map(|p| p.cycles).max().unwrap_or(1);
    let spread_pct = (worst_top as f64 / best as f64 - 1.0) * 100.0;
    s.push_str(&format!(
        "paper: halving occupancy from 1.0 costs almost nothing\nmeasured: spread over [0.5,1.0] = {spread_pct:.1}%\n",
    ));
    let data =
        obj(vec![("curve", curve_value(&curve)), ("top_half_spread_pct", spread_pct.into())]);
    Ok(Figure::new("fig10", s, data))
}

/// Figure 11: Orion-Min / nvcc / Orion-Max / Orion-Select per upward
/// benchmark on one device (normalized speedup over nvcc).
pub fn fig11(dev: &DeviceSpec) -> Result<Figure, ExperimentError> {
    let mut rows = Vec::new();
    let mut data_rows: Vec<Value> = Vec::new();
    let mut select_speedups = Vec::new();
    for w in upward_benchmarks() {
        let o = orion_select(dev, &w)?;
        let nv = o.nvcc_cycles as f64;
        let sel_speedup = nv / o.select_avg_cycles;
        select_speedups.push(nv / o.selected_cycles as f64);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.3}", nv / o.worst_cycles as f64),
            "1.000".to_string(),
            format!("{:.3}", nv / o.best_cycles as f64),
            format!("{sel_speedup:.3}"),
            format!("{}", o.candidates),
            format!("{}", o.converged_after),
        ]);
        data_rows.push(obj(vec![
            ("benchmark", w.name.into()),
            ("orion_min_speedup", (nv / o.worst_cycles as f64).into()),
            ("orion_max_speedup", (nv / o.best_cycles as f64).into()),
            ("orion_select_speedup", sel_speedup.into()),
            ("select_steady_speedup", (nv / o.selected_cycles as f64).into()),
            ("candidates", o.candidates.into()),
            ("trials", o.converged_after.into()),
        ]));
    }
    let avg = (select_speedups.iter().product::<f64>()).powf(1.0 / select_speedups.len() as f64);
    let text = format!(
        "Figure 11: normalized speedup over nvcc ({})\npaper: avg Orion speedup 26.17% (C2075) / 24.94% (GTX680); Orion-Select ≈ Orion-Max\n{}\nmeasured geo-mean Orion-Select steady-state speedup: {:.1}%\n",
        dev.name,
        render_table(
            &["benchmark", "Orion-Min", "nvcc", "Orion-Max", "Orion-Select", "cands", "trials"],
            &rows
        ),
        (avg - 1.0) * 100.0
    );
    let data = obj(vec![
        ("device", dev.name.as_str().into()),
        ("rows", Value::Seq(data_rows)),
        ("geomean_select_speedup", avg.into()),
    ]);
    Ok(Figure::new(format!("fig11_{}", device_slug(dev)), text, data))
}

/// Table 3: small-cache vs large-cache speedup at Orion's occupancy.
pub fn tab03() -> Result<Figure, ExperimentError> {
    let mut rows = Vec::new();
    let mut data_rows: Vec<Value> = Vec::new();
    for w in upward_benchmarks() {
        let mut cells = vec![w.name.to_string()];
        let mut fields: Vec<(&str, Value)> = vec![("benchmark", w.name.into())];
        for dev in [DeviceSpec::c2075(), DeviceSpec::gtx680()] {
            for cfg in [CacheConfig::SmallCache, CacheConfig::LargeCache] {
                let d = dev.with_cache_config(cfg);
                match orion_select_lite(&d, &w) {
                    Ok(o) => {
                        let speedup = o.nvcc_cycles as f64 / o.selected_cycles as f64;
                        cells.push(format!("{speedup:.3}"));
                        fields.push((cache_field_name(&dev, cfg), speedup.into()));
                    }
                    // Hardware constraints (smem demand) — the paper's
                    // empty cells.
                    Err(_) => {
                        cells.push("-".to_string());
                        fields.push((cache_field_name(&dev, cfg), Value::Null));
                    }
                }
            }
        }
        rows.push(cells);
        data_rows.push(obj(fields));
    }
    let text = format!(
        "Table 3: speedup with Small Cache (SC) vs Large Cache (LC) at the selected occupancy\n{}",
        render_table(&["benchmark", "C2075 SC", "C2075 LC", "GTX680 SC", "GTX680 LC"], &rows)
    );
    Ok(Figure::new("tab03", text, obj(vec![("rows", Value::Seq(data_rows))])))
}

fn cache_field_name(dev: &DeviceSpec, cfg: CacheConfig) -> &'static str {
    match (dev.name.contains("C2075"), cfg == CacheConfig::SmallCache) {
        (true, true) => "c2075_small_cache",
        (true, false) => "c2075_large_cache",
        (false, true) => "gtx680_small_cache",
        (false, false) => "gtx680_large_cache",
    }
}

/// Figure 12: downward tuning — normalized registers and runtime.
pub fn fig12(dev: &DeviceSpec) -> Result<Figure, ExperimentError> {
    let mut rows = Vec::new();
    let mut data_rows: Vec<Value> = Vec::new();
    let mut reg_savings = Vec::new();
    let mut speedups = Vec::new();
    for w in downward_benchmarks() {
        let o = orion_select(dev, &w)?;
        // Register-file utilization ∝ regs/thread × resident warps.
        let nvcc_util = f64::from(o.nvcc_regs) * f64::from(o.nvcc_warps);
        let sel_util = f64::from(o.selected_regs) * f64::from(o.selected_warps);
        let reg_norm = sel_util / nvcc_util;
        let rt_norm = o.selected_cycles as f64 / o.nvcc_cycles as f64;
        reg_savings.push(1.0 - reg_norm);
        speedups.push(1.0 / rt_norm);
        rows.push(vec![
            w.name.to_string(),
            format!("{reg_norm:.3}"),
            format!("{rt_norm:.3}"),
            format!("{}", o.selected_warps),
            format!("{}", o.nvcc_warps),
        ]);
        data_rows.push(obj(vec![
            ("benchmark", w.name.into()),
            ("norm_registers", reg_norm.into()),
            ("norm_runtime", rt_norm.into()),
            ("selected_warps", o.selected_warps.into()),
            ("original_warps", o.nvcc_warps.into()),
        ]));
    }
    let avg_save = reg_savings.iter().sum::<f64>() / reg_savings.len() as f64 * 100.0;
    let avg_speed = (speedups.iter().product::<f64>()).powf(1.0 / speedups.len() as f64);
    let text = format!(
        "Figure 12: downward occupancy tuning ({})\npaper: avg 19.17% register saving at ~no performance cost (avg +3.24% speed)\n{}\nmeasured: avg register-file saving {:.1}%, geo-mean speedup {:+.1}%\n",
        dev.name,
        render_table(
            &["benchmark", "norm-registers", "norm-runtime", "sel-warps", "orig-warps"],
            &rows
        ),
        avg_save,
        (avg_speed - 1.0) * 100.0
    );
    let data = obj(vec![
        ("device", dev.name.as_str().into()),
        ("rows", Value::Seq(data_rows)),
        ("avg_register_saving_pct", avg_save.into()),
        ("geomean_speedup", avg_speed.into()),
    ]);
    Ok(Figure::new(format!("fig12_{}", device_slug(dev)), text, data))
}

/// Figure 13: energy of the selected kernel vs the exhaustive ideal
/// (normalized to the original full-occupancy version), C2075.
pub fn fig13() -> Result<Figure, ExperimentError> {
    let dev = DeviceSpec::c2075();
    let mut rows = Vec::new();
    let mut data_rows: Vec<Value> = Vec::new();
    for w in downward_benchmarks() {
        let o = orion_select(&dev, &w)?;
        let sel = o.selected_energy / o.nvcc_energy;
        let ideal = o.ideal_energy / o.nvcc_energy;
        rows.push(vec![w.name.to_string(), format!("{sel:.3}"), format!("{ideal:.3}")]);
        data_rows.push(obj(vec![
            ("benchmark", w.name.into()),
            ("selected_energy_norm", sel.into()),
            ("ideal_energy_norm", ideal.into()),
        ]));
    }
    let text = format!(
        "Figure 13: normalized energy of selected kernel (C2075)\npaper: up to 6.7% energy saving; selected close to ideal\n{}",
        render_table(&["benchmark", "selected", "ideal"], &rows)
    );
    Ok(Figure::new("fig13", text, obj(vec![("rows", Value::Seq(data_rows))])))
}

/// Figures 14/15: occupancy curves for two benchmarks on one device.
pub fn curve_pair(
    dev: &DeviceSpec,
    names: [&str; 2],
    figure: &str,
    paper_note: &str,
) -> Result<Figure, ExperimentError> {
    let mut s = String::new();
    let mut curves: Vec<(&str, Value)> = Vec::new();
    for name in names {
        let w = by_name(name).expect("workload");
        let curve = sweep_curve(dev, &w)?;
        s.push_str(&render_curve(&format!("{figure}: {} on {}", w.name, dev.name), &curve));
        curves.push((name, curve_value(&curve)));
    }
    s.push_str(paper_note);
    s.push('\n');
    let slug = format!("{}_{}", figure.to_ascii_lowercase().replace(' ', ""), device_slug(dev));
    let mut fields = vec![("device", Value::from(dev.name.as_str()))];
    fields.extend(curves);
    Ok(Figure::new(slug, s, obj(fields)))
}

/// Convenience wrapper for a single workload curve.
pub fn curve_for(dev: &DeviceSpec, w: &Workload, title: &str) -> Result<Figure, ExperimentError> {
    let curve = sweep_curve(dev, w)?;
    let text = render_curve(title, &curve);
    let slug = format!("curve_{}_{}", w.name.to_ascii_lowercase(), device_slug(dev));
    Ok(Figure::new(slug, text, obj(vec![("curve", curve_value(&curve))])))
}
