//! The chaos experiment: does the resilient Figure 9 loop still pick a
//! near-optimal version when launches fail and timing is noisy?
//!
//! For each workload × fault-rate point we run the tuning walk twice
//! over the same compiled candidates:
//!
//! 1. a **fault-free reference** with the plain
//!    [`tune_loop`];
//! 2. a **chaotic run** through
//!    [`resilient_tune_loop`]
//!    with a seeded [`FaultPlan`] injecting transient launch failures,
//!    perturbed-device resource rejections, stuck-warp hangs, and timing
//!    jitter/outliers.
//!
//! Both picks are then re-measured *fault-free* and compared: the
//! acceptance bar is the chaotic pick landing within 5% of the reference
//! pick at a ≤10% fault rate. Injected, retried, and quarantined counts
//! are recorded per row so `BENCH_chaos.json` reconciles exactly with
//! the telemetry counters the injector and tuner emit.
//!
//! Without the `faults` cargo feature (`orion-gpusim/faults`) the
//! injector draws nothing and every row degenerates to a second
//! fault-free walk — the harness still runs, making the feature safe to
//! leave off in default builds.

use crate::experiment::{run_version_once, ExperimentError, DOWNWARD_THRESHOLD};
use crate::figures::Figure;
use crate::report::render_table;
use orion_core::orion::Orion;
use orion_core::resilient::{resilient_tune_loop, ResiliencePolicy, ResilienceStats};
use orion_core::runtime::tune_loop;
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::faults::{FaultInjector, FaultPlan, FaultSnapshot};
use orion_gpusim::sim::{run_launch_faulty, LaunchOptions};
use orion_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Acceptance band for the chaotic pick vs. the fault-free pick.
pub const CHAOS_TOLERANCE: f64 = 0.05;

/// Iterations the chaos walk gets: mean-of-k measurement (k = 7, plus
/// an extension round on borderline verdicts) and quarantine re-walks
/// need more invocations than the clean Figure 9 loop before steady
/// state — a full five-version upward walk with one extension is
/// 5 × 7 + 7 = 42 exploration launches.
pub const CHAOS_ITERS: u32 = 48;

/// One workload × fault-rate result row of `BENCH_chaos.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosRow {
    pub workload: String,
    pub seed: u64,
    /// Transient-failure probability of the plan (resource and hang
    /// faults ride along at `rate / 4`; see [`FaultPlan::chaos`]).
    pub fault_rate: f64,
    pub jitter_frac: f64,
    /// Version index + label picked by the fault-free reference walk.
    pub fault_free_selected: usize,
    pub fault_free_label: String,
    /// Fault-free steady-state cycles of the reference pick.
    pub fault_free_cycles: u64,
    /// Version index + label picked under chaos.
    pub chaos_selected: usize,
    pub chaos_label: String,
    /// Fault-free steady-state cycles of the chaotic pick (apples to
    /// apples with `fault_free_cycles`).
    pub chaos_cycles: u64,
    /// `(chaos_cycles - fault_free_cycles) / fault_free_cycles`.
    pub rel_gap: f64,
    /// `rel_gap <= CHAOS_TOLERANCE` (a faster chaotic pick passes too).
    pub within_tolerance: bool,
    /// Iterations the chaotic walk spent exploring.
    pub converged_after: usize,
    /// The resilient executor quarantined every candidate (fail-safe
    /// included) and gave up with `AllCandidatesFailed`; the row then
    /// records the original kernel as the chaotic "pick" — what the
    /// application would actually run after Orion bows out. Expected
    /// only at stress fault rates; a gave-up row never counts as
    /// converged.
    pub gave_up: bool,
    /// Faults the injector actually produced.
    pub injected: FaultSnapshot,
    /// What the resilient executor absorbed (zeroed on a gave-up row —
    /// the stats are lost with the error).
    pub absorbed: ResilienceStats,
}

fn opts(extra_smem: u32) -> LaunchOptions {
    LaunchOptions {
        extra_smem_per_block: extra_smem,
        cta_range: None,
        cycle_budget: None,
        ..LaunchOptions::default()
    }
}

/// Run the fault-free reference and the chaotic walk for one workload
/// at one fault rate, both over the same compiled candidate set.
pub fn chaos_run(
    dev: &DeviceSpec,
    w: &Workload,
    seed: u64,
    fault_rate: f64,
    jitter_frac: f64,
) -> Result<ChaosRow, ExperimentError> {
    let mut orion = Orion::new(dev.clone(), w.block);
    orion.cfg.can_tune = w.can_tune;
    orion.cfg.slowdown_threshold = DOWNWARD_THRESHOLD;
    let compiled = orion.compile(&w.module)?;
    let iters = w.iterations.max(CHAOS_ITERS);

    // Fault-free reference walk.
    let mut global = w.init_global.clone();
    let mut iter_no = 0u32;
    let reference = tune_loop(&compiled, iters, orion.cfg.slowdown_threshold, |v| {
        let params = w.params_for(iter_no);
        iter_no += 1;
        run_launch_faulty(
            dev,
            &v.machine,
            w.launch(),
            params,
            &mut global,
            opts(v.extra_smem),
            None,
        )
        .map(|r| r.cycles)
    })?;

    // Chaotic walk through the resilient executor.
    let injector = FaultInjector::new(FaultPlan::chaos(seed, fault_rate, jitter_frac));
    let mut global = w.init_global.clone();
    let mut iter_no = 0u32;
    let policy = ResiliencePolicy::default();
    let chaotic =
        resilient_tune_loop(w.name, &compiled, iters, orion.cfg.slowdown_threshold, &policy, |v| {
            let params = w.params_for(iter_no);
            iter_no += 1;
            run_launch_faulty(
                dev,
                &v.machine,
                w.launch(),
                params,
                &mut global,
                opts(v.extra_smem),
                Some(&injector),
            )
            .map(|r| r.cycles)
            .map_err(orion_core::OrionError::from)
        });
    // Candidate exhaustion at a stress rate is a *result*, not a sweep
    // failure: record the row as gave-up (the app falls back to its
    // original kernel) instead of aborting the whole bench.
    let (chaos_selected, converged_after, absorbed, gave_up) = match chaotic {
        Ok(out) => (out.selected, out.converged_after, out.stats, false),
        Err(e) if matches!(e.root_cause(), orion_core::OrionError::AllCandidatesFailed { .. }) => {
            (compiled.original, 0, ResilienceStats::default(), true)
        }
        Err(e) => return Err(e.into()),
    };

    // Steady-state comparison: both picks measured without faults.
    let ff_pick = &compiled.versions[reference.selected];
    let ch_pick = &compiled.versions[chaos_selected];
    let ff_cycles = run_version_once(dev, w, ff_pick)?.cycles;
    let ch_cycles = if chaos_selected == reference.selected {
        ff_cycles
    } else {
        run_version_once(dev, w, ch_pick)?.cycles
    };
    let rel_gap = (ch_cycles as f64 - ff_cycles as f64) / ff_cycles.max(1) as f64;
    Ok(ChaosRow {
        workload: w.name.to_string(),
        seed,
        fault_rate,
        jitter_frac,
        fault_free_selected: reference.selected,
        fault_free_label: ff_pick.label.clone(),
        fault_free_cycles: ff_cycles,
        chaos_selected,
        chaos_label: ch_pick.label.clone(),
        chaos_cycles: ch_cycles,
        rel_gap,
        within_tolerance: !gave_up && rel_gap <= CHAOS_TOLERANCE,
        converged_after,
        gave_up,
        injected: injector.snapshot(),
        absorbed,
    })
}

/// Do a row's injected/absorbed tallies reconcile with the telemetry
/// counters collected over the run? `metrics` is the
/// [`aggregate_counters`](orion_telemetry::metrics::aggregate_counters)
/// report of the events recorded while (only) this row ran; pass `None`
/// when telemetry is disabled (the check vacuously holds).
pub fn reconciles(
    row: &ChaosRow,
    metrics: Option<&orion_telemetry::metrics::MetricsReport>,
) -> bool {
    let Some(m) = metrics else { return true };
    let c = |k: &str| m.get_u64(k).unwrap_or(0);
    let injected_ok = c("faults/transient") == row.injected.transient
        && c("faults/resource") == row.injected.resource
        && c("faults/hang") == row.injected.hangs
        && c("faults/jitter") == row.injected.jitter
        && c("faults/outlier") == row.injected.outliers;
    // A gave-up row loses its executor stats with the error, so only
    // the injector side can be checked.
    let absorbed_ok = row.gave_up
        || (c("resilience/retry") == row.absorbed.retries
            && c("resilience/strike") == row.absorbed.strikes
            && c("resilience/quarantined") == row.absorbed.quarantined
            && c("resilience/fellback") == row.absorbed.fellback);
    injected_ok && absorbed_ok
}

/// Workloads the chaos bench sweeps (one upward, one plateau, one
/// downward-tunable — three distinct tuning shapes).
pub const CHAOS_WORKLOADS: [&str; 3] = ["gaussian", "matrixMul", "srad"];

/// Transient-failure rates swept per workload (resource/hang faults
/// ride along at a quarter of each; see [`FaultPlan::chaos`]). The
/// acceptance bar applies at rates ≤ 0.10; 0.20 is a stress point.
pub const CHAOS_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// Measurement jitter injected at every nonzero fault rate.
pub const CHAOS_JITTER: f64 = 0.05;

/// Base seed of the sweep; each row derives its own plan seed from it.
pub const CHAOS_SEED: u64 = 0x0610_2016;

fn row_seed(workload_idx: usize, rate_idx: usize) -> u64 {
    CHAOS_SEED ^ ((workload_idx as u64) << 32) ^ (rate_idx as u64)
}

/// The chaos summary stats (the `summary` object of `BENCH_chaos.json`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChaosSummary {
    /// Every row at fault rate ≤ 0.10 landed within [`CHAOS_TOLERANCE`].
    pub converges_at_10pct: bool,
    /// The zero-fault control rows picked exactly the reference version.
    pub control_exact: bool,
    /// Every row's injected/absorbed tallies matched its telemetry
    /// counters (vacuously true when telemetry is off).
    pub telemetry_reconciled: bool,
    /// Whether telemetry was actually collected for the reconciliation.
    pub telemetry_active: bool,
    /// Whether the simulator was built with the `faults` feature — when
    /// false every row is a fault-free control run.
    pub faults_compiled: bool,
    pub total_injected: u64,
    pub total_retries: u64,
    pub total_quarantined: u64,
    pub total_fellback: u64,
    /// Rows where the executor exhausted every candidate and bowed out.
    pub total_gave_up: u64,
}

#[derive(Serialize)]
struct ChaosArtifact {
    device: String,
    rows: Vec<ChaosRow>,
    summary: ChaosSummary,
}

/// Run the full chaos sweep ([`CHAOS_WORKLOADS`] × [`CHAOS_RATES`]) and
/// render it as the `BENCH_chaos.json` figure. Telemetry (when compiled
/// in) is captured per row and reconciled against the injector/executor
/// tallies.
pub fn chaos_figure(dev: &DeviceSpec) -> Result<Figure, ExperimentError> {
    orion_telemetry::set_enabled(true);
    let telemetry = orion_telemetry::is_enabled();
    let mut rows: Vec<ChaosRow> = Vec::new();
    let mut reconciled_all = true;
    for (wi, name) in CHAOS_WORKLOADS.iter().enumerate() {
        let w = orion_workloads::by_name(name).expect("chaos workload exists");
        for (ri, &rate) in CHAOS_RATES.iter().enumerate() {
            if telemetry {
                orion_telemetry::clear();
            }
            let jitter = if rate > 0.0 { CHAOS_JITTER } else { 0.0 };
            let row = chaos_run(dev, &w, row_seed(wi, ri), rate, jitter)?;
            if telemetry {
                let events = orion_telemetry::take_events();
                let metrics = orion_telemetry::metrics::aggregate_counters(&events);
                reconciled_all &= reconciles(&row, Some(&metrics));
            }
            rows.push(row);
        }
    }
    let summary = ChaosSummary {
        converges_at_10pct: rows
            .iter()
            .filter(|r| r.fault_rate <= 0.10 + f64::EPSILON)
            .all(|r| r.within_tolerance),
        control_exact: rows
            .iter()
            .filter(|r| r.fault_rate == 0.0)
            .all(|r| r.chaos_selected == r.fault_free_selected),
        telemetry_reconciled: reconciled_all,
        telemetry_active: telemetry,
        faults_compiled: orion_gpusim::faults::INJECTION_COMPILED,
        total_injected: rows.iter().map(|r| r.injected.total_faults()).sum(),
        total_retries: rows.iter().map(|r| r.absorbed.retries).sum(),
        total_quarantined: rows.iter().map(|r| r.absorbed.quarantined).sum(),
        total_fellback: rows.iter().map(|r| r.absorbed.fellback).sum(),
        total_gave_up: rows.iter().filter(|r| r.gave_up).count() as u64,
    };

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{:.0}%", r.fault_rate * 100.0),
                r.fault_free_label.clone(),
                r.chaos_label.clone(),
                format!("{:+.1}%", r.rel_gap * 100.0),
                format!("{}", r.injected.total_faults()),
                format!("{}", r.absorbed.retries),
                format!("{}", r.absorbed.quarantined),
                if r.gave_up {
                    "GAVE UP"
                } else if r.within_tolerance {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]
        })
        .collect();
    let text = format!(
        "Chaos bench: resilient Figure 9 loop under injected faults ({})\n\
         plan: seeded transients/resource/hangs at the listed rate, ±{:.0}% jitter at nonzero rates\n{}\
         converges within {:.0}% of fault-free pick at ≤10% faults: {}\n\
         telemetry reconciliation ({}): {}\n",
        dev.name,
        CHAOS_JITTER * 100.0,
        render_table(
            &[
                "workload", "rate", "fault-free", "chaos-pick", "gap", "injected", "retries",
                "quarantined", "ok",
            ],
            &table
        ),
        CHAOS_TOLERANCE * 100.0,
        if summary.converges_at_10pct { "PASS" } else { "FAIL" },
        if telemetry { "active" } else { "telemetry off, vacuous" },
        if summary.telemetry_reconciled { "exact" } else { "MISMATCH" },
    );
    let artifact = ChaosArtifact { device: dev.name.clone(), rows, summary };
    let data = serde_json::to_value(&artifact).unwrap_or(serde_json::Value::Null);
    Ok(Figure::new("chaos", text, data))
}
