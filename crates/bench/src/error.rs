//! Source-chained errors for the bench harness's report and artifact
//! writing. The per-figure binaries used to `expect()` their way through
//! serialization and `std::fs::write`; a full-disk or read-only CI
//! runner then panicked without saying *which* artifact failed. Every
//! fallible path now carries the operation and the file path, with the
//! underlying error preserved through [`std::error::Error::source`].

use std::fmt;
use std::path::PathBuf;

/// An error from rendering or writing a bench artifact.
#[derive(Debug)]
pub enum BenchError {
    /// A filesystem operation failed.
    Io {
        /// What was being written/read (e.g. `"bench artifact"`).
        what: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A document failed to serialize to JSON.
    Json {
        /// What was being serialized (e.g. `"service doc"`).
        what: &'static str,
        /// The underlying serializer error.
        source: serde_json::Error,
    },
}

impl BenchError {
    /// Wrap an I/O error with the operation and path it came from.
    pub fn io(what: &'static str, path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        BenchError::Io { what, path: path.into(), source }
    }

    /// Wrap a serializer error with what was being serialized.
    pub fn json(what: &'static str, source: serde_json::Error) -> Self {
        BenchError::Json { what, source }
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Io { what, path, .. } => {
                write!(f, "failed to write {what} at {}", path.display())
            }
            BenchError::Json { what, .. } => write!(f, "failed to serialize {what}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io { source, .. } => Some(source),
            BenchError::Json { source, .. } => Some(source),
        }
    }
}

/// Write `contents` to `path`, tagging failures with `what` + path.
///
/// # Errors
/// [`BenchError::Io`] carrying the path and the OS error.
pub fn write_file(
    what: &'static str,
    path: impl Into<PathBuf>,
    contents: &str,
) -> Result<(), BenchError> {
    let path = path.into();
    std::fs::write(&path, contents).map_err(|e| BenchError::io(what, path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn io_error_chains_source_and_names_path() {
        let e = write_file("test artifact", "/nonexistent-dir/x/y.json", "{}").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("test artifact"), "{msg}");
        assert!(msg.contains("/nonexistent-dir/x/y.json"), "{msg}");
        let src = e.source().expect("io error has a source");
        assert!(src.downcast_ref::<std::io::Error>().is_some());
    }

    #[test]
    fn json_error_display_names_document() {
        // serde_json::Error is only constructible by failing; a map with
        // a non-string key shape isn't expressible here, so parse junk.
        let parse_err = serde_json::from_str::<serde_json::Value>("not json").unwrap_err();
        let e = BenchError::json("perf doc", parse_err);
        assert!(e.to_string().contains("perf doc"));
        assert!(e.source().is_some());
    }
}
