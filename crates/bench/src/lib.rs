//! # orion-bench — experiment harness for the Orion reproduction
//!
//! One binary per table/figure of the paper (see `src/bin/`), all built
//! on the shared [`experiment`] engine: occupancy sweeps, Orion
//! compile+tune runs, the nvcc-like baseline, ablations, and energy
//! accounting. `cargo run --release -p orion-bench --bin all_experiments`
//! regenerates every result, rewrites `EXPERIMENTS.md`, and drops a
//! `BENCH_<slug>.json` artifact per figure with the structured numbers.
//!
//! The `profile` binary is a profiler CLI: it runs one workload with
//! telemetry enabled and exports a Chrome `trace_event` timeline
//! (`--trace`) and a flat metrics report (`--metrics`).

pub mod chaos;
pub mod error;
pub mod experiment;
pub mod figures;
pub mod regress;
pub mod report;

pub use chaos::{chaos_figure, chaos_run, ChaosRow, ChaosSummary};
pub use error::BenchError;
pub use experiment::{orion_select, sweep_curve, CurvePoint, ExperimentError, SelectOutcome};
pub use figures::Figure;

/// Print a figure's text to stdout and write its `BENCH_<slug>.json`
/// artifact to the current directory — the shared tail of every
/// per-figure binary.
///
/// # Errors
/// [`BenchError`] naming the artifact path (write failure) or the
/// document (serialization failure), with the underlying error chained.
pub fn emit(fig: &Figure) -> Result<(), BenchError> {
    print!("{fig}");
    let path = format!("BENCH_{}.json", fig.slug);
    error::write_file("bench artifact", &path, &fig.artifact_json()?)?;
    eprintln!("wrote {path}");
    Ok(())
}
