//! # orion-bench — experiment harness for the Orion reproduction
//!
//! One binary per table/figure of the paper (see `src/bin/`), all built
//! on the shared [`experiment`] engine: occupancy sweeps, Orion
//! compile+tune runs, the nvcc-like baseline, ablations, and energy
//! accounting. `cargo run --release -p orion-bench --bin all_experiments`
//! regenerates every result and rewrites `EXPERIMENTS.md`.

pub mod experiment;
pub mod figures;
pub mod report;

pub use experiment::{
    orion_select, sweep_curve, CurvePoint, ExperimentError, SelectOutcome,
};
