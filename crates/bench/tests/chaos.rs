//! Chaos-bench integration tests: `chaos_run` on a tiny handcrafted
//! workload (debug-build fast), checking convergence under a 10% fault
//! rate and exact reconciliation of the injected/absorbed tallies with
//! the telemetry counters.
//!
//! The telemetry buffer and enable flag are process-global, so every
//! test that launches kernels grabs `TELEMETRY_LOCK` — otherwise a
//! concurrent run's counters would pollute the reconciliation.

use std::sync::Mutex;

use orion_bench::chaos::{chaos_run, reconciles, CHAOS_TOLERANCE};
use orion_gpusim::device::DeviceSpec;
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};
use orion_workloads::{Table2Row, Workload};

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

/// Poison-tolerant lock: a failed sibling test must not cascade.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// out[gid] += 1 over a couple of dependent loads — small enough to
/// simulate in microseconds, big enough to give versions distinct times.
fn tiny_workload() -> Workload {
    let mut b = FunctionBuilder::kernel("tiny");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let a = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, a, 0);
    let y = b.iadd(x, Operand::Imm(1));
    let z = b.imad(y, y, x);
    b.st(MemSpace::Global, Width::W32, a, z, 0);
    Workload {
        name: "tiny",
        domain: "test",
        module: Module::new(b.finish()),
        grid: 4,
        block: 64,
        params: vec![0],
        init_global: vec![0u8; 4 * 256],
        iterations: 24,
        can_tune: true,
        iter_params: None,
        expected: Table2Row { reg: 6, func: 0, smem: false },
    }
}

#[test]
fn zero_rate_control_matches_the_fault_free_walk_exactly() {
    let _g = lock();
    orion_telemetry::set_enabled(false);
    let row = chaos_run(&DeviceSpec::c2075(), &tiny_workload(), 7, 0.0, 0.0)
        .expect("control run succeeds");
    assert_eq!(row.chaos_selected, row.fault_free_selected, "control pick is exact");
    assert_eq!(row.injected.total_faults(), 0);
    assert_eq!(row.absorbed.retries, 0);
    assert_eq!(row.absorbed.quarantined, 0);
    assert_eq!(row.rel_gap, 0.0);
}

#[test]
fn ten_pct_faults_converge_and_reconcile_with_telemetry() {
    let _g = lock();
    orion_telemetry::set_enabled(true);
    let active = orion_telemetry::is_enabled();
    if active {
        orion_telemetry::clear();
    }
    let row = chaos_run(&DeviceSpec::c2075(), &tiny_workload(), 42, 0.10, 0.05)
        .expect("the resilient walk absorbs a 10% fault rate");
    let metrics = if active {
        let events = orion_telemetry::take_events();
        Some(orion_telemetry::metrics::aggregate_counters(&events))
    } else {
        None
    };
    orion_telemetry::set_enabled(false);

    assert!(
        row.rel_gap <= CHAOS_TOLERANCE,
        "chaotic pick {} ({} cycles) more than {:.0}% off fault-free pick {} ({} cycles)",
        row.chaos_label,
        row.chaos_cycles,
        CHAOS_TOLERANCE * 100.0,
        row.fault_free_label,
        row.fault_free_cycles,
    );
    assert!(
        reconciles(&row, metrics.as_ref()),
        "injected {:?} / absorbed {:?} disagree with telemetry {metrics:?}",
        row.injected,
        row.absorbed,
    );
    // Every retry corresponds to a drawn transient fault.
    assert!(row.absorbed.retries <= row.injected.transient + row.absorbed.failed_launches);

    // With injection compiled into the simulator (CI chaos job), a 10%
    // rate over dozens of launches must actually inject something;
    // without it the injector draws nothing and the sweep is a control
    // run. Branch on the simulator's gate, not this crate's `faults`
    // feature — unification can enable one without the other.
    if orion_gpusim::faults::INJECTION_COMPILED {
        assert!(row.injected.total_faults() > 0, "10% rate injected nothing: {:?}", row.injected);
    } else {
        assert_eq!(row.injected.total_faults(), 0);
    }
}

/// Certain launch failure on every candidate must surface as a clean
/// gave-up row (the app falls back to its original kernel) — never a
/// panic, an infinite loop, or an aborted sweep.
#[test]
fn total_fault_storm_fails_closed_without_panicking() {
    if !orion_gpusim::faults::INJECTION_COMPILED {
        return; // the injector draws nothing; there is no storm to survive
    }
    let _g = lock();
    orion_telemetry::set_enabled(false);
    let row = chaos_run(&DeviceSpec::c2075(), &tiny_workload(), 1, 1.0, 0.0)
        .expect("a total storm is recorded, not propagated");
    assert!(row.gave_up, "every candidate must have been exhausted: {row:?}");
    assert!(!row.within_tolerance, "a gave-up row never counts as converged");
    assert_eq!(row.chaos_label, "original", "after giving up the app runs the original kernel");
    assert!(row.injected.transient > 0);
}
