//! Fan-out determinism property tests: the parallel event-heap engine
//! must be observationally identical to the serial seed engine — same
//! cycles, same stall buckets, same per-SM rollups, same memory, same
//! tuner decision log, same injected-fault outcomes — across real
//! workloads, occupancy levels, and fault seeds.
//!
//! `parallelism: 1` + `Scheduler::LinearScan` is the exact seed code
//! path; everything else is the new engine and must reproduce it
//! bit-for-bit.

use orion_core::orion::Orion;
use orion_core::runtime::{tune_loop, TuneOutcome};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_gpusim::faults::{FaultInjector, FaultPlan};
use orion_gpusim::sim::{run_launch_faulty, run_launch_opts, LaunchOptions, RunResult};
use orion_gpusim::{Scheduler, SimError};
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};
use orion_workloads::by_name;

const WORKLOADS: [&str; 3] = ["matrixMul", "backprop", "hotspot"];

/// The seed configuration and the configurations that must match it.
fn seed_opts() -> LaunchOptions {
    LaunchOptions { parallelism: 1, scheduler: Scheduler::LinearScan, ..LaunchOptions::default() }
}

fn fanout_opts() -> [LaunchOptions; 3] {
    [
        LaunchOptions {
            parallelism: 1,
            scheduler: Scheduler::EventHeap,
            ..LaunchOptions::default()
        },
        LaunchOptions {
            parallelism: 2,
            scheduler: Scheduler::EventHeap,
            ..LaunchOptions::default()
        },
        LaunchOptions {
            parallelism: 0,
            scheduler: Scheduler::EventHeap,
            ..LaunchOptions::default()
        },
    ]
}

/// 3 workloads × 2 occupancy levels (the lowest and highest sweep
/// versions): full `RunResult` (cycles, stall buckets, per-SM rollups)
/// and global memory must be identical under every fan-out config.
#[test]
#[cfg_attr(debug_assertions, ignore = "sim-heavy; run with --release")]
fn parallel_matches_serial_across_workloads_and_occupancy() {
    let dev = DeviceSpec::gtx680();
    for name in WORKLOADS {
        let w = by_name(name).expect("workload");
        let orion = Orion::new(dev.clone(), w.block);
        let sweep = orion.sweep(&w.module).expect("sweep");
        let levels = [sweep.first().unwrap(), sweep.last().unwrap()];
        for v in levels {
            let run = |opts: LaunchOptions| -> (RunResult, Vec<u8>) {
                let mut global = w.init_global.clone();
                let r = run_launch_opts(
                    &dev,
                    &v.machine,
                    w.launch(),
                    &w.params,
                    &mut global,
                    LaunchOptions { extra_smem_per_block: v.extra_smem, ..opts },
                )
                .expect("launch");
                (r, global)
            };
            let (reference, ref_global) = run(seed_opts());
            for opts in fanout_opts() {
                let (r, global) = run(opts);
                assert_eq!(
                    r, reference,
                    "{name}/{}: {:?}/parallelism={} diverged from the seed engine",
                    v.label, opts.scheduler, opts.parallelism
                );
                assert_eq!(
                    global, ref_global,
                    "{name}/{}: {:?}/parallelism={} produced different memory",
                    v.label, opts.scheduler, opts.parallelism
                );
            }
        }
    }
}

fn tune_with(orion: &Orion, w: &orion_workloads::Workload, opts: LaunchOptions) -> TuneOutcome {
    let compiled = orion.compile(&w.module).expect("compile");
    tune_loop(&compiled, w.iterations, 0.02, |v| {
        let mut global = w.init_global.clone();
        run_launch_opts(
            &orion.dev,
            &v.machine,
            w.launch(),
            &w.params,
            &mut global,
            LaunchOptions { extra_smem_per_block: v.extra_smem, ..opts },
        )
        .map(|r| r.cycles)
    })
    .expect("tune loop")
}

/// The tuner's full decision log (selection, per-iteration walk,
/// convergence point, reason codes) must not depend on the engine
/// configuration that produced the measurements.
#[test]
#[cfg_attr(debug_assertions, ignore = "sim-heavy; run with --release")]
fn tuner_decisions_identical_across_fanout() {
    let dev = DeviceSpec::gtx680();
    for name in WORKLOADS {
        let w = by_name(name).expect("workload");
        let orion = Orion::new(dev.clone(), w.block);
        let reference = tune_with(&orion, &w, seed_opts());
        for opts in fanout_opts() {
            let outcome = tune_with(&orion, &w, opts);
            assert_eq!(outcome.selected, reference.selected, "{name}: selected version");
            assert_eq!(outcome.iterations, reference.iterations, "{name}: iteration walk");
            assert_eq!(
                outcome.converged_after, reference.converged_after,
                "{name}: convergence point"
            );
            assert_eq!(outcome.total_cycles, reference.total_cycles, "{name}: total cycles");
            assert_eq!(outcome.decisions, reference.decisions, "{name}: decision log");
        }
    }
}

/// out[gid] = in[gid]² + gid — tiny (debug-build fast) but with a real
/// load/store per lane so hang and jitter faults have something to bite.
fn tiny_kernel() -> Module {
    let mut b = FunctionBuilder::kernel("tiny");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let y = b.imad(x, x, gid);
    b.st(MemSpace::Global, Width::W32, addr, y, 0);
    Module::new(b.finish())
}

/// Injected faults are drawn per launch from `(seed, launch index)` and
/// applied at the driver layer, so a fresh injector with the same plan
/// must produce the same launch-by-launch outcome — success cycles,
/// transient failures, watchdog hangs, memory — whether the SMs below
/// it run serially or fanned out. (Without the `faults` feature the
/// injector draws nothing and this degenerates to a fault-free check.)
#[test]
fn fault_outcomes_identical_across_fanout() {
    let dev = DeviceSpec::gtx680();
    let machine = orion_alloc::realize::allocate(
        &tiny_kernel(),
        orion_alloc::realize::SlotBudget { reg_slots: 12, smem_slots: 0 },
        &orion_alloc::realize::AllocOptions::default(),
    )
    .expect("alloc")
    .machine;
    let launch = Launch { grid: 16, block: 128 };
    let n = 16 * 128;
    let launches = 24;
    for seed in [3u64, 17, 99] {
        let run_seq = |opts: LaunchOptions| -> Vec<(Result<RunResult, SimError>, Vec<u8>)> {
            let injector = FaultInjector::new(FaultPlan::chaos(seed, 0.3, 0.05));
            (0..launches)
                .map(|_| {
                    let mut global = vec![0u8; 4 * n];
                    let r = run_launch_faulty(
                        &dev,
                        &machine,
                        launch,
                        &[0],
                        &mut global,
                        opts,
                        Some(&injector),
                    );
                    (r, global)
                })
                .collect()
        };
        let reference = run_seq(seed_opts());
        for opts in fanout_opts() {
            let seq = run_seq(opts);
            for (i, (got, want)) in seq.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got, want,
                    "seed {seed}, launch {i}: {:?}/parallelism={} diverged",
                    opts.scheduler, opts.parallelism
                );
            }
        }
    }
}
