//! Tuning equivalence on the tier-1 workloads: the session-driven
//! entry points (`tune_loop`, `resilient_tune_loop`) must be
//! **bit-identical** to the frozen pre-refactor loops in
//! [`orion_core::reference`] when the launches come from the real
//! simulator — clean walks and seeded chaos alike.
//!
//! This is the sim-level counterpart of `crates/core/tests/
//! equivalence.rs` (synthetic closures): the same compiled candidates,
//! the same mutating global memory, the same seeded fault injector on
//! each side. Because both loops are deterministic functions of the
//! launch sequence, any divergence in the walk shows up as a full
//! outcome mismatch — selection, per-iteration trace, decision log,
//! stats, or error.
//!
//! Without the `faults` cargo feature the injector draws nothing and
//! the chaos cases degenerate to a second clean walk — still a valid
//! (if weaker) equivalence check, so the suite runs in every build.

use orion_core::orion::Orion;
use orion_core::reference;
use orion_core::resilient::{resilient_tune_loop, ResiliencePolicy, ResilientOutcome};
use orion_core::runtime::tune_loop;
use orion_core::{CompiledKernel, KernelVersion, OrionError};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::faults::{FaultInjector, FaultPlan};
use orion_gpusim::sim::{run_launch_faulty, LaunchOptions};
use orion_workloads::{by_name, Workload};

const WORKLOADS: [&str; 3] = ["matrixMul", "backprop", "hotspot"];
const SEEDS: [u64; 2] = [7, 1337];
const THRESHOLD: f64 = 0.05;
const ITERS: u32 = 32;

fn compile(dev: &DeviceSpec, w: &Workload) -> CompiledKernel {
    let mut orion = Orion::new(dev.clone(), w.block);
    orion.cfg.can_tune = w.can_tune;
    orion.compile(&w.module).expect("tier-1 workload compiles")
}

/// One application run: fresh global memory, fresh iteration counter,
/// and (optionally) a fresh injector seeded from `plan` — so the live
/// and reference walks each start from identical device state.
struct App<'w> {
    dev: &'w DeviceSpec,
    w: &'w Workload,
    global: Vec<u8>,
    iter_no: u32,
    injector: Option<FaultInjector>,
}

impl<'w> App<'w> {
    fn new(dev: &'w DeviceSpec, w: &'w Workload, plan: Option<FaultPlan>) -> Self {
        App {
            dev,
            w,
            global: w.init_global.clone(),
            iter_no: 0,
            injector: plan.map(FaultInjector::new),
        }
    }

    fn launch(&mut self, v: &KernelVersion) -> Result<u64, OrionError> {
        let params = self.w.params_for(self.iter_no);
        self.iter_no += 1;
        let opts = LaunchOptions { extra_smem_per_block: v.extra_smem, ..LaunchOptions::default() };
        run_launch_faulty(
            self.dev,
            &v.machine,
            self.w.launch(),
            params,
            &mut self.global,
            opts,
            self.injector.as_ref(),
        )
        .map(|r| r.cycles)
        .map_err(OrionError::from)
    }
}

fn resilient_pair(
    dev: &DeviceSpec,
    w: &Workload,
    ck: &CompiledKernel,
    plan: impl Fn() -> Option<FaultPlan>,
) -> (Result<ResilientOutcome, OrionError>, Result<ResilientOutcome, OrionError>) {
    let policy = ResiliencePolicy::default();
    let mut app = App::new(dev, w, plan());
    let live = resilient_tune_loop(w.name, ck, ITERS, THRESHOLD, &policy, |v| app.launch(v));
    let mut app = App::new(dev, w, plan());
    let oracle =
        reference::resilient_tune_loop(w.name, ck, ITERS, THRESHOLD, &policy, |v| app.launch(v));
    (live, oracle)
}

/// Clean sim launches: the plain driver must replay the frozen loop's
/// walk exactly on every tier-1 workload.
#[test]
#[cfg_attr(debug_assertions, ignore = "sim-heavy; run with --release")]
fn plain_walk_is_bit_identical_to_reference_on_workloads() {
    let dev = DeviceSpec::gtx680();
    for name in WORKLOADS {
        let w = by_name(name).expect("workload");
        let ck = compile(&dev, &w);
        let mut app = App::new(&dev, &w, None);
        let live = tune_loop(&ck, ITERS, THRESHOLD, |v| app.launch(v));
        let mut app = App::new(&dev, &w, None);
        let oracle = reference::tune_loop(&ck, ITERS, THRESHOLD, |v| app.launch(v));
        assert_eq!(live, oracle, "{name}: plain walk diverged from reference");
    }
}

/// Fault-free resilient walks (mean-of-k sampling, borderline
/// extension) must also match bit for bit.
#[test]
#[cfg_attr(debug_assertions, ignore = "sim-heavy; run with --release")]
fn resilient_walk_is_bit_identical_to_reference_on_workloads() {
    let dev = DeviceSpec::gtx680();
    for name in WORKLOADS {
        let w = by_name(name).expect("workload");
        let ck = compile(&dev, &w);
        let (live, oracle) = resilient_pair(&dev, &w, &ck, || None);
        assert_eq!(live, oracle, "{name}: resilient walk diverged from reference");
    }
}

/// Tier-1 workloads × fault seeds: identical seeded chaos plans on each
/// side (transient failures, resource rejections, hangs, timing
/// jitter). Retry, strike, quarantine, and borderline-extension paths
/// all fire across the seed sweep, and every outcome — Ok or Err —
/// must match the frozen loop exactly.
#[test]
#[cfg_attr(debug_assertions, ignore = "sim-heavy; run with --release")]
fn resilient_walk_is_bit_identical_to_reference_under_chaos() {
    let dev = DeviceSpec::gtx680();
    for name in WORKLOADS {
        let w = by_name(name).expect("workload");
        let ck = compile(&dev, &w);
        for seed in SEEDS {
            let (live, oracle) =
                resilient_pair(&dev, &w, &ck, || Some(FaultPlan::chaos(seed, 0.10, 0.05)));
            assert_eq!(live, oracle, "{name} seed {seed}: chaotic walk diverged from reference");
        }
    }
}
