//! End-to-end observability tests over the service plane: the
//! sequential-vs-concurrent determinism of the latency histograms and
//! cache deltas (the acceptance gate of the observability PR), the run
//! journal draining into [`ServiceReport`], and the exporters.
//!
//! The batch uses a tiny toy kernel (not the tier-1 workloads) so the
//! whole suite stays debug-mode fast; the heavyweight version of the
//! same gate is the `service` bench binary, which CI runs in release.
//!
//! These tests share process-global state (the compile cache, the
//! journal ring, the telemetry switch), so everything service-driven
//! runs inside ONE `#[test]`, and every test touching the global
//! journal serializes on [`GLOBAL_STATE`] — Rust's parallel test
//! runner would otherwise interleave drains.

use orion_core::backend::SimBackend;
use orion_core::cache;
use orion_core::compiler::TuningConfig;
use orion_core::service::{JobPolicy, KernelJob, OrionService, ServiceConfig, ServiceReport};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};
use orion_telemetry::export;
use orion_telemetry::hist::Histogram;
use orion_telemetry::journal::{self, JournalEvent};
use orion_telemetry::registry::MetricRegistry;
use std::sync::{Mutex, PoisonError};

/// Serializes the tests that mutate the process-global journal ring
/// and telemetry switch.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

/// `out[gid] = in[gid] * mul` — distinct `mul` gives each kernel a
/// distinct module fingerprint; repeats share compile-cache entries.
fn toy_module(mul: i64) -> Module {
    let mut b = FunctionBuilder::kernel("k");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let y = b.imul(x, Operand::Imm(mul));
    b.st(MemSpace::Global, Width::W32, addr, y, 0);
    Module::new(b.finish())
}

fn batch(iterations: u32) -> Vec<KernelJob> {
    (0..6)
        .map(|i| KernelJob {
            name: format!("toy#{i}"),
            // 3 distinct modules, each submitted twice → cache sharing.
            module: toy_module(i64::from(i % 3) + 2),
            launch: Launch { grid: 4, block: 64 },
            params: vec![0],
            global: vec![0u8; 4 * 256],
            iterations,
            tuning: TuningConfig::new(64),
            policy: JobPolicy::default(),
        })
        .collect()
}

fn run(workers: usize) -> ServiceReport {
    let svc = OrionService::new(
        SimBackend::new(DeviceSpec::gtx680()),
        ServiceConfig { workers, policy: None, ..ServiceConfig::default() },
    );
    svc.run(batch(6))
}

#[test]
fn service_observability_end_to_end() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(PoisonError::into_inner);
    orion_telemetry::set_enabled(true);
    orion_telemetry::journal::clear();
    cache::reset();

    // --- Determinism gate: sequential vs concurrent ----------------
    let seq = run(1);
    let conc = run(6);
    assert!(seq.all_ok() && conc.all_ok());
    for (a, b) in seq.kernels.iter().zip(&conc.kernels) {
        assert_eq!(
            a.outcome.as_ref().unwrap(),
            b.outcome.as_ref().unwrap(),
            "{}: outcome must not depend on worker count",
            a.name
        );
        // The acceptance gate: launch-latency and queue-wait histograms
        // bit-identical between sequential and concurrent runs.
        assert_eq!(
            a.metrics.cycle_domain(),
            b.metrics.cycle_domain(),
            "{}: latency histograms must not depend on worker count",
            a.name
        );
        assert!(a.metrics.launch_cycles.count() > 0, "{}: launches were recorded", a.name);
        assert!(a.metrics.launch_cycles.p50() <= a.metrics.launch_cycles.p99());
    }
    assert_eq!(seq.metrics.launch_cycles, conc.metrics.launch_cycles);
    assert_eq!(seq.metrics.queue_wait_cycles, conc.metrics.queue_wait_cycles);
    assert_eq!(seq.metrics.session_cycles, conc.metrics.session_cycles);

    // Cache deltas: with in-flight coalescing the hit/miss totals are a
    // pure function of the job multiset. The second (concurrent) run
    // re-requests the same fingerprints against a warm cache, so it
    // must be all hits, zero misses.
    assert_eq!(conc.cache.misses, 0, "warm concurrent run must not re-allocate");
    assert!(conc.cache.hits > 0);
    assert!(!conc.cache.per_shard.is_empty(), "per-shard counters are exposed");
    let shard_hits: u64 = conc.cache.per_shard.iter().map(|s| s.hits).sum();
    assert_eq!(shard_hits, conc.cache.hits, "per-shard counters sum to the aggregate");

    // --- Journal: session transitions reach the report --------------
    // Only with the telemetry feature compiled in AND switched on;
    // under --no-default-features the ring is a no-op and stays empty.
    let journal = &conc.journal;
    if orion_telemetry::is_enabled() {
        assert!(!journal.is_empty(), "enabled telemetry journals session transitions");
        assert!(
            journal.count_tag("session_transition") > 0,
            "transitions recorded; got tags {:?}",
            journal.records.iter().map(|r| r.event.tag()).collect::<Vec<_>>()
        );
    } else {
        assert!(journal.is_empty(), "disabled telemetry journals nothing");
    }
    // Fault-free walk: no retries, quarantines, or fallbacks.
    assert_eq!(journal.count_tag("retry"), 0);
    assert_eq!(journal.count_tag("quarantine"), 0);

    // --- Exporters over the live global registry ---------------------
    let snap = orion_telemetry::registry::global().snapshot();
    let prom = export::prometheus_text(&snap);
    for metric in
        ["orion_service_launch_cycles", "orion_service_sessions_total", "orion_cache_hit_rate"]
    {
        assert!(prom.contains(metric), "prometheus export exposes {metric}:\n{prom}");
    }
    assert!(prom.contains("_bucket{le="), "histograms export cumulative buckets");
    let json = export::snapshot_json(&snap);
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("snapshot JSON parses");
    assert!(matches!(parsed, serde_json::Value::Map(_)), "snapshot JSON is an object");

    orion_telemetry::set_enabled(false);
}

#[test]
fn journal_overflow_under_concurrent_writers() {
    // N threads racing `record_always` past the ring's capacity: the
    // ring must keep exactly the newest `capacity` records, assign a
    // gapless monotone sequence across all writers, and account for
    // every dropped record — the overflow contract the service relies
    // on when a chaotic batch floods the journal.
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(PoisonError::into_inner);
    const CAPACITY: usize = 64;
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 100;
    journal::clear();
    journal::set_capacity(CAPACITY);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    journal::record_always(JournalEvent::Degraded {
                        kernel: format!("w{w}#{i}"),
                        reason: "overflow-test",
                    });
                }
            });
        }
    });
    let d = journal::drain();
    let total = WRITERS * PER_WRITER;
    assert_eq!(d.records.len(), CAPACITY, "ring retains exactly its capacity");
    assert_eq!(d.dropped, total - CAPACITY as u64, "every overflow is counted");
    // Sequence numbers are globally monotone and gapless even under
    // racing writers, and the *newest* records are the ones retained:
    // after `clear()` reset the counter, the survivors are exactly the
    // last CAPACITY of `total` sequence numbers.
    for (i, r) in d.records.iter().enumerate() {
        assert_eq!(r.seq, total - CAPACITY as u64 + i as u64, "records: {:?}", d.records);
    }
    // Restore the default for whichever test runs next.
    journal::set_capacity(journal::DEFAULT_CAPACITY);
    journal::clear();
}

#[test]
fn exporters_render_local_registry() {
    // A private registry keeps this test independent of the global one.
    let reg = MetricRegistry::new();
    reg.register_counter("requests_total", "Requests seen", "").add(3);
    reg.register_gauge("depth", "Queue depth", "entries").set(2.5);
    let h = reg.register_histogram("latency", "Request latency", "cycles");
    let mut local = Histogram::default();
    for v in [1u64, 10, 100, 1000] {
        local.record(v);
    }
    h.merge(&local);

    let snap = reg.snapshot();
    let prom = export::prometheus_text(&snap);
    assert!(prom.contains("# HELP orion_requests_total Requests seen"));
    assert!(prom.contains("# TYPE orion_requests_total counter"));
    assert!(prom.contains("orion_requests_total 3"));
    assert!(prom.contains("orion_depth 2.5"));
    assert!(prom.contains("orion_latency_count 4"));
    assert!(prom.contains("orion_latency_sum 1111"));

    let json = export::snapshot_json(&snap);
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert!(json.contains("requests_total"), "{v:?}");
}
