//! End-to-end telemetry tests: the Chrome `trace_event` exporter must
//! emit valid, monotonically ordered JSON, and the stall-attribution
//! invariant must hold across real workloads at multiple occupancies.

use orion_bench::experiment::run_version_once;
use orion_core::orion::Orion;
use orion_gpusim::DeviceSpec;
use orion_telemetry::metrics::{aggregate_counters, MetricsReport};

/// The exporter output parses as JSON, carries the required
/// trace_event keys, and is sorted by timestamp.
#[test]
fn chrome_trace_exports_valid_sorted_json() {
    orion_telemetry::set_enabled(true);
    if !orion_telemetry::is_enabled() {
        return; // probes compiled out (--no-default-features)
    }
    orion_telemetry::clear();
    {
        let _outer = orion_telemetry::span("snap", "outer");
        orion_telemetry::counter("snap", "widgets", 3);
        orion_telemetry::instant("snap", "marker", vec![("k", "v".into())]);
        let _inner = orion_telemetry::span("snap", "inner");
    }
    orion_telemetry::complete("snap", "sm0", 0, 100, 250, vec![("blocks", 2u64.into())]);
    orion_telemetry::complete("snap", "sm1", 1, 0, 400, vec![]);
    let events = orion_telemetry::take_events();
    orion_telemetry::set_enabled(false);

    let out = orion_telemetry::chrome::trace_json(&events);
    let parsed: serde_json::Value = serde_json::from_str(&out).expect("exporter emits valid JSON");
    assert!(parsed.as_map().is_some(), "top level is an object");
    let evs =
        parsed.get("traceEvents").and_then(serde_json::Value::as_array).expect("traceEvents array");

    // Other tests may run concurrently and append to the global buffer;
    // only assert on our own category.
    let snap: Vec<&serde_json::Value> =
        evs.iter().filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("snap")).collect();
    // outer B+E, inner B+E, counter, instant, 2 completes = 8 events.
    assert_eq!(snap.len(), 8, "every probe appears exactly once");
    for e in &snap {
        assert!(e.get("ph").is_some() && e.get("name").is_some() && e.get("ts").is_some());
        assert!(e.get("pid").is_some() && e.get("tid").is_some());
    }
    let complete = snap
        .iter()
        .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .expect("complete event present");
    assert!(complete.get("dur").is_some(), "complete events carry a duration");

    // Global ordering invariant: ts is monotonically non-decreasing.
    let ts: Vec<i64> = evs.iter().map(|e| e["ts"].as_i64().expect("numeric ts")).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps sorted: {ts:?}");
}

#[test]
fn counter_aggregation_rolls_up_by_category() {
    orion_telemetry::set_enabled(true);
    if !orion_telemetry::is_enabled() {
        return; // probes compiled out (--no-default-features)
    }
    orion_telemetry::clear();
    orion_telemetry::counter("agg", "things", 2);
    orion_telemetry::counter("agg", "things", 5);
    let events = orion_telemetry::take_events();
    orion_telemetry::set_enabled(false);

    let report = aggregate_counters(&events);
    assert_eq!(report.get_u64("agg/things"), Some(7), "counters sum per (cat, name)");
    let mut top = MetricsReport::new();
    top.merge_prefixed("counters", &report);
    let parsed: serde_json::Value =
        serde_json::from_str(&top.to_json()).expect("metrics report is valid JSON");
    assert_eq!(parsed["counters/agg/things"].as_u64(), Some(7));
}

/// The six stall buckets partition `cycles × num_sms` exactly — checked
/// on three real workloads at their lowest and highest occupancy.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulator sweeps need --release")]
fn stall_buckets_partition_on_real_workloads() {
    let dev = DeviceSpec::gtx680();
    for name in ["matrixMul", "backprop", "hotspot"] {
        let w = orion_workloads::by_name(name).expect("known workload");
        let orion = Orion::new(dev.clone(), w.block);
        let versions = orion.sweep(&w.module).expect("sweep compiles");
        assert!(versions.len() >= 2, "{name}: need at least two occupancy levels");
        for v in [versions.first().unwrap(), versions.last().unwrap()] {
            let r = run_version_once(&dev, &w, v).expect("run succeeds");
            let st = &r.stats.stalls;
            assert_eq!(
                st.total(),
                r.cycles * u64::from(r.num_sms),
                "{name} at {} warps: buckets {st:?} must sum to cycles x num_sms",
                v.achieved_warps
            );
            assert!(st.issued > 0, "{name}: some cycles must issue");
        }
    }
}
