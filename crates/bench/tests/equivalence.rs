//! Behavior-preservation proof for the pipeline refactor: on the tier-1
//! workloads, the typed pass pipeline ([`orion_alloc::pipeline`],
//! driven by `allocate`) must be *bit-identical* to the frozen
//! pre-refactor monolith ([`orion_alloc::reference`]) — same machine
//! code, same allocation report — across register budgets and every
//! `AllocOptions` ablation, and the fully verified pipeline must accept
//! every lowered workload. The release-gated test closes the loop on
//! the simulator: same machine code ⇒ same cycles and stall rollups.

use orion_alloc::realize::{allocate, allocate_verified, AllocOptions, SlotBudget};
use orion_alloc::reference::allocate_reference;
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::sim::{run_launch_opts, LaunchOptions};
use orion_workloads::by_name;

const WORKLOADS: [&str; 3] = ["matrixMul", "backprop", "hotspot"];

const BUDGETS: [SlotBudget; 3] = [
    SlotBudget { reg_slots: 16, smem_slots: 0 },
    SlotBudget { reg_slots: 32, smem_slots: 0 },
    SlotBudget { reg_slots: 24, smem_slots: 8 },
];

/// Every Figure 5 ablation the options can express.
const ABLATIONS: [AllocOptions; 3] = [
    AllocOptions { compress_stack: true, optimize_layout: true },
    AllocOptions { compress_stack: true, optimize_layout: false },
    AllocOptions { compress_stack: false, optimize_layout: false },
];

/// 3 workloads × 3 budgets × 3 ablations: the pipeline's `Allocated`
/// (machine module *and* report) equals the frozen monolith's, and the
/// verified pipeline (stage checks + machine-IR gate) accepts the same
/// inputs with the same output.
#[test]
fn pipeline_is_bit_identical_to_reference_on_workloads() {
    for name in WORKLOADS {
        let w = by_name(name).expect("workload");
        for budget in BUDGETS {
            for opts in ABLATIONS {
                let new = allocate(&w.module, budget, &opts).expect("pipeline allocate");
                let old = allocate_reference(&w.module, budget, &opts).expect("reference");
                assert_eq!(
                    new.machine, old.machine,
                    "{name}/{budget:?}/{opts:?}: machine code diverged from reference"
                );
                assert_eq!(
                    new.report, old.report,
                    "{name}/{budget:?}/{opts:?}: alloc report diverged from reference"
                );
                let verified = allocate_verified(&w.module, budget, &opts)
                    .expect("verified pipeline accepts tier-1 workloads");
                assert_eq!(
                    verified.machine, new.machine,
                    "{name}/{budget:?}/{opts:?}: verification changed the output"
                );
            }
        }
    }
}

/// Simulator-level parity: running the pipeline's binary and the
/// reference binary yields identical `RunResult`s (cycles, stall
/// buckets, per-SM rollups) and global memory on the real workloads.
#[test]
#[cfg_attr(debug_assertions, ignore = "sim-heavy; run with --release")]
fn pipeline_and_reference_binaries_simulate_identically() {
    let dev = DeviceSpec::gtx680();
    for name in WORKLOADS {
        let w = by_name(name).expect("workload");
        for budget in [BUDGETS[0], BUDGETS[1]] {
            let opts = AllocOptions::default();
            let new = allocate(&w.module, budget, &opts).expect("pipeline allocate");
            let old = allocate_reference(&w.module, budget, &opts).expect("reference");
            let run = |machine| {
                let mut global = w.init_global.clone();
                let r = run_launch_opts(
                    &dev,
                    machine,
                    w.launch(),
                    &w.params,
                    &mut global,
                    LaunchOptions::default(),
                )
                .expect("launch");
                (r, global)
            };
            let (r_new, g_new) = run(&new.machine);
            let (r_old, g_old) = run(&old.machine);
            assert_eq!(r_new, r_old, "{name}/{budget:?}: sim results diverged");
            assert_eq!(g_new, g_old, "{name}/{budget:?}: global memory diverged");
        }
    }
}
