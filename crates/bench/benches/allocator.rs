//! Criterion microbenchmarks for the compiler-side algorithms: Figure 4
//! coloring, Kuhn-Munkres matching, compressible-stack packing, and the
//! end-to-end allocate() pipeline, plus the layout-optimization ablation
//! (the compile-time side of Figure 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orion_alloc::realize::{allocate, AllocOptions, SlotBudget};
use std::hint::black_box;

fn bench_allocate_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocate");
    for name in ["cfd", "srad", "imageDenoising", "matrixMul"] {
        let w = orion_workloads::by_name(name).expect("workload");
        g.bench_with_input(BenchmarkId::new("full", name), &w, |b, w| {
            b.iter(|| {
                allocate(
                    black_box(&w.module),
                    SlotBudget { reg_slots: 32, smem_slots: 16 },
                    &AllocOptions::default(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_layout_ablation(c: &mut Criterion) {
    let w = orion_workloads::by_name("cfd").expect("workload");
    let mut g = c.benchmark_group("layout");
    for (label, opts) in [
        ("optimized", AllocOptions { compress_stack: true, optimize_layout: true }),
        ("identity", AllocOptions { compress_stack: true, optimize_layout: false }),
        ("padded", AllocOptions { compress_stack: false, optimize_layout: false }),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                allocate(black_box(&w.module), SlotBudget { reg_slots: 32, smem_slots: 16 }, &opts)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_kuhn_munkres(c: &mut Criterion) {
    use orion_alloc::matching::max_weight_assignment;
    let mut g = c.benchmark_group("kuhn_munkres");
    for n in [16usize, 48, 96] {
        // Deterministic pseudo-random weights.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let w: Vec<Vec<i64>> =
            (0..n).map(|_| (0..n).map(|_| (next() % 1000) as i64 - 500).collect()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| max_weight_assignment(black_box(w)))
        });
    }
    g.finish();
}

fn bench_coloring(c: &mut Criterion) {
    use orion_alloc::chaitin::color;
    use orion_alloc::interference::InterferenceGraph;
    use orion_kir::cfg::Cfg;
    use orion_kir::liveness::Liveness;
    use orion_kir::ssa::normalize;

    let w = orion_workloads::by_name("imageDenoising").expect("workload");
    let nf = normalize(w.module.kernel()).expect("normalize");
    let cfg = Cfg::new(&nf);
    let live = Liveness::new(&nf, &cfg);
    let graph = InterferenceGraph::build(&nf, &cfg, &live);
    let mut g = c.benchmark_group("chaitin_color");
    for budget in [16u16, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &budget| {
            b.iter(|| color(black_box(&graph), budget, 0, &[]))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_allocate_pipeline,
    bench_layout_ablation,
    bench_kuhn_munkres,
    bench_coloring
);
criterion_main!(benches);
