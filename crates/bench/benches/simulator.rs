//! Criterion microbenchmarks for the GPU simulator: launch throughput at
//! low/high occupancy and the occupancy calculator itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orion_alloc::realize::{allocate, AllocOptions, SlotBudget};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_gpusim::occupancy::{occupancy, KernelResources};
use orion_gpusim::sim::run_launch;
use std::hint::black_box;

fn bench_launch(c: &mut Criterion) {
    let w = orion_workloads::by_name("srad").expect("workload");
    let machine =
        allocate(&w.module, SlotBudget { reg_slots: 24, smem_slots: 0 }, &AllocOptions::default())
            .unwrap()
            .machine;
    let dev = DeviceSpec::c2075();
    let mut g = c.benchmark_group("simulate_launch");
    g.sample_size(10);
    for grid in [28u32, 112] {
        g.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |b, &grid| {
            b.iter(|| {
                let mut global = w.init_global.clone();
                run_launch(
                    black_box(&dev),
                    black_box(&machine),
                    Launch { grid, block: w.block },
                    &w.params,
                    &mut global,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_occupancy_calculator(c: &mut Criterion) {
    let dev = DeviceSpec::gtx680();
    c.bench_function("occupancy_calculator", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for regs in 1..=63u16 {
                acc += occupancy(
                    black_box(&dev),
                    &KernelResources {
                        regs_per_thread: regs,
                        smem_per_block: 2048,
                        block_size: 192,
                    },
                )
                .active_warps;
            }
            acc
        })
    });
}

criterion_group!(benches, bench_launch, bench_occupancy_calculator);
criterion_main!(benches);
