//! The machine-IR verifier as a pipeline gate: corrupt the lowered
//! module between `lower` and `mir-verify` with an injected pass and
//! check the rejection arrives as a named, source-chained
//! [`AllocError::Stage`] — never a panic.

use orion_alloc::pipeline::{Pass, Pipeline, PipelineState};
use orion_alloc::realize::{AllocError, AllocOptions, SlotBudget};
use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::mir::{MModule, Place};
use orion_kir::mir_verify::MirVerifyError;
use orion_kir::types::{MemSpace, Width};

/// A test-only pass that mutates the lowered machine code in place.
struct Corrupt<F>(F);

impl<F: Fn(&mut MModule)> Pass for Corrupt<F> {
    fn name(&self) -> &'static str {
        "corrupt"
    }

    fn run(&self, st: &mut PipelineState<'_>) -> Result<(), AllocError> {
        let out = st.output.as_mut().expect("corrupt pass runs after lower");
        (self.0)(&mut out.machine);
        Ok(())
    }
}

fn call_module() -> Module {
    let kb = FunctionBuilder::kernel("k");
    let mut m = Module::new(kb.finish());
    let fdiv = m.add_func(build_fdiv_device());
    let mut b = FunctionBuilder::kernel("k");
    let keep = b.mov_i32(11);
    let x = b.mov_f32(10.0);
    let y = b.mov_f32(4.0);
    let q = b.call(fdiv, vec![x.into(), y.into()], &[Width::W32]);
    let s = b.iadd(keep, q[0]);
    b.st(MemSpace::Global, Width::W32, Operand::Imm(0), s, 0);
    m.funcs[0] = b.finish();
    m
}

fn wide_module() -> Module {
    let mut b = FunctionBuilder::kernel("k");
    let d0 = b.vreg(Width::W64);
    let d1 = b.vreg(Width::W64);
    b.push(orion_kir::inst::Inst::new(
        orion_kir::inst::Opcode::Mov,
        Some(d0),
        vec![Operand::Imm(1)],
    ));
    b.push(orion_kir::inst::Inst::new(
        orion_kir::inst::Opcode::Mov,
        Some(d1),
        vec![Operand::Imm(2)],
    ));
    let s = b.dadd(d0, d1);
    b.st(MemSpace::Global, Width::W64, Operand::Imm(0), s, 0);
    Module::new(b.finish())
}

/// Run the verified pipeline with `mutate` injected after `lower` and
/// return the error, asserting it is a `Stage` at `mir-verify` whose
/// chained source is the verifier diagnostic.
fn corrupted_err(module: &Module, mutate: impl Fn(&mut MModule) + 'static) -> MirVerifyError {
    let mut p = Pipeline::verified(&AllocOptions::default());
    assert!(p.insert_after("lower", Box::new(Corrupt(mutate))));
    let err = p.run(module, SlotBudget { reg_slots: 32, smem_slots: 0 }).unwrap_err();
    let AllocError::Stage { stage, source } = &err else {
        panic!("expected a Stage error, got {err:?}");
    };
    assert_eq!(*stage, "mir-verify");
    assert!(err.to_string().contains("mir-verify"), "{err}");
    // The chain walks Stage → MirVerify → the kir diagnostic.
    let chained = std::error::Error::source(&err).expect("stage chains its source");
    assert!(std::error::Error::source(chained).is_some(), "{chained}");
    let AllocError::MirVerify(v) = source.as_ref() else {
        panic!("expected a MirVerify source, got {source:?}");
    };
    v.clone()
}

#[test]
fn rejects_slot_out_of_range() {
    let v = corrupted_err(&call_module(), |mm| {
        let inst = mm.funcs[0]
            .blocks
            .iter_mut()
            .flat_map(|b| &mut b.insts)
            .find(|i| i.dst.is_some_and(|d| d.place == Place::Onchip))
            .expect("an on-chip destination exists");
        inst.dst.as_mut().unwrap().slot = 999;
    });
    let MirVerifyError::SlotOutOfRange { loc, .. } = v else {
        panic!("expected SlotOutOfRange, got {v:?}");
    };
    assert_eq!(loc.slot, 999);
    assert!(v.to_string().contains("address space"), "{v}");
}

#[test]
fn rejects_frame_overflow() {
    let v = corrupted_err(&call_module(), |mm| {
        mm.funcs[1].frame_size = 500;
    });
    assert!(matches!(v, MirVerifyError::FrameOverflow { .. }), "expected FrameOverflow, got {v:?}");
    assert!(v.to_string().contains("on-chip window"), "{v}");
}

#[test]
fn rejects_misaligned_wide_register() {
    let v = corrupted_err(&wide_module(), |mm| {
        // Pick the lowest-slot wide destination so that bumping it by one
        // stays inside the frame and trips only the alignment check.
        let inst = mm.funcs[0]
            .blocks
            .iter_mut()
            .flat_map(|b| &mut b.insts)
            .filter(|i| i.dst.is_some_and(|d| d.place == Place::Onchip && d.width == Width::W64))
            .min_by_key(|i| i.dst.unwrap().slot)
            .expect("a wide on-chip destination exists");
        let d = inst.dst.as_mut().unwrap();
        assert_eq!(d.slot, 0, "the lowest wide slot sits at the frame base");
        d.slot += 1; // odd slot: off the W64 alignment class
    });
    assert!(
        matches!(v, MirVerifyError::MisalignedWide { .. }),
        "expected MisalignedWide, got {v:?}"
    );
    assert!(v.to_string().contains("alignment class"), "{v}");
}

#[test]
fn uncorrupted_modules_pass_the_gate() {
    for m in [call_module(), wide_module()] {
        Pipeline::verified(&AllocOptions::default())
            .run(&m, SlotBudget { reg_slots: 32, smem_slots: 0 })
            .expect("verified pipeline accepts sound lowerings");
    }
}
