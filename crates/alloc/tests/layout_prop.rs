//! Theorem 1 property tests: the Kuhn-Munkres layout never predicts
//! more compression moves than the identity layout, on randomized
//! layout-model instances and on end-to-end randomized call graphs.

use orion_alloc::layout::{identity_layout, optimize_layout, unit_move_cost, CallLayoutInfo};
use orion_alloc::realize::{allocate, allocate_verified, AllocOptions, SlotBudget};
use orion_alloc::stack::Unit;
use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, Width};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(rng: &mut StdRng) -> (Vec<Unit>, Vec<CallLayoutInfo>) {
    let n_units = rng.gen_range(1..10);
    let mut units = Vec::with_capacity(n_units);
    let mut cursor: u16 = 0;
    for _ in 0..n_units {
        if rng.gen_bool(0.15) {
            cursor += 1; // a hole left by the coloring
        }
        let width: u16 = if rng.gen_bool(0.2) { rng.gen_range(2..4) } else { 1 };
        let align = if width >= 2 { 2 } else { 1 };
        units.push(Unit { start: cursor, width, align, residue: cursor % align, webs: vec![] });
        cursor += width;
    }
    let frame = cursor;
    let calls = (0..rng.gen_range(1..5))
        .map(|_| CallLayoutInfo {
            bk: rng.gen_range(0..frame + 1),
            live: (0..units.len()).map(|_| rng.gen_bool(0.5)).collect(),
        })
        .collect();
    (units, calls)
}

/// On random model instances: KM ≤ identity, the reported total matches
/// a recount, wide units stay pinned, and the permutation stays a
/// permutation (disjoint, in-frame).
#[test]
fn km_never_beaten_by_identity_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(0x0910_a11c);
    for trial in 0..500 {
        let (units, calls) = random_instance(&mut rng);
        let id = identity_layout(&units, &calls);
        let opt = optimize_layout(&units, &calls);
        assert!(
            opt.total_moves <= id.total_moves,
            "trial {trial}: KM {} > identity {} for {units:?} / {calls:?}",
            opt.total_moves,
            id.total_moves
        );
        let recount: u32 = units
            .iter()
            .enumerate()
            .map(|(i, u)| unit_move_cost(u, opt.new_start[i], &calls, i))
            .sum();
        assert_eq!(opt.total_moves, recount, "trial {trial}: stale total");
        let frame: u16 = units.iter().map(|u| u.start + u.width).max().unwrap_or(0);
        let mut used = vec![false; usize::from(frame)];
        for (i, u) in units.iter().enumerate() {
            if u.width > 1 {
                assert_eq!(opt.new_start[i], u.start, "trial {trial}: wide unit {i} moved");
            }
            for s in opt.new_start[i]..opt.new_start[i] + u.width {
                assert!(s < frame, "trial {trial}: unit {i} left the frame");
                assert!(!used[usize::from(s)], "trial {trial}: units overlap at {s}");
                used[usize::from(s)] = true;
            }
        }
    }
}

/// A random kernel: a pool of live values, a few calls to the fdiv
/// device function at random argument choices, and a random subset of
/// the pool consumed after the calls (kept live across them).
fn random_module(rng: &mut StdRng) -> Module {
    let kb = FunctionBuilder::kernel("k");
    let mut m = Module::new(kb.finish());
    let fdiv = m.add_func(build_fdiv_device());
    let mut b = FunctionBuilder::kernel("k");
    let n = rng.gen_range(3..10);
    let vals: Vec<_> = (0..n).map(|i| b.mov_f32(1.0 + i as f32)).collect();
    let mut results = Vec::new();
    for _ in 0..rng.gen_range(1..4) {
        let x = vals[rng.gen_range(0..n)];
        let y = vals[rng.gen_range(0..n)];
        let q = b.call(fdiv, vec![x.into(), y.into()], &[Width::W32]);
        results.push(q[0]);
    }
    let mut acc = b.mov_f32(0.0);
    for &v in &vals {
        if rng.gen_bool(0.6) {
            acc = b.fadd(acc, v);
        }
    }
    for r in results {
        acc = b.fadd(acc, r);
    }
    b.st(MemSpace::Global, Width::W32, Operand::Imm(0), acc, 0);
    m.funcs[0] = b.finish();
    m
}

/// End to end: across randomized call graphs and budgets, the
/// KM-optimized pipeline never predicts more compression moves than the
/// identity-layout ablation, and both pass the fully verified pipeline
/// (stage checks + machine-IR verifier).
#[test]
fn km_never_beaten_end_to_end_on_random_call_graphs() {
    let km = AllocOptions { compress_stack: true, optimize_layout: true };
    let id = AllocOptions { compress_stack: true, optimize_layout: false };
    let predicted = |opts: &AllocOptions, m: &Module, budget: SlotBudget| -> u32 {
        let a = allocate(m, budget, opts).expect("allocate");
        a.report.per_func.iter().map(|f| f.predicted_moves).sum()
    };
    let mut rng = StdRng::seed_from_u64(0x7e0_1ab);
    for trial in 0..40 {
        let m = random_module(&mut rng);
        for regs in [6u16, 10, 24] {
            let budget = SlotBudget { reg_slots: regs, smem_slots: 2 };
            let moves_km = predicted(&km, &m, budget);
            let moves_id = predicted(&id, &m, budget);
            assert!(
                moves_km <= moves_id,
                "trial {trial} regs={regs}: KM predicts {moves_km} > identity {moves_id}"
            );
            allocate_verified(&m, budget, &km).expect("verified KM pipeline");
            allocate_verified(&m, budget, &id).expect("verified identity pipeline");
        }
    }
}
