//! Compressible-stack machinery (§3.2 of the paper).
//!
//! After single-procedure coloring, each function's frame is a vector of
//! on-chip slots. Before a call the caller *compresses* the used slots
//! into a contiguous prefix `[0, B_k)` so the callee gets maximal
//! contiguous space; after the call the moved slots are restored.
//!
//! This module provides:
//! * [`Unit`] extraction — the paper's variable sets `SS_i`, grouped into
//!   atomic multi-slot units when wide webs span several slots;
//! * call-site liveness at unit granularity;
//! * `B_k` computation as the minimal packed height that fits all live
//!   units with their alignment constraints ([`min_packed_height`]);
//! * the packing itself ([`pack_live_units`]) used at lowering time;
//! * a parallel-move sequentializer ([`sequentialize`]) that orders the
//!   compression / argument / restore / return moves so no source is
//!   clobbered before it is read, breaking cycles through a scratch slot.

use crate::chaitin::Coloring;
use crate::realize::AllocError;
use orion_kir::bitset::BitSet;
use orion_kir::mir::{MInst, MLoc, MOperand};
use orion_kir::types::Width;

/// An atomic group of consecutive frame slots moved as one value.
///
/// A unit is a connected component of slots linked by the webs that
/// occupy them; usually a single slot, or the 2–4 slots of a wide web.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unit {
    /// First local slot of the unit.
    pub start: u16,
    /// Number of slots.
    pub width: u16,
    /// Strictest member alignment (new positions must preserve
    /// `start mod align`).
    pub align: u16,
    /// `start % align` that must be preserved when the unit moves.
    pub residue: u16,
    /// Webs living (at least partly) in this unit.
    pub webs: Vec<usize>,
}

/// Extract units from a coloring: group slots connected by wide webs.
///
/// # Errors
/// Returns [`AllocError::Internal`] when the coloring is inconsistent
/// (a colored web outside every occupied component) — an allocator bug
/// surfaced as a diagnostic rather than a panic.
pub fn extract_units(coloring: &Coloring, widths: &[Width]) -> Result<Vec<Unit>, AllocError> {
    let frame = coloring.frame_size as usize;
    if frame == 0 {
        return Ok(Vec::new());
    }
    // Union-find over slots.
    let mut parent: Vec<u16> = (0..frame as u16).collect();
    fn find(p: &mut [u16], x: u16) -> u16 {
        let mut r = x;
        while p[r as usize] != r {
            r = p[r as usize];
        }
        let mut c = x;
        while p[c as usize] != r {
            let n = p[c as usize];
            p[c as usize] = r;
            c = n;
        }
        r
    }
    let mut occupied = vec![false; frame];
    for (web, slot) in coloring.slot_of.iter().enumerate() {
        if let Some(s) = *slot {
            let w = widths[web].words();
            for k in 0..w {
                occupied[(s + k) as usize] = true;
                if k > 0 {
                    let a = find(&mut parent, s);
                    let b = find(&mut parent, s + k);
                    if a != b {
                        parent[b as usize] = a;
                    }
                }
            }
        }
    }
    // Collect components over occupied slots.
    let mut comp_slots: std::collections::BTreeMap<u16, Vec<u16>> = Default::default();
    for s in 0..frame as u16 {
        if occupied[s as usize] {
            let r = find(&mut parent, s);
            comp_slots.entry(r).or_default().push(s);
        }
    }
    let mut units: Vec<Unit> = Vec::new();
    for (root, slots) in comp_slots {
        let (Some(&start), Some(&last)) = (slots.first(), slots.last()) else {
            return Err(AllocError::Internal(format!(
                "unit extraction: slot component rooted at {root} is empty"
            )));
        };
        let end = last + 1;
        // Components are contiguous by construction (webs cover
        // consecutive slots); assert in debug builds.
        debug_assert_eq!((end - start) as usize, slots.len());
        units.push(Unit { start, width: end - start, align: 1, residue: 0, webs: Vec::new() });
    }
    // Attach webs and compute alignment.
    for (web, slot) in coloring.slot_of.iter().enumerate() {
        if let Some(s) = *slot {
            let u = units.iter_mut().find(|u| s >= u.start && s < u.start + u.width).ok_or_else(
                || {
                    AllocError::Internal(format!(
                        "unit extraction: web {web} colored at slot {s} outside every unit"
                    ))
                },
            )?;
            u.webs.push(web);
            u.align = u.align.max(widths[web].alignment());
        }
    }
    for u in &mut units {
        u.residue = u.start % u.align;
    }
    Ok(units)
}

/// Which units are live at a call: a unit is live iff any member web is
/// live across the call.
pub fn live_units(units: &[Unit], live_webs: &BitSet) -> Vec<bool> {
    units.iter().map(|u| u.webs.iter().any(|&w| live_webs.contains(w))).collect()
}

/// First-fit decreasing-width packing of the given units from an empty
/// frame, honoring each unit's alignment residue. Returns per-unit new
/// start positions and the total height, or `None` if `height_limit` is
/// exceeded.
fn pack_from_empty(
    units: &[(usize, &Unit)],
    height_limit: u16,
) -> Option<(Vec<(usize, u16)>, u16)> {
    let mut order: Vec<&(usize, &Unit)> = units.iter().collect();
    order.sort_by(|a, b| b.1.width.cmp(&a.1.width).then(a.1.start.cmp(&b.1.start)));
    let mut used = vec![false; height_limit as usize];
    let mut placed = Vec::with_capacity(units.len());
    let mut height = 0u16;
    for (idx, u) in order {
        let mut pos = u.residue;
        let found = loop {
            if pos + u.width > height_limit {
                break None;
            }
            if (0..u.width).all(|k| !used[(pos + k) as usize]) {
                break Some(pos);
            }
            pos += u.align;
        };
        let p = found?;
        for k in 0..u.width {
            used[(p + k) as usize] = true;
        }
        height = height.max(p + u.width);
        placed.push((*idx, p));
    }
    Some((placed, height))
}

/// Minimal compressed height `B_k` that can hold the live units — the
/// paper's "desired stack height at the k-th sub-procedure call".
pub fn min_packed_height(units: &[Unit], live: &[bool]) -> u16 {
    let live_list: Vec<(usize, &Unit)> =
        units.iter().enumerate().filter(|(i, _)| live[*i]).collect();
    let words: u16 = live_list.iter().map(|(_, u)| u.width).sum();
    let max_h = words + live_list.iter().map(|(_, u)| u.align - 1).sum::<u16>();
    for h in words..=max_h.max(words) {
        if let Some((_, height)) = pack_from_empty(&live_list, h) {
            return height;
        }
    }
    max_h
}

/// Compute where each live unit sits during the call, given the actual
/// budgeted height `bk`. Units already entirely below `bk` stay in place
/// when possible; the rest move into aligned gaps; if in-place packing
/// fails (fragmentation), everything is repacked from scratch.
///
/// Returns `(unit index, new start)` for every live unit (stayers map to
/// their own start).
///
/// # Errors
/// Returns [`AllocError::Internal`] when `bk` is below the minimal
/// packed height of the live units, so not even a full repack fits —
/// callers must pass a `bk` at least [`min_packed_height`].
pub fn pack_live_units(
    units: &[Unit],
    live: &[bool],
    bk: u16,
) -> Result<Vec<(usize, u16)>, AllocError> {
    let mut used = vec![false; bk as usize];
    let mut result = Vec::new();
    let mut movers: Vec<(usize, &Unit)> = Vec::new();
    for (i, u) in units.iter().enumerate() {
        if !live[i] {
            continue;
        }
        if u.start + u.width <= bk {
            for k in 0..u.width {
                used[(u.start + k) as usize] = true;
            }
            result.push((i, u.start));
        } else {
            movers.push((i, u));
        }
    }
    movers.sort_by(|a, b| b.1.width.cmp(&a.1.width).then(a.1.start.cmp(&b.1.start)));
    let mut ok = true;
    let mut moved = Vec::new();
    for (i, u) in &movers {
        let mut pos = u.residue;
        let mut found = None;
        while pos + u.width <= bk {
            if (0..u.width).all(|k| !used[(pos + k) as usize]) {
                found = Some(pos);
                break;
            }
            pos += u.align;
        }
        match found {
            Some(p) => {
                for k in 0..u.width {
                    used[(p + k) as usize] = true;
                }
                moved.push((*i, p));
            }
            None => {
                ok = false;
                break;
            }
        }
    }
    if ok {
        result.extend(moved);
        return Ok(result);
    }
    // Fragmented: full repack of all live units.
    let live_list: Vec<(usize, &Unit)> =
        units.iter().enumerate().filter(|(i, _)| live[*i]).collect();
    let (placed, _) = pack_from_empty(&live_list, bk).ok_or_else(|| {
        AllocError::Internal(format!(
            "stack packing: {} live units do not fit in bk={bk} even after a full \
             repack (bk below min_packed_height?)",
            live_list.len()
        ))
    })?;
    Ok(placed)
}

/// One pending parallel move: all sources are read before any
/// destination is written.
#[derive(Debug, Clone, PartialEq)]
pub struct PMove {
    pub dst: MLoc,
    pub src: MOperand,
}

fn ranges_overlap(a: MLoc, b: MLoc) -> bool {
    a.place == b.place && {
        let (a0, a1) = (a.slot, a.slot + a.width.words());
        let (b0, b1) = (b.slot, b.slot + b.width.words());
        a0 < b1 && b0 < a1
    }
}

/// Order parallel moves into a sequential list of machine `Mov`
/// instructions such that no move's source is overwritten before it is
/// read. Cycles are broken by bouncing one value through `scratch`
/// (which must not overlap any move's source or destination and must be
/// at least as wide as the widest move).
///
/// # Errors
/// Returns [`AllocError::Internal`] when the caller invariants are
/// violated: two destinations overlap, or the scratch overlaps a move's
/// source or destination.
pub fn sequentialize(moves: &[PMove], scratch: MLoc) -> Result<Vec<MInst>, AllocError> {
    for (i, a) in moves.iter().enumerate() {
        for b in &moves[i + 1..] {
            if ranges_overlap(a.dst, b.dst) {
                return Err(AllocError::Internal(format!(
                    "parallel move set has overlapping destinations {} and {}",
                    a.dst, b.dst
                )));
            }
        }
        if ranges_overlap(a.dst, scratch) {
            return Err(AllocError::Internal(format!(
                "move scratch {scratch} overlaps destination {}",
                a.dst
            )));
        }
        if let MOperand::Loc(s) = a.src {
            if ranges_overlap(s, scratch) {
                return Err(AllocError::Internal(format!(
                    "move scratch {scratch} overlaps source {s}"
                )));
            }
        }
    }
    let n = moves.len();
    let mut pending: Vec<Option<PMove>> = moves.iter().cloned().map(Some).collect();
    let mut out = Vec::with_capacity(n + 2);
    let mut remaining = n;
    while remaining > 0 {
        // Emit every move whose destination no pending move still reads.
        let mut progressed = false;
        for i in 0..n {
            let Some(m) = pending[i].clone() else { continue };
            let blocked = pending.iter().enumerate().any(|(j, other)| {
                if i == j {
                    return false;
                }
                match other {
                    Some(o) => match o.src {
                        MOperand::Loc(s) => ranges_overlap(m.dst, s),
                        _ => false,
                    },
                    None => false,
                }
            });
            if !blocked {
                let mut inst = MInst::mov(m.dst, MLoc::onchip(0, Width::W32));
                inst.srcs = vec![m.src];
                out.push(inst);
                pending[i] = None;
                remaining -= 1;
                progressed = true;
            }
        }
        if !progressed {
            // Cycle: bounce the first pending move's source via scratch.
            let m = pending.iter().enumerate().find_map(|(i, m)| m.clone().map(|m| (i, m)));
            let Some((i, m)) = m else {
                return Err(AllocError::Internal(
                    "move sequentializer stalled with no pending moves left".to_string(),
                ));
            };
            let MOperand::Loc(src_loc) = m.src else {
                return Err(AllocError::Internal(format!(
                    "move sequentializer blocked on non-slot source {:?} (immediates \
                     never block)",
                    m.src
                )));
            };
            let sc = MLoc { width: src_loc.width, ..scratch };
            out.push(MInst::mov(sc, src_loc));
            pending[i] = Some(PMove { dst: m.dst, src: MOperand::Loc(sc) });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::mir::{MLoc, Place};

    fn unit(start: u16, width: u16, align: u16) -> Unit {
        Unit { start, width, align, residue: start % align, webs: vec![] }
    }

    #[test]
    fn min_height_simple() {
        let units = vec![unit(0, 1, 1), unit(3, 1, 1), unit(5, 1, 1)];
        let live = vec![true, true, false];
        assert_eq!(min_packed_height(&units, &live), 2);
        assert_eq!(min_packed_height(&units, &[true, true, true]), 3);
        assert_eq!(min_packed_height(&units, &[false, false, false]), 0);
    }

    #[test]
    fn min_height_respects_alignment() {
        // A W64 unit at residue 0 plus one single: pair at 0..2, single at 2.
        let units = vec![unit(2, 2, 2), unit(5, 1, 1)];
        assert_eq!(min_packed_height(&units, &[true, true]), 3);
        // Single first would force the pair to 2..4; packing is width-desc
        // so the pair lands at 0.
    }

    #[test]
    fn pack_keeps_stayers_in_place() {
        let units = vec![unit(0, 1, 1), unit(4, 1, 1)];
        let placed = pack_live_units(&units, &[true, true], 2).unwrap();
        let mut placed = placed;
        placed.sort();
        assert_eq!(placed, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn pack_moves_only_above_bk() {
        let units = vec![unit(1, 1, 1), unit(2, 1, 1), unit(6, 1, 1)];
        let mut placed = pack_live_units(&units, &[true, true, true], 4).unwrap();
        placed.sort();
        // Units 0 and 1 stay; unit 2 moves to slot 0 (lowest free).
        assert_eq!(placed, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn pack_full_repack_on_fragmentation() {
        // A pair above bk, singles fragmenting the low area at odd slots.
        let units = vec![unit(1, 1, 1), unit(3, 1, 1), unit(6, 2, 2)];
        let bk = min_packed_height(&units, &[true, true, true]);
        assert_eq!(bk, 4);
        let mut placed = pack_live_units(&units, &[true, true, true], bk).unwrap();
        placed.sort();
        // The pair must land at an even slot within [0,4): full repack
        // puts it at 0 and the singles at 2,3.
        let pair_pos = placed.iter().find(|(i, _)| *i == 2).unwrap().1;
        assert_eq!(pair_pos % 2, 0);
        let mut slots: Vec<u16> = Vec::new();
        for (i, p) in &placed {
            for k in 0..units[*i].width {
                slots.push(p + k);
            }
        }
        slots.sort();
        slots.dedup();
        assert_eq!(slots.len(), 4, "no overlap: {placed:?}");
        assert!(slots.iter().all(|&s| s < bk));
    }

    #[test]
    fn sequentialize_orders_chain() {
        // r1 <- r0, r2 <- r1 : must emit r2<-r1 first.
        let mv = vec![
            PMove { dst: MLoc::onchip(1, Width::W32), src: MLoc::onchip(0, Width::W32).into() },
            PMove { dst: MLoc::onchip(2, Width::W32), src: MLoc::onchip(1, Width::W32).into() },
        ];
        let out = sequentialize(&mv, MLoc::local(0, Width::W32)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].dst.unwrap().slot, 2);
        assert_eq!(out[1].dst.unwrap().slot, 1);
    }

    #[test]
    fn sequentialize_breaks_swap_cycle() {
        let mv = vec![
            PMove { dst: MLoc::onchip(0, Width::W32), src: MLoc::onchip(1, Width::W32).into() },
            PMove { dst: MLoc::onchip(1, Width::W32), src: MLoc::onchip(0, Width::W32).into() },
        ];
        let out = sequentialize(&mv, MLoc::local(0, Width::W32)).unwrap();
        assert_eq!(out.len(), 3, "{out:?}");
        // Simulate to verify the swap really happens.
        let mut regs = [10u32, 20u32];
        let mut scratch = 0u32;
        for m in &out {
            let src = match m.srcs[0] {
                MOperand::Loc(l) => match l.place {
                    Place::Onchip => regs[l.slot as usize],
                    Place::Local => scratch,
                },
                _ => unreachable!(),
            };
            let d = m.dst.unwrap();
            match d.place {
                Place::Onchip => regs[d.slot as usize] = src,
                Place::Local => scratch = src,
            }
        }
        assert_eq!(regs, [20, 10]);
    }

    #[test]
    fn sequentialize_wide_partial_overlap() {
        // Move a W64 pair down by one slot: dst [0,2), src [1,3).
        let mv = vec![PMove {
            dst: MLoc::onchip(0, Width::W64),
            src: MLoc::onchip(1, Width::W64).into(),
        }];
        let out = sequentialize(&mv, MLoc::local(0, Width::W64)).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sequentialize_immediates_never_block() {
        let mv = vec![
            PMove { dst: MLoc::onchip(0, Width::W32), src: MOperand::Imm(7) },
            PMove { dst: MLoc::onchip(1, Width::W32), src: MLoc::onchip(0, Width::W32).into() },
        ];
        let out = sequentialize(&mv, MLoc::local(0, Width::W32)).unwrap();
        // The reg0 read must precede the imm write into reg0.
        assert_eq!(out[0].dst.unwrap().slot, 1);
    }

    #[test]
    fn sequentialize_rejects_overlapping_destinations() {
        let mv = vec![
            PMove { dst: MLoc::onchip(0, Width::W64), src: MLoc::onchip(4, Width::W64).into() },
            PMove { dst: MLoc::onchip(1, Width::W32), src: MLoc::onchip(6, Width::W32).into() },
        ];
        let err = sequentialize(&mv, MLoc::local(0, Width::W64)).unwrap_err();
        assert!(err.to_string().contains("overlapping destinations"), "{err}");
    }

    #[test]
    fn pack_rejects_bk_below_min_height() {
        let units = vec![unit(0, 1, 1), unit(1, 1, 1), unit(2, 1, 1)];
        let err = pack_live_units(&units, &[true, true, true], 2).unwrap_err();
        assert!(err.to_string().contains("do not fit in bk=2"), "{err}");
    }

    #[test]
    fn extract_units_groups_wide_webs() {
        use orion_kir::types::Width;
        let coloring = Coloring {
            // web0: W64 at slots 0-1, web1: W32 at slot 2, web2 spilled.
            slot_of: vec![Some(0), Some(2), None],
            spilled: vec![2],
            frame_size: 3,
        };
        let widths = vec![Width::W64, Width::W32, Width::W32];
        let units = extract_units(&coloring, &widths).unwrap();
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].width, 2);
        assert_eq!(units[0].align, 2);
        assert_eq!(units[1].width, 1);
    }
}
