//! Interference-graph construction over webs.
//!
//! The input function must be in *web* form (the output of
//! [`orion_kir::ssa::normalize`]): every virtual register is an
//! allocation unit. Two webs interfere when one is defined at a point
//! where the other is live, so they can never share an on-chip slot.

use orion_kir::bitset::BitSet;
use orion_kir::cfg::Cfg;
use orion_kir::function::Function;
use orion_kir::liveness::Liveness;
use orion_kir::types::{VReg, Width};

/// Undirected interference graph; node ids are web (vreg) indices.
#[derive(Debug, Clone)]
pub struct InterferenceGraph {
    /// Adjacency sets, one per web.
    adj: Vec<BitSet>,
    /// Width of each web.
    widths: Vec<Width>,
    /// Static occurrence count of each web (defs + uses) — a spill-cost
    /// proxy: frequently-touched webs should keep register slots.
    uses: Vec<u32>,
}

impl InterferenceGraph {
    /// Build the interference graph of a web-form function.
    pub fn build(f: &Function, cfg: &Cfg, live: &Liveness) -> Self {
        let n = f.num_vregs();
        let mut adj = vec![BitSet::new(n); n];
        let add_edge = |adj: &mut Vec<BitSet>, a: usize, b: usize| {
            if a != b {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        };
        for (bid, blk) in f.iter_blocks() {
            if !cfg.reachable(bid) {
                continue;
            }
            // Walk backward keeping the live set; each def interferes
            // with everything live after the instruction.
            let mut cur = live.live_out[bid.0 as usize].clone();
            for inst in blk.insts.iter().rev() {
                for d in inst.defs() {
                    for l in cur.iter() {
                        add_edge(&mut adj, d.0 as usize, l);
                    }
                }
                // Multiple defs of one instruction (call rets) coexist.
                let defs: Vec<VReg> = inst.defs().collect();
                for (i, &a) in defs.iter().enumerate() {
                    for &b in &defs[i + 1..] {
                        add_edge(&mut adj, a.0 as usize, b.0 as usize);
                    }
                }
                for d in inst.defs() {
                    cur.remove(d.0 as usize);
                }
                for u in inst.uses() {
                    cur.insert(u.0 as usize);
                }
            }
            // Parameters interfere with anything live at entry alongside them.
            if bid.0 == 0 {
                let params: Vec<VReg> = f.params.clone();
                for (i, &a) in params.iter().enumerate() {
                    for &b in &params[i + 1..] {
                        add_edge(&mut adj, a.0 as usize, b.0 as usize);
                    }
                    for l in cur.iter() {
                        add_edge(&mut adj, a.0 as usize, l);
                    }
                }
            }
        }
        let mut uses = vec![0u32; n];
        for (_, blk) in f.iter_blocks() {
            for inst in &blk.insts {
                for r in inst.uses().chain(inst.defs()) {
                    uses[r.0 as usize] += 1;
                }
            }
        }
        InterferenceGraph { adj, widths: f.vreg_widths.clone(), uses }
    }

    /// Number of webs (nodes).
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when there are no webs.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Do webs `a` and `b` interfere?
    pub fn interferes(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(b)
    }

    /// Neighbors of web `v`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[v].iter()
    }

    /// Width of web `v`.
    pub fn width(&self, v: usize) -> Width {
        self.widths[v]
    }

    /// Static occurrence count of web `v` (spill-cost proxy).
    pub fn use_count(&self, v: usize) -> u32 {
        self.uses[v]
    }

    /// Degree weighted by neighbor words — the `v.edges` quantity of the
    /// paper's Figure 4, generalized for wide neighbors.
    pub fn weighted_degree(&self, v: usize, removed: &BitSet) -> u32 {
        self.adj[v]
            .iter()
            .filter(|&u| !removed.contains(u))
            .map(|u| u32::from(self.widths[u].words()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::ssa::normalize;
    use orion_kir::types::MemSpace;

    fn graph_of(f: &Function) -> InterferenceGraph {
        let nf = normalize(f).unwrap();
        let cfg = Cfg::new(&nf);
        let live = Liveness::new(&nf, &cfg);
        InterferenceGraph::build(&nf, &cfg, &live)
    }

    #[test]
    fn simultaneously_live_interfere() {
        let mut b = FunctionBuilder::kernel("k");
        let x = b.mov_i32(1);
        let y = b.mov_i32(2);
        let z = b.iadd(x, y);
        b.st(MemSpace::Global, Width::W32, Operand::Imm(0), z, 0);
        let f = b.finish();
        let g = graph_of(&f);
        // Webs are renumbered by normalize but the shape is: two sources
        // interfere; the sum interferes with neither (they die at the add).
        let n = g.len();
        assert_eq!(n, 3);
        let deg: Vec<usize> = (0..n).map(|v| g.neighbors(v).count()).collect();
        let interfering = deg.iter().filter(|&&d| d > 0).count();
        assert_eq!(interfering, 2);
    }

    #[test]
    fn sequential_values_do_not_interfere() {
        let mut b = FunctionBuilder::kernel("k");
        let x = b.mov_i32(1);
        b.st(MemSpace::Global, Width::W32, Operand::Imm(0), x, 0);
        let y = b.mov_i32(2);
        b.st(MemSpace::Global, Width::W32, Operand::Imm(4), y, 0);
        let f = b.finish();
        let g = graph_of(&f);
        assert_eq!(g.len(), 2);
        assert!(!g.interferes(0, 1));
    }

    #[test]
    fn weighted_degree_counts_words() {
        let mut b = FunctionBuilder::kernel("k");
        let wide = b.vreg(Width::W128);
        b.push(orion_kir::inst::Inst::new(
            orion_kir::inst::Opcode::Mov,
            Some(wide),
            vec![Operand::Imm(0)],
        ));
        let x = b.mov_i32(1);
        // Keep both live: store wide then x.
        b.st(MemSpace::Global, Width::W128, Operand::Imm(0), wide, 0);
        b.st(MemSpace::Global, Width::W32, Operand::Imm(16), x, 0);
        let f = b.finish();
        let g = graph_of(&f);
        // x's only neighbor is the 4-word wide value.
        let x_web = (0..g.len()).find(|&v| g.width(v) == Width::W32).unwrap();
        let removed = BitSet::new(g.len());
        assert_eq!(g.weighted_degree(x_web, &removed), 4);
    }
}
