//! The explicit pass pipeline behind [`crate::realize::allocate`].
//!
//! The §3.2 realize-occupancy flow is staged as named passes over a
//! shared [`PipelineState`], each producing one typed artifact:
//!
//! | stage        | pass                                            | artifact |
//! |--------------|-------------------------------------------------|----------|
//! | `normalize`  | [`NormalizePass`]                               | [`NormalizedModule`] — per-function webs + max-live |
//! | `color`      | [`ColorPass`]                                   | [`ColoredModule`] — colorings, units, call contexts, frame bases |
//! | `spill`      | [`SpillPass`]                                   | [`SpillSet`] — local-memory homes of spilled webs |
//! | `stack-plan` | [`StackPlanPass`]                               | [`StackPlan`] — per-call `B_k` + liveness for the layout model |
//! | `layout`     | [`KuhnMunkresLayoutPass`] / [`IdentityLayoutPass`] | [`SlotLayout`] — applied slot permutation + predicted moves |
//! | `lower`      | [`LowerPass`]                                   | [`Allocated`] — machine code + report |
//! | `mir-verify` | [`MirVerifyPass`]                               | gate: machine-IR invariants |
//!
//! [`Pipeline::standard`] assembles the production sequence for a given
//! [`AllocOptions`]; the Figure 5 ablations are *pipeline edits* —
//! `optimize_layout: false` replaces the `layout` stage with
//! [`IdentityLayoutPass`], `compress_stack: false` additionally swaps
//! in a non-compressing [`ColorPass`] — and custom experiments can do
//! the same through [`Pipeline::replace`] / [`Pipeline::insert_after`] /
//! [`Pipeline::remove`].
//!
//! ## Verified stage boundaries
//!
//! In verified mode (debug builds, the `verify` cargo feature, or
//! [`Pipeline::verified`]) the driver runs each pass's
//! [`Pass::check`] interceptor after the pass — coloring validity,
//! spill-slot disjointness, packed-height ≥ budget, post-layout
//! validity — and the final [`MirVerifyPass`] gates the lowered module
//! through [`orion_kir::mir_verify`] with the exact parallel-move run
//! boundaries recorded during lowering. Any failure surfaces as a
//! source-chained [`AllocError::Stage`] naming the offending stage.
//! Release builds without the feature skip all of it.
//!
//! Each pass runs under an `orion-telemetry` span (`alloc/<stage>`), so
//! traces show per-stage timing alongside the existing allocator
//! counters.

use crate::chaitin::{color, validate};
use crate::interference::InterferenceGraph;
use crate::layout::{apply_layout, identity_layout, optimize_layout, CallLayoutInfo};
use crate::realize::{
    chunk_widths, lower_inst, lower_operand, AllocError, AllocOptions, AllocReport, Allocated,
    CallSiteCtx, FuncAllocInfo, FuncCtx, SlotBudget, SCRATCH_SLOTS,
};
use crate::stack::{
    extract_units, live_units, min_packed_height, pack_live_units, sequentialize, PMove, Unit,
};
use orion_kir::bitset::BitSet;
use orion_kir::callgraph::CallGraph;
use orion_kir::cfg::Cfg;
use orion_kir::function::{Function, Module};
use orion_kir::inst::Opcode;
use orion_kir::liveness::{max_live, Liveness};
use orion_kir::mir::{MBlock, MFunction, MInst, MLoc, MModule};
use orion_kir::mir_verify::{verify_mir_with, MirVerifyConfig, MoveRuns};
use orion_kir::ssa::normalize;
use orion_kir::types::{FuncId, Width};
use std::collections::HashMap;

/// Whether stage-boundary verification is compiled in: debug builds and
/// the `verify` cargo feature. [`Pipeline::verified`] forces it on per
/// pipeline regardless.
pub fn verification_enabled() -> bool {
    cfg!(debug_assertions) || cfg!(feature = "verify")
}

/// One normalized function: φ-coalesced webs plus its max-live metric.
#[derive(Debug, Clone)]
pub struct NormFunc {
    /// The web-normalized function body.
    pub nf: Function,
    /// Max simultaneously live words (§3.3 direction metric).
    pub max_live: u32,
}

/// Artifact of `normalize`: the call-graph traversal order and each
/// reachable function's webs.
#[derive(Debug, Clone)]
pub struct NormalizedModule {
    /// Functions in caller-before-callee order.
    pub topdown: Vec<FuncId>,
    /// Indexed by function id; `None` for call-graph-unreachable funcs.
    pub funcs: Vec<Option<NormFunc>>,
}

/// One colored function: slots, movable units, analyzed call sites.
#[derive(Debug, Clone)]
pub struct ColoredFunc {
    /// Web → slot assignment (relative to `base`) and spill list.
    pub coloring: crate::chaitin::Coloring,
    /// Movable slot groups for stack compression.
    pub units: Vec<Unit>,
    /// Call sites in lowering order with caller-unit liveness.
    pub calls: Vec<CallSiteCtx>,
    /// Absolute frame base this function was colored at.
    pub base: u16,
}

/// Artifact of `color`: per-function colorings plus the final absolute
/// frame base of every function (raised while scanning call sites).
#[derive(Debug, Clone)]
pub struct ColoredModule {
    /// Indexed by function id.
    pub funcs: Vec<Option<ColoredFunc>>,
    /// Final absolute frame base per function id.
    pub bases: Vec<u16>,
}

/// Artifact of `spill`: local-memory homes for every spilled web.
#[derive(Debug, Clone)]
pub struct SpillSet {
    /// Per function id: spilled web → first local slot.
    pub slots: Vec<HashMap<usize, u16>>,
    /// Total local slots consumed (scratch area included).
    pub local_slots: u16,
}

/// Artifact of `stack-plan`: the layout model's per-call inputs
/// (`B_k` and unit liveness), per function id.
#[derive(Debug, Clone)]
pub struct StackPlan {
    /// Indexed by function id, then call site in lowering order.
    pub call_infos: Vec<Vec<CallLayoutInfo>>,
}

/// Artifact of `layout`: the permutation has been applied in place to
/// the colorings/units; this records the Theorem 1 move prediction.
#[derive(Debug, Clone)]
pub struct SlotLayout {
    /// Predicted compression moves per function id (the KM objective).
    pub predicted_moves: Vec<u32>,
}

/// Mutable state threaded through the passes. Each stage reads the
/// artifacts of its predecessors and stores its own.
pub struct PipelineState<'m> {
    /// The input module.
    pub module: &'m Module,
    /// The per-thread on-chip slot budget being realized.
    pub budget: SlotBudget,
    /// Whether stage-boundary checks are active for this run.
    pub verify: bool,
    /// Artifact of the `normalize` stage.
    pub normalized: Option<NormalizedModule>,
    /// Artifact of the `color` stage.
    pub colored: Option<ColoredModule>,
    /// Artifact of the `spill` stage.
    pub spills: Option<SpillSet>,
    /// Artifact of the `stack-plan` stage.
    pub stack: Option<StackPlan>,
    /// Artifact of the `layout` stage.
    pub layout: Option<SlotLayout>,
    /// Artifact of the `lower` stage: the final machine code + report.
    pub output: Option<Allocated>,
    /// Exact parallel-move block boundaries emitted by `lower`,
    /// consumed by `mir-verify` (not part of the machine code).
    pub move_runs: MoveRuns,
}

impl<'m> PipelineState<'m> {
    /// Fresh state over `module` and `budget`.
    pub fn new(module: &'m Module, budget: SlotBudget, verify: bool) -> Self {
        PipelineState {
            module,
            budget,
            verify,
            normalized: None,
            colored: None,
            spills: None,
            stack: None,
            layout: None,
            output: None,
            move_runs: MoveRuns::new(),
        }
    }
}

/// A required artifact was missing: a pass ran before its producer.
fn missing(stage: &str, artifact: &str) -> AllocError {
    AllocError::Internal(format!(
        "stage `{stage}` requires the `{artifact}` artifact, but no prior pass produced it"
    ))
}

/// One named stage of the allocation pipeline.
pub trait Pass {
    /// Stable stage name used for pipeline edits and telemetry spans.
    fn name(&self) -> &'static str;

    /// Produce this stage's artifact in `st`.
    ///
    /// # Errors
    /// Domain errors ([`AllocError::Ssa`], [`AllocError::Recursion`],
    /// [`AllocError::PredicatedCall`]) propagate as-is; anything else
    /// is wrapped by the driver into [`AllocError::Stage`].
    fn run(&self, st: &mut PipelineState<'_>) -> Result<(), AllocError>;

    /// Stage-boundary invariant check, run after [`Pass::run`] in
    /// verified mode only.
    ///
    /// # Errors
    /// Returns a diagnostic (wrapped into [`AllocError::Stage`] by the
    /// driver) when the artifact just produced violates an invariant.
    fn check(&self, _st: &PipelineState<'_>) -> Result<(), AllocError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// normalize
// ---------------------------------------------------------------------

/// `normalize`: call-graph order + SSA → pruned φ → coalesced webs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizePass;

impl Pass for NormalizePass {
    fn name(&self) -> &'static str {
        "normalize"
    }

    fn run(&self, st: &mut PipelineState<'_>) -> Result<(), AllocError> {
        let module = st.module;
        let cg = CallGraph::new(module);
        let bottom_up = cg.bottom_up(module.entry)?;
        let topdown: Vec<FuncId> = bottom_up.iter().rev().copied().collect();
        let mut funcs: Vec<Option<NormFunc>> = (0..module.funcs.len()).map(|_| None).collect();
        for &fid in &topdown {
            let nf = normalize(module.func(fid))?;
            let cfg = Cfg::new(&nf);
            let live = Liveness::new(&nf, &cfg);
            let ml = max_live(&nf, &cfg, &live);
            funcs[fid.0 as usize] = Some(NormFunc { nf, max_live: ml });
        }
        st.normalized = Some(NormalizedModule { topdown, funcs });
        Ok(())
    }
}

// ---------------------------------------------------------------------
// color
// ---------------------------------------------------------------------

/// `color`: Chaitin-Briggs per function in caller-first order, unit
/// extraction, call-site liveness, and frame-base raising.
///
/// `compress` selects the paper's space minimization: callee frames
/// start at the caller's *compressed* live height `B_k` instead of
/// above its whole frame. `ColorPass { compress: false }` is the
/// Figure 5 "no stack compression" ablation as a pipeline edit.
#[derive(Debug, Clone, Copy)]
pub struct ColorPass {
    /// Compress caller frames at calls (the default).
    pub compress: bool,
}

impl Pass for ColorPass {
    fn name(&self) -> &'static str {
        "color"
    }

    fn run(&self, st: &mut PipelineState<'_>) -> Result<(), AllocError> {
        let norm = st.normalized.as_ref().ok_or_else(|| missing(self.name(), "normalize"))?;
        let total = st.budget.total();
        let n = st.module.funcs.len();
        let mut bases = vec![0u16; n];
        let mut funcs: Vec<Option<ColoredFunc>> = (0..n).map(|_| None).collect();
        for &fid in &norm.topdown {
            let nf = &norm.funcs[fid.0 as usize]
                .as_ref()
                .ok_or_else(|| missing(self.name(), "normalize"))?
                .nf;
            let cfg = Cfg::new(nf);
            let live = Liveness::new(nf, &cfg);
            let graph = InterferenceGraph::build(nf, &cfg, &live);
            let base = bases[fid.0 as usize];
            let fbudget = total.saturating_sub(base);
            let coloring = color(&graph, fbudget, base, &[])?;
            let units = extract_units(&coloring, &nf.vreg_widths)?;

            let mut calls = Vec::new();
            for (bid, blk) in nf.iter_blocks() {
                if !cfg.reachable(bid) {
                    continue;
                }
                for (idx, inst) in blk.insts.iter().enumerate() {
                    let Opcode::Call(callee) = inst.op else { continue };
                    if inst.pred.is_some() {
                        return Err(AllocError::PredicatedCall { func: nf.name.clone() });
                    }
                    let live_webs: BitSet = {
                        let mut s = BitSet::new(nf.num_vregs());
                        for v in live.live_across(nf, bid, idx) {
                            s.insert(v.0 as usize);
                        }
                        s
                    };
                    let lu = live_units(&units, &live_webs);
                    let bk_min = if self.compress {
                        min_packed_height(&units, &lu).min(coloring.frame_size)
                    } else {
                        coloring.frame_size
                    };
                    let cb = &mut bases[callee.0 as usize];
                    *cb = (*cb).max(base + bk_min);
                    calls.push(CallSiteCtx { callee, live_units: lu });
                }
            }
            orion_telemetry::counter("alloc", "spilled_webs", coloring.spilled.len() as u64);
            funcs[fid.0 as usize] = Some(ColoredFunc { coloring, units, calls, base });
        }
        st.colored = Some(ColoredModule { funcs, bases });
        Ok(())
    }

    fn check(&self, st: &PipelineState<'_>) -> Result<(), AllocError> {
        let norm = st.normalized.as_ref().ok_or_else(|| missing(self.name(), "normalize"))?;
        let colored = st.colored.as_ref().ok_or_else(|| missing(self.name(), "color"))?;
        let total = st.budget.total();
        for &fid in &norm.topdown {
            let i = fid.0 as usize;
            let (Some(nf), Some(cf)) = (&norm.funcs[i], &colored.funcs[i]) else {
                return Err(AllocError::Internal(format!(
                    "color check: function {i} missing an artifact"
                )));
            };
            let cfg = Cfg::new(&nf.nf);
            let live = Liveness::new(&nf.nf, &cfg);
            let graph = InterferenceGraph::build(&nf.nf, &cfg, &live);
            validate(&graph, cf.base, &cf.coloring).map_err(|detail| {
                AllocError::Internal(format!("{}: invalid coloring: {detail}", nf.nf.name))
            })?;
            if cf.base + cf.coloring.frame_size > total {
                return Err(AllocError::Internal(format!(
                    "{}: frame [{}, {}) exceeds the {total}-slot budget",
                    nf.nf.name,
                    cf.base,
                    cf.base + cf.coloring.frame_size
                )));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// spill
// ---------------------------------------------------------------------

/// `spill`: assign ascending local-memory slots (above the move
/// scratch) to every spilled web, in the same traversal order the
/// coloring produced them.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpillPass;

impl Pass for SpillPass {
    fn name(&self) -> &'static str {
        "spill"
    }

    fn run(&self, st: &mut PipelineState<'_>) -> Result<(), AllocError> {
        let norm = st.normalized.as_ref().ok_or_else(|| missing(self.name(), "normalize"))?;
        let colored = st.colored.as_ref().ok_or_else(|| missing(self.name(), "color"))?;
        let mut slots: Vec<HashMap<usize, u16>> =
            (0..st.module.funcs.len()).map(|_| HashMap::new()).collect();
        let mut local_counter: u16 = SCRATCH_SLOTS;
        for &fid in &norm.topdown {
            let i = fid.0 as usize;
            let (Some(nf), Some(cf)) = (&norm.funcs[i], &colored.funcs[i]) else {
                return Err(AllocError::Internal(format!(
                    "spill: function {i} missing an artifact"
                )));
            };
            for &w in &cf.coloring.spilled {
                slots[i].insert(w, local_counter);
                local_counter += nf.nf.vreg_widths[w].words();
            }
        }
        st.spills = Some(SpillSet { slots, local_slots: local_counter });
        Ok(())
    }

    fn check(&self, st: &PipelineState<'_>) -> Result<(), AllocError> {
        let norm = st.normalized.as_ref().ok_or_else(|| missing(self.name(), "normalize"))?;
        let spills = st.spills.as_ref().ok_or_else(|| missing(self.name(), "spill"))?;
        let mut used = vec![false; usize::from(spills.local_slots)];
        for (i, per_func) in spills.slots.iter().enumerate() {
            let widths = norm.funcs[i].as_ref().map(|f| &f.nf.vreg_widths);
            for (&web, &start) in per_func {
                if start < SCRATCH_SLOTS {
                    return Err(AllocError::Internal(format!(
                        "spill check: web {web} of function {i} at local slot {start} \
                         inside the {SCRATCH_SLOTS}-slot scratch area"
                    )));
                }
                let words = widths.and_then(|w| w.get(web)).map_or(1, |w| w.words());
                for k in start..start + words {
                    let cell = used.get_mut(usize::from(k)).ok_or_else(|| {
                        AllocError::Internal(format!(
                            "spill check: web {web} of function {i} exceeds the \
                             {}-slot local area",
                            spills.local_slots
                        ))
                    })?;
                    if *cell {
                        return Err(AllocError::Internal(format!(
                            "spill check: local slot {k} assigned twice"
                        )));
                    }
                    *cell = true;
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// stack-plan
// ---------------------------------------------------------------------

/// `stack-plan`: finalize frame bases (they may have been raised after
/// a function was colored) and derive the layout model's per-call
/// inputs — compressed height `B_k` and unit liveness.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackPlanPass;

impl Pass for StackPlanPass {
    fn name(&self) -> &'static str {
        "stack-plan"
    }

    fn run(&self, st: &mut PipelineState<'_>) -> Result<(), AllocError> {
        let norm = st.normalized.as_ref().ok_or_else(|| missing(self.name(), "normalize"))?;
        let colored = st.colored.as_mut().ok_or_else(|| missing(self.name(), "color"))?;
        let bases = colored.bases.clone();
        let mut call_infos: Vec<Vec<CallLayoutInfo>> =
            (0..st.module.funcs.len()).map(|_| Vec::new()).collect();
        for &fid in &norm.topdown {
            let i = fid.0 as usize;
            let cf = colored.funcs[i].as_mut().ok_or_else(|| missing(self.name(), "color"))?;
            cf.base = bases[i]; // raised after coloring by earlier callers
            call_infos[i] = cf
                .calls
                .iter()
                .map(|c| CallLayoutInfo {
                    bk: bases[c.callee.0 as usize].saturating_sub(bases[i]),
                    live: c.live_units.clone(),
                })
                .collect();
        }
        st.stack = Some(StackPlan { call_infos });
        Ok(())
    }

    fn check(&self, st: &PipelineState<'_>) -> Result<(), AllocError> {
        let norm = st.normalized.as_ref().ok_or_else(|| missing(self.name(), "normalize"))?;
        let colored = st.colored.as_ref().ok_or_else(|| missing(self.name(), "color"))?;
        let stack = st.stack.as_ref().ok_or_else(|| missing(self.name(), "stack-plan"))?;
        for &fid in &norm.topdown {
            let i = fid.0 as usize;
            let cf = colored.funcs[i].as_ref().ok_or_else(|| missing(self.name(), "color"))?;
            for (k, (info, call)) in stack.call_infos[i].iter().zip(&cf.calls).enumerate() {
                // Budgeted height must fit the live units: at worst the
                // whole frame stays in place (bk == frame_size).
                let need = min_packed_height(&cf.units, &info.live).min(cf.coloring.frame_size);
                if info.bk < need {
                    return Err(AllocError::Internal(format!(
                        "stack-plan check: call #{k} of function {i} budgets bk={} \
                         below the minimal packed height {need}",
                        info.bk
                    )));
                }
                // Frame bases are monotone along call edges.
                if colored.bases[call.callee.0 as usize] < colored.bases[i] {
                    return Err(AllocError::Internal(format!(
                        "stack-plan check: callee {} frame base {} below caller {} base {}",
                        call.callee.0, colored.bases[call.callee.0 as usize], i, colored.bases[i]
                    )));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// layout
// ---------------------------------------------------------------------

fn run_layout(st: &mut PipelineState<'_>, stage: &str, optimized: bool) -> Result<(), AllocError> {
    let norm = st.normalized.as_ref().ok_or_else(|| missing(stage, "normalize"))?;
    let colored = st.colored.as_mut().ok_or_else(|| missing(stage, "color"))?;
    let stack = st.stack.as_ref().ok_or_else(|| missing(stage, "stack-plan"))?;
    let mut predicted_moves: Vec<u32> = vec![0; st.module.funcs.len()];
    for &fid in &norm.topdown {
        let i = fid.0 as usize;
        let (Some(nf), Some(cf)) = (&norm.funcs[i], colored.funcs[i].as_mut()) else {
            return Err(AllocError::Internal(format!("{stage}: function {i} missing an artifact")));
        };
        let infos = &stack.call_infos[i];
        let plan = if optimized {
            optimize_layout(&cf.units, infos)
        } else {
            identity_layout(&cf.units, infos)
        };
        predicted_moves[i] = plan.total_moves;
        if orion_telemetry::is_enabled() {
            // The Kuhn-Munkres objective value: compression moves the
            // chosen layout is predicted to cost across all call sites.
            orion_telemetry::instant(
                "alloc",
                "layout_plan",
                vec![
                    ("func", nf.nf.name.as_str().into()),
                    ("predicted_moves", plan.total_moves.into()),
                    ("optimized", optimized.into()),
                ],
            );
        }
        apply_layout(&mut cf.coloring.slot_of, &cf.units, &plan);
        for (u, &start) in cf.units.iter_mut().zip(&plan.new_start) {
            u.start = start;
            u.residue = u.start % u.align;
        }
    }
    st.layout = Some(SlotLayout { predicted_moves });
    Ok(())
}

fn check_layout(st: &PipelineState<'_>, stage: &str) -> Result<(), AllocError> {
    let norm = st.normalized.as_ref().ok_or_else(|| missing(stage, "normalize"))?;
    let colored = st.colored.as_ref().ok_or_else(|| missing(stage, "color"))?;
    for &fid in &norm.topdown {
        let i = fid.0 as usize;
        let (Some(nf), Some(cf)) = (&norm.funcs[i], &colored.funcs[i]) else {
            return Err(AllocError::Internal(format!("{stage}: function {i} missing an artifact")));
        };
        // The permutation must keep the coloring valid (it only relocates
        // whole units, so interference and alignment must still hold).
        let cfg = Cfg::new(&nf.nf);
        let live = Liveness::new(&nf.nf, &cfg);
        let graph = InterferenceGraph::build(&nf.nf, &cfg, &live);
        validate(&graph, cf.base, &cf.coloring).map_err(|detail| {
            AllocError::Internal(format!("{}: layout broke the coloring: {detail}", nf.nf.name))
        })?;
        let mut used = vec![false; usize::from(cf.coloring.frame_size)];
        for (k, u) in cf.units.iter().enumerate() {
            if u.start % u.align != u.residue {
                return Err(AllocError::Internal(format!(
                    "{}: unit {k} lost its alignment residue",
                    nf.nf.name
                )));
            }
            for s in u.start..u.start + u.width {
                let cell = used.get_mut(usize::from(s)).ok_or_else(|| {
                    AllocError::Internal(format!(
                        "{}: unit {k} placed outside the {}-slot frame",
                        nf.nf.name, cf.coloring.frame_size
                    ))
                })?;
                if *cell {
                    return Err(AllocError::Internal(format!(
                        "{}: units overlap at slot {s}",
                        nf.nf.name
                    )));
                }
                *cell = true;
            }
        }
    }
    Ok(())
}

/// `layout`: permute single-slot units with Kuhn-Munkres to minimize
/// predicted compression moves (Theorem 1) — the production layout.
#[derive(Debug, Clone, Copy, Default)]
pub struct KuhnMunkresLayoutPass;

impl Pass for KuhnMunkresLayoutPass {
    fn name(&self) -> &'static str {
        "layout"
    }

    fn run(&self, st: &mut PipelineState<'_>) -> Result<(), AllocError> {
        run_layout(st, self.name(), true)
    }

    fn check(&self, st: &PipelineState<'_>) -> Result<(), AllocError> {
        check_layout(st, self.name())
    }
}

/// `layout`: keep the colored slot assignment as-is — the Figure 5
/// "no data-movement minimization" ablation as a pipeline edit.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityLayoutPass;

impl Pass for IdentityLayoutPass {
    fn name(&self) -> &'static str {
        "layout"
    }

    fn run(&self, st: &mut PipelineState<'_>) -> Result<(), AllocError> {
        run_layout(st, self.name(), false)
    }

    fn check(&self, st: &PipelineState<'_>) -> Result<(), AllocError> {
        check_layout(st, self.name())
    }
}

// ---------------------------------------------------------------------
// lower
// ---------------------------------------------------------------------

/// `lower`: materialize machine code — compression/restore and
/// argument/return moves sequentialized per call site — plus the
/// allocation report.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerPass;

impl Pass for LowerPass {
    fn name(&self) -> &'static str {
        "lower"
    }

    fn run(&self, st: &mut PipelineState<'_>) -> Result<(), AllocError> {
        let module = st.module;
        let budget = st.budget;
        let norm = st.normalized.as_ref().ok_or_else(|| missing(self.name(), "normalize"))?;
        let colored = st.colored.as_ref().ok_or_else(|| missing(self.name(), "color"))?;
        let spills = st.spills.as_ref().ok_or_else(|| missing(self.name(), "spill"))?;
        let layout = st.layout.as_ref().ok_or_else(|| missing(self.name(), "layout"))?;
        let topdown = &norm.topdown;
        let bases = &colored.bases;
        let n = module.funcs.len();

        // Assemble the per-function lowering view from the artifacts.
        let mut ctxs: Vec<Option<FuncCtx>> = Vec::with_capacity(n);
        for i in 0..n {
            match (&norm.funcs[i], &colored.funcs[i]) {
                (Some(nf), Some(cf)) => ctxs.push(Some(FuncCtx {
                    nf: nf.nf.clone(),
                    coloring: cf.coloring.clone(),
                    units: cf.units.clone(),
                    calls: cf.calls.clone(),
                    base: cf.base,
                    spill_slot: spills.slots[i].clone(),
                    max_live: nf.max_live,
                })),
                (None, None) => ctxs.push(None),
                _ => {
                    return Err(AllocError::Internal(format!(
                        "lower: function {i} has mismatched normalize/color artifacts"
                    )));
                }
            }
        }

        let scratch = MLoc::local(0, Width::W128);
        let mut mfuncs: Vec<MFunction> = Vec::with_capacity(n);
        let mut static_moves: u32 = 0;
        // Pre-compute param/ret slots for every function (needed by callers).
        let param_ret_slots: Vec<Option<(Vec<MLoc>, Vec<MLoc>)>> = (0..n)
            .map(|i| {
                ctxs[i].as_ref().map(|c| {
                    let p = c.nf.params.iter().map(|r| c.loc(r.0 as usize)).collect();
                    let r = c.nf.rets.iter().map(|r| c.loc(r.0 as usize)).collect();
                    (p, r)
                })
            })
            .collect();

        for i in 0..n {
            let Some(ctx) = &ctxs[i] else {
                // Unreachable function: emit an empty stub.
                mfuncs.push(MFunction {
                    name: module.func(FuncId(i as u32)).name.clone(),
                    frame_base: 0,
                    frame_size: 0,
                    param_slots: vec![],
                    ret_slots: vec![],
                    blocks: vec![],
                });
                continue;
            };
            let mut blocks = Vec::with_capacity(ctx.nf.num_blocks());
            let mut call_cursor = 0usize;
            // Re-walk blocks in the same order as the color stage to line
            // up call contexts; unreachable blocks contain no analyzed calls.
            let cfg = Cfg::new(&ctx.nf);
            for (bid, blk) in ctx.nf.iter_blocks() {
                let mut insts: Vec<MInst> = Vec::with_capacity(blk.insts.len());
                for inst in &blk.insts {
                    if let Opcode::Call(callee) = inst.op {
                        if !cfg.reachable(bid) {
                            continue; // never executed; drop
                        }
                        let cctx = ctx.calls.get(call_cursor).ok_or_else(|| {
                            AllocError::Internal(format!(
                                "{}: call #{call_cursor} was not analyzed by the color stage",
                                ctx.nf.name
                            ))
                        })?;
                        if cctx.callee != callee {
                            return Err(AllocError::Internal(format!(
                                "{}: call #{call_cursor} targets {} but the color stage \
                                 recorded {}",
                                ctx.nf.name, callee.0, cctx.callee.0
                            )));
                        }
                        call_cursor += 1;
                        let bk = bases[callee.0 as usize].saturating_sub(ctx.base);
                        let placement = pack_live_units(&ctx.units, &cctx.live_units, bk)?;
                        let (pslots, rslots) =
                            param_ret_slots[callee.0 as usize].as_ref().ok_or_else(|| {
                                AllocError::Internal(format!(
                                    "{}: callee {} is called but has no param/ret slots \
                                     (unreachable in the call graph?)",
                                    ctx.nf.name, callee.0
                                ))
                            })?;
                        // Pre-call parallel move set: compression + arguments.
                        // Units wider than four words move in chunks (a
                        // single MLoc covers at most a W128).
                        let mut pre: Vec<PMove> = Vec::new();
                        for &(ui, newpos) in &placement {
                            let u = &ctx.units[ui];
                            if newpos != u.start {
                                for (off, w) in chunk_widths(u.width) {
                                    pre.push(PMove {
                                        dst: MLoc::onchip(ctx.base + newpos + off, w),
                                        src: MLoc::onchip(ctx.base + u.start + off, w).into(),
                                    });
                                }
                            }
                        }
                        let ci = inst.call.as_ref().ok_or_else(|| {
                            AllocError::Internal(format!(
                                "{}: Call instruction carries no call info (unverified module?)",
                                ctx.nf.name
                            ))
                        })?;
                        for (arg, &pslot) in ci.args.iter().zip(pslots) {
                            pre.push(PMove { dst: pslot, src: lower_operand(ctx, arg) });
                        }
                        let pre_insts = sequentialize(&pre, scratch)?;
                        let pre_count = pre_insts.len();
                        if !pre_insts.is_empty() {
                            st.move_runs.note(i, blocks.len(), insts.len());
                        }
                        static_moves += pre_insts.len() as u32;
                        insts.extend(pre_insts);
                        insts.push(MInst::new(Opcode::Call(callee), None, vec![]));
                        // Post-call parallel move set: returns + restores.
                        let mut post: Vec<PMove> = Vec::new();
                        for (&ret_web, &rslot) in ci.rets.iter().zip(rslots) {
                            post.push(PMove {
                                dst: ctx.loc(ret_web.0 as usize),
                                src: rslot.into(),
                            });
                        }
                        for &(ui, newpos) in &placement {
                            let u = &ctx.units[ui];
                            if newpos != u.start {
                                for (off, w) in chunk_widths(u.width) {
                                    post.push(PMove {
                                        dst: MLoc::onchip(ctx.base + u.start + off, w),
                                        src: MLoc::onchip(ctx.base + newpos + off, w).into(),
                                    });
                                }
                            }
                        }
                        let post_insts = sequentialize(&post, scratch)?;
                        if orion_telemetry::is_enabled() {
                            orion_telemetry::instant(
                                "alloc",
                                "call_site_moves",
                                vec![
                                    ("func", ctx.nf.name.as_str().into()),
                                    ("call_index", (call_cursor - 1).into()),
                                    ("pre_moves", pre_count.into()),
                                    ("post_moves", post_insts.len().into()),
                                ],
                            );
                        }
                        if !post_insts.is_empty() {
                            st.move_runs.note(i, blocks.len(), insts.len());
                        }
                        static_moves += post_insts.len() as u32;
                        insts.extend(post_insts);
                    } else {
                        insts.push(lower_inst(ctx, inst));
                    }
                }
                blocks.push(MBlock { insts, term: blk.term.clone() });
            }
            let (pslots, rslots) = param_ret_slots[i]
                .as_ref()
                .ok_or_else(|| {
                    AllocError::Internal(format!(
                        "function {i} has a context but no param/ret slots"
                    ))
                })?
                .clone();
            mfuncs.push(MFunction {
                name: ctx.nf.name.clone(),
                frame_base: ctx.base,
                frame_size: ctx.coloring.frame_size,
                param_slots: pslots,
                ret_slots: rslots,
                blocks,
            });
        }

        let mut peak_abs: u16 = 0;
        for f in topdown {
            let c = ctxs[f.0 as usize].as_ref().ok_or_else(|| {
                AllocError::Internal(format!("function {} lost its context after lowering", f.0))
            })?;
            peak_abs = peak_abs.max(c.base + c.coloring.frame_size);
        }
        let regs_per_thread = budget.reg_slots.min(peak_abs);
        let smem_slots_per_thread = peak_abs.saturating_sub(regs_per_thread);
        orion_telemetry::counter("alloc", "smem_promoted_slots", u64::from(smem_slots_per_thread));
        orion_telemetry::counter(
            "alloc",
            "spill_slots",
            u64::from(spills.local_slots.saturating_sub(SCRATCH_SLOTS)),
        );
        orion_telemetry::counter("alloc", "static_moves", u64::from(static_moves));

        let mut per_func = Vec::with_capacity(topdown.len());
        for f in topdown {
            let c = ctxs[f.0 as usize].as_ref().ok_or_else(|| {
                AllocError::Internal(format!("function {} lost its context after lowering", f.0))
            })?;
            per_func.push(FuncAllocInfo {
                name: c.nf.name.clone(),
                base: c.base,
                frame_size: c.coloring.frame_size,
                spilled_webs: c.coloring.spilled.len(),
                call_sites: c.calls.len(),
                predicted_moves: layout.predicted_moves[f.0 as usize],
            });
        }
        let report = AllocReport {
            kernel_max_live: ctxs[module.entry.0 as usize]
                .as_ref()
                .ok_or_else(|| {
                    AllocError::Internal(format!(
                        "entry function {} was never allocated",
                        module.entry.0
                    ))
                })?
                .max_live,
            regs_per_thread,
            smem_slots_per_thread,
            local_slots_per_thread: spills.local_slots,
            static_moves,
            per_func,
        };

        let machine = MModule {
            funcs: mfuncs,
            entry: module.entry,
            regs_per_thread,
            smem_slots_per_thread,
            local_slots_per_thread: spills.local_slots,
            user_smem_bytes: module.user_smem_bytes,
            static_stack_moves: static_moves,
        };
        st.output = Some(Allocated { machine, report });
        Ok(())
    }
}

// ---------------------------------------------------------------------
// mir-verify
// ---------------------------------------------------------------------

/// `mir-verify`: gate the lowered module through the machine-IR
/// verifier (slot ranges, wide alignment, move ordering with the exact
/// run boundaries recorded by `lower`, frame-base monotonicity).
/// No-op outside verified mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct MirVerifyPass;

impl Pass for MirVerifyPass {
    fn name(&self) -> &'static str {
        "mir-verify"
    }

    fn run(&self, st: &mut PipelineState<'_>) -> Result<(), AllocError> {
        if !st.verify {
            return Ok(());
        }
        let out = st.output.as_ref().ok_or_else(|| missing(self.name(), "lower"))?;
        let cfg = MirVerifyConfig { scratch_slots: SCRATCH_SLOTS };
        verify_mir_with(&out.machine, &cfg, Some(&st.move_runs)).map_err(AllocError::MirVerify)
    }
}

// ---------------------------------------------------------------------
// pipeline
// ---------------------------------------------------------------------

/// An ordered sequence of named passes plus the verification switch.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
    verify: bool,
}

impl Pipeline {
    /// The production pipeline realizing `opts`: ablations select
    /// passes here instead of branching inside them.
    pub fn standard(opts: &AllocOptions) -> Self {
        let layout: Box<dyn Pass> = if opts.optimize_layout && opts.compress_stack {
            Box::new(KuhnMunkresLayoutPass)
        } else {
            Box::new(IdentityLayoutPass)
        };
        Pipeline {
            passes: vec![
                Box::new(NormalizePass),
                Box::new(ColorPass { compress: opts.compress_stack }),
                Box::new(SpillPass),
                Box::new(StackPlanPass),
                layout,
                Box::new(LowerPass),
                Box::new(MirVerifyPass),
            ],
            verify: verification_enabled(),
        }
    }

    /// [`Pipeline::standard`] with stage-boundary verification forced
    /// on, regardless of build configuration.
    pub fn verified(opts: &AllocOptions) -> Self {
        let mut p = Self::standard(opts);
        p.verify = true;
        p
    }

    /// Force stage-boundary verification on or off for this pipeline.
    pub fn set_verify(&mut self, on: bool) {
        self.verify = on;
    }

    /// Stage names in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    fn position(&self, name: &str) -> Option<usize> {
        self.passes.iter().position(|p| p.name() == name)
    }

    /// Replace the stage called `name`; returns `false` when absent.
    pub fn replace(&mut self, name: &str, pass: Box<dyn Pass>) -> bool {
        match self.position(name) {
            Some(i) => {
                self.passes[i] = pass;
                true
            }
            None => false,
        }
    }

    /// Remove the stage called `name`; returns `false` when absent.
    pub fn remove(&mut self, name: &str) -> bool {
        match self.position(name) {
            Some(i) => {
                self.passes.remove(i);
                true
            }
            None => false,
        }
    }

    /// Insert `pass` right after the stage called `name`; returns
    /// `false` (without inserting) when absent.
    pub fn insert_after(&mut self, name: &str, pass: Box<dyn Pass>) -> bool {
        match self.position(name) {
            Some(i) => {
                self.passes.insert(i + 1, pass);
                true
            }
            None => false,
        }
    }

    /// Append a pass at the end.
    pub fn push(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Drive the passes over `module` under `budget`.
    ///
    /// # Errors
    /// Domain errors propagate untouched; pass invariant violations and
    /// verifier rejections arrive as [`AllocError::Stage`] naming the
    /// stage, with the original diagnostic as the chained source.
    pub fn run(&self, module: &Module, budget: SlotBudget) -> Result<Allocated, AllocError> {
        let mut st = PipelineState::new(module, budget, self.verify);
        for pass in &self.passes {
            let _span = orion_telemetry::span("alloc", pass.name());
            pass.run(&mut st).map_err(|e| stage_error(pass.name(), e))?;
            if self.verify {
                pass.check(&st).map_err(|e| stage_error(pass.name(), e))?;
            }
        }
        st.output.take().ok_or_else(|| {
            AllocError::Internal(
                "pipeline finished without producing machine code (no lower stage?)".to_string(),
            )
        })
    }
}

/// Attribute a pass failure to its stage; domain errors (which existing
/// callers match on directly) pass through unwrapped.
fn stage_error(stage: &'static str, e: AllocError) -> AllocError {
    match e {
        e @ (AllocError::Ssa(_)
        | AllocError::Recursion(_)
        | AllocError::PredicatedCall { .. }
        | AllocError::Stage { .. }) => e,
        other => AllocError::Stage { stage, source: Box::new(other) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realize::allocate;
    use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg};

    fn call_module() -> Module {
        let kb = FunctionBuilder::kernel("k");
        let mut m = Module::new(kb.finish());
        let fdiv = m.add_func(build_fdiv_device());
        let mut kb = FunctionBuilder::kernel("k");
        let keep = kb.mov_i32(11);
        let x = kb.mov_f32(10.0);
        let y = kb.mov_f32(4.0);
        let q = kb.call(fdiv, vec![x.into(), y.into()], &[Width::W32]);
        let s = kb.iadd(keep, q[0]);
        kb.st(MemSpace::Global, Width::W32, Operand::Imm(0), s, 0);
        m.funcs[0] = kb.finish();
        m
    }

    fn simple_module() -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let a = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, a, 0);
        let y = b.iadd(x, Operand::Imm(5));
        b.st(MemSpace::Global, Width::W32, a, y, 0);
        Module::new(b.finish())
    }

    #[test]
    fn standard_stage_names() {
        let p = Pipeline::standard(&AllocOptions::default());
        assert_eq!(
            p.stage_names(),
            ["normalize", "color", "spill", "stack-plan", "layout", "lower", "mir-verify"]
        );
    }

    /// The Figure 5 ablation flags map 1:1 to pipeline edits: toggling
    /// an `AllocOptions` field produces the same binary as editing the
    /// default pipeline by hand.
    #[test]
    fn options_are_pipeline_edits() {
        let m = call_module();
        let budget = SlotBudget { reg_slots: 32, smem_slots: 0 };

        // optimize_layout: false  ==  replace the layout stage.
        let via_opts =
            Pipeline::verified(&AllocOptions { compress_stack: true, optimize_layout: false })
                .run(&m, budget)
                .unwrap();
        let mut edited = Pipeline::verified(&AllocOptions::default());
        assert!(edited.replace("layout", Box::new(IdentityLayoutPass)));
        let via_edit = edited.run(&m, budget).unwrap();
        assert_eq!(via_opts.machine, via_edit.machine);
        assert_eq!(via_opts.report, via_edit.report);

        // compress_stack: false  ==  also swap in a non-compressing color.
        let via_opts =
            Pipeline::verified(&AllocOptions { compress_stack: false, optimize_layout: false })
                .run(&m, budget)
                .unwrap();
        let mut edited = Pipeline::verified(&AllocOptions::default());
        assert!(edited.replace("color", Box::new(ColorPass { compress: false })));
        assert!(edited.replace("layout", Box::new(IdentityLayoutPass)));
        let via_edit = edited.run(&m, budget).unwrap();
        assert_eq!(via_opts.machine, via_edit.machine);
        assert_eq!(via_opts.report, via_edit.report);
    }

    #[test]
    fn matches_reference_oracle() {
        for m in [simple_module(), call_module()] {
            for opts in [
                AllocOptions::default(),
                AllocOptions { compress_stack: true, optimize_layout: false },
                AllocOptions { compress_stack: false, optimize_layout: false },
            ] {
                for regs in [4u16, 8, 32] {
                    let budget = SlotBudget { reg_slots: regs, smem_slots: 4 };
                    let new = allocate(&m, budget, &opts).unwrap();
                    let old = crate::reference::allocate_reference(&m, budget, &opts).unwrap();
                    assert_eq!(new.machine, old.machine, "regs={regs} opts={opts:?}");
                    assert_eq!(new.report, old.report, "regs={regs} opts={opts:?}");
                }
            }
        }
    }

    #[test]
    fn verified_run_passes_and_removal_fails_cleanly() {
        let m = call_module();
        let budget = SlotBudget { reg_slots: 32, smem_slots: 0 };
        Pipeline::verified(&AllocOptions::default()).run(&m, budget).unwrap();

        // Dropping a producer stage yields a Stage-wrapped diagnostic
        // naming the starved consumer, not a panic.
        let mut p = Pipeline::verified(&AllocOptions::default());
        assert!(p.remove("spill"));
        let err = p.run(&m, budget).unwrap_err();
        match &err {
            AllocError::Stage { stage, source } => {
                assert_eq!(*stage, "lower");
                assert!(source.to_string().contains("spill"), "{source}");
            }
            other => panic!("expected Stage error, got {other:?}"),
        }
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn domain_errors_not_wrapped() {
        // A predicated call must still surface as PredicatedCall.
        use orion_kir::function::{FuncKind, Function};
        use orion_kir::inst::{CallInfo, Inst};
        use orion_kir::types::{BlockId, PredReg};
        let kb = FunctionBuilder::kernel("k");
        let mut m = Module::new(kb.finish());
        let fdiv = m.add_func(build_fdiv_device());
        let mut call = Inst::new(Opcode::Call(fdiv), None, vec![]);
        call.call = Some(CallInfo { args: vec![], rets: vec![] });
        call.pred = Some(PredReg(0));
        let mut k = Function::new("k", FuncKind::Kernel);
        k.block_mut(BlockId(0)).insts = vec![call];
        m.funcs[0] = k;
        let err =
            allocate(&m, SlotBudget { reg_slots: 8, smem_slots: 0 }, &AllocOptions::default())
                .unwrap_err();
        assert!(matches!(err, AllocError::PredicatedCall { .. }), "{err:?}");
    }
}
