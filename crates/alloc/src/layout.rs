//! Slot-layout optimization: the minimal-move-assignment (MMA) problem.
//!
//! Theorem 1 of the paper: placing variable set `SS_i` at slot `j` incurs
//! a constant number of compression moves `W_ij = Σ_k C_ijk`, with
//! `C_ijk = 1` iff the set is live at call `k` and `j ≥ B_k`. Choosing
//! the slot of every set is therefore a maximum-weight bipartite matching
//! with weights `-W_ij`, solved by Kuhn-Munkres in O(M³).
//!
//! Wide (multi-slot) units are pinned at their colored positions — the
//! paper's model treats sets as single slots, and permuting aligned
//! multi-slot groups is not expressible as a plain assignment problem;
//! the single-slot sets (the overwhelming majority) are permuted over the
//! remaining positions optimally.

use crate::matching::max_weight_assignment;
use crate::stack::Unit;

/// Per-call-site context needed by the optimizer.
#[derive(Debug, Clone)]
pub struct CallLayoutInfo {
    /// Compressed stack height `B_k` at this call (local slot index).
    pub bk: u16,
    /// Which units are live across this call.
    pub live: Vec<bool>,
}

/// Number of compression moves unit `i` contributes if placed at slot
/// `j..j+width` (Theorem 1, extended to multi-slot units: a unit moves
/// when any of its slots reaches `B_k` or beyond).
pub fn unit_move_cost(u: &Unit, start: u16, calls: &[CallLayoutInfo], unit_idx: usize) -> u32 {
    calls.iter().filter(|c| c.live[unit_idx] && start + u.width > c.bk).count() as u32
}

/// Result of layout optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutPlan {
    /// New start slot per unit (indexed like `units`).
    pub new_start: Vec<u16>,
    /// Total compression moves across all calls under this layout.
    pub total_moves: u32,
}

/// Identity layout (used when optimization is disabled — the paper's
/// "no data movement minimization" ablation of Figure 5).
pub fn identity_layout(units: &[Unit], calls: &[CallLayoutInfo]) -> LayoutPlan {
    let new_start: Vec<u16> = units.iter().map(|u| u.start).collect();
    let total_moves =
        units.iter().enumerate().map(|(i, u)| unit_move_cost(u, u.start, calls, i)).sum();
    LayoutPlan { new_start, total_moves }
}

/// Optimize the layout: permute single-slot units over the positions not
/// covered by pinned multi-slot units, minimizing total moves via
/// Kuhn-Munkres. Positions above the frame are never used (the frame
/// size is preserved).
pub fn optimize_layout(units: &[Unit], calls: &[CallLayoutInfo]) -> LayoutPlan {
    let frame: u16 = units.iter().map(|u| u.start + u.width).max().unwrap_or(0);
    let mut pinned = vec![false; frame as usize];
    let mut new_start: Vec<u16> = units.iter().map(|u| u.start).collect();
    let mut movable: Vec<usize> = Vec::new();
    for (i, u) in units.iter().enumerate() {
        if u.width > 1 {
            for k in 0..u.width {
                pinned[(u.start + k) as usize] = true;
            }
        } else {
            movable.push(i);
        }
    }
    let positions: Vec<u16> = (0..frame).filter(|&s| !pinned[s as usize]).collect();
    // There may be more positions than single-slot units (holes left by
    // the coloring); pad with dummy units of zero cost so the matrix is
    // square.
    let n = positions.len();
    debug_assert!(movable.len() <= n);
    if n == 0 {
        return identity_layout(units, calls);
    }
    let mut weight = vec![vec![0i64; n]; n];
    for (r, &ui) in movable.iter().enumerate() {
        for (c, &pos) in positions.iter().enumerate() {
            weight[r][c] = -i64::from(unit_move_cost(&units[ui], pos, calls, ui));
        }
    }
    // Dummy rows already zero.
    let (assign, _) = max_weight_assignment(&weight);
    for (r, &ui) in movable.iter().enumerate() {
        new_start[ui] = positions[assign[r]];
    }
    let total_moves =
        units.iter().enumerate().map(|(i, u)| unit_move_cost(u, new_start[i], calls, i)).sum();
    LayoutPlan { new_start, total_moves }
}

/// Apply a layout plan to a coloring: rewrite each web's slot according
/// to its unit's displacement.
pub fn apply_layout(slot_of: &mut [Option<u16>], units: &[Unit], plan: &LayoutPlan) {
    for (i, u) in units.iter().enumerate() {
        let delta = i32::from(plan.new_start[i]) - i32::from(u.start);
        if delta == 0 {
            continue;
        }
        for &web in &u.webs {
            if let Some(s) = slot_of[web] {
                slot_of[web] = Some((i32::from(s) + delta) as u16);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(start: u16, width: u16) -> Unit {
        Unit { start, width, align: if width >= 2 { 2 } else { 1 }, residue: 0, webs: vec![] }
    }

    /// The paper's Figure 6 scenario: three call sites; the identity
    /// layout needs 3 moves, the optimized one only 1.
    #[test]
    fn figure6_style_improvement() {
        // Four single-slot sets (var1, var2/var3 share, var4, var5 in the
        // figure; modeled as units 0..4 at slots 0..4).
        let units = vec![unit(0, 1), unit(1, 1), unit(2, 1), unit(3, 1)];
        // call(foo1): B=3, live = {0,1,3}  (slot3 live, above B)
        // call(foo2): B=3, live = {0,1,3}
        // call(foo3): B=2, live = {0,2}
        let calls = vec![
            CallLayoutInfo { bk: 3, live: vec![true, true, false, true] },
            CallLayoutInfo { bk: 3, live: vec![true, true, false, true] },
            CallLayoutInfo { bk: 2, live: vec![true, false, true, false] },
        ];
        let id = identity_layout(&units, &calls);
        let opt = optimize_layout(&units, &calls);
        assert_eq!(id.total_moves, 3);
        // Four units compete for three positions below B=3 (units 0 and 2
        // both also want to be below B=2), so exactly one single-move
        // violation is unavoidable — the paper's "reduced to 1" outcome.
        assert_eq!(opt.total_moves, 1, "{opt:?}");
    }

    #[test]
    fn optimal_vs_all_permutations() {
        // Brute-force optimality check on a small instance.
        let units = vec![unit(0, 1), unit(1, 1), unit(2, 1)];
        let calls = vec![
            CallLayoutInfo { bk: 1, live: vec![true, false, false] },
            CallLayoutInfo { bk: 2, live: vec![false, true, true] },
            CallLayoutInfo { bk: 1, live: vec![false, false, true] },
        ];
        let opt = optimize_layout(&units, &calls);
        // Enumerate all 3! placements.
        let mut best = u32::MAX;
        let perms = [[0u16, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        for p in perms {
            let cost: u32 = (0..3).map(|i| unit_move_cost(&units[i], p[i], &calls, i)).sum();
            best = best.min(cost);
        }
        assert_eq!(opt.total_moves, best);
    }

    #[test]
    fn wide_units_pinned() {
        let units = vec![unit(0, 2), unit(2, 1), unit(3, 1)];
        let calls = vec![CallLayoutInfo { bk: 2, live: vec![false, true, true] }];
        let opt = optimize_layout(&units, &calls);
        assert_eq!(opt.new_start[0], 0, "wide unit stays");
        // Both singles want to be below bk=2 but only slots 2,3 are free
        // (0,1 pinned): at least one move remains.
        assert_eq!(opt.total_moves, 2);
    }

    #[test]
    fn apply_layout_moves_webs() {
        let mut slots = vec![Some(0), Some(2), None];
        let units = vec![
            Unit { start: 0, width: 1, align: 1, residue: 0, webs: vec![0] },
            Unit { start: 2, width: 1, align: 1, residue: 0, webs: vec![1] },
        ];
        let plan = LayoutPlan { new_start: vec![2, 0], total_moves: 0 };
        apply_layout(&mut slots, &units, &plan);
        assert_eq!(slots, vec![Some(2), Some(0), None]);
    }

    #[test]
    fn identity_counts_moves() {
        let units = vec![unit(0, 1), unit(5, 1)];
        let calls = vec![CallLayoutInfo { bk: 2, live: vec![true, true] }];
        let id = identity_layout(&units, &calls);
        assert_eq!(id.total_moves, 1);
    }
}
