//! Single-procedure multi-class graph coloring — the paper's Figure 4.
//!
//! A Chaitin-Briggs variant that handles *wide* variables: a web of
//! `width` words needs `width` consecutive slots whose absolute start
//! index is aligned to the width's alignment class (pairs even-aligned,
//! quads quad-aligned), matching NVIDIA register-pair constraints.
//!
//! Stage 1 (stack order, Fig. 4b): repeatedly pick a web whose
//! `width + weighted-degree ≤ C` (preferring narrow ones); when none
//! qualifies, pick the narrowest/lowest-degree web as an optimistic
//! candidate. Push on the stack and remove from the graph.
//!
//! Stage 2 (coloring, Fig. 4c): pop webs and assign the lowest aligned
//! slot range free of colored neighbors. A web that cannot be colored is
//! removed from the stack onto the spill list and coloring restarts —
//! the optimistic restart loop in the paper's pseudocode (`s = S`).

use crate::interference::InterferenceGraph;
use crate::realize::AllocError;
use orion_kir::bitset::BitSet;

/// Result of coloring one function's webs.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// Starting slot of each web (`None` = spilled).
    pub slot_of: Vec<Option<u16>>,
    /// Webs that could not be colored within the budget.
    pub spilled: Vec<usize>,
    /// One past the highest slot used (frame size in slots).
    pub frame_size: u16,
}

impl Coloring {
    /// Number of colored webs.
    pub fn num_colored(&self) -> usize {
        self.slot_of.iter().filter(|s| s.is_some()).count()
    }
}

/// Color `graph` with `budget` slots, where the function's frame begins
/// at absolute slot `base` (alignment of wide webs is computed on
/// `base + slot`, because register pairs align in the physical file).
///
/// Webs listed in `precolored` are fixed to the given slots (used for
/// incoming parameter webs whose location the caller already chose).
///
/// # Errors
/// Returns [`AllocError::Internal`] when the simplification worklist
/// stalls with webs remaining — an invariant violation of the Fig. 4b
/// selection loop (the optimistic fallback always finds a candidate on
/// well-formed graphs).
pub fn color(
    graph: &InterferenceGraph,
    budget: u16,
    base: u16,
    precolored: &[(usize, u16)],
) -> Result<Coloring, AllocError> {
    let n = graph.len();
    let c = u32::from(budget);
    let mut slot_of: Vec<Option<u16>> = vec![None; n];
    let mut fixed = BitSet::new(n.max(1));
    for &(v, s) in precolored {
        slot_of[v] = Some(s);
        fixed.insert(v);
    }

    // ---- Stage 1: stack order (Fig. 4b) ----
    let mut removed = BitSet::new(n.max(1));
    for &(v, _) in precolored {
        removed.insert(v); // fixed webs are not stacked
    }
    let mut stack: Vec<usize> = Vec::with_capacity(n);
    let mut remaining: usize = n - precolored.len();
    while remaining > 0 {
        let mut next: Option<usize> = None;
        // Prefer a web guaranteed colorable: width + weighted degree ≤ C
        // (Fig. 4b picks the narrowest; ties go to the *coldest* web so
        // that frequently-touched values are colored first and land in
        // the low register slots — a spill-cost refinement the paper's
        // pseudocode leaves open).
        for v in 0..n {
            if removed.contains(v) {
                continue;
            }
            let w = u32::from(graph.width(v).words());
            if w + graph.weighted_degree(v, &removed) <= c {
                let better = match next {
                    None => true,
                    Some(cur) => {
                        let (wc, wv) = (graph.width(cur).words(), graph.width(v).words());
                        wc > wv || (wc == wv && graph.use_count(cur) > graph.use_count(v))
                    }
                };
                if better {
                    next = Some(v);
                }
            }
        }
        if next.is_none() {
            // Optimistic candidate: narrowest, then coldest, then lowest
            // degree — the web most likely to spill cheaply.
            for v in 0..n {
                if removed.contains(v) {
                    continue;
                }
                let better = match next {
                    None => true,
                    Some(cur) => {
                        let key = |x: usize| {
                            (
                                graph.width(x).words(),
                                graph.use_count(x),
                                graph.weighted_degree(x, &removed),
                            )
                        };
                        key(cur) > key(v)
                    }
                };
                if better {
                    next = Some(v);
                }
            }
        }
        let v = next.ok_or_else(|| {
            AllocError::Internal(format!(
                "coloring stage 1 stalled with {remaining} of {n} webs unstacked"
            ))
        })?;
        stack.push(v);
        removed.insert(v);
        remaining -= 1;
    }

    // ---- Stage 2: coloring with optimistic restart (Fig. 4c) ----
    let mut spilled: Vec<usize> = Vec::new();
    'restart: loop {
        for s in slot_of.iter_mut().enumerate() {
            if !fixed.contains(s.0) {
                *s.1 = None;
            }
        }
        // Pop from the top (LIFO): the first web removed in stage 1 is
        // colored last, when all of its then-remaining neighbors are done.
        for &v in stack.iter().rev() {
            if spilled.contains(&v) {
                continue;
            }
            let vw = graph.width(v);
            let words = u32::from(vw.words());
            let align = u32::from(vw.alignment());
            let mut used = vec![false; budget as usize];
            for u in graph.neighbors(v) {
                if let Some(start) = slot_of[u] {
                    for k in 0..graph.width(u).words() {
                        let idx = usize::from(start + k);
                        if idx < used.len() {
                            used[idx] = true;
                        }
                    }
                }
            }
            let mut chosen = None;
            let mut cslot = 0u32;
            while cslot + words <= c {
                // Alignment is on the absolute slot index.
                if (u32::from(base) + cslot).is_multiple_of(align)
                    && (0..words).all(|k| !used[(cslot + k) as usize])
                {
                    chosen = Some(cslot as u16);
                    break;
                }
                cslot += 1;
            }
            match chosen {
                Some(s) => slot_of[v] = Some(s),
                None => {
                    spilled.push(v);
                    continue 'restart;
                }
            }
        }
        break;
    }

    let frame_size = slot_of
        .iter()
        .enumerate()
        .filter_map(|(v, s)| s.map(|s| s + graph.width(v).words()))
        .max()
        .unwrap_or(0);
    Ok(Coloring { slot_of, spilled, frame_size })
}

/// Validate a coloring: no two interfering webs overlap in slots, wide
/// webs aligned. Returns a description of the first violation.
pub fn validate(graph: &InterferenceGraph, base: u16, coloring: &Coloring) -> Result<(), String> {
    let n = graph.len();
    let range = |v: usize| -> Option<(u16, u16)> {
        coloring.slot_of[v].map(|s| (s, s + graph.width(v).words()))
    };
    for v in 0..n {
        if let Some((s, _)) = range(v) {
            let align = graph.width(v).alignment();
            if !(base + s).is_multiple_of(align) {
                return Err(format!("web {v} misaligned at slot {s} (base {base})"));
            }
        }
        for u in graph.neighbors(v) {
            if u <= v {
                continue;
            }
            if let (Some((a0, a1)), Some((b0, b1))) = (range(v), range(u)) {
                if a0 < b1 && b0 < a1 {
                    return Err(format!("webs {v} and {u} overlap: [{a0},{a1}) vs [{b0},{b1})"));
                }
            }
        }
    }
    for &v in &coloring.spilled {
        if coloring.slot_of[v].is_some() {
            return Err(format!("web {v} both spilled and colored"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::InterferenceGraph;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::cfg::Cfg;
    use orion_kir::inst::Operand;
    use orion_kir::liveness::Liveness;
    use orion_kir::ssa::normalize;
    use orion_kir::types::{MemSpace, Width};

    fn graph_for(nlive: usize) -> InterferenceGraph {
        // nlive simultaneously live 32-bit values.
        let mut b = FunctionBuilder::kernel("k");
        let vs: Vec<_> = (0..nlive).map(|i| b.mov_i32(i as i32)).collect();
        let mut acc = b.mov_i32(0);
        for v in vs {
            acc = b.iadd(acc, v);
        }
        b.st(MemSpace::Global, Width::W32, Operand::Imm(0), acc, 0);
        let f = normalize(&b.finish()).unwrap();
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        InterferenceGraph::build(&f, &cfg, &live)
    }

    #[test]
    fn colors_clique_exactly() {
        let g = graph_for(6);
        let col = color(&g, 8, 0, &[]).unwrap();
        assert!(col.spilled.is_empty());
        validate(&g, 0, &col).unwrap();
    }

    #[test]
    fn spills_when_budget_too_small() {
        let g = graph_for(8);
        // 8 values + accumulator live together at the peak; 4 slots force spills.
        let col = color(&g, 4, 0, &[]).unwrap();
        assert!(!col.spilled.is_empty());
        validate(&g, 0, &col).unwrap();
        assert!(col.frame_size <= 4);
    }

    #[test]
    fn frame_size_is_compact() {
        let g = graph_for(3);
        let col = color(&g, 32, 0, &[]).unwrap();
        // 3 sources + accumulator: at most 5 simultaneously live webs,
        // and the frame must not exceed the clique-ish demand.
        assert!(col.frame_size <= 5, "frame {}", col.frame_size);
        validate(&g, 0, &col).unwrap();
    }

    #[test]
    fn wide_values_aligned() {
        let mut b = FunctionBuilder::kernel("k");
        let d0 = b.vreg(Width::W64);
        let d1 = b.vreg(Width::W64);
        let x = b.mov_i32(3);
        b.push(orion_kir::inst::Inst::new(
            orion_kir::inst::Opcode::Mov,
            Some(d0),
            vec![Operand::Imm(1)],
        ));
        b.push(orion_kir::inst::Inst::new(
            orion_kir::inst::Opcode::Mov,
            Some(d1),
            vec![Operand::Imm(2)],
        ));
        let s = b.dadd(d0, d1);
        b.st(MemSpace::Global, Width::W64, Operand::Imm(0), s, 0);
        b.st(MemSpace::Global, Width::W32, Operand::Imm(8), x, 0);
        let f = normalize(&b.finish()).unwrap();
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let g = InterferenceGraph::build(&f, &cfg, &live);
        for base in [0u16, 1, 2, 3] {
            let col = color(&g, 16, base, &[]).unwrap();
            assert!(col.spilled.is_empty(), "base {base}");
            validate(&g, base, &col).unwrap();
        }
    }

    #[test]
    fn precolored_respected() {
        let g = graph_for(3);
        // Fix web 0 at slot 7.
        let col = color(&g, 16, 0, &[(0, 7)]).unwrap();
        assert_eq!(col.slot_of[0], Some(7));
        validate(&g, 0, &col).unwrap();
    }

    #[test]
    fn zero_budget_spills_everything_live() {
        let g = graph_for(2);
        let col = color(&g, 0, 0, &[]).unwrap();
        assert_eq!(col.num_colored(), 0);
        assert_eq!(col.spilled.len(), g.len());
    }
}
