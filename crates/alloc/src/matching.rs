//! Kuhn-Munkres (Hungarian) assignment in O(n³).
//!
//! The paper solves the minimal-move-assignment layout problem as a
//! maximum-weight bipartite matching with edge weight `-W_ij` (\[17\],
//! §3.2). We implement the classic potentials formulation for *minimum*
//! cost and expose both minimum-cost and maximum-weight entry points.

/// Solve the minimum-cost assignment for a square `n × n` cost matrix.
///
/// Returns `(assignment, total_cost)` where `assignment[row] = column`.
///
/// # Panics
/// Panics if `cost` is not square.
pub fn min_cost_assignment(cost: &[Vec<i64>]) -> (Vec<usize>, i64) {
    let n = cost.len();
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
    }
    if n == 0 {
        return (Vec::new(), 0);
    }
    const INF: i64 = i64::MAX / 4;
    // 1-indexed potentials formulation (e-maxx style).
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col (0 = none)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the found path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    let mut total = 0i64;
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
            total += cost[p[j] - 1][j - 1];
        }
    }
    (assignment, total)
}

/// Solve the maximum-weight assignment (the paper's formulation with
/// weights `-W_ij` becomes a minimum-move assignment).
///
/// Returns `(assignment, total_weight)`.
pub fn max_weight_assignment(weight: &[Vec<i64>]) -> (Vec<usize>, i64) {
    let neg: Vec<Vec<i64>> = weight.iter().map(|r| r.iter().map(|&w| -w).collect()).collect();
    let (a, c) = min_cost_assignment(&neg);
    (a, -c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_min(cost: &[Vec<i64>]) -> i64 {
        let n = cost.len();
        let mut cols: Vec<usize> = (0..n).collect();
        let mut best = i64::MAX;
        permute(&mut cols, 0, &mut |perm| {
            let s: i64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            if s < best {
                best = s;
            }
        });
        best
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(min_cost_assignment(&[]), (vec![], 0));
        assert_eq!(min_cost_assignment(&[vec![5]]), (vec![0], 5));
    }

    #[test]
    fn known_instance() {
        let cost = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
        let (a, c) = min_cost_assignment(&cost);
        assert_eq!(c, 5); // 1 + 2 + 2
        assert_eq!(a, vec![1, 0, 2]);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        // Deterministic pseudo-random matrices (no external RNG needed).
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in 1..=6usize {
            for _ in 0..20 {
                let cost: Vec<Vec<i64>> =
                    (0..n).map(|_| (0..n).map(|_| (next() % 100) as i64).collect()).collect();
                let (a, c) = min_cost_assignment(&cost);
                // Assignment is a permutation.
                let mut seen = vec![false; n];
                for &j in &a {
                    assert!(!seen[j]);
                    seen[j] = true;
                }
                assert_eq!(c, brute_force_min(&cost), "n={n} matrix {cost:?}");
            }
        }
    }

    #[test]
    fn max_weight_negates() {
        let w = vec![vec![1, 9], vec![9, 1]];
        let (a, total) = max_weight_assignment(&w);
        assert_eq!(total, 18);
        assert_eq!(a, vec![1, 0]);
    }
}
