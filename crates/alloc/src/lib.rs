//! # orion-alloc — on-chip memory allocation for occupancy realization
//!
//! Implements §3.2 of *Orion: A Framework for GPU Occupancy Tuning*
//! (Hayes et al., Middleware 2016):
//!
//! * [`interference`] — interference graphs over φ-coalesced webs;
//! * [`chaitin`] — the Figure 4 Chaitin-Briggs variant with wide
//!   (64/96/128-bit) register classes and alignment;
//! * [`stack`] — the compressible stack: movable units, `B_k`
//!   computation, packing, and a parallel-move sequentializer;
//! * [`layout`] — the minimal-move-assignment layout optimizer
//!   (Theorem 1);
//! * [`matching`] — Kuhn-Munkres maximum-weight bipartite matching in
//!   O(M³);
//! * [`pipeline`] — the explicit pass pipeline (normalize → color →
//!   spill → stack-plan → layout → lower → mir-verify) with typed
//!   per-stage artifacts and verified stage boundaries;
//! * [`realize`] — the end-to-end entry point producing a machine-code
//!   [`orion_kir::mir::MModule`] for a given per-thread slot budget;
//! * [`mod@reference`] — the frozen single-function implementation kept as
//!   a behavioral oracle for the pipeline.
//!
//! ```
//! use orion_alloc::realize::{allocate, AllocOptions, SlotBudget};
//! use orion_kir::builder::FunctionBuilder;
//! use orion_kir::function::Module;
//! use orion_kir::inst::Operand;
//! use orion_kir::types::{MemSpace, SpecialReg, Width};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::kernel("axpy");
//! let tid = b.mov(Operand::Special(SpecialReg::TidX));
//! let addr = b.imad(tid, Operand::Imm(4), Operand::Param(0));
//! let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
//! let y = b.fmul(x, Operand::Imm(0x40000000)); // *2.0f
//! b.st(MemSpace::Global, Width::W32, addr, y, 0);
//! let module = Module::new(b.finish());
//!
//! let budget = SlotBudget { reg_slots: 16, smem_slots: 0 };
//! let out = allocate(&module, budget, &AllocOptions::default())?;
//! assert!(out.machine.regs_per_thread <= 16);
//! # Ok(())
//! # }
//! ```

pub mod chaitin;
pub mod interference;
pub mod layout;
pub mod matching;
pub mod pipeline;
pub mod realize;
pub mod reference;
pub mod stack;

pub use pipeline::{Pass, Pipeline};
pub use realize::{
    allocate, allocate_verified, AllocError, AllocOptions, AllocReport, Allocated, SlotBudget,
};
