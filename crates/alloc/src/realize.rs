//! The realize-occupancy pipeline (§3.2): given a per-thread on-chip
//! slot budget, allocate every function of a module and lower it to
//! machine code.
//!
//! Pipeline, per function in caller-before-callee order:
//!
//! 1. normalize to webs (SSA → pruned φ → coalesce);
//! 2. color the webs with the slots left above the function's frame base
//!    (Figure 4 variant), spilling the remainder to local memory;
//! 3. group colored slots into movable [`Unit`]s and analyze liveness at
//!    every call site;
//! 4. compute the compressed height `B_k` for each call and raise the
//!    callee's frame base;
//! 5. optionally permute the slot layout to minimize compression moves
//!    (Theorem 1 + Kuhn-Munkres);
//! 6. lower to machine code, materializing compression/restore moves and
//!    argument/return moves as explicit, correctly-ordered `Mov`s.
//!
//! The absolute on-chip slot index decides physical placement per word:
//! indices below the register budget are registers, the rest are private
//! shared-memory slots. Spills and the move-cycle scratch live in local
//! memory.

use crate::chaitin::{color, Coloring};
use crate::interference::InterferenceGraph;
use crate::layout::{identity_layout, optimize_layout, CallLayoutInfo};
use crate::stack::{
    extract_units, live_units, min_packed_height, pack_live_units, sequentialize, PMove, Unit,
};
use orion_kir::bitset::BitSet;
use orion_kir::callgraph::CallGraph;
use orion_kir::cfg::Cfg;
use orion_kir::function::{Function, Module};
use orion_kir::inst::{Inst, Opcode, Operand};
use orion_kir::liveness::{max_live, Liveness};
use orion_kir::mir::{MBlock, MFunction, MInst, MLoc, MModule, MOperand};
use orion_kir::ssa::normalize;
use orion_kir::types::{FuncId, Width};
use serde::{Deserialize, Serialize};

/// Local-memory slots reserved as the move-cycle scratch area (wide
/// enough for a 128-bit bounce).
pub const SCRATCH_SLOTS: u16 = 4;

/// Per-thread on-chip slot budget implied by a target occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotBudget {
    /// Physical registers per thread.
    pub reg_slots: u16,
    /// Private shared-memory slots per thread the allocator may add.
    pub smem_slots: u16,
}

impl SlotBudget {
    /// Total on-chip slots per thread.
    pub fn total(&self) -> u16 {
        self.reg_slots + self.smem_slots
    }
}

/// Allocator feature switches (the paper's Figure 5 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AllocOptions {
    /// Compress the caller stack at calls ("space minimization"). When
    /// off, callee frames sit above the caller's entire frame.
    pub compress_stack: bool,
    /// Optimize the slot layout with Kuhn-Munkres ("data movement
    /// minimization"). When off, the colored layout is kept as-is.
    pub optimize_layout: bool,
}

impl Default for AllocOptions {
    fn default() -> Self {
        AllocOptions {
            compress_stack: true,
            optimize_layout: true,
        }
    }
}

/// Allocation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocError {
    /// SSA construction failed (malformed input).
    Ssa(orion_kir::ssa::SsaError),
    /// The call graph is recursive.
    Recursion(orion_kir::callgraph::RecursionError),
    /// A call is guarded by a predicate, which the lowering does not
    /// support (compression moves could not be predicated consistently).
    PredicatedCall { func: String },
    /// A cross-phase invariant of the allocator was violated (a later
    /// phase found state a prior phase should have produced missing or
    /// inconsistent). Always an allocator bug, but reported as an error
    /// instead of a panic so a resilient caller can quarantine the
    /// affected candidate and keep tuning.
    Internal(String),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Ssa(e) => write!(f, "ssa: {e}"),
            AllocError::Recursion(e) => write!(f, "{e}"),
            AllocError::PredicatedCall { func } => {
                write!(f, "{func}: predicated calls are not supported")
            }
            AllocError::Internal(detail) => {
                write!(f, "internal allocator invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

impl From<orion_kir::ssa::SsaError> for AllocError {
    fn from(e: orion_kir::ssa::SsaError) -> Self {
        AllocError::Ssa(e)
    }
}

impl From<orion_kir::callgraph::RecursionError> for AllocError {
    fn from(e: orion_kir::callgraph::RecursionError) -> Self {
        AllocError::Recursion(e)
    }
}

/// Per-function allocation summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuncAllocInfo {
    pub name: String,
    pub base: u16,
    pub frame_size: u16,
    pub spilled_webs: usize,
    pub call_sites: usize,
    /// Compression moves predicted by the layout model (Theorem 1 count).
    pub predicted_moves: u32,
}

/// Whole-module allocation summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocReport {
    /// Kernel max-live in 32-bit words (the §3.3 direction metric).
    pub kernel_max_live: u32,
    /// Registers per thread in the produced binary.
    pub regs_per_thread: u16,
    /// Private shared-memory slots per thread.
    pub smem_slots_per_thread: u16,
    /// Local-memory slots per thread (scratch + spills).
    pub local_slots_per_thread: u16,
    /// Static stack/argument move instructions inserted.
    pub static_moves: u32,
    pub per_func: Vec<FuncAllocInfo>,
}

/// A fully allocated module plus its report.
#[derive(Debug, Clone)]
pub struct Allocated {
    pub machine: MModule,
    pub report: AllocReport,
}

struct CallSiteCtx {
    callee: FuncId,
    /// Units of the *caller* live across this call.
    live_units: Vec<bool>,
}

struct FuncCtx {
    nf: Function,
    coloring: Coloring,
    units: Vec<Unit>,
    /// Call sites in traversal order (matches lowering).
    calls: Vec<CallSiteCtx>,
    base: u16,
    /// Local slot of each spilled web.
    spill_slot: std::collections::HashMap<usize, u16>,
    max_live: u32,
}

impl FuncCtx {
    fn loc(&self, web: usize) -> MLoc {
        let w = self.nf.vreg_widths[web];
        match self.coloring.slot_of[web] {
            Some(s) => MLoc::onchip(self.base + s, w),
            None => MLoc::local(self.spill_slot[&web], w),
        }
    }
}

/// Compute the max-live of a module's kernel (after web normalization) —
/// the paper's direction-selection metric.
///
/// # Errors
/// Fails when SSA construction fails.
pub fn kernel_max_live(m: &Module) -> Result<u32, AllocError> {
    let nf = normalize(m.kernel())?;
    let cfg = Cfg::new(&nf);
    let live = Liveness::new(&nf, &cfg);
    Ok(max_live(&nf, &cfg, &live))
}

/// Allocate `module` under `budget` with `opts`, producing machine code.
///
/// # Errors
/// Returns [`AllocError`] on recursion, malformed IR, or predicated
/// calls. The input should already pass [`orion_kir::verify::verify`].
pub fn allocate(
    module: &Module,
    budget: SlotBudget,
    opts: &AllocOptions,
) -> Result<Allocated, AllocError> {
    let cg = CallGraph::new(module);
    let bottom_up = cg.bottom_up(module.entry)?;
    let topdown: Vec<FuncId> = bottom_up.iter().rev().copied().collect();
    let total = budget.total();

    let n = module.funcs.len();
    let mut bases = vec![0u16; n];
    let mut ctxs: Vec<Option<FuncCtx>> = (0..n).map(|_| None).collect();
    let mut local_counter: u16 = SCRATCH_SLOTS;

    // ---- Phase A: color and compute frame bases, callers first ----
    for &fid in &topdown {
        let f = module.func(fid);
        let nf = normalize(f)?;
        let cfg = Cfg::new(&nf);
        let live = Liveness::new(&nf, &cfg);
        let ml = max_live(&nf, &cfg, &live);
        let graph = InterferenceGraph::build(&nf, &cfg, &live);
        let base = bases[fid.0 as usize];
        let fbudget = total.saturating_sub(base);
        let coloring = color(&graph, fbudget, base, &[]);
        let mut spill_slot = std::collections::HashMap::new();
        for &w in &coloring.spilled {
            spill_slot.insert(w, local_counter);
            local_counter += nf.vreg_widths[w].words();
        }
        let units = extract_units(&coloring, &nf.vreg_widths);

        let mut calls = Vec::new();
        for (bid, blk) in nf.iter_blocks() {
            if !cfg.reachable(bid) {
                continue;
            }
            for (idx, inst) in blk.insts.iter().enumerate() {
                let Opcode::Call(callee) = inst.op else { continue };
                if inst.pred.is_some() {
                    return Err(AllocError::PredicatedCall { func: nf.name.clone() });
                }
                let live_webs: BitSet = {
                    let mut s = BitSet::new(nf.num_vregs());
                    for v in live.live_across(&nf, bid, idx) {
                        s.insert(v.0 as usize);
                    }
                    s
                };
                let lu = live_units(&units, &live_webs);
                let bk_min = if opts.compress_stack {
                    min_packed_height(&units, &lu).min(coloring.frame_size)
                } else {
                    coloring.frame_size
                };
                let cb = &mut bases[callee.0 as usize];
                *cb = (*cb).max(base + bk_min);
                calls.push(CallSiteCtx {
                    callee,
                    live_units: lu,
                });
            }
        }
        orion_telemetry::counter("alloc", "spilled_webs", coloring.spilled.len() as u64);
        ctxs[fid.0 as usize] = Some(FuncCtx {
            nf,
            coloring,
            units,
            calls,
            base,
            spill_slot,
            max_live: ml,
        });
    }

    // ---- Phase B: layout optimization (bases are now final) ----
    let mut predicted_moves: Vec<u32> = vec![0; n];
    for &fid in &topdown {
        let base = bases[fid.0 as usize];
        let ctx = ctxs[fid.0 as usize].as_mut().ok_or_else(|| {
            AllocError::Internal(format!("phase B: function {} has no phase-A context", fid.0))
        })?;
        ctx.base = base; // may have been raised after coloring
        let call_infos: Vec<CallLayoutInfo> = ctx
            .calls
            .iter()
            .map(|c| CallLayoutInfo {
                bk: bases[c.callee.0 as usize].saturating_sub(base),
                live: c.live_units.clone(),
            })
            .collect();
        let plan = if opts.optimize_layout && opts.compress_stack {
            optimize_layout(&ctx.units, &call_infos)
        } else {
            identity_layout(&ctx.units, &call_infos)
        };
        predicted_moves[fid.0 as usize] = plan.total_moves;
        if orion_telemetry::is_enabled() {
            // The Kuhn-Munkres objective value: compression moves the
            // chosen layout is predicted to cost across all call sites.
            orion_telemetry::instant(
                "alloc",
                "layout_plan",
                vec![
                    ("func", ctx.nf.name.as_str().into()),
                    ("predicted_moves", plan.total_moves.into()),
                    ("optimized", (opts.optimize_layout && opts.compress_stack).into()),
                ],
            );
        }
        crate::layout::apply_layout(&mut ctx.coloring.slot_of, &ctx.units, &plan);
        for (i, u) in ctx.units.iter_mut().enumerate() {
            u.start = plan.new_start[i];
            u.residue = u.start % u.align;
        }
    }

    // Wait: coloring of a function whose base was raised *after* its own
    // coloring would be misaligned; recolor is not needed because bases
    // only grow through calls processed before the callee (topological
    // order guarantees the base is final before the callee is colored).

    // ---- Phase C: lowering ----
    let scratch = MLoc::local(0, Width::W128);
    let mut mfuncs: Vec<MFunction> = Vec::with_capacity(n);
    let mut static_moves: u32 = 0;
    // Pre-compute param/ret slots for every function (needed by callers).
    let param_ret_slots: Vec<Option<(Vec<MLoc>, Vec<MLoc>)>> = (0..n)
        .map(|i| {
            ctxs[i].as_ref().map(|c| {
                let p = c.nf.params.iter().map(|r| c.loc(r.0 as usize)).collect();
                let r = c.nf.rets.iter().map(|r| c.loc(r.0 as usize)).collect();
                (p, r)
            })
        })
        .collect();

    for i in 0..n {
        let Some(ctx) = &ctxs[i] else {
            // Unreachable function: emit an empty stub.
            mfuncs.push(MFunction {
                name: module.func(FuncId(i as u32)).name.clone(),
                frame_base: 0,
                frame_size: 0,
                param_slots: vec![],
                ret_slots: vec![],
                blocks: vec![],
            });
            continue;
        };
        let mut blocks = Vec::with_capacity(ctx.nf.num_blocks());
        let mut call_cursor = 0usize;
        // Re-walk blocks in the same order as phase A to line up call
        // contexts; unreachable blocks contain no analyzed calls.
        let cfg = Cfg::new(&ctx.nf);
        for (bid, blk) in ctx.nf.iter_blocks() {
            let mut insts: Vec<MInst> = Vec::with_capacity(blk.insts.len());
            for inst in &blk.insts {
                if let Opcode::Call(callee) = inst.op {
                    if !cfg.reachable(bid) {
                        continue; // never executed; drop
                    }
                    let cctx = ctx.calls.get(call_cursor).ok_or_else(|| {
                        AllocError::Internal(format!(
                            "{}: call #{call_cursor} was not analyzed in phase A",
                            ctx.nf.name
                        ))
                    })?;
                    if cctx.callee != callee {
                        return Err(AllocError::Internal(format!(
                            "{}: call #{call_cursor} targets {} but phase A recorded {}",
                            ctx.nf.name, callee.0, cctx.callee.0
                        )));
                    }
                    call_cursor += 1;
                    let bk = bases[callee.0 as usize].saturating_sub(ctx.base);
                    let placement = pack_live_units(&ctx.units, &cctx.live_units, bk);
                    let (pslots, rslots) =
                        param_ret_slots[callee.0 as usize].as_ref().ok_or_else(|| {
                            AllocError::Internal(format!(
                                "{}: callee {} is called but has no param/ret slots \
                                 (unreachable in the call graph?)",
                                ctx.nf.name, callee.0
                            ))
                        })?;
                    // Pre-call parallel move set: compression + arguments.
                    // Units wider than four words move in chunks (a
                    // single MLoc covers at most a W128).
                    let mut pre: Vec<PMove> = Vec::new();
                    for &(ui, newpos) in &placement {
                        let u = &ctx.units[ui];
                        if newpos != u.start {
                            for (off, w) in chunk_widths(u.width) {
                                pre.push(PMove {
                                    dst: MLoc::onchip(ctx.base + newpos + off, w),
                                    src: MLoc::onchip(ctx.base + u.start + off, w).into(),
                                });
                            }
                        }
                    }
                    let ci = inst.call.as_ref().ok_or_else(|| {
                        AllocError::Internal(format!(
                            "{}: Call instruction carries no call info (unverified module?)",
                            ctx.nf.name
                        ))
                    })?;
                    for (arg, &pslot) in ci.args.iter().zip(pslots) {
                        pre.push(PMove {
                            dst: pslot,
                            src: lower_operand(ctx, arg),
                        });
                    }
                    let pre_insts = sequentialize(&pre, scratch);
                    let pre_count = pre_insts.len();
                    static_moves += pre_insts.len() as u32;
                    insts.extend(pre_insts);
                    insts.push(MInst::new(Opcode::Call(callee), None, vec![]));
                    // Post-call parallel move set: returns + restores.
                    let mut post: Vec<PMove> = Vec::new();
                    for (&ret_web, &rslot) in ci.rets.iter().zip(rslots) {
                        post.push(PMove {
                            dst: ctx.loc(ret_web.0 as usize),
                            src: rslot.into(),
                        });
                    }
                    for &(ui, newpos) in &placement {
                        let u = &ctx.units[ui];
                        if newpos != u.start {
                            for (off, w) in chunk_widths(u.width) {
                                post.push(PMove {
                                    dst: MLoc::onchip(ctx.base + u.start + off, w),
                                    src: MLoc::onchip(ctx.base + newpos + off, w).into(),
                                });
                            }
                        }
                    }
                    let post_insts = sequentialize(&post, scratch);
                    if orion_telemetry::is_enabled() {
                        orion_telemetry::instant(
                            "alloc",
                            "call_site_moves",
                            vec![
                                ("func", ctx.nf.name.as_str().into()),
                                ("call_index", (call_cursor - 1).into()),
                                ("pre_moves", pre_count.into()),
                                ("post_moves", post_insts.len().into()),
                            ],
                        );
                    }
                    static_moves += post_insts.len() as u32;
                    insts.extend(post_insts);
                } else {
                    insts.push(lower_inst(ctx, inst));
                }
            }
            blocks.push(MBlock {
                insts,
                term: blk.term.clone(),
            });
        }
        let (pslots, rslots) = param_ret_slots[i]
            .as_ref()
            .ok_or_else(|| {
                AllocError::Internal(format!(
                    "function {i} has a context but no param/ret slots"
                ))
            })?
            .clone();
        mfuncs.push(MFunction {
            name: ctx.nf.name.clone(),
            frame_base: ctx.base,
            frame_size: ctx.coloring.frame_size,
            param_slots: pslots,
            ret_slots: rslots,
            blocks,
        });
    }

    let mut peak_abs: u16 = 0;
    for f in &topdown {
        let c = ctxs[f.0 as usize].as_ref().ok_or_else(|| {
            AllocError::Internal(format!("function {} lost its context after lowering", f.0))
        })?;
        peak_abs = peak_abs.max(c.base + c.coloring.frame_size);
    }
    let regs_per_thread = budget.reg_slots.min(peak_abs);
    let smem_slots_per_thread = peak_abs.saturating_sub(regs_per_thread);
    orion_telemetry::counter("alloc", "smem_promoted_slots", u64::from(smem_slots_per_thread));
    orion_telemetry::counter(
        "alloc",
        "spill_slots",
        u64::from(local_counter.saturating_sub(SCRATCH_SLOTS)),
    );
    orion_telemetry::counter("alloc", "static_moves", u64::from(static_moves));

    let mut per_func = Vec::with_capacity(topdown.len());
    for f in &topdown {
        let c = ctxs[f.0 as usize].as_ref().ok_or_else(|| {
            AllocError::Internal(format!("function {} lost its context after lowering", f.0))
        })?;
        per_func.push(FuncAllocInfo {
            name: c.nf.name.clone(),
            base: c.base,
            frame_size: c.coloring.frame_size,
            spilled_webs: c.coloring.spilled.len(),
            call_sites: c.calls.len(),
            predicted_moves: predicted_moves[f.0 as usize],
        });
    }
    let report = AllocReport {
        kernel_max_live: ctxs[module.entry.0 as usize]
            .as_ref()
            .ok_or_else(|| {
                AllocError::Internal(format!(
                    "entry function {} was never allocated",
                    module.entry.0
                ))
            })?
            .max_live,
        regs_per_thread,
        smem_slots_per_thread,
        local_slots_per_thread: local_counter,
        static_moves,
        per_func,
    };

    let machine = MModule {
        funcs: mfuncs,
        entry: module.entry,
        regs_per_thread,
        smem_slots_per_thread,
        local_slots_per_thread: local_counter,
        user_smem_bytes: module.user_smem_bytes,
        static_stack_moves: static_moves,
    };
    Ok(Allocated { machine, report })
}

/// Split a unit of `words` slots into `(offset, width)` move chunks of at
/// most four words each (one machine move covers at most a W128).
fn chunk_widths(words: u16) -> Vec<(u16, Width)> {
    let mut out = Vec::with_capacity(usize::from(words.div_ceil(4)));
    let mut off = 0;
    let mut left = words;
    while left > 0 {
        let w = match left {
            1 => Width::W32,
            2 => Width::W64,
            3 => Width::W96,
            _ => Width::W128,
        };
        out.push((off, w));
        off += w.words();
        left -= w.words();
    }
    out
}

fn lower_operand(ctx: &FuncCtx, op: &Operand) -> MOperand {
    match op {
        Operand::Reg(r) => MOperand::Loc(ctx.loc(r.0 as usize)),
        Operand::Imm(i) => MOperand::Imm(*i),
        Operand::Param(p) => MOperand::Param(*p),
        Operand::Special(s) => MOperand::Special(*s),
    }
}

fn lower_inst(ctx: &FuncCtx, inst: &Inst) -> MInst {
    debug_assert!(!matches!(inst.op, Opcode::Call(_)));
    MInst {
        op: inst.op,
        dst: inst.dst.map(|d| ctx.loc(d.0 as usize)),
        pdst: inst.pdst,
        srcs: inst.srcs.iter().map(|o| lower_operand(ctx, o)).collect(),
        pred: inst.pred,
        pred_neg: inst.pred_neg,
        sel_pred: inst.sel_pred,
        is_stack_move: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
    use orion_kir::types::BlockId;
    use orion_kir::types::{MemSpace, SpecialReg};
    use orion_kir::verify::verify;

    fn simple_module() -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let a = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, a, 0);
        let y = b.iadd(x, Operand::Imm(5));
        b.st(MemSpace::Global, Width::W32, a, y, 0);
        Module::new(b.finish())
    }

    #[test]
    fn allocates_simple_kernel() {
        let m = simple_module();
        verify(&m).unwrap();
        let a = allocate(&m, SlotBudget { reg_slots: 16, smem_slots: 0 }, &AllocOptions::default())
            .unwrap();
        assert!(a.machine.regs_per_thread <= 16);
        assert!(a.machine.regs_per_thread >= 2);
        assert_eq!(a.machine.smem_slots_per_thread, 0);
        assert_eq!(a.report.per_func.len(), 1);
    }

    #[test]
    fn tight_budget_spills_to_smem_then_local() {
        let mut b = FunctionBuilder::kernel("k");
        let vs: Vec<_> = (0..12).map(|i| b.mov_i32(i)).collect();
        let mut acc = b.mov_i32(0);
        for v in vs {
            acc = b.iadd(acc, v);
        }
        b.st(MemSpace::Global, Width::W32, Operand::Imm(0), acc, 0);
        let m = Module::new(b.finish());
        let a = allocate(&m, SlotBudget { reg_slots: 4, smem_slots: 4 }, &AllocOptions::default())
            .unwrap();
        assert_eq!(a.machine.regs_per_thread, 4);
        assert!(a.machine.smem_slots_per_thread > 0);
        // 13 simultaneously live values in 8 on-chip slots: spills exist.
        assert!(a.machine.local_slots_per_thread > SCRATCH_SLOTS);
    }

    #[test]
    fn call_gets_frame_above_caller_live_height() {
        let mut b = FunctionBuilder::kernel("k");
        let _keep = b.mov_i32(11);
        let _x = b.mov_f32(10.0);
        let _y = b.mov_f32(4.0);
        let mut m = Module::new(b.finish());
        let fdiv = m.add_func(build_fdiv_device());
        let mut kb = FunctionBuilder::kernel("k");
        let keep = kb.mov_i32(11);
        let x = kb.mov_f32(10.0);
        let y = kb.mov_f32(4.0);
        let q = kb.call(fdiv, vec![x.into(), y.into()], &[Width::W32]);
        let s = kb.iadd(keep, q[0]);
        kb.st(MemSpace::Global, Width::W32, Operand::Imm(0), s, 0);
        m.funcs[0] = kb.finish();
        verify(&m).unwrap();
        let _ = (keep, x, y);
        let a = allocate(&m, SlotBudget { reg_slots: 32, smem_slots: 0 }, &AllocOptions::default())
            .unwrap();
        let callee = &a.machine.funcs[1];
        // Only `keep` lives across the call: the callee base is 1.
        assert_eq!(callee.frame_base, 1);
        assert!(a.machine.static_stack_moves >= 2, "arg + ret moves");
    }

    #[test]
    fn no_compression_raises_callee_base() {
        let kb = FunctionBuilder::kernel("k");
        let mut m = Module::new(kb.finish());
        let fdiv = m.add_func(build_fdiv_device());
        let mut kb = FunctionBuilder::kernel("k");
        let keep = kb.mov_i32(11);
        let x = kb.mov_f32(10.0);
        let y = kb.mov_f32(4.0);
        let q = kb.call(fdiv, vec![x.into(), y.into()], &[Width::W32]);
        let s = kb.iadd(keep, q[0]);
        kb.st(MemSpace::Global, Width::W32, Operand::Imm(0), s, 0);
        m.funcs[0] = kb.finish();
        let compressed = allocate(
            &m,
            SlotBudget { reg_slots: 32, smem_slots: 0 },
            &AllocOptions::default(),
        )
        .unwrap();
        let padded = allocate(
            &m,
            SlotBudget { reg_slots: 32, smem_slots: 0 },
            &AllocOptions { compress_stack: false, optimize_layout: false },
        )
        .unwrap();
        assert!(
            padded.machine.funcs[1].frame_base > compressed.machine.funcs[1].frame_base,
            "padded {} vs compressed {}",
            padded.machine.funcs[1].frame_base,
            compressed.machine.funcs[1].frame_base
        );
    }

    #[test]
    fn recursion_rejected() {
        use orion_kir::function::{FuncKind, Function};
        use orion_kir::inst::CallInfo;
        let mut m = Module::new(Function::new("k", FuncKind::Kernel));
        let d = Function::new("d", FuncKind::Device);
        let _ = d;
        let mut d = Function::new("d", FuncKind::Device);
        let id = m.add_func(d.clone());
        let mut call = Inst::new(Opcode::Call(id), None, vec![]);
        call.call = Some(CallInfo { args: vec![], rets: vec![] });
        d.block_mut(BlockId(0)).insts = vec![call.clone()];
        m.funcs[1] = d;
        m.func_mut(FuncId(0)).block_mut(BlockId(0)).insts = vec![call];
        let err = allocate(&m, SlotBudget { reg_slots: 8, smem_slots: 0 }, &AllocOptions::default())
            .unwrap_err();
        assert!(matches!(err, AllocError::Recursion(_)));
    }
}
