//! The realize-occupancy entry point (§3.2): given a per-thread on-chip
//! slot budget, allocate every function of a module and lower it to
//! machine code.
//!
//! The work itself is staged as an explicit pass pipeline in
//! [`crate::pipeline`] — normalize → color → spill → stack-plan →
//! layout → lower → mir-verify — with one typed artifact per stage.
//! [`allocate`] is a thin driver over [`Pipeline::standard`]; the
//! Figure 5 ablations in [`AllocOptions`] select passes rather than
//! branching inside them, and custom experiments can edit the pipeline
//! directly. [`crate::reference::allocate_reference`] keeps the original
//! single-function implementation as a behavioral oracle.
//!
//! The absolute on-chip slot index decides physical placement per word:
//! indices below the register budget are registers, the rest are private
//! shared-memory slots. Spills and the move-cycle scratch live in local
//! memory.

use crate::chaitin::Coloring;
use crate::pipeline::Pipeline;
use crate::stack::Unit;
use orion_kir::cfg::Cfg;
use orion_kir::function::{Function, Module};
use orion_kir::inst::{Inst, Opcode, Operand};
use orion_kir::liveness::{max_live, Liveness};
use orion_kir::mir::{MInst, MLoc, MModule, MOperand};
use orion_kir::ssa::normalize;
use orion_kir::types::FuncId;
use serde::{Deserialize, Serialize};

/// Local-memory slots reserved as the move-cycle scratch area (wide
/// enough for a 128-bit bounce).
pub const SCRATCH_SLOTS: u16 = 4;

/// Per-thread on-chip slot budget implied by a target occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotBudget {
    /// Physical registers per thread.
    pub reg_slots: u16,
    /// Private shared-memory slots per thread the allocator may add.
    pub smem_slots: u16,
}

impl SlotBudget {
    /// Total on-chip slots per thread.
    pub fn total(&self) -> u16 {
        self.reg_slots + self.smem_slots
    }
}

/// Allocator feature switches (the paper's Figure 5 ablations).
///
/// Each flag corresponds to a pipeline edit — see
/// [`Pipeline::standard`] for the mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AllocOptions {
    /// Compress the caller stack at calls ("space minimization"). When
    /// off, callee frames sit above the caller's entire frame.
    pub compress_stack: bool,
    /// Optimize the slot layout with Kuhn-Munkres ("data movement
    /// minimization"). When off, the colored layout is kept as-is.
    pub optimize_layout: bool,
}

impl Default for AllocOptions {
    fn default() -> Self {
        AllocOptions { compress_stack: true, optimize_layout: true }
    }
}

/// Allocation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocError {
    /// SSA construction failed (malformed input).
    Ssa(orion_kir::ssa::SsaError),
    /// The call graph is recursive.
    Recursion(orion_kir::callgraph::RecursionError),
    /// A call is guarded by a predicate, which the lowering does not
    /// support (compression moves could not be predicated consistently).
    PredicatedCall { func: String },
    /// A cross-phase invariant of the allocator was violated (a later
    /// phase found state a prior phase should have produced missing or
    /// inconsistent). Always an allocator bug, but reported as an error
    /// instead of a panic so a resilient caller can quarantine the
    /// affected candidate and keep tuning.
    Internal(String),
    /// The machine-IR verifier rejected the lowered module (verified
    /// mode only).
    MirVerify(orion_kir::mir_verify::MirVerifyError),
    /// A pipeline stage failed: names the stage and chains the
    /// underlying diagnostic as [`std::error::Error::source`]. Domain
    /// errors ([`AllocError::Ssa`], [`AllocError::Recursion`],
    /// [`AllocError::PredicatedCall`]) are never wrapped.
    Stage {
        /// The [`crate::pipeline::Pass::name`] of the failing stage.
        stage: &'static str,
        /// The underlying failure.
        source: Box<AllocError>,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Ssa(e) => write!(f, "ssa: {e}"),
            AllocError::Recursion(e) => write!(f, "{e}"),
            AllocError::PredicatedCall { func } => {
                write!(f, "{func}: predicated calls are not supported")
            }
            AllocError::Internal(detail) => {
                write!(f, "internal allocator invariant violated: {detail}")
            }
            AllocError::MirVerify(e) => write!(f, "machine-IR verification failed: {e}"),
            AllocError::Stage { stage, source } => {
                write!(f, "allocation stage `{stage}` failed: {source}")
            }
        }
    }
}

impl std::error::Error for AllocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllocError::Ssa(e) => Some(e),
            AllocError::Recursion(e) => Some(e),
            AllocError::MirVerify(e) => Some(e),
            AllocError::Stage { source, .. } => Some(source.as_ref()),
            AllocError::PredicatedCall { .. } | AllocError::Internal(_) => None,
        }
    }
}

impl From<orion_kir::ssa::SsaError> for AllocError {
    fn from(e: orion_kir::ssa::SsaError) -> Self {
        AllocError::Ssa(e)
    }
}

impl From<orion_kir::callgraph::RecursionError> for AllocError {
    fn from(e: orion_kir::callgraph::RecursionError) -> Self {
        AllocError::Recursion(e)
    }
}

impl From<orion_kir::mir_verify::MirVerifyError> for AllocError {
    fn from(e: orion_kir::mir_verify::MirVerifyError) -> Self {
        AllocError::MirVerify(e)
    }
}

/// Per-function allocation summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncAllocInfo {
    pub name: String,
    pub base: u16,
    pub frame_size: u16,
    pub spilled_webs: usize,
    pub call_sites: usize,
    /// Compression moves predicted by the layout model (Theorem 1 count).
    pub predicted_moves: u32,
}

/// Whole-module allocation summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocReport {
    /// Kernel max-live in 32-bit words (the §3.3 direction metric).
    pub kernel_max_live: u32,
    /// Registers per thread in the produced binary.
    pub regs_per_thread: u16,
    /// Private shared-memory slots per thread.
    pub smem_slots_per_thread: u16,
    /// Local-memory slots per thread (scratch + spills).
    pub local_slots_per_thread: u16,
    /// Static stack/argument move instructions inserted.
    pub static_moves: u32,
    pub per_func: Vec<FuncAllocInfo>,
}

/// A fully allocated module plus its report.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocated {
    pub machine: MModule,
    pub report: AllocReport,
}

/// One analyzed call site of a caller: the target and which of the
/// caller's [`Unit`]s are live across the call (the layout model's and
/// the lowering's shared view of the call).
#[derive(Debug, Clone)]
pub struct CallSiteCtx {
    /// The called function.
    pub callee: FuncId,
    /// Units of the *caller* live across this call.
    pub live_units: Vec<bool>,
}

/// The per-function lowering view assembled from the pipeline artifacts
/// (or built inline by the reference implementation).
#[derive(Debug, Clone)]
pub(crate) struct FuncCtx {
    pub(crate) nf: Function,
    pub(crate) coloring: Coloring,
    pub(crate) units: Vec<Unit>,
    /// Call sites in traversal order (matches lowering).
    pub(crate) calls: Vec<CallSiteCtx>,
    pub(crate) base: u16,
    /// Local slot of each spilled web.
    pub(crate) spill_slot: std::collections::HashMap<usize, u16>,
    pub(crate) max_live: u32,
}

impl FuncCtx {
    pub(crate) fn loc(&self, web: usize) -> MLoc {
        let w = self.nf.vreg_widths[web];
        match self.coloring.slot_of[web] {
            Some(s) => MLoc::onchip(self.base + s, w),
            None => MLoc::local(self.spill_slot[&web], w),
        }
    }
}

/// Compute the max-live of a module's kernel (after web normalization) —
/// the paper's direction-selection metric.
///
/// # Errors
/// Fails when SSA construction fails.
pub fn kernel_max_live(m: &Module) -> Result<u32, AllocError> {
    let nf = normalize(m.kernel())?;
    let cfg = Cfg::new(&nf);
    let live = Liveness::new(&nf, &cfg);
    Ok(max_live(&nf, &cfg, &live))
}

/// Allocate `module` under `budget` with `opts`, producing machine code.
///
/// Drives [`Pipeline::standard`]; stage-boundary verification is active
/// in debug builds and under the `verify` cargo feature (see
/// [`crate::pipeline::verification_enabled`]), and can be forced with
/// [`allocate_verified`].
///
/// # Errors
/// Returns [`AllocError`] on recursion, malformed IR, or predicated
/// calls. The input should already pass [`orion_kir::verify::verify`].
pub fn allocate(
    module: &Module,
    budget: SlotBudget,
    opts: &AllocOptions,
) -> Result<Allocated, AllocError> {
    Pipeline::standard(opts).run(module, budget)
}

/// [`allocate`] with every stage-boundary check and the machine-IR
/// verifier forced on, regardless of build configuration.
///
/// # Errors
/// As [`allocate`], plus [`AllocError::Stage`] when a pipeline
/// invariant or the machine-IR verifier rejects an artifact.
pub fn allocate_verified(
    module: &Module,
    budget: SlotBudget,
    opts: &AllocOptions,
) -> Result<Allocated, AllocError> {
    Pipeline::verified(opts).run(module, budget)
}

/// Split a unit of `words` slots into `(offset, width)` move chunks of at
/// most four words each (one machine move covers at most a W128).
pub(crate) fn chunk_widths(words: u16) -> Vec<(u16, orion_kir::types::Width)> {
    use orion_kir::types::Width;
    let mut out = Vec::with_capacity(usize::from(words.div_ceil(4)));
    let mut off = 0;
    let mut left = words;
    while left > 0 {
        let w = match left {
            1 => Width::W32,
            2 => Width::W64,
            3 => Width::W96,
            _ => Width::W128,
        };
        out.push((off, w));
        off += w.words();
        left -= w.words();
    }
    out
}

pub(crate) fn lower_operand(ctx: &FuncCtx, op: &Operand) -> MOperand {
    match op {
        Operand::Reg(r) => MOperand::Loc(ctx.loc(r.0 as usize)),
        Operand::Imm(i) => MOperand::Imm(*i),
        Operand::Param(p) => MOperand::Param(*p),
        Operand::Special(s) => MOperand::Special(*s),
    }
}

pub(crate) fn lower_inst(ctx: &FuncCtx, inst: &Inst) -> MInst {
    debug_assert!(!matches!(inst.op, Opcode::Call(_)));
    MInst {
        op: inst.op,
        dst: inst.dst.map(|d| ctx.loc(d.0 as usize)),
        pdst: inst.pdst,
        srcs: inst.srcs.iter().map(|o| lower_operand(ctx, o)).collect(),
        pred: inst.pred,
        pred_neg: inst.pred_neg,
        sel_pred: inst.sel_pred,
        is_stack_move: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
    use orion_kir::types::BlockId;
    use orion_kir::types::{MemSpace, SpecialReg, Width};
    use orion_kir::verify::verify;

    fn simple_module() -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let a = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, a, 0);
        let y = b.iadd(x, Operand::Imm(5));
        b.st(MemSpace::Global, Width::W32, a, y, 0);
        Module::new(b.finish())
    }

    #[test]
    fn allocates_simple_kernel() {
        let m = simple_module();
        verify(&m).unwrap();
        let a = allocate(&m, SlotBudget { reg_slots: 16, smem_slots: 0 }, &AllocOptions::default())
            .unwrap();
        assert!(a.machine.regs_per_thread <= 16);
        assert!(a.machine.regs_per_thread >= 2);
        assert_eq!(a.machine.smem_slots_per_thread, 0);
        assert_eq!(a.report.per_func.len(), 1);
    }

    #[test]
    fn tight_budget_spills_to_smem_then_local() {
        let mut b = FunctionBuilder::kernel("k");
        let vs: Vec<_> = (0..12).map(|i| b.mov_i32(i)).collect();
        let mut acc = b.mov_i32(0);
        for v in vs {
            acc = b.iadd(acc, v);
        }
        b.st(MemSpace::Global, Width::W32, Operand::Imm(0), acc, 0);
        let m = Module::new(b.finish());
        let a = allocate(&m, SlotBudget { reg_slots: 4, smem_slots: 4 }, &AllocOptions::default())
            .unwrap();
        assert_eq!(a.machine.regs_per_thread, 4);
        assert!(a.machine.smem_slots_per_thread > 0);
        // 13 simultaneously live values in 8 on-chip slots: spills exist.
        assert!(a.machine.local_slots_per_thread > SCRATCH_SLOTS);
    }

    #[test]
    fn call_gets_frame_above_caller_live_height() {
        let mut b = FunctionBuilder::kernel("k");
        let _keep = b.mov_i32(11);
        let _x = b.mov_f32(10.0);
        let _y = b.mov_f32(4.0);
        let mut m = Module::new(b.finish());
        let fdiv = m.add_func(build_fdiv_device());
        let mut kb = FunctionBuilder::kernel("k");
        let keep = kb.mov_i32(11);
        let x = kb.mov_f32(10.0);
        let y = kb.mov_f32(4.0);
        let q = kb.call(fdiv, vec![x.into(), y.into()], &[Width::W32]);
        let s = kb.iadd(keep, q[0]);
        kb.st(MemSpace::Global, Width::W32, Operand::Imm(0), s, 0);
        m.funcs[0] = kb.finish();
        verify(&m).unwrap();
        let _ = (keep, x, y);
        let a = allocate(&m, SlotBudget { reg_slots: 32, smem_slots: 0 }, &AllocOptions::default())
            .unwrap();
        let callee = &a.machine.funcs[1];
        // Only `keep` lives across the call: the callee base is 1.
        assert_eq!(callee.frame_base, 1);
        assert!(a.machine.static_stack_moves >= 2, "arg + ret moves");
    }

    #[test]
    fn no_compression_raises_callee_base() {
        let kb = FunctionBuilder::kernel("k");
        let mut m = Module::new(kb.finish());
        let fdiv = m.add_func(build_fdiv_device());
        let mut kb = FunctionBuilder::kernel("k");
        let keep = kb.mov_i32(11);
        let x = kb.mov_f32(10.0);
        let y = kb.mov_f32(4.0);
        let q = kb.call(fdiv, vec![x.into(), y.into()], &[Width::W32]);
        let s = kb.iadd(keep, q[0]);
        kb.st(MemSpace::Global, Width::W32, Operand::Imm(0), s, 0);
        m.funcs[0] = kb.finish();
        let compressed =
            allocate(&m, SlotBudget { reg_slots: 32, smem_slots: 0 }, &AllocOptions::default())
                .unwrap();
        let padded = allocate(
            &m,
            SlotBudget { reg_slots: 32, smem_slots: 0 },
            &AllocOptions { compress_stack: false, optimize_layout: false },
        )
        .unwrap();
        assert!(
            padded.machine.funcs[1].frame_base > compressed.machine.funcs[1].frame_base,
            "padded {} vs compressed {}",
            padded.machine.funcs[1].frame_base,
            compressed.machine.funcs[1].frame_base
        );
    }

    #[test]
    fn recursion_rejected() {
        use orion_kir::function::{FuncKind, Function};
        use orion_kir::inst::CallInfo;
        let mut m = Module::new(Function::new("k", FuncKind::Kernel));
        let d = Function::new("d", FuncKind::Device);
        let _ = d;
        let mut d = Function::new("d", FuncKind::Device);
        let id = m.add_func(d.clone());
        let mut call = Inst::new(Opcode::Call(id), None, vec![]);
        call.call = Some(CallInfo { args: vec![], rets: vec![] });
        d.block_mut(BlockId(0)).insts = vec![call.clone()];
        m.funcs[1] = d;
        m.func_mut(FuncId(0)).block_mut(BlockId(0)).insts = vec![call];
        let err =
            allocate(&m, SlotBudget { reg_slots: 8, smem_slots: 0 }, &AllocOptions::default())
                .unwrap_err();
        assert!(matches!(err, AllocError::Recursion(_)));
    }
}
