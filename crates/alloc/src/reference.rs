//! Frozen pre-pipeline allocator, kept as the differential oracle.
//!
//! [`allocate_reference`] is the original monolithic `allocate` body —
//! phases A (color + frame bases), B (layout), C (lowering) in one
//! function — preserved verbatim (minus telemetry) when the production
//! path moved to the staged [`crate::pipeline`]. The equivalence tests
//! in the bench crate run both over the tier-1 workloads at every
//! occupancy level and assert bit-identical machine code and reports,
//! proving the refactor behavior-preserving.
//!
//! Do not extend this module: new allocation features belong in
//! [`crate::pipeline`] passes. This file only changes if the oracle
//! itself must track an intentional, documented output change.

use crate::chaitin::color;
use crate::interference::InterferenceGraph;
use crate::layout::{identity_layout, optimize_layout, CallLayoutInfo};
use crate::realize::{
    chunk_widths, lower_inst, lower_operand, AllocError, AllocOptions, AllocReport, Allocated,
    CallSiteCtx, FuncAllocInfo, FuncCtx, SlotBudget, SCRATCH_SLOTS,
};
use crate::stack::{
    extract_units, live_units, min_packed_height, pack_live_units, sequentialize, PMove,
};
use orion_kir::bitset::BitSet;
use orion_kir::callgraph::CallGraph;
use orion_kir::cfg::Cfg;
use orion_kir::function::Module;
use orion_kir::inst::Opcode;
use orion_kir::liveness::{max_live, Liveness};
use orion_kir::mir::{MBlock, MFunction, MInst, MLoc, MModule};
use orion_kir::ssa::normalize;
use orion_kir::types::{FuncId, Width};

/// The pre-refactor `allocate`: identical inputs must yield output
/// bit-identical to [`crate::realize::allocate`].
///
/// # Errors
/// Same contract as [`crate::realize::allocate`], except internal
/// diagnostics are not wrapped in [`AllocError::Stage`].
pub fn allocate_reference(
    module: &Module,
    budget: SlotBudget,
    opts: &AllocOptions,
) -> Result<Allocated, AllocError> {
    let cg = CallGraph::new(module);
    let bottom_up = cg.bottom_up(module.entry)?;
    let topdown: Vec<FuncId> = bottom_up.iter().rev().copied().collect();
    let total = budget.total();

    let n = module.funcs.len();
    let mut bases = vec![0u16; n];
    let mut ctxs: Vec<Option<FuncCtx>> = (0..n).map(|_| None).collect();
    let mut local_counter: u16 = SCRATCH_SLOTS;

    // ---- Phase A: color and compute frame bases, callers first ----
    for &fid in &topdown {
        let f = module.func(fid);
        let nf = normalize(f)?;
        let cfg = Cfg::new(&nf);
        let live = Liveness::new(&nf, &cfg);
        let ml = max_live(&nf, &cfg, &live);
        let graph = InterferenceGraph::build(&nf, &cfg, &live);
        let base = bases[fid.0 as usize];
        let fbudget = total.saturating_sub(base);
        let coloring = color(&graph, fbudget, base, &[])?;
        let mut spill_slot = std::collections::HashMap::new();
        for &w in &coloring.spilled {
            spill_slot.insert(w, local_counter);
            local_counter += nf.vreg_widths[w].words();
        }
        let units = extract_units(&coloring, &nf.vreg_widths)?;

        let mut calls = Vec::new();
        for (bid, blk) in nf.iter_blocks() {
            if !cfg.reachable(bid) {
                continue;
            }
            for (idx, inst) in blk.insts.iter().enumerate() {
                let Opcode::Call(callee) = inst.op else { continue };
                if inst.pred.is_some() {
                    return Err(AllocError::PredicatedCall { func: nf.name.clone() });
                }
                let live_webs: BitSet = {
                    let mut s = BitSet::new(nf.num_vregs());
                    for v in live.live_across(&nf, bid, idx) {
                        s.insert(v.0 as usize);
                    }
                    s
                };
                let lu = live_units(&units, &live_webs);
                let bk_min = if opts.compress_stack {
                    min_packed_height(&units, &lu).min(coloring.frame_size)
                } else {
                    coloring.frame_size
                };
                let cb = &mut bases[callee.0 as usize];
                *cb = (*cb).max(base + bk_min);
                calls.push(CallSiteCtx { callee, live_units: lu });
            }
        }
        ctxs[fid.0 as usize] =
            Some(FuncCtx { nf, coloring, units, calls, base, spill_slot, max_live: ml });
    }

    // ---- Phase B: layout optimization (bases are now final) ----
    let mut predicted_moves: Vec<u32> = vec![0; n];
    for &fid in &topdown {
        let base = bases[fid.0 as usize];
        let ctx = ctxs[fid.0 as usize].as_mut().ok_or_else(|| {
            AllocError::Internal(format!("phase B: function {} has no phase-A context", fid.0))
        })?;
        ctx.base = base; // may have been raised after coloring
        let call_infos: Vec<CallLayoutInfo> = ctx
            .calls
            .iter()
            .map(|c| CallLayoutInfo {
                bk: bases[c.callee.0 as usize].saturating_sub(base),
                live: c.live_units.clone(),
            })
            .collect();
        let plan = if opts.optimize_layout && opts.compress_stack {
            optimize_layout(&ctx.units, &call_infos)
        } else {
            identity_layout(&ctx.units, &call_infos)
        };
        predicted_moves[fid.0 as usize] = plan.total_moves;
        crate::layout::apply_layout(&mut ctx.coloring.slot_of, &ctx.units, &plan);
        for (i, u) in ctx.units.iter_mut().enumerate() {
            u.start = plan.new_start[i];
            u.residue = u.start % u.align;
        }
    }

    // ---- Phase C: lowering ----
    let scratch = MLoc::local(0, Width::W128);
    let mut mfuncs: Vec<MFunction> = Vec::with_capacity(n);
    let mut static_moves: u32 = 0;
    // Pre-compute param/ret slots for every function (needed by callers).
    let param_ret_slots: Vec<Option<(Vec<MLoc>, Vec<MLoc>)>> = (0..n)
        .map(|i| {
            ctxs[i].as_ref().map(|c| {
                let p = c.nf.params.iter().map(|r| c.loc(r.0 as usize)).collect();
                let r = c.nf.rets.iter().map(|r| c.loc(r.0 as usize)).collect();
                (p, r)
            })
        })
        .collect();

    for i in 0..n {
        let Some(ctx) = &ctxs[i] else {
            // Unreachable function: emit an empty stub.
            mfuncs.push(MFunction {
                name: module.func(FuncId(i as u32)).name.clone(),
                frame_base: 0,
                frame_size: 0,
                param_slots: vec![],
                ret_slots: vec![],
                blocks: vec![],
            });
            continue;
        };
        let mut blocks = Vec::with_capacity(ctx.nf.num_blocks());
        let mut call_cursor = 0usize;
        // Re-walk blocks in the same order as phase A to line up call
        // contexts; unreachable blocks contain no analyzed calls.
        let cfg = Cfg::new(&ctx.nf);
        for (bid, blk) in ctx.nf.iter_blocks() {
            let mut insts: Vec<MInst> = Vec::with_capacity(blk.insts.len());
            for inst in &blk.insts {
                if let Opcode::Call(callee) = inst.op {
                    if !cfg.reachable(bid) {
                        continue; // never executed; drop
                    }
                    let cctx = ctx.calls.get(call_cursor).ok_or_else(|| {
                        AllocError::Internal(format!(
                            "{}: call #{call_cursor} was not analyzed in phase A",
                            ctx.nf.name
                        ))
                    })?;
                    if cctx.callee != callee {
                        return Err(AllocError::Internal(format!(
                            "{}: call #{call_cursor} targets {} but phase A recorded {}",
                            ctx.nf.name, callee.0, cctx.callee.0
                        )));
                    }
                    call_cursor += 1;
                    let bk = bases[callee.0 as usize].saturating_sub(ctx.base);
                    let placement = pack_live_units(&ctx.units, &cctx.live_units, bk)?;
                    let (pslots, rslots) =
                        param_ret_slots[callee.0 as usize].as_ref().ok_or_else(|| {
                            AllocError::Internal(format!(
                                "{}: callee {} is called but has no param/ret slots \
                                 (unreachable in the call graph?)",
                                ctx.nf.name, callee.0
                            ))
                        })?;
                    // Pre-call parallel move set: compression + arguments.
                    // Units wider than four words move in chunks (a
                    // single MLoc covers at most a W128).
                    let mut pre: Vec<PMove> = Vec::new();
                    for &(ui, newpos) in &placement {
                        let u = &ctx.units[ui];
                        if newpos != u.start {
                            for (off, w) in chunk_widths(u.width) {
                                pre.push(PMove {
                                    dst: MLoc::onchip(ctx.base + newpos + off, w),
                                    src: MLoc::onchip(ctx.base + u.start + off, w).into(),
                                });
                            }
                        }
                    }
                    let ci = inst.call.as_ref().ok_or_else(|| {
                        AllocError::Internal(format!(
                            "{}: Call instruction carries no call info (unverified module?)",
                            ctx.nf.name
                        ))
                    })?;
                    for (arg, &pslot) in ci.args.iter().zip(pslots) {
                        pre.push(PMove { dst: pslot, src: lower_operand(ctx, arg) });
                    }
                    let pre_insts = sequentialize(&pre, scratch)?;
                    static_moves += pre_insts.len() as u32;
                    insts.extend(pre_insts);
                    insts.push(MInst::new(Opcode::Call(callee), None, vec![]));
                    // Post-call parallel move set: returns + restores.
                    let mut post: Vec<PMove> = Vec::new();
                    for (&ret_web, &rslot) in ci.rets.iter().zip(rslots) {
                        post.push(PMove { dst: ctx.loc(ret_web.0 as usize), src: rslot.into() });
                    }
                    for &(ui, newpos) in &placement {
                        let u = &ctx.units[ui];
                        if newpos != u.start {
                            for (off, w) in chunk_widths(u.width) {
                                post.push(PMove {
                                    dst: MLoc::onchip(ctx.base + u.start + off, w),
                                    src: MLoc::onchip(ctx.base + newpos + off, w).into(),
                                });
                            }
                        }
                    }
                    let post_insts = sequentialize(&post, scratch)?;
                    static_moves += post_insts.len() as u32;
                    insts.extend(post_insts);
                } else {
                    insts.push(lower_inst(ctx, inst));
                }
            }
            blocks.push(MBlock { insts, term: blk.term.clone() });
        }
        let (pslots, rslots) = param_ret_slots[i]
            .as_ref()
            .ok_or_else(|| {
                AllocError::Internal(format!("function {i} has a context but no param/ret slots"))
            })?
            .clone();
        mfuncs.push(MFunction {
            name: ctx.nf.name.clone(),
            frame_base: ctx.base,
            frame_size: ctx.coloring.frame_size,
            param_slots: pslots,
            ret_slots: rslots,
            blocks,
        });
    }

    let mut peak_abs: u16 = 0;
    for f in &topdown {
        let c = ctxs[f.0 as usize].as_ref().ok_or_else(|| {
            AllocError::Internal(format!("function {} lost its context after lowering", f.0))
        })?;
        peak_abs = peak_abs.max(c.base + c.coloring.frame_size);
    }
    let regs_per_thread = budget.reg_slots.min(peak_abs);
    let smem_slots_per_thread = peak_abs.saturating_sub(regs_per_thread);

    let mut per_func = Vec::with_capacity(topdown.len());
    for f in &topdown {
        let c = ctxs[f.0 as usize].as_ref().ok_or_else(|| {
            AllocError::Internal(format!("function {} lost its context after lowering", f.0))
        })?;
        per_func.push(FuncAllocInfo {
            name: c.nf.name.clone(),
            base: c.base,
            frame_size: c.coloring.frame_size,
            spilled_webs: c.coloring.spilled.len(),
            call_sites: c.calls.len(),
            predicted_moves: predicted_moves[f.0 as usize],
        });
    }
    let report = AllocReport {
        kernel_max_live: ctxs[module.entry.0 as usize]
            .as_ref()
            .ok_or_else(|| {
                AllocError::Internal(format!(
                    "entry function {} was never allocated",
                    module.entry.0
                ))
            })?
            .max_live,
        regs_per_thread,
        smem_slots_per_thread,
        local_slots_per_thread: local_counter,
        static_moves,
        per_func,
    };

    let machine = MModule {
        funcs: mfuncs,
        entry: module.entry,
        regs_per_thread,
        smem_slots_per_thread,
        local_slots_per_thread: local_counter,
        user_smem_bytes: module.user_smem_bytes,
        static_stack_moves: static_moves,
    };
    Ok(Allocated { machine, report })
}
