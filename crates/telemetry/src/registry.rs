//! Scoped metric registry: a registered, enumerable metric schema.
//!
//! The counter API ([`crate::counter`]) identifies metrics by ad-hoc
//! `cat/name` strings assembled at each call site — nothing enumerates
//! them, typos silently fork a metric, and gauges (values that go *down*)
//! have no representation at all. The registry fixes the schema side:
//! every instrument is registered once with a name, help text, unit and
//! kind, handles are cheap clones backed by atomics, and a
//! [`MetricRegistry::snapshot`] enumerates everything in registration
//! order for the exporters ([`crate::export`]).
//!
//! Three instrument kinds:
//!
//! * [`CounterHandle`] — monotone `u64` (`add`/`inc`);
//! * [`GaugeHandle`] — instantaneous `f64` (`set`/`add`/`inc`/`dec`),
//!   plus *callback* gauges ([`MetricRegistry::register_gauge_fn`]) that
//!   sample a closure at snapshot time (e.g. current cache entries);
//! * [`HistogramHandle`] — a shared [`Histogram`].
//!
//! [`MetricRegistry::scope`] returns a view that prefixes every name
//! with `prefix/`, so subsystems register `hits` and get
//! `cache/shard0/hits` without string plumbing at call sites.
//!
//! Registration is idempotent: registering an existing name with the
//! same kind returns a handle to the *same* instrument (so two call
//! sites may race to register); a kind mismatch panics, as that is a
//! schema bug, not a runtime condition.
//!
//! Unlike the event buffer, the registry is **not** gated by
//! [`crate::is_enabled`]: instruments are plain atomics, cost nanoseconds,
//! and reports must be able to read them even in `--no-default-features`
//! builds (determinism tests compare registry-free service reports
//! there). The global registry is process-wide ([`global`]); tests that
//! need isolation construct their own `MetricRegistry`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{Histogram, HistogramSummary};

/// What a registered instrument measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count.
    Counter,
    /// Instantaneous value that can rise and fall.
    Gauge,
    /// Sample distribution ([`Histogram`]).
    Histogram,
}

/// Static description of a registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDesc {
    /// Full `/`-separated name, e.g. `"service/in_flight_sessions"`.
    pub name: String,
    /// One-line human description (Prometheus `HELP`).
    pub help: String,
    /// Unit suffix for documentation (`"cycles"`, `"us"`, `"entries"`,
    /// `""` for dimensionless).
    pub unit: &'static str,
    pub kind: MetricKind,
}

/// Monotone counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Gauge handle; stores `f64` bits in an atomic. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Arc<AtomicU64>);

impl GaugeHandle {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) with a compare-exchange loop.
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn inc(&self) {
        self.add(1.0);
    }

    pub fn dec(&self) {
        self.add(-1.0);
    }

    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared histogram handle. Cloning shares the histogram.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    pub fn record(&self, v: u64) {
        self.0.lock().unwrap().record(v);
    }

    pub fn record_n(&self, v: u64, n: u64) {
        self.0.lock().unwrap().record_n(v, n);
    }

    pub fn merge(&self, other: &Histogram) {
        self.0.lock().unwrap().merge(other);
    }

    /// A point-in-time copy of the distribution.
    #[must_use]
    pub fn get(&self) -> Histogram {
        self.0.lock().unwrap().clone()
    }
}

type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;

enum Instrument {
    Counter(CounterHandle),
    Gauge(GaugeHandle),
    GaugeFn(GaugeFn),
    Histogram(HistogramHandle),
}

impl Instrument {
    fn kind(&self) -> MetricKind {
        match self {
            Instrument::Counter(_) => MetricKind::Counter,
            Instrument::Gauge(_) | Instrument::GaugeFn(_) => MetricKind::Gauge,
            Instrument::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// The sampled value of one metric in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// One `(description, value)` row of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    pub desc: MetricDesc,
    pub value: MetricValue,
}

impl MetricSample {
    /// Histogram summary if this sample is a histogram.
    #[must_use]
    pub fn histogram_summary(&self) -> Option<HistogramSummary> {
        match &self.value {
            MetricValue::Histogram(h) => Some(h.summary()),
            _ => None,
        }
    }
}

/// A point-in-time enumeration of every registered metric, in
/// registration order. Input to the exporters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.samples.iter().find(|s| s.desc.name == name).map(|s| &s.value)
    }

    #[must_use]
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    #[must_use]
    pub fn get_gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }
}

/// A registry of typed, named instruments. Cloning shares the registry;
/// use [`global`] for the process-wide instance.
#[derive(Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<Mutex<Vec<(MetricDesc, Instrument)>>>,
}

impl std::fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("MetricRegistry").field("metrics", &inner.len()).finish()
    }
}

impl MetricRegistry {
    #[must_use]
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    fn register_with(
        &self,
        name: String,
        help: &str,
        unit: &'static str,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument2 {
        let mut inner = self.inner.lock().unwrap();
        if let Some((desc, inst)) = inner.iter().find(|(d, _)| d.name == name) {
            let fresh = make();
            assert!(
                desc.kind == fresh.kind(),
                "metric {name:?} already registered as {:?}, requested {:?}",
                desc.kind,
                fresh.kind()
            );
            return clone_instrument(inst);
        }
        let inst = make();
        let desc = MetricDesc { name, help: help.to_string(), unit, kind: inst.kind() };
        let out = clone_instrument(&inst);
        inner.push((desc, inst));
        out
    }

    /// Register (or look up) a monotone counter.
    pub fn register_counter(&self, name: &str, help: &str, unit: &'static str) -> CounterHandle {
        match self.register_with(name.to_string(), help, unit, || {
            Instrument::Counter(CounterHandle::default())
        }) {
            Instrument2::Counter(h) => h,
            _ => unreachable!("kind checked in register_with"),
        }
    }

    /// Register (or look up) a gauge.
    pub fn register_gauge(&self, name: &str, help: &str, unit: &'static str) -> GaugeHandle {
        match self.register_with(name.to_string(), help, unit, || {
            Instrument::Gauge(GaugeHandle::default())
        }) {
            Instrument2::Gauge(h) => h,
            _ => unreachable!("kind checked in register_with"),
        }
    }

    /// Register a *callback* gauge sampled at snapshot time. Re-registering
    /// the same name replaces the callback (the latest closure wins), so a
    /// reconfigured subsystem can rebind its live views.
    pub fn register_gauge_fn(
        &self,
        name: &str,
        help: &str,
        unit: &'static str,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        let mut inner = self.inner.lock().unwrap();
        if let Some((desc, inst)) = inner.iter_mut().find(|(d, _)| d.name == name) {
            assert!(
                desc.kind == MetricKind::Gauge,
                "metric {name:?} already registered as {:?}, requested Gauge",
                desc.kind
            );
            *inst = Instrument::GaugeFn(Box::new(f));
            return;
        }
        let desc = MetricDesc {
            name: name.to_string(),
            help: help.to_string(),
            unit,
            kind: MetricKind::Gauge,
        };
        inner.push((desc, Instrument::GaugeFn(Box::new(f))));
    }

    /// Register (or look up) a histogram.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        unit: &'static str,
    ) -> HistogramHandle {
        match self.register_with(name.to_string(), help, unit, || {
            Instrument::Histogram(HistogramHandle::default())
        }) {
            Instrument2::Histogram(h) => h,
            _ => unreachable!("kind checked in register_with"),
        }
    }

    /// A view of this registry that prefixes every registered name with
    /// `prefix/`. Scopes nest: `scope("cache").scope("shard0")` registers
    /// under `cache/shard0/`.
    #[must_use]
    pub fn scope(&self, prefix: &str) -> Scope {
        Scope { registry: self.clone(), prefix: format!("{prefix}/") }
    }

    /// Sample every instrument, in registration order.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let samples = inner
            .iter()
            .map(|(desc, inst)| MetricSample {
                desc: desc.clone(),
                value: match inst {
                    Instrument::Counter(h) => MetricValue::Counter(h.get()),
                    Instrument::Gauge(h) => MetricValue::Gauge(h.get()),
                    Instrument::GaugeFn(f) => MetricValue::Gauge(f()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.get()),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// The registered schema (descriptions only), in registration order.
    #[must_use]
    pub fn descriptors(&self) -> Vec<MetricDesc> {
        self.inner.lock().unwrap().iter().map(|(d, _)| d.clone()).collect()
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// `register_with` needs to return "one of the clonable handles"; this
// private mirror of Instrument avoids cloning the boxed gauge callback
// (which has no meaningful handle to return).
enum Instrument2 {
    Counter(CounterHandle),
    Gauge(GaugeHandle),
    Histogram(HistogramHandle),
}

fn clone_instrument(inst: &Instrument) -> Instrument2 {
    match inst {
        Instrument::Counter(h) => Instrument2::Counter(h.clone()),
        Instrument::Gauge(h) => Instrument2::Gauge(h.clone()),
        // A callback gauge has no writable cell; hand back a detached
        // gauge so the caller's writes are inert rather than panicking.
        Instrument::GaugeFn(_) => Instrument2::Gauge(GaugeHandle::default()),
        Instrument::Histogram(h) => Instrument2::Histogram(h.clone()),
    }
}

/// A prefixing view of a [`MetricRegistry`]; see [`MetricRegistry::scope`].
#[derive(Debug, Clone)]
pub struct Scope {
    registry: MetricRegistry,
    prefix: String,
}

impl Scope {
    pub fn register_counter(&self, name: &str, help: &str, unit: &'static str) -> CounterHandle {
        self.registry.register_counter(&format!("{}{name}", self.prefix), help, unit)
    }

    pub fn register_gauge(&self, name: &str, help: &str, unit: &'static str) -> GaugeHandle {
        self.registry.register_gauge(&format!("{}{name}", self.prefix), help, unit)
    }

    pub fn register_gauge_fn(
        &self,
        name: &str,
        help: &str,
        unit: &'static str,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.registry.register_gauge_fn(&format!("{}{name}", self.prefix), help, unit, f)
    }

    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        unit: &'static str,
    ) -> HistogramHandle {
        self.registry.register_histogram(&format!("{}{name}", self.prefix), help, unit)
    }

    /// Nest a further prefix under this scope.
    #[must_use]
    pub fn scope(&self, prefix: &str) -> Scope {
        Scope { registry: self.registry.clone(), prefix: format!("{}{prefix}/", self.prefix) }
    }
}

/// The process-wide registry. Subsystems (`cache`, `service`) register
/// their instruments here; the profiler CLI and the service report
/// snapshot it.
pub fn global() -> &'static MetricRegistry {
    static GLOBAL: OnceLock<MetricRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let r = MetricRegistry::new();
        let c = r.register_counter("launches", "total launches", "");
        c.add(3);
        c.inc();
        let g = r.register_gauge("in_flight", "concurrent sessions", "");
        g.set(2.0);
        g.inc();
        g.dec();
        let h = r.register_histogram("latency", "launch cycles", "cycles");
        h.record(100);
        h.record(200);
        let snap = r.snapshot();
        assert_eq!(snap.get_counter("launches"), Some(4));
        assert_eq!(snap.get_gauge("in_flight"), Some(2.0));
        match snap.get("latency") {
            Some(MetricValue::Histogram(hist)) => assert_eq!(hist.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn registration_is_idempotent_and_shares_state() {
        let r = MetricRegistry::new();
        let a = r.register_counter("x", "first", "");
        let b = r.register_counter("x", "second registration ignored", "");
        a.add(1);
        b.add(2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot().get_counter("x"), Some(3));
        // Help text of the first registration wins.
        assert_eq!(r.descriptors()[0].help, "first");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricRegistry::new();
        let _c = r.register_counter("x", "", "");
        let _g = r.register_gauge("x", "", "");
    }

    #[test]
    fn scopes_prefix_and_nest() {
        let r = MetricRegistry::new();
        let cache = r.scope("cache");
        let shard = cache.scope("shard0");
        shard.register_counter("hits", "", "").add(7);
        cache.register_gauge("entries", "", "entries").set(12.0);
        let snap = r.snapshot();
        assert_eq!(snap.get_counter("cache/shard0/hits"), Some(7));
        assert_eq!(snap.get_gauge("cache/entries"), Some(12.0));
    }

    #[test]
    fn gauge_fn_samples_at_snapshot_time() {
        let r = MetricRegistry::new();
        let cell = Arc::new(AtomicU64::new(5));
        let probe = cell.clone();
        r.register_gauge_fn("live", "sampled", "", move || probe.load(Ordering::Relaxed) as f64);
        assert_eq!(r.snapshot().get_gauge("live"), Some(5.0));
        cell.store(9, Ordering::Relaxed);
        assert_eq!(r.snapshot().get_gauge("live"), Some(9.0));
        // Re-registering replaces the callback.
        r.register_gauge_fn("live", "rebound", "", || 42.0);
        assert_eq!(r.snapshot().get_gauge("live"), Some(42.0));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let r = MetricRegistry::new();
        r.register_counter("z", "", "");
        r.register_gauge("a", "", "");
        r.register_histogram("m", "", "");
        let names: Vec<_> = r.snapshot().samples.iter().map(|s| s.desc.name.clone()).collect();
        assert_eq!(names, ["z", "a", "m"]);
    }

    #[test]
    fn gauge_add_is_atomic_across_threads() {
        let r = MetricRegistry::new();
        let g = r.register_gauge("g", "", "");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let g = g.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        g.add(1.0);
                    }
                });
            }
        });
        assert_eq!(g.get(), 4000.0);
    }
}
