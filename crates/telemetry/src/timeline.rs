//! Per-lane timeline and critical-path view derived from span events.
//!
//! The Chrome trace ([`crate::chrome`]) already renders spans visually,
//! but answering "where did this kernel's wall time go" requires a
//! browser. This module folds the same [`Event`] stream into a textual
//! per-lane summary: for every lane (`tid` — one per kernel session under
//! `OrionService`, SM index for simulator events) it pairs
//! [`Phase::Begin`]/[`Phase::End`] spans on a per-lane stack, absorbs
//! [`Phase::Complete`] spans directly, and reports
//!
//! * the lane's busy time (top-level span coverage, nested spans not
//!   double-counted),
//! * totals per span name, and
//! * the **critical path**: the ordered chain of top-level spans, which
//!   for a sequential session *is* the dependency chain from first
//!   compile to final decision.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{Event, Phase};

/// One completed span occurrence on a lane.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSpan {
    pub cat: &'static str,
    pub name: String,
    pub start: u64,
    pub dur: u64,
    /// Nesting depth at which the span ran (0 = top level).
    pub depth: usize,
}

/// The reconstructed activity of one `tid` lane.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneTimeline {
    pub lane: u32,
    /// Completed spans in start order.
    pub spans: Vec<TimelineSpan>,
    /// Earliest span start on this lane.
    pub first: u64,
    /// Latest span end on this lane.
    pub last: u64,
    /// Sum of top-level span durations (nested work not double-counted).
    pub busy: u64,
}

impl LaneTimeline {
    /// Wall span of the lane (`last - first`).
    #[must_use]
    pub fn extent(&self) -> u64 {
        self.last.saturating_sub(self.first)
    }

    /// Top-level spans in start order — the lane's critical path.
    pub fn critical_path(&self) -> impl Iterator<Item = &TimelineSpan> {
        self.spans.iter().filter(|s| s.depth == 0)
    }

    /// Total duration per span name (all depths), name-sorted.
    #[must_use]
    pub fn totals_by_name(&self) -> BTreeMap<String, u64> {
        let mut totals = BTreeMap::new();
        for s in &self.spans {
            *totals.entry(s.name.clone()).or_insert(0u64) += s.dur;
        }
        totals
    }
}

/// Reconstruct per-lane timelines from an event stream. Lanes are
/// returned in ascending `tid` order. Unclosed `Begin` spans are dropped
/// (the stream was cut), stray `End`s are ignored.
#[must_use]
pub fn lane_timelines(events: &[Event]) -> Vec<LaneTimeline> {
    // Per-lane stack of open Begin events: (cat, name, start, depth).
    let mut open: BTreeMap<u32, Vec<(&'static str, String, u64)>> = BTreeMap::new();
    let mut spans: BTreeMap<u32, Vec<TimelineSpan>> = BTreeMap::new();
    for e in events {
        match e.ph {
            Phase::Begin => {
                open.entry(e.tid).or_default().push((e.cat, e.name.clone(), e.ts));
            }
            Phase::End => {
                if let Some(stack) = open.get_mut(&e.tid) {
                    if let Some((cat, name, start)) = stack.pop() {
                        let depth = stack.len();
                        spans.entry(e.tid).or_default().push(TimelineSpan {
                            cat,
                            name,
                            start,
                            dur: e.ts.saturating_sub(start),
                            depth,
                        });
                    }
                }
            }
            Phase::Complete => {
                let depth = open.get(&e.tid).map_or(0, Vec::len);
                spans.entry(e.tid).or_default().push(TimelineSpan {
                    cat: e.cat,
                    name: e.name.clone(),
                    start: e.ts,
                    dur: e.dur,
                    depth,
                });
            }
            Phase::Instant | Phase::Counter => {}
        }
    }
    spans
        .into_iter()
        .map(|(lane, mut spans)| {
            spans.sort_by_key(|s| (s.start, s.depth));
            let first = spans.iter().map(|s| s.start).min().unwrap_or(0);
            let last = spans.iter().map(|s| s.start + s.dur).max().unwrap_or(0);
            let busy = spans.iter().filter(|s| s.depth == 0).map(|s| s.dur).sum();
            LaneTimeline { lane, spans, first, last, busy }
        })
        .collect()
}

/// Render the timelines as an indented text report: one block per lane,
/// the critical-path chain with durations, and per-name totals.
#[must_use]
pub fn render_text(lanes: &[LaneTimeline]) -> String {
    let mut out = String::new();
    for lane in lanes {
        let _ = writeln!(
            out,
            "lane {:<3} extent {:>8}  busy {:>8}  spans {}",
            lane.lane,
            lane.extent(),
            lane.busy,
            lane.spans.len()
        );
        for s in &lane.spans {
            let _ = writeln!(
                out,
                "  {}{:<28} {:>8} @ {:>8}  [{}]",
                "  ".repeat(s.depth),
                s.name,
                s.dur,
                s.start,
                s.cat
            );
        }
        let path: Vec<String> =
            lane.critical_path().map(|s| format!("{}({})", s.name, s.dur)).collect();
        if !path.is_empty() {
            let _ = writeln!(out, "  critical path: {}", path.join(" -> "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArgValue;

    fn ev(name: &str, ph: Phase, ts: u64, dur: u64, tid: u32) -> Event {
        Event {
            cat: "t",
            name: name.to_string(),
            ph,
            ts,
            dur,
            tid,
            args: Vec::<(&str, ArgValue)>::new(),
        }
    }

    #[test]
    fn pairs_nested_spans_per_lane() {
        let events = vec![
            ev("outer", Phase::Begin, 0, 0, 1),
            ev("inner", Phase::Begin, 10, 0, 1),
            ev("inner", Phase::End, 40, 0, 1),
            ev("outer", Phase::End, 100, 0, 1),
            ev("other-lane", Phase::Begin, 5, 0, 2),
            ev("other-lane", Phase::End, 25, 0, 2),
        ];
        let lanes = lane_timelines(&events);
        assert_eq!(lanes.len(), 2);
        let l1 = &lanes[0];
        assert_eq!(l1.lane, 1);
        assert_eq!(l1.spans.len(), 2);
        // Busy counts only the top-level span.
        assert_eq!(l1.busy, 100);
        assert_eq!(l1.extent(), 100);
        let inner = l1.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!((inner.dur, inner.depth), (30, 1));
        let path: Vec<_> = l1.critical_path().map(|s| s.name.as_str()).collect();
        assert_eq!(path, ["outer"]);
        assert_eq!(lanes[1].busy, 20);
    }

    #[test]
    fn complete_events_and_totals() {
        let events = vec![
            ev("phase", Phase::Complete, 0, 50, 3),
            ev("phase", Phase::Complete, 60, 30, 3),
            ev("tick", Phase::Instant, 10, 0, 3), // ignored
        ];
        let lanes = lane_timelines(&events);
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].busy, 80);
        assert_eq!(lanes[0].totals_by_name()["phase"], 80);
        let path: Vec<_> = lanes[0].critical_path().map(|s| s.dur).collect();
        assert_eq!(path, [50, 30]);
    }

    #[test]
    fn unclosed_and_stray_spans_are_tolerated() {
        let events = vec![
            ev("cut", Phase::Begin, 0, 0, 1),
            ev("stray", Phase::End, 5, 0, 2),
            ev("ok", Phase::Complete, 1, 2, 1),
        ];
        let lanes = lane_timelines(&events);
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].spans.len(), 1);
        assert_eq!(lanes[0].spans[0].name, "ok");
        // The open "cut" span nests "ok" one deep.
        assert_eq!(lanes[0].spans[0].depth, 1);
    }

    #[test]
    fn render_text_lists_lanes_and_path() {
        let events = vec![
            ev("compile", Phase::Begin, 0, 0, 1),
            ev("compile", Phase::End, 40, 0, 1),
            ev("tune", Phase::Begin, 40, 0, 1),
            ev("tune", Phase::End, 90, 0, 1),
        ];
        let text = render_text(&lane_timelines(&events));
        assert!(text.contains("lane 1"), "{text}");
        assert!(text.contains("critical path: compile(40) -> tune(50)"), "{text}");
    }
}
