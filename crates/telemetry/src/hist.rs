//! Log-bucketed latency histogram with deterministic merge.
//!
//! The service plane needs *distributions*, not just totals: a launch
//! whose p99 latency doubled while its mean held still is exactly the
//! regression the mean-only counters of PR 1 could never see. This
//! histogram is the one distribution type every layer shares — the
//! tuning session records per-launch cycles and queue waits into it,
//! the service merges per-kernel histograms into a batch view, and the
//! exporters ([`crate::export`]) render it as Prometheus buckets or a
//! JSON quantile summary.
//!
//! # Bucketing scheme
//!
//! HdrHistogram-style base-2 buckets with [`SUB_BUCKETS`] linear
//! sub-buckets per octave:
//!
//! * values below [`SUB_BUCKETS`] get an exact bucket each (small
//!   counts — retry attempts, queue depths — lose no precision);
//! * a value `v ≥ SUB_BUCKETS` with highest set bit `t` lands in the
//!   sub-bucket indexed by the [`SUB_BITS`] bits below bit `t`, so each
//!   octave `[2^t, 2^{t+1})` is split into [`SUB_BUCKETS`] equal-width
//!   buckets and the relative bucket width is bounded by
//!   `2^-SUB_BITS = 1/16` everywhere.
//!
//! Quantiles report the midpoint of the bucket holding the target rank
//! (clamped into the exact observed `[min, max]`), so the relative
//! quantile error is bounded by half a bucket width — `1/32 ≈ 3.2%` —
//! and is *zero* for values below [`SUB_BUCKETS`] and for the extremes
//! (`q=0`, `q=1` return the exact min/max).
//!
//! # Determinism
//!
//! Recording and merging are pure integer arithmetic: bucket counts,
//! total, sum, min and max all add (or min/max) commutatively and
//! associatively, so merging per-worker histograms in *any* order
//! yields a bit-identical result. The service bench and the
//! observability suite gate sequential-vs-concurrent runs on exactly
//! this property.

/// Bits of sub-octave precision; bucket relative width is `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave (`2^SUB_BITS`).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total addressable buckets for the full `u64` range.
pub const NUM_BUCKETS: usize =
    (SUB_BUCKETS as usize) + (64 - SUB_BITS as usize) * (SUB_BUCKETS as usize);

/// The bucket index for `v`. Monotone non-decreasing in `v`.
#[must_use]
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // v ∈ [2^top, 2^{top+1}), top ≥ SUB_BITS
    let sub = (v >> (top - SUB_BITS)) & (SUB_BUCKETS - 1);
    SUB_BUCKETS as usize + ((top - SUB_BITS) as usize) * SUB_BUCKETS as usize + sub as usize
}

/// The half-open value range `[lo, hi)` covered by bucket `idx`
/// (`hi` saturates at `u64::MAX` in the topmost bucket).
#[must_use]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB_BUCKETS as usize {
        return (idx as u64, idx as u64 + 1);
    }
    let rel = idx - SUB_BUCKETS as usize;
    let top = SUB_BITS + (rel / SUB_BUCKETS as usize) as u32;
    let sub = (rel % SUB_BUCKETS as usize) as u64;
    let width = 1u64 << (top - SUB_BITS);
    let lo = (1u64 << top) + sub * width;
    (lo, lo.saturating_add(width))
}

/// The representative value reported for bucket `idx` (its midpoint).
#[must_use]
pub fn bucket_mid(idx: usize) -> u64 {
    let (lo, hi) = bucket_bounds(idx);
    lo + (hi - lo) / 2
}

/// A log-bucketed histogram of `u64` samples. See the module docs for
/// the bucketing scheme and the determinism contract.
///
/// The bucket array grows lazily up to the highest recorded bucket, so
/// an idle histogram costs a few machine words; equality is defined on
/// the *distribution* (trailing empty buckets are ignored).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        if (self.count, self.sum) != (other.count, other.sum) {
            return false;
        }
        if self.count > 0 && (self.min, self.max) != (other.min, other.max) {
            return false;
        }
        let n = self.counts.len().max(other.counts.len());
        (0..n).all(|i| {
            self.counts.get(i).copied().unwrap_or(0) == other.counts.get(i).copied().unwrap_or(0)
        })
    }
}

impl Histogram {
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` samples of value `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
    }

    /// Fold `other` into `self`. Commutative and associative: any merge
    /// order over a set of histograms produces a bit-identical result.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) as the midpoint of the bucket
    /// holding rank `⌈q·count⌉`, clamped into the exact `[min, max]`.
    /// Relative error is bounded by half a bucket width (`2^-(SUB_BITS+1)`).
    /// Returns 0 on an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The rank-1 and rank-count order statistics are tracked exactly.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending by index.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }

    /// Condensed scalar view for reports.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            min: self.min(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            max: self.max(),
            mean: self.mean(),
        }
    }

    /// Render as a JSON object: the summary scalars plus the sparse
    /// bucket table (`[[index, count], ...]`).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let s = self.summary();
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"count\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"mean\":{}",
            s.count, s.min, s.p50, s.p90, s.p99, s.max, s.mean
        );
        out.push_str(",\"buckets\":[");
        for (i, (idx, c)) in self.nonzero_buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{idx},{c}]");
        }
        out.push_str("]}");
        out
    }
}

/// The scalar summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    pub count: u64,
    pub min: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
    pub mean: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exact_below_sub() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
        }
        let mut last = 0;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 33, 100, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index must not decrease: v={v} idx={idx} last={last}");
            assert!(idx < NUM_BUCKETS);
            last = idx;
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in (0..10_000u64).chain([1 << 33, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "v={v} not in [{lo},{hi}) of bucket {idx}"
            );
        }
        // Octave boundaries land in the first sub-bucket of their octave.
        for t in SUB_BITS..63 {
            let v = 1u64 << t;
            let (lo, _) = bucket_bounds(bucket_index(v));
            assert_eq!(lo, v, "2^{t} must start its bucket");
        }
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for v in (SUB_BUCKETS..100_000u64).step_by(37) {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = hi - lo;
            assert!(
                (width as f64) / (lo as f64) <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                "bucket [{lo},{hi}) too wide"
            );
        }
    }

    #[test]
    fn quantile_error_is_within_half_a_bucket() {
        // Deterministic pseudo-random samples (splitmix-style).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^ (z >> 27)
        };
        let mut samples: Vec<u64> = (0..5000).map(|_| next() % 1_000_000).collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1] as f64;
            let est = h.quantile(q) as f64;
            let rel = (est - exact).abs() / exact.max(1.0);
            assert!(
                rel <= 1.0 / (2.0 * SUB_BUCKETS as f64) + 1e-9,
                "q={q}: exact {exact}, est {est}, rel {rel}"
            );
        }
        // Extremes are exact.
        assert_eq!(h.quantile(0.0), samples[0]);
        assert_eq!(h.quantile(1.0), *samples.last().unwrap());
        assert_eq!(h.min(), samples[0]);
        assert_eq!(h.max(), *samples.last().unwrap());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.p50(), 3);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 19);
    }

    #[test]
    fn merge_is_order_independent_and_matches_single_recorder() {
        let chunks: Vec<Vec<u64>> = (0..8)
            .map(|k| (0..500u64).map(|i| (i * 2654435761 + k * 40503) % 250_000).collect())
            .collect();
        let mut whole = Histogram::new();
        for c in &chunks {
            for &v in c {
                whole.record(v);
            }
        }
        let parts: Vec<Histogram> = chunks
            .iter()
            .map(|c| {
                let mut h = Histogram::new();
                for &v in c {
                    h.record(v);
                }
                h
            })
            .collect();
        // Forward, reverse, and interleaved merge orders.
        let mut fwd = Histogram::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        let mut tree = {
            let mut level: Vec<Histogram> = parts.clone();
            while level.len() > 1 {
                let mut next = Vec::new();
                for pair in level.chunks(2) {
                    let mut m = pair[0].clone();
                    if let Some(b) = pair.get(1) {
                        m.merge(b);
                    }
                    next.push(m);
                }
                level = next;
            }
            level.pop().unwrap()
        };
        tree.merge(&Histogram::new()); // empty merge is a no-op
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
        assert_eq!(tree, whole);
    }

    #[test]
    fn merge_across_scoped_threads_is_bit_identical() {
        // The exact shape the service uses: one histogram per scoped
        // worker, merged in submission order afterwards — must equal
        // the single-threaded recording bit for bit.
        let inputs: Vec<Vec<u64>> = (0..4)
            .map(|k| (0..1000u64).map(|i| (i * 48271 + k * 7919) % 1_000_000).collect())
            .collect();
        let mut serial = Histogram::new();
        for c in &inputs {
            for &v in c {
                serial.record(v);
            }
        }
        let mut parts: Vec<Histogram> = (0..inputs.len()).map(|_| Histogram::new()).collect();
        std::thread::scope(|scope| {
            for (part, input) in parts.iter_mut().zip(&inputs) {
                scope.spawn(move || {
                    for &v in input {
                        part.record(v);
                    }
                });
            }
        });
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, serial);
        assert_eq!(merged.summary(), serial.summary());
    }

    #[test]
    fn json_renders_sparse_buckets() {
        let mut h = Histogram::new();
        h.record(3);
        h.record_n(100, 2);
        let j = h.to_json();
        assert!(j.contains("\"count\":3"), "{j}");
        assert!(j.contains("[3,1]"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn equality_ignores_trailing_capacity() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1_000_000); // grows the bucket vec
        a = Histogram { counts: a.counts[..0].to_vec(), count: 0, sum: 0, min: 0, max: 0 };
        assert_eq!(a, b);
        b.record(5);
        assert_ne!(a, b);
    }
}
