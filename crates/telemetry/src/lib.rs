//! Structured-event telemetry for the Orion pipeline.
//!
//! The paper's whole premise (§3.3–3.4) is a feedback loop: the compiler
//! and runtime *observe* kernel behaviour and pick occupancy levels from
//! it. This crate is the observation side: a lightweight event API used
//! by the allocator (spill/promotion/compression counters), the tuner
//! (per-iteration decisions), and the simulator (phase timeline), plus
//! exporters to Chrome `trace_event` JSON and a flat metrics report.
//!
//! Beyond the raw event stream, the service plane builds on four typed
//! layers: [`hist`] (log-bucketed latency histograms with deterministic
//! merge), [`registry`] (a scoped, enumerable metric schema of counters,
//! gauges and histograms), [`journal`] (a bounded ring of typed runtime
//! decisions — retries, quarantines, evictions, fault injections), and
//! [`export`]/[`timeline`] (Prometheus text + JSON snapshot exporters
//! and a span-derived per-lane critical-path view).
//!
//! # Gating
//!
//! Recording is double-gated:
//!
//! * **Compile time** — the `enabled` cargo feature. Without it every
//!   probe body compiles away entirely; instrumented hot paths cost a
//!   few dead arguments at most. Exporters ([`chrome`], [`metrics`]) and
//!   the [`Event`] type are always compiled so downstream code can
//!   consume telemetry artifacts regardless.
//! * **Run time** — [`set_enabled`]. Even an `enabled` build records
//!   nothing until a collector (the profiler CLI, a test) opts in, so
//!   library users never pay for a global buffer they did not ask for.
//!
//! # Clock domains
//!
//! Wall-clock events ([`span`], [`instant`], [`counter`]) are stamped in
//! microseconds since the first probe. The simulator instead emits
//! *simulated-time* [`complete`] events whose `ts`/`dur` are in GPU
//! cycles with the SM index as `tid` — loading the trace into Chrome
//! gives one lane per SM on a cycle axis.

pub mod chrome;
pub mod export;
pub mod hist;
pub mod journal;
pub mod metrics;
pub mod registry;
pub mod timeline;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::sync::OnceLock;
use std::time::Instant;

/// Chrome `trace_event` phase of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span open (`"B"`), paired with a later [`Phase::End`].
    Begin,
    /// Span close (`"E"`).
    End,
    /// Self-contained span with an explicit duration (`"X"`).
    Complete,
    /// Point event (`"i"`).
    Instant,
    /// Counter sample (`"C"`).
    Counter,
}

/// A structured argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<u16> for ArgValue {
    fn from(v: u16) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Category: which subsystem emitted this (`"alloc"`, `"tuner"`,
    /// `"sim"`, `"compile"`, ...).
    pub cat: &'static str,
    /// Event name; dynamic so call sites can label per-object events.
    pub name: String,
    pub ph: Phase,
    /// Microseconds since session start (wall-clock events), or
    /// simulated cycles ([`Phase::Complete`] events from the simulator).
    pub ts: u64,
    /// Duration, same unit as `ts`; only meaningful for `Complete`.
    pub dur: u64,
    /// Lane id for timeline rendering (SM index for simulator events,
    /// 0 for host-side events).
    pub tid: u32,
    pub args: Vec<(&'static str, ArgValue)>,
}

static ON: AtomicBool = AtomicBool::new(false);

std::thread_local! {
    /// Per-thread session lane stamped into wall-clock events' `tid`.
    static SCOPE: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Set this thread's telemetry *scope lane*: every wall-clock event
/// ([`span`], [`instant`], [`counter`]) recorded by this thread carries
/// it as `tid`, so concurrent tuning sessions stay separable in one
/// shared trace (`OrionService` assigns one lane per kernel session).
/// Lane `0` is the unscoped default and keeps the pre-scoping output
/// byte-identical. Simulator [`complete`] events pass their own `tid`
/// (the SM index) and are unaffected.
pub fn set_scope(lane: u32) {
    SCOPE.with(|s| s.set(lane));
}

/// This thread's current telemetry scope lane (0 = unscoped).
pub fn scope() -> u32 {
    SCOPE.with(std::cell::Cell::get)
}

// The buffer exists in disabled builds too (so `take_events` always has
// one definition); it just never fills.
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());

static START: OnceLock<Instant> = OnceLock::new();

/// Whether recording is active (compile-time feature AND runtime switch).
#[inline]
pub fn is_enabled() -> bool {
    cfg!(feature = "enabled") && ON.load(Ordering::Relaxed)
}

/// Turn recording on or off at runtime. A no-op in builds without the
/// `enabled` feature. Enabling anchors the wall clock if it isn't yet.
pub fn set_enabled(on: bool) {
    if cfg!(feature = "enabled") {
        if on {
            START.get_or_init(Instant::now);
        }
        ON.store(on, Ordering::Relaxed);
    }
}

/// Drop all buffered events (e.g. between profiling sessions).
pub fn clear() {
    EVENTS.lock().unwrap().clear();
}

/// Take ownership of every event recorded so far, in recording order.
pub fn take_events() -> Vec<Event> {
    std::mem::take(&mut *EVENTS.lock().unwrap())
}

#[cfg(feature = "enabled")]
#[inline]
fn now_us() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Microseconds since telemetry session start. Always available (the
/// journal stamps records through it); in builds without the `enabled`
/// feature there is no session clock and this returns 0.
#[must_use]
pub fn current_us() -> u64 {
    #[cfg(feature = "enabled")]
    {
        now_us()
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

#[cfg(feature = "enabled")]
#[inline]
fn push(event: Event) {
    EVENTS.lock().unwrap().push(event);
}

/// Record a counter sample.
#[inline]
pub fn counter(cat: &'static str, name: &str, value: u64) {
    #[cfg(feature = "enabled")]
    if is_enabled() {
        push(Event {
            cat,
            name: name.to_string(),
            ph: Phase::Counter,
            ts: now_us(),
            dur: 0,
            tid: scope(),
            args: vec![("value", ArgValue::U64(value))],
        });
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (cat, name, value);
}

/// Record a point event with arguments.
#[inline]
pub fn instant(cat: &'static str, name: &str, args: Vec<(&'static str, ArgValue)>) {
    #[cfg(feature = "enabled")]
    if is_enabled() {
        push(Event {
            cat,
            name: name.to_string(),
            ph: Phase::Instant,
            ts: now_us(),
            dur: 0,
            tid: scope(),
            args,
        });
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (cat, name, args);
}

/// Record a self-contained span on an explicit timeline: `ts`/`dur` are
/// caller-supplied (the simulator passes GPU cycles) and `tid` selects
/// the rendering lane (SM index).
#[inline]
pub fn complete(
    cat: &'static str,
    name: &str,
    tid: u32,
    ts: u64,
    dur: u64,
    args: Vec<(&'static str, ArgValue)>,
) {
    #[cfg(feature = "enabled")]
    if is_enabled() {
        push(Event { cat, name: name.to_string(), ph: Phase::Complete, ts, dur, tid, args });
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (cat, name, tid, ts, dur, args);
}

/// Open a wall-clock span, closed when the returned guard drops.
#[must_use = "the span closes when the guard is dropped"]
#[inline]
pub fn span(cat: &'static str, name: &str) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        if is_enabled() {
            push(Event {
                cat,
                name: name.to_string(),
                ph: Phase::Begin,
                ts: now_us(),
                dur: 0,
                tid: scope(),
                args: Vec::new(),
            });
            return SpanGuard { open: Some((cat, name.to_string())) };
        }
        SpanGuard { open: None }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (cat, name);
        SpanGuard {}
    }
}

/// RAII guard closing a [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    open: Option<(&'static str, String)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some((cat, name)) = self.open.take() {
            push(Event {
                cat,
                name,
                ph: Phase::End,
                ts: now_us(),
                dur: 0,
                tid: scope(),
                args: Vec::new(),
            });
        }
    }
}

/// Escape a string for embedding in a JSON document (shared by the
/// exporters; this crate is intentionally dependency-free).
pub(crate) fn escape_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write_arg_value(out: &mut String, v: &ArgValue) {
    use std::fmt::Write;
    match v {
        ArgValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        ArgValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        ArgValue::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        ArgValue::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        ArgValue::Str(x) => escape_json(out, x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Recording tests live in the workspace integration tests (which run
    // with the feature enabled via orion-bench); here we only pin the
    // always-on surface.
    #[test]
    fn disabled_by_default_and_guards_are_cheap() {
        assert!(!is_enabled() || cfg!(feature = "enabled"));
        counter("t", "c", 1);
        instant("t", "i", vec![("k", ArgValue::from(2u64))]);
        complete("t", "x", 0, 0, 10, vec![]);
        let _g = span("t", "s");
    }

    #[test]
    fn escape_json_handles_controls() {
        let mut s = String::new();
        escape_json(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
