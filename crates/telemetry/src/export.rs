//! Registry exporters: Prometheus text exposition and a JSON snapshot.
//!
//! Both exporters consume a [`MetricsSnapshot`] so they render exactly
//! the registered schema — nothing ad hoc can leak in, and every
//! registered metric appears even when zero.
//!
//! # Prometheus text format
//!
//! [`prometheus_text`] follows the text exposition format: per metric a
//! `# HELP` and `# TYPE` line, then the samples. Registry names are
//! `/`-separated paths; Prometheus names must match
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`, so names are prefixed with `orion_` and
//! every unsupported character becomes `_`
//! (`cache/shard0/hits` → `orion_cache_shard0_hits`). Histograms render
//! cumulative `_bucket{le="..."}` series from the log-bucket upper
//! bounds, plus `_sum` and `_count`.
//!
//! # JSON snapshot
//!
//! [`snapshot_json`] renders a flat object keyed by the *registry* names
//! (untranslated). Counters and gauges are scalars; histograms are
//! summary objects (`count/min/p50/p90/p99/max/mean`) — the full bucket
//! table stays internal to keep snapshots diff-friendly.

use std::fmt::Write as _;

use crate::escape_json;
use crate::hist::{bucket_bounds, Histogram};
use crate::registry::{MetricKind, MetricValue, MetricsSnapshot};

/// Translate a registry metric name to a valid Prometheus metric name.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("orion_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prometheus_escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("NaN");
    } else if v > 0.0 {
        out.push_str("+Inf");
    } else {
        out.push_str("-Inf");
    }
}

fn write_histogram_series(out: &mut String, name: &str, h: &Histogram) {
    // Cumulative buckets over the non-empty log buckets; `le` is each
    // bucket's inclusive upper bound (exclusive bound − 1 in the integer
    // domain, rendered as the exclusive bound per Prometheus convention
    // of real-valued `le`).
    let mut cum = 0u64;
    for (idx, count) in h.nonzero_buckets() {
        cum += count;
        let (_, hi) = bucket_bounds(idx);
        let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Render a snapshot in the Prometheus text exposition format.
#[must_use]
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(snap.samples.len() * 96 + 64);
    for sample in &snap.samples {
        let name = prometheus_name(&sample.desc.name);
        let kind = match sample.desc.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        let mut help = prometheus_escape_help(&sample.desc.help);
        if !sample.desc.unit.is_empty() {
            if !help.is_empty() {
                help.push(' ');
            }
            let _ = write!(help, "[{}]", sample.desc.unit);
        }
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        match &sample.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "{name} ");
                write_f64(&mut out, *v);
                out.push('\n');
            }
            MetricValue::Histogram(h) => write_histogram_series(&mut out, &name, h),
        }
    }
    out
}

/// Render a snapshot as a flat JSON object keyed by registry names.
#[must_use]
pub fn snapshot_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(snap.samples.len() * 64 + 16);
    out.push_str("{\n");
    for (i, sample) in snap.samples.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        escape_json(&mut out, &sample.desc.name);
        out.push_str(": ");
        match &sample.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            MetricValue::Histogram(h) => {
                let s = h.summary();
                let _ = write!(
                    out,
                    "{{\"count\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"mean\":{}}}",
                    s.count, s.min, s.p50, s.p90, s.p99, s.max, s.mean
                );
            }
        }
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;

    fn sample_registry() -> MetricRegistry {
        let r = MetricRegistry::new();
        r.register_counter("cache/shard0/hits", "Shard 0 cache hits", "").add(5);
        r.register_gauge("service/in_flight_sessions", "Concurrent sessions", "").set(2.0);
        let h = r.register_histogram("service/launch_cycles", "Per-launch cost", "cycles");
        h.record(10);
        h.record(10);
        h.record(3000);
        r
    }

    #[test]
    fn names_translate_to_prometheus_charset() {
        assert_eq!(prometheus_name("cache/shard0/hits"), "orion_cache_shard0_hits");
        assert_eq!(prometheus_name("a-b c"), "orion_a_b_c");
    }

    #[test]
    fn prometheus_text_has_help_type_and_samples() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# HELP orion_cache_shard0_hits Shard 0 cache hits"), "{text}");
        assert!(text.contains("# TYPE orion_cache_shard0_hits counter"), "{text}");
        assert!(text.contains("orion_cache_shard0_hits 5"), "{text}");
        assert!(text.contains("# TYPE orion_service_in_flight_sessions gauge"), "{text}");
        assert!(text.contains("orion_service_in_flight_sessions 2"), "{text}");
        assert!(text.contains("# TYPE orion_service_launch_cycles histogram"), "{text}");
        // Unit folded into HELP.
        assert!(text.contains("Per-launch cost [cycles]"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let text = prometheus_text(&sample_registry().snapshot());
        // Two samples at 10 → the value-10 bucket (exclusive hi 11) holds 2.
        assert!(text.contains("orion_service_launch_cycles_bucket{le=\"11\"} 2"), "{text}");
        assert!(text.contains("orion_service_launch_cycles_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("orion_service_launch_cycles_sum 3020"), "{text}");
        assert!(text.contains("orion_service_launch_cycles_count 3"), "{text}");
        // Cumulative: the +Inf count appears after the finite buckets.
        let inf_pos = text.find("le=\"+Inf\"").unwrap();
        let first_pos = text.find("le=\"11\"").unwrap();
        assert!(first_pos < inf_pos);
    }

    #[test]
    fn json_snapshot_is_flat_with_histogram_summaries() {
        let json = snapshot_json(&sample_registry().snapshot());
        assert!(json.contains("\"cache/shard0/hits\": 5"), "{json}");
        assert!(json.contains("\"service/in_flight_sessions\": 2"), "{json}");
        assert!(json.contains("\"service/launch_cycles\": {\"count\":3"), "{json}");
        assert!(json.contains("\"p50\":10"), "{json}");
    }

    #[test]
    fn empty_snapshot_renders_valid_documents() {
        let snap = MetricsSnapshot::default();
        assert_eq!(prometheus_text(&snap), "");
        let json = snapshot_json(&snap);
        assert!(json.trim() == "{\n\n}" || json.trim() == "{}" || json.starts_with('{'));
    }
}
