//! Chrome `trace_event` exporter.
//!
//! Produces the JSON Object Format described in the Trace Event Format
//! spec: `{"traceEvents": [...], "displayTimeUnit": "ms"}`. The output
//! loads directly into `chrome://tracing` or Perfetto. Events are
//! emitted sorted by timestamp (stable, so same-`ts` events keep their
//! recording order), which downstream snapshot tests rely on.

use crate::{escape_json, write_arg_value, Event, Phase};
use std::fmt::Write;

fn phase_code(ph: Phase) -> &'static str {
    match ph {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Complete => "X",
        Phase::Instant => "i",
        Phase::Counter => "C",
    }
}

/// Render events as a Chrome-loadable trace document.
pub fn trace_json(events: &[Event]) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.ts);
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":");
        escape_json(&mut out, &e.name);
        out.push_str(",\"cat\":");
        escape_json(&mut out, e.cat);
        let _ = write!(
            out,
            ",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            phase_code(e.ph),
            e.ts,
            e.tid
        );
        if e.ph == Phase::Complete {
            let _ = write!(out, ",\"dur\":{}", e.dur);
        }
        if e.ph == Phase::Instant {
            // Scope: thread (keeps Perfetto from drawing page-wide bars).
            out.push_str(",\"s\":\"t\"");
        }
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                escape_json(&mut out, k);
                out.push(':');
                write_arg_value(&mut out, v);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArgValue;

    fn ev(name: &str, ph: Phase, ts: u64) -> Event {
        Event {
            cat: "test",
            name: name.to_string(),
            ph,
            ts,
            dur: if ph == Phase::Complete { 5 } else { 0 },
            tid: 1,
            args: vec![("k", ArgValue::Str("v\"q".to_string()))],
        }
    }

    #[test]
    fn sorts_by_ts_and_escapes() {
        let events = vec![
            ev("late", Phase::Instant, 30),
            ev("early", Phase::Complete, 10),
            ev("mid", Phase::Counter, 20),
        ];
        let json = trace_json(&events);
        let early = json.find("early").unwrap();
        let mid = json.find("mid").unwrap();
        let late = json.find("late").unwrap();
        assert!(early < mid && mid < late);
        assert!(json.contains("\\\"q"));
        assert!(json.contains("\"dur\":5"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = trace_json(&[]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("]"));
    }
}
