//! Flat metrics report: an insertion-ordered `key → scalar` table with a
//! JSON renderer, plus an aggregator folding counter events into it.
//!
//! Keys use `/`-separated paths (`"alloc/spills"`, `"sim/stall/barrier"`)
//! so consumers can group without a nested schema. `crates/bench` builds
//! its `BENCH_*.json` artifacts and the profiler CLI's `--metrics`
//! output on top of this type.

use crate::{escape_json, write_arg_value, ArgValue, Event, Phase};

/// An insertion-ordered flat metrics table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    entries: Vec<(String, ArgValue)>,
}

impl MetricsReport {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `key` to `value`, replacing any previous value.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<ArgValue>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Add `delta` to an unsigned counter, creating it at zero.
    pub fn add(&mut self, key: impl Into<String>, delta: u64) {
        let key = key.into();
        if let Some((_, ArgValue::U64(v))) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            *v += delta;
        } else {
            self.entries.push((key, ArgValue::U64(delta)));
        }
    }

    pub fn get(&self, key: &str) -> Option<&ArgValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            ArgValue::U64(v) => Some(*v),
            ArgValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            ArgValue::F64(v) => Some(*v),
            ArgValue::U64(v) => Some(*v as f64),
            ArgValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &ArgValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Copy every entry of `other` in under `prefix/`.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricsReport) {
        for (k, v) in &other.entries {
            self.set(format!("{prefix}/{k}"), v.clone());
        }
    }

    /// Render as a flat JSON object, keys in insertion order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 32 + 8);
        out.push_str("{\n");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            escape_json(&mut out, k);
            out.push_str(": ");
            write_arg_value(&mut out, v);
        }
        out.push_str("\n}\n");
        out
    }
}

/// Fold all [`Phase::Counter`] events into a report, summing samples per
/// `cat/name` key.
pub fn aggregate_counters(events: &[Event]) -> MetricsReport {
    let mut report = MetricsReport::new();
    for e in events {
        if e.ph != Phase::Counter {
            continue;
        }
        if let Some((_, ArgValue::U64(v))) = e.args.iter().find(|(k, _)| *k == "value") {
            report.add(format!("{}/{}", e.cat, e.name), *v);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_get_roundtrip() {
        let mut r = MetricsReport::new();
        r.add("a/x", 3);
        r.add("a/x", 4);
        r.set("b", 1.5f64);
        r.set("b", 2.5f64);
        assert_eq!(r.get_u64("a/x"), Some(7));
        assert_eq!(r.get_f64("b"), Some(2.5));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn json_is_flat_and_ordered() {
        let mut r = MetricsReport::new();
        r.set("z", 1u64);
        r.set("a", true);
        let json = r.to_json();
        assert!(json.find("\"z\"").unwrap() < json.find("\"a\"").unwrap());
        assert!(json.contains("\"a\": true"));
    }

    #[test]
    fn aggregates_counter_events() {
        let ev = |name: &str, v: u64| Event {
            cat: "alloc",
            name: name.to_string(),
            ph: Phase::Counter,
            ts: 0,
            dur: 0,
            tid: 0,
            args: vec![("value", ArgValue::U64(v))],
        };
        let r = aggregate_counters(&[ev("spills", 2), ev("spills", 3), ev("moves", 1)]);
        assert_eq!(r.get_u64("alloc/spills"), Some(5));
        assert_eq!(r.get_u64("alloc/moves"), Some(1));
    }
}
