//! Bounded structured run journal.
//!
//! The event buffer ([`crate::take_events`]) answers "what happened on
//! the timeline"; the journal answers "what *decisions* did the runtime
//! take". It is a fixed-capacity ring of **typed** records — session
//! transitions, retries, quarantines, cache evictions, fault injections —
//! so a long-running service keeps the most recent history at a bounded
//! memory cost and a report can enumerate machine-readable causes rather
//! than grepping span names.
//!
//! Records carry a global monotonically increasing `seq`, so after an
//! overflow the drain still reveals both *that* records were lost
//! ([`JournalDrain::dropped`]) and *where* the gap sits (the first
//! retained `seq`). Recording is double-gated exactly like the event
//! buffer: compiled out without the `enabled` feature, and inert until
//! [`crate::set_enabled`] opts in.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::escape_json;

/// Default ring capacity; tuned so a full quick service bench fits with
/// headroom while a runaway retry loop stays bounded.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A typed journal entry. Variants are the runtime's *decision taxonomy*;
/// adding one here (not a stringly category) is the contract for new
/// subsystems.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A tuning session moved between states.
    SessionTransition { kernel: String, from: &'static str, to: &'static str },
    /// A kernel version accumulated enough strikes to be quarantined.
    Quarantine { kernel: String, version: usize, strikes: u32 },
    /// A transient launch failure scheduled a retry.
    Retry { kernel: String, version: usize, attempt: u32, backoff_cycles: u64 },
    /// The runtime fell back to a safer kernel version.
    Fallback { kernel: String, version: usize },
    /// A compile-cache shard evicted entries to stay within capacity.
    CacheEvicted { shard: usize, entries: u64 },
    /// The simulator injected a fault into a launch.
    FaultInjected { kind: &'static str, launch: u64 },
    /// A launch exceeded its watchdog cycle budget.
    Watchdog { kernel: String, budget_cycles: u64 },
    /// Admission control shed a job from a saturated submission queue.
    Shed { kernel: String, priority: u8 },
    /// A job blew a policy budget and resolved to its fail-safe version.
    Degraded { kernel: String, reason: &'static str },
    /// A worker panicked mid-session; the kernel was quarantined.
    SessionPanic { kernel: String },
    /// A poisoned compile-cache shard was cleared and returned to service.
    PoisonRecovered { shard: usize },
    /// A search policy committed a decision: pruned its arm set,
    /// finalized a candidate, or fell back. `policy` names the policy
    /// ("paper_walk", "bandit"), `action` the decision kind
    /// ("prune", "finalize", "fallback"), `candidate` the arm acted on
    /// (for "prune": the number of arms dropped).
    PolicyDecision { policy: &'static str, action: &'static str, candidate: usize },
    /// Free-form marker for subsystems without a dedicated variant yet.
    Note { cat: &'static str, name: String },
}

impl JournalEvent {
    /// Stable lowercase tag naming the variant (used as the JSON `"event"`
    /// field and for filtering).
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            JournalEvent::SessionTransition { .. } => "session_transition",
            JournalEvent::Quarantine { .. } => "quarantine",
            JournalEvent::Retry { .. } => "retry",
            JournalEvent::Fallback { .. } => "fallback",
            JournalEvent::CacheEvicted { .. } => "cache_evicted",
            JournalEvent::FaultInjected { .. } => "fault_injected",
            JournalEvent::Watchdog { .. } => "watchdog",
            JournalEvent::Shed { .. } => "shed",
            JournalEvent::Degraded { .. } => "degraded",
            JournalEvent::SessionPanic { .. } => "session_panic",
            JournalEvent::PoisonRecovered { .. } => "poison_recovered",
            JournalEvent::PolicyDecision { .. } => "policy_decision",
            JournalEvent::Note { .. } => "note",
        }
    }
}

/// One journal record: a [`JournalEvent`] plus ordering metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Global sequence number (starts at 0, never reused; survives
    /// overflow so drains can report gaps).
    pub seq: u64,
    /// Microseconds since telemetry session start.
    pub ts_us: u64,
    /// The recording thread's scope lane ([`crate::scope`]).
    pub lane: u32,
    pub event: JournalEvent,
}

/// Everything currently retained by the journal, oldest first, plus the
/// count of records lost to ring overflow since the last drain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalDrain {
    pub records: Vec<JournalRecord>,
    pub dropped: u64,
}

impl JournalDrain {
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.dropped == 0
    }

    /// Count retained records matching a tag (see [`JournalEvent::tag`]).
    #[must_use]
    pub fn count_tag(&self, tag: &str) -> usize {
        self.records.iter().filter(|r| r.event.tag() == tag).count()
    }

    /// Render as a JSON array of record objects (oldest first). Dropped
    /// counts are the consumer's to report; this is just the retained log.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 96 + 16);
        out.push('[');
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            write_record(&mut out, r);
        }
        out.push_str("\n]\n");
        out
    }
}

fn write_record(out: &mut String, r: &JournalRecord) {
    let _ = write!(
        out,
        "{{\"seq\":{},\"ts_us\":{},\"lane\":{},\"event\":\"{}\"",
        r.seq,
        r.ts_us,
        r.lane,
        r.event.tag()
    );
    match &r.event {
        JournalEvent::SessionTransition { kernel, from, to } => {
            out.push_str(",\"kernel\":");
            escape_json(out, kernel);
            let _ = write!(out, ",\"from\":\"{from}\",\"to\":\"{to}\"");
        }
        JournalEvent::Quarantine { kernel, version, strikes } => {
            out.push_str(",\"kernel\":");
            escape_json(out, kernel);
            let _ = write!(out, ",\"version\":{version},\"strikes\":{strikes}");
        }
        JournalEvent::Retry { kernel, version, attempt, backoff_cycles } => {
            out.push_str(",\"kernel\":");
            escape_json(out, kernel);
            let _ = write!(
                out,
                ",\"version\":{version},\"attempt\":{attempt},\"backoff_cycles\":{backoff_cycles}"
            );
        }
        JournalEvent::Fallback { kernel, version } => {
            out.push_str(",\"kernel\":");
            escape_json(out, kernel);
            let _ = write!(out, ",\"version\":{version}");
        }
        JournalEvent::CacheEvicted { shard, entries } => {
            let _ = write!(out, ",\"shard\":{shard},\"entries\":{entries}");
        }
        JournalEvent::FaultInjected { kind, launch } => {
            let _ = write!(out, ",\"kind\":\"{kind}\",\"launch\":{launch}");
        }
        JournalEvent::Watchdog { kernel, budget_cycles } => {
            out.push_str(",\"kernel\":");
            escape_json(out, kernel);
            let _ = write!(out, ",\"budget_cycles\":{budget_cycles}");
        }
        JournalEvent::Shed { kernel, priority } => {
            out.push_str(",\"kernel\":");
            escape_json(out, kernel);
            let _ = write!(out, ",\"priority\":{priority}");
        }
        JournalEvent::Degraded { kernel, reason } => {
            out.push_str(",\"kernel\":");
            escape_json(out, kernel);
            let _ = write!(out, ",\"reason\":\"{reason}\"");
        }
        JournalEvent::SessionPanic { kernel } => {
            out.push_str(",\"kernel\":");
            escape_json(out, kernel);
        }
        JournalEvent::PoisonRecovered { shard } => {
            let _ = write!(out, ",\"shard\":{shard}");
        }
        JournalEvent::PolicyDecision { policy, action, candidate } => {
            let _ = write!(
                out,
                ",\"policy\":\"{policy}\",\"action\":\"{action}\",\"candidate\":{candidate}"
            );
        }
        JournalEvent::Note { cat, name } => {
            let _ = write!(out, ",\"cat\":\"{cat}\",\"name\":");
            escape_json(out, name);
        }
    }
    out.push('}');
}

struct Ring {
    records: VecDeque<JournalRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl Ring {
    const fn new() -> Self {
        Ring { records: VecDeque::new(), capacity: DEFAULT_CAPACITY, next_seq: 0, dropped: 0 }
    }
}

static RING: Mutex<Ring> = Mutex::new(Ring::new());

/// Append a record to the journal. Double-gated like [`crate::counter`]:
/// compiles away without the `enabled` feature, records nothing until
/// [`crate::set_enabled`].
#[inline]
pub fn record(event: JournalEvent) {
    #[cfg(feature = "enabled")]
    if crate::is_enabled() {
        record_always(event);
        return;
    }
    let _ = event;
}

/// Append unconditionally (used by tests; production call sites go
/// through [`record`]).
pub fn record_always(event: JournalEvent) {
    let ts_us = crate::current_us();
    let lane = crate::scope();
    let mut ring = RING.lock().unwrap();
    let seq = ring.next_seq;
    ring.next_seq += 1;
    if ring.capacity == 0 {
        ring.dropped += 1;
        return;
    }
    while ring.records.len() >= ring.capacity {
        ring.records.pop_front();
        ring.dropped += 1;
    }
    ring.records.push_back(JournalRecord { seq, ts_us, lane, event });
}

/// Take every retained record (oldest first) and the overflow count,
/// resetting both. Sequence numbers keep counting across drains.
pub fn drain() -> JournalDrain {
    let mut ring = RING.lock().unwrap();
    JournalDrain {
        records: std::mem::take(&mut ring.records).into(),
        dropped: std::mem::take(&mut ring.dropped),
    }
}

/// Resize the ring. Shrinking discards oldest records (counted as
/// dropped). Capacity 0 drops everything immediately.
pub fn set_capacity(capacity: usize) {
    let mut ring = RING.lock().unwrap();
    ring.capacity = capacity;
    while ring.records.len() > capacity {
        ring.records.pop_front();
        ring.dropped += 1;
    }
}

/// Reset records, drop count and sequence numbering (between tests /
/// profiling sessions).
pub fn clear() {
    let mut ring = RING.lock().unwrap();
    ring.records.clear();
    ring.dropped = 0;
    ring.next_seq = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global, so every test serialises on this lock
    // and starts from a clean, default-capacity journal.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_clean_journal(f: impl FnOnce()) {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        set_capacity(DEFAULT_CAPACITY);
        f();
        clear();
        set_capacity(DEFAULT_CAPACITY);
    }

    fn note(name: &str) -> JournalEvent {
        JournalEvent::Note { cat: "test", name: name.to_string() }
    }

    #[test]
    fn records_and_drains_in_order() {
        with_clean_journal(|| {
            record_always(note("a"));
            record_always(JournalEvent::Retry {
                kernel: "matrixMul".into(),
                version: 2,
                attempt: 1,
                backoff_cycles: 2000,
            });
            let d = drain();
            assert_eq!(d.records.len(), 2);
            assert_eq!(d.dropped, 0);
            assert_eq!(d.records[0].seq, 0);
            assert_eq!(d.records[1].seq, 1);
            assert_eq!(d.records[1].event.tag(), "retry");
            // Drained: the ring is now empty.
            assert!(drain().is_empty());
        });
    }

    #[test]
    fn overflow_keeps_newest_and_counts_drops() {
        with_clean_journal(|| {
            set_capacity(4);
            for i in 0..10 {
                record_always(note(&format!("e{i}")));
            }
            let d = drain();
            assert_eq!(d.records.len(), 4);
            assert_eq!(d.dropped, 6);
            // Newest four retained, oldest first.
            let names: Vec<_> = d
                .records
                .iter()
                .map(|r| match &r.event {
                    JournalEvent::Note { name, .. } => name.clone(),
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            assert_eq!(names, ["e6", "e7", "e8", "e9"]);
            // seq reveals the gap.
            assert_eq!(d.records[0].seq, 6);
        });
    }

    #[test]
    fn shrink_discards_oldest() {
        with_clean_journal(|| {
            for i in 0..6 {
                record_always(note(&format!("e{i}")));
            }
            set_capacity(2);
            let d = drain();
            assert_eq!(d.records.len(), 2);
            assert_eq!(d.dropped, 4);
            assert_eq!(d.records[0].seq, 4);
        });
    }

    #[test]
    fn zero_capacity_drops_everything() {
        with_clean_journal(|| {
            set_capacity(0);
            record_always(note("x"));
            let d = drain();
            assert!(d.records.is_empty());
            assert_eq!(d.dropped, 1);
        });
    }

    #[test]
    fn json_renders_typed_fields() {
        with_clean_journal(|| {
            record_always(JournalEvent::Quarantine {
                kernel: "bp\"1".into(),
                version: 3,
                strikes: 3,
            });
            record_always(JournalEvent::CacheEvicted { shard: 5, entries: 2 });
            let d = drain();
            let j = d.to_json();
            assert!(j.contains("\"event\":\"quarantine\""), "{j}");
            assert!(j.contains("\"kernel\":\"bp\\\"1\""), "{j}");
            assert!(j.contains("\"shard\":5"), "{j}");
            assert!(j.trim_start().starts_with('['));
        });
    }

    #[test]
    fn gated_record_is_inert_when_disabled() {
        with_clean_journal(|| {
            // set_enabled(false) is the default state; the gated entry
            // point must not record. (When another test in the process
            // has enabled telemetry, skip — the gate is shared.)
            if crate::is_enabled() {
                return;
            }
            record(note("invisible"));
            assert!(drain().is_empty());
        });
    }
}
