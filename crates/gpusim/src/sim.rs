//! Whole-device simulation: distribute blocks over SMs, run each SM's
//! engine, and aggregate cycles and counters.

use crate::device::DeviceSpec;
use crate::exec::{Launch, LinkedProgram, SimError, SimStats, SmEngine};
use crate::occupancy::{occupancy, KernelResources, OccupancyInfo};
use orion_kir::mir::MModule;
use serde::{Deserialize, Serialize};

/// Driver-level launch options.
///
/// * `extra_smem_per_block` pads the shared memory the driver reserves
///   per block — the paper's §3.3 mechanism for tuning occupancy *down*
///   without recompiling ("we can tune occupancy down by dynamically
///   increasing shared memory usage per thread").
/// * `cta_range` restricts the launch to a contiguous slice of the grid,
///   used by kernel splitting (§3.4): each split invocation launches a
///   subset of the blocks while `%nctaid` still reports the full grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LaunchOptions {
    /// Extra shared-memory bytes the driver reserves per block.
    pub extra_smem_per_block: u32,
    /// `(first block, count)`; `None` = whole grid.
    pub cta_range: Option<(u32, u32)>,
}

/// Result of one simulated kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Device completion time (max over SMs) in core cycles.
    pub cycles: u64,
    /// Aggregated dynamic counters.
    pub stats: SimStats,
    /// Occupancy achieved by this binary at this launch.
    pub occupancy: OccupancyInfo,
    /// Resources the driver derived from the binary.
    pub resources: KernelResources,
}

/// Default dynamic warp-instruction budget per launch.
pub const DEFAULT_STEP_LIMIT: u64 = 500_000_000;

/// Resource footprint the driver sees for a machine module at a block
/// size (registers per thread and shared memory per block).
pub fn resources_of(m: &MModule, block: u32) -> KernelResources {
    KernelResources {
        regs_per_thread: m.regs_per_thread,
        smem_per_block: m.smem_bytes_per_block(block),
        block_size: block,
    }
}

/// Simulate one kernel launch of `module` on `dev`.
///
/// Blocks are assigned to SMs round-robin; each SM simulates its share
/// with the residency the occupancy calculator allows. SMs run over the
/// same global memory sequentially (CUDA forbids inter-block
/// communication within a launch, so values are engine-order
/// independent for conforming kernels).
///
/// # Errors
/// [`SimError::Unlaunchable`] when a block cannot fit on an SM at all;
/// out-of-bounds accesses and deadlocks are also reported.
pub fn run_launch(
    dev: &DeviceSpec,
    module: &MModule,
    launch: Launch,
    params: &[u32],
    global: &mut [u8],
) -> Result<RunResult, SimError> {
    run_launch_opts(dev, module, launch, params, global, LaunchOptions::default())
}

/// [`run_launch`] with driver-level [`LaunchOptions`].
///
/// # Errors
/// Same as [`run_launch`]; additionally rejects empty or out-of-range
/// CTA slices.
pub fn run_launch_opts(
    dev: &DeviceSpec,
    module: &MModule,
    launch: Launch,
    params: &[u32],
    global: &mut [u8],
    opts: LaunchOptions,
) -> Result<RunResult, SimError> {
    let mut res = resources_of(module, launch.block);
    res.smem_per_block += opts.extra_smem_per_block;
    let occ = occupancy(dev, &res);
    if occ.active_blocks == 0 {
        return Err(SimError::Unlaunchable(format!(
            "{} regs/thread, {} B smem/block, {} threads/block on {}",
            res.regs_per_thread, res.smem_per_block, res.block_size, dev.name
        )));
    }
    if launch.block > 1024 || launch.block == 0 || launch.grid == 0 {
        return Err(SimError::Unlaunchable(format!(
            "grid {} x block {}",
            launch.grid, launch.block
        )));
    }
    let (first, count) = match opts.cta_range {
        Some((f, c)) => {
            if c == 0 || u64::from(f) + u64::from(c) > u64::from(launch.grid) {
                return Err(SimError::Unlaunchable(format!(
                    "cta range {f}+{c} outside grid {}",
                    launch.grid
                )));
            }
            (f, c)
        }
        None => (0, launch.grid),
    };
    let prog = LinkedProgram::new(module);
    let mut cycles = 0u64;
    let mut stats = SimStats::default();
    for sm in 0..dev.num_sms {
        let blocks: Vec<u32> = (first..first + count)
            .filter(|b| b % dev.num_sms == sm)
            .collect();
        if blocks.is_empty() {
            continue;
        }
        let mut engine = SmEngine::new(dev, &prog, launch, params, global, DEFAULT_STEP_LIMIT);
        let c = engine.run(&blocks, occ.active_blocks)?;
        cycles = cycles.max(c);
        stats.absorb(&engine.stats);
    }
    Ok(RunResult {
        cycles,
        stats,
        occupancy: occ,
        resources: res,
    })
}

impl SimStats {
    /// Aggregate counters from another engine (SM → device).
    pub fn absorb(&mut self, o: &SimStats) {
        self.warp_insts += o.warp_insts;
        self.thread_insts += o.thread_insts;
        self.stack_moves += o.stack_moves;
        self.smem_slot_accesses += o.smem_slot_accesses;
        self.shared_mem_accesses += o.shared_mem_accesses;
        self.bank_conflict_extra += o.bank_conflict_extra;
        self.barriers += o.barriers;
        self.local_transactions += o.local_transactions;
        self.mem.l1_hits += o.mem.l1_hits;
        self.mem.l1_misses += o.mem.l1_misses;
        self.mem.l2_hits += o.mem.l2_hits;
        self.mem.l2_misses += o.mem.l2_misses;
        self.mem.dram_transactions += o.mem.dram_transactions;
        self.mem.dram_bytes += o.mem.dram_bytes;
    }
}
