//! Whole-device simulation: distribute blocks over SMs, run each SM's
//! engine, and aggregate cycles and counters.

use crate::device::{CacheConfig, DeviceSpec};
use crate::exec::{
    EngineGuards, LaneLayout, Launch, LinkedProgram, Scheduler, SimError, SimStats, SmEngine,
    StallStats,
};
use crate::faults::FaultInjector;
use crate::occupancy::{occupancy, KernelResources, OccupancyInfo};
use orion_kir::mir::MModule;
use serde::{Deserialize, Serialize};

/// Driver-level launch options.
///
/// * `extra_smem_per_block` pads the shared memory the driver reserves
///   per block — the paper's §3.3 mechanism for tuning occupancy *down*
///   without recompiling ("we can tune occupancy down by dynamically
///   increasing shared memory usage per thread").
/// * `cta_range` restricts the launch to a contiguous slice of the grid,
///   used by kernel splitting (§3.4): each split invocation launches a
///   subset of the blocks while `%nctaid` still reports the full grid.
/// * `cache_config` re-splits the 64 KB on-chip SRAM between L1 and
///   shared memory for this launch only — the `cudaFuncSetCacheConfig`
///   analog. It changes both the occupancy calculation (shared-memory
///   capacity) and the L1 capacity the memory system simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LaunchOptions {
    /// Extra shared-memory bytes the driver reserves per block.
    pub extra_smem_per_block: u32,
    /// `(first block, count)`; `None` = whole grid.
    pub cta_range: Option<(u32, u32)>,
    /// Watchdog cycle budget per launch; `None` uses
    /// [`DEFAULT_CYCLE_BUDGET`]. A launch whose completion would exceed
    /// the budget fails with [`SimError::Watchdog`] instead of running
    /// (or hanging) forever.
    pub cycle_budget: Option<u64>,
    /// Worker threads running the per-SM engines: `0` (the default)
    /// means one worker per available host core, `1` is the exact
    /// single-threaded path (engines run in sm-id order over the shared
    /// global buffer), `N > 1` fans SMs out over `N` scoped threads.
    /// Always clamped to the device's SM count. Results are
    /// bit-identical at every setting for conforming kernels (CUDA
    /// forbids inter-block communication within a launch).
    pub parallelism: u32,
    /// Warp-scheduler implementation for each SM engine; the default
    /// event heap and the reference linear scan are bit-identical (see
    /// [`Scheduler`]).
    pub scheduler: Scheduler,
    /// Lane-state memory layout for each SM engine; the default pooled
    /// SoA arenas and the reference AoS layout are bit-identical (see
    /// [`LaneLayout`]).
    pub layout: LaneLayout,
    /// Per-launch L1/shared-memory split override
    /// (`cudaFuncSetCacheConfig`); `None` keeps the device's configured
    /// split.
    pub cache_config: Option<CacheConfig>,
}

impl LaunchOptions {
    /// This template with the driver-side shared-memory padding set —
    /// the per-version knob every launch path overrides.
    #[must_use]
    pub fn with_extra_smem(mut self, bytes: u32) -> Self {
        self.extra_smem_per_block = bytes;
        self
    }

    /// This template with a per-launch L1/shared-memory split.
    #[must_use]
    pub fn with_cache_config(mut self, cfg: CacheConfig) -> Self {
        self.cache_config = Some(cfg);
        self
    }

    /// This template restricted to a contiguous CTA slice (kernel
    /// splitting); `None` launches the whole grid.
    #[must_use]
    pub fn with_cta_range(mut self, range: Option<(u32, u32)>) -> Self {
        self.cta_range = range;
        self
    }

    /// This template with an explicit watchdog cycle budget.
    #[must_use]
    pub fn with_cycle_budget(mut self, budget: Option<u64>) -> Self {
        self.cycle_budget = budget;
        self
    }

    /// This template with the SM fan-out worker count set.
    #[must_use]
    pub fn with_parallelism(mut self, workers: u32) -> Self {
        self.parallelism = workers;
        self
    }

    /// This template with the warp-scheduler implementation set.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// This template with the lane-state memory layout set.
    #[must_use]
    pub fn with_layout(mut self, layout: LaneLayout) -> Self {
        self.layout = layout;
        self
    }
}

/// Per-SM execution summary for one launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmSummary {
    /// SM index on the device.
    pub sm: u32,
    /// Blocks this SM executed.
    pub blocks: u32,
    /// This SM's own completion time in core cycles (device cycles is
    /// the max over SMs).
    pub cycles: u64,
    /// Warp instructions this SM issued.
    pub warp_insts: u64,
    /// Issued warp-instructions per resident warp slot (hardware slots
    /// recycle across blocks, so the vector length is the residency
    /// footprint, not the grid size).
    pub per_warp_slot_issued: Vec<u64>,
    /// Per-cycle stall attribution. Padded so the buckets sum to the
    /// *device* completion time: the tail where this SM sat idle while
    /// others finished is charged to `no_eligible`.
    pub stalls: StallStats,
}

/// Result of one simulated kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Device completion time (max over SMs) in core cycles.
    pub cycles: u64,
    /// Aggregated dynamic counters. `stats.stalls` sums to
    /// `cycles * num_sms` — every SM-cycle is attributed to exactly one
    /// bucket.
    pub stats: SimStats,
    /// Occupancy achieved by this binary at this launch.
    pub occupancy: OccupancyInfo,
    /// Resources the driver derived from the binary.
    pub resources: KernelResources,
    /// SMs on the simulated device.
    pub num_sms: u32,
    /// Per-SM rollups, one entry per SM (idle SMs included).
    pub per_sm: Vec<SmSummary>,
}

/// Ratio metrics derived from a [`RunResult`] — the `events_per_cycle`
/// view bench tables and the profiler CLI report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DerivedMetrics {
    /// Warp instructions per device cycle (across all SMs).
    pub ipc: f64,
    /// Thread instructions over `32 x` warp instructions: how full the
    /// SIMD lanes were on average (divergence shows up here).
    pub simd_efficiency: f64,
    pub l1_hit_rate: f64,
    pub l2_hit_rate: f64,
    pub dram_bytes_per_cycle: f64,
    /// Fraction of all SM-cycles that issued an instruction.
    pub issue_utilization: f64,
    /// Fraction of SM-cycles blocked on register dependencies.
    pub stall_scoreboard: f64,
    /// Fraction of SM-cycles blocked on outstanding memory.
    pub stall_mem_pending: f64,
    /// Fraction of SM-cycles blocked at barriers.
    pub stall_barrier: f64,
    /// Fraction of SM-cycles with no resident eligible warp.
    pub stall_no_eligible: f64,
    /// Fraction of SM-cycles in the end-of-kernel drain tail.
    pub stall_drain: f64,
}

impl RunResult {
    /// Compute the derived ratio metrics. Zero denominators yield zero
    /// rather than NaN so reports stay JSON-clean.
    pub fn derived(&self) -> DerivedMetrics {
        fn ratio(num: f64, den: f64) -> f64 {
            if den > 0.0 {
                num / den
            } else {
                0.0
            }
        }
        let s = &self.stats;
        let sm_cycles = s.stalls.total() as f64;
        let frac = |bucket: u64| ratio(bucket as f64, sm_cycles);
        DerivedMetrics {
            ipc: ratio(s.warp_insts as f64, self.cycles as f64),
            simd_efficiency: ratio(s.thread_insts as f64, s.warp_insts as f64 * 32.0),
            l1_hit_rate: ratio(s.mem.l1_hits as f64, (s.mem.l1_hits + s.mem.l1_misses) as f64),
            l2_hit_rate: ratio(s.mem.l2_hits as f64, (s.mem.l2_hits + s.mem.l2_misses) as f64),
            dram_bytes_per_cycle: ratio(s.mem.dram_bytes as f64, self.cycles as f64),
            issue_utilization: frac(s.stalls.issued),
            stall_scoreboard: frac(s.stalls.scoreboard),
            stall_mem_pending: frac(s.stalls.mem_pending),
            stall_barrier: frac(s.stalls.barrier),
            stall_no_eligible: frac(s.stalls.no_eligible),
            stall_drain: frac(s.stalls.drain),
        }
    }
}

/// Default dynamic warp-instruction budget per launch.
pub const DEFAULT_STEP_LIMIT: u64 = 500_000_000;

/// Default watchdog cycle budget per launch — far above any workload in
/// this repo (the largest sweeps complete in tens of millions of
/// cycles), so only genuinely hung launches trip it.
pub const DEFAULT_CYCLE_BUDGET: u64 = 4_000_000_000;

/// Resource footprint the driver sees for a machine module at a block
/// size (registers per thread and shared memory per block).
pub fn resources_of(m: &MModule, block: u32) -> KernelResources {
    KernelResources {
        regs_per_thread: m.regs_per_thread,
        smem_per_block: m.smem_bytes_per_block(block),
        block_size: block,
    }
}

/// Simulate one kernel launch of `module` on `dev`.
///
/// Blocks are assigned to SMs round-robin; each SM simulates its share
/// with the residency the occupancy calculator allows. SMs may run on
/// worker threads ([`LaunchOptions::parallelism`]), with their global
/// memory writes merged back in SM-id order — observationally identical
/// to running them one after another (CUDA forbids inter-block
/// communication within a launch, so values are engine-order
/// independent for conforming kernels).
///
/// # Errors
/// [`SimError::Unlaunchable`] when a block cannot fit on an SM at all;
/// out-of-bounds accesses and deadlocks are also reported.
pub fn run_launch(
    dev: &DeviceSpec,
    module: &MModule,
    launch: Launch,
    params: &[u32],
    global: &mut [u8],
) -> Result<RunResult, SimError> {
    run_launch_opts(dev, module, launch, params, global, LaunchOptions::default())
}

/// [`run_launch`] with driver-level [`LaunchOptions`].
///
/// # Errors
/// Same as [`run_launch`]; additionally rejects empty or out-of-range
/// CTA slices.
pub fn run_launch_opts(
    dev: &DeviceSpec,
    module: &MModule,
    launch: Launch,
    params: &[u32],
    global: &mut [u8],
    opts: LaunchOptions,
) -> Result<RunResult, SimError> {
    run_launch_faulty(dev, module, launch, params, global, opts, None)
}

/// [`run_launch_opts`] with an optional fault injector — the chaos entry
/// point. When `injector` is `Some`, one set of fault decisions is drawn
/// per call (deterministic in the injector's seed and launch counter)
/// and applied at the matching driver stage:
///
/// * **transient** — the launch fails with
///   [`SimError::TransientLaunchFailure`] before touching the device;
/// * **resource** — the occupancy check runs against a perturbed device
///   (half registers, half shared memory); if the kernel no longer fits
///   the launch fails with [`SimError::ResourceExceeded`], otherwise the
///   fault is absorbed;
/// * **hang** — one warp is wedged and the launch terminates via the
///   watchdog ([`SimError::Watchdog`]);
/// * **jitter / outlier** — the simulation is exact, but the *reported*
///   `cycles` is perturbed (timer noise); the per-SM stall accounting is
///   deliberately left untouched so the invariant `Σ buckets = true
///   cycles × SMs` still describes the simulation.
///
/// # Errors
/// Same as [`run_launch_opts`], plus the injected failures above.
pub fn run_launch_faulty(
    dev: &DeviceSpec,
    module: &MModule,
    launch: Launch,
    params: &[u32],
    global: &mut [u8],
    opts: LaunchOptions,
    injector: Option<&FaultInjector>,
) -> Result<RunResult, SimError> {
    // Apply the per-launch cache split before anything reads capacities:
    // the occupancy checks (including the contended-device fault path)
    // and the SM engines' L1 models all derive from `dev`.
    let resplit;
    let dev = match opts.cache_config {
        Some(cfg) if cfg != dev.cache_config => {
            resplit = dev.with_cache_config(cfg);
            &resplit
        }
        _ => dev,
    };
    let faults = injector.map(|i| i.draw()).unwrap_or(crate::faults::LaunchFaults::NONE);
    if faults.transient {
        // The code is the launch ordinal-ish discriminator: enough to
        // tell independent failures apart in logs, stable across runs.
        return Err(SimError::TransientLaunchFailure { code: 0x70_0001 });
    }
    if faults.resource {
        // Perturbed device: a co-tenant grabbed half the register file
        // and half the shared memory (the latter modeled by doubling the
        // block's apparent shared-memory demand — same quotient).
        let mut contended = dev.clone();
        contended.regs_per_sm /= 2;
        let mut res = resources_of(module, launch.block);
        res.smem_per_block = (res.smem_per_block + opts.extra_smem_per_block).saturating_mul(2);
        if occupancy(&contended, &res).active_blocks == 0 {
            return Err(SimError::ResourceExceeded {
                detail: format!(
                    "{} regs/thread, {} B smem/block do not fit the contended {} \
                     (half the register file and shared memory held elsewhere)",
                    res.regs_per_thread,
                    res.smem_per_block / 2,
                    dev.name,
                ),
            });
        }
        // Still fits: the contention is invisible to this launch.
    }
    let result = run_launch_impl(dev, module, launch, params, global, opts, faults.hang);
    match (injector, result) {
        (Some(inj), Ok(mut r)) => {
            r.cycles = inj.perturb_cycles(&faults, r.cycles);
            Ok(r)
        }
        (_, r) => r,
    }
}

fn run_launch_impl(
    dev: &DeviceSpec,
    module: &MModule,
    launch: Launch,
    params: &[u32],
    global: &mut [u8],
    opts: LaunchOptions,
    stuck_warp: bool,
) -> Result<RunResult, SimError> {
    let mut res = resources_of(module, launch.block);
    res.smem_per_block += opts.extra_smem_per_block;
    let occ = occupancy(dev, &res);
    if occ.active_blocks == 0 {
        return Err(SimError::Unlaunchable(format!(
            "{} regs/thread, {} B smem/block, {} threads/block on {}",
            res.regs_per_thread, res.smem_per_block, res.block_size, dev.name
        )));
    }
    if launch.block > 1024 || launch.block == 0 || launch.grid == 0 {
        return Err(SimError::Unlaunchable(format!(
            "grid {} x block {}",
            launch.grid, launch.block
        )));
    }
    let (first, count) = match opts.cta_range {
        Some((f, c)) => {
            if c == 0 || u64::from(f) + u64::from(c) > u64::from(launch.grid) {
                return Err(SimError::Unlaunchable(format!(
                    "cta range {f}+{c} outside grid {}",
                    launch.grid
                )));
            }
            (f, c)
        }
        None => (0, launch.grid),
    };
    let prog = LinkedProgram::new(module);
    let _span = orion_telemetry::span("sim", "run_launch");
    // Partition the grid over SMs once, round-robin (block b lands on
    // SM b % num_sms, same assignment the per-SM filter used to make).
    let mut partition: Vec<Vec<u32>> = vec![Vec::new(); dev.num_sms as usize];
    for b in first..first + count {
        partition[(b % dev.num_sms) as usize].push(b);
    }
    let guards_for = |sm: u32| EngineGuards {
        step_limit: DEFAULT_STEP_LIMIT,
        cycle_budget: opts.cycle_budget.unwrap_or(DEFAULT_CYCLE_BUDGET),
        // A hang wedges one warp on SM 0; the other SMs' results
        // are discarded with the failed launch either way.
        stuck_warp: stuck_warp && sm == 0,
        scheduler: opts.scheduler,
        layout: opts.layout,
    };
    let workers = effective_workers(opts.parallelism, dev.num_sms);
    let outcomes: Vec<Option<SmRun>> = if workers <= 1 {
        let mut v: Vec<Option<SmRun>> = Vec::with_capacity(dev.num_sms as usize);
        for sm in 0..dev.num_sms {
            let blocks = &partition[sm as usize];
            if blocks.is_empty() {
                v.push(None);
                continue;
            }
            let mut engine = SmEngine::new(dev, &prog, launch, params, global, sm, guards_for(sm));
            let c = engine.run(blocks, occ.active_blocks)?;
            v.push(Some(SmRun {
                cycles: c,
                stats: engine.stats,
                per_warp: std::mem::take(&mut engine.per_warp_issued),
            }));
        }
        v
    } else {
        run_sms_parallel(
            dev,
            &prog,
            launch,
            params,
            global,
            &partition,
            occ.active_blocks,
            workers,
            &guards_for,
        )?
    };
    // Pad each SM's accounting out to the device completion time: an SM
    // that finished (or never started) while others kept running had no
    // eligible warp for the remainder. After this, the aggregate buckets
    // sum to exactly `cycles * num_sms`. Summaries merge in sm-id order
    // regardless of which worker ran which SM.
    let cycles = outcomes.iter().flatten().map(|o| o.cycles).max().unwrap_or(0);
    let mut stats = SimStats::default();
    let mut per_sm: Vec<SmSummary> = Vec::with_capacity(dev.num_sms as usize);
    for (sm, outcome) in outcomes.into_iter().enumerate() {
        let (mut s, c, nblocks, per_warp) = match outcome {
            Some(o) => (o.stats, o.cycles, partition[sm].len() as u32, o.per_warp),
            None => (SimStats::default(), 0, 0, Vec::new()),
        };
        s.stalls.no_eligible += cycles - c;
        stats.absorb(&s);
        let summary = SmSummary {
            sm: sm as u32,
            blocks: nblocks,
            cycles: c,
            warp_insts: s.warp_insts,
            per_warp_slot_issued: per_warp,
            stalls: s.stalls,
        };
        if orion_telemetry::is_enabled() {
            orion_telemetry::complete(
                "sim",
                &format!("sm{}", summary.sm),
                summary.sm,
                0,
                summary.cycles,
                vec![("blocks", summary.blocks.into()), ("warp_insts", summary.warp_insts.into())],
            );
        }
        per_sm.push(summary);
    }
    debug_assert_eq!(
        stats.stalls.total(),
        cycles * u64::from(dev.num_sms),
        "device stall buckets must cover every SM-cycle"
    );
    Ok(RunResult { cycles, stats, occupancy: occ, resources: res, num_sms: dev.num_sms, per_sm })
}

/// What one SM engine produced for one launch (before device-level
/// padding/merging).
struct SmRun {
    cycles: u64,
    stats: SimStats,
    per_warp: Vec<u64>,
}

/// Resolve `LaunchOptions::parallelism` into a worker count: `0` means
/// one worker per available host core; always clamped to `[1, num_sms]`
/// (more workers than SMs would idle).
fn effective_workers(parallelism: u32, num_sms: u32) -> u32 {
    let requested = if parallelism == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get() as u32)
    } else {
        parallelism
    };
    requested.clamp(1, num_sms.max(1))
}

/// The byte ranges an engine wrote, as `(offset, new bytes)` runs
/// against the pristine pre-launch buffer.
type WriteRuns = Vec<(usize, Vec<u8>)>;

fn diff_runs(base: &[u8], new: &[u8]) -> WriteRuns {
    debug_assert_eq!(base.len(), new.len());
    let mut runs = WriteRuns::new();
    let mut i = 0;
    while i < base.len() {
        if base[i] == new[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < base.len() && base[i] != new[i] {
            i += 1;
        }
        runs.push((start, new[start..i].to_vec()));
    }
    runs
}

fn apply_runs(global: &mut [u8], runs: &WriteRuns) {
    for (start, bytes) in runs {
        global[*start..*start + bytes.len()].copy_from_slice(bytes);
    }
}

/// Fan the per-SM engines out over `workers` scoped threads.
///
/// Each worker owns a private copy of the pristine global buffer,
/// reset per SM, and reports the byte runs its SMs wrote; the caller's
/// buffer is untouched until every engine has finished, then the runs
/// are applied in sm-id order — reproducing the serial engine order
/// exactly. On failure, serial semantics are preserved the same way:
/// the lowest-sm-id error wins, writes of the SMs before it (plus the
/// failing SM's partial writes) land, and later SMs' work is discarded.
#[allow(clippy::too_many_arguments)]
fn run_sms_parallel(
    dev: &DeviceSpec,
    prog: &LinkedProgram,
    launch: Launch,
    params: &[u32],
    global: &mut [u8],
    partition: &[Vec<u32>],
    residency: u32,
    workers: u32,
    guards_for: &(dyn Fn(u32) -> EngineGuards + Sync),
) -> Result<Vec<Option<SmRun>>, SimError> {
    let num_sms = dev.num_sms as usize;
    let mut results: Vec<Option<(Result<SmRun, SimError>, WriteRuns)>> =
        (0..num_sms).map(|_| None).collect();
    {
        let pristine: &[u8] = global;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers as usize);
            for k in 0..workers as usize {
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut buf: Vec<u8> = Vec::new();
                    for sm in (k..num_sms).step_by(workers as usize) {
                        if partition[sm].is_empty() {
                            continue;
                        }
                        buf.clear();
                        buf.extend_from_slice(pristine);
                        let mut engine = SmEngine::new(
                            dev,
                            prog,
                            launch,
                            params,
                            &mut buf,
                            sm as u32,
                            guards_for(sm as u32),
                        );
                        let r = engine.run(&partition[sm], residency);
                        let stats = engine.stats;
                        let per_warp = std::mem::take(&mut engine.per_warp_issued);
                        drop(engine);
                        let runs = diff_runs(pristine, &buf);
                        let run = r.map(|c| SmRun { cycles: c, stats, per_warp });
                        out.push((sm, run, runs));
                    }
                    out
                }));
            }
            for handle in handles {
                for (sm, run, runs) in handle.join().expect("sim worker panicked") {
                    results[sm] = Some((run, runs));
                }
            }
        });
    }
    let mut outcomes: Vec<Option<SmRun>> = Vec::with_capacity(num_sms);
    for slot in &mut results {
        match slot.take() {
            None => outcomes.push(None),
            Some((Ok(run), runs)) => {
                apply_runs(global, &runs);
                outcomes.push(Some(run));
            }
            Some((Err(e), runs)) => {
                // The failing SM's partial writes land, like a serial
                // engine erroring mid-run.
                apply_runs(global, &runs);
                return Err(e);
            }
        }
    }
    Ok(outcomes)
}

impl SimStats {
    /// Aggregate counters from another engine (SM → device).
    pub fn absorb(&mut self, o: &SimStats) {
        self.warp_insts += o.warp_insts;
        self.thread_insts += o.thread_insts;
        self.stack_moves += o.stack_moves;
        self.smem_slot_accesses += o.smem_slot_accesses;
        self.shared_mem_accesses += o.shared_mem_accesses;
        self.bank_conflict_extra += o.bank_conflict_extra;
        self.barriers += o.barriers;
        self.local_transactions += o.local_transactions;
        self.mem.l1_hits += o.mem.l1_hits;
        self.mem.l1_misses += o.mem.l1_misses;
        self.mem.l2_hits += o.mem.l2_hits;
        self.mem.l2_misses += o.mem.l2_misses;
        self.mem.dram_transactions += o.mem.dram_transactions;
        self.mem.dram_bytes += o.mem.dram_bytes;
        self.stalls.absorb(&o.stalls);
    }
}
