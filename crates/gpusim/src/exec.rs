//! Per-SM execution engine: SIMT warps over machine code, with
//! scoreboarded latencies, coalescing, shared-memory bank conflicts,
//! barriers, calls, and divergence via an immediate-post-dominator
//! reconvergence stack.
//!
//! The engine is *value-accurate*: it computes the same results as the
//! reference interpreter (`orion_kir::interp`) while attributing cycle
//! costs, so semantic-preservation tests can compare global memory
//! bit-for-bit.

use crate::device::DeviceSpec;
use crate::memory::{MemKind, MemStats, MemSystem};
use orion_kir::cfg::{Cfg, PostDominators};
use orion_kir::function::{FuncKind, Function, Terminator};
use orion_kir::inst::Opcode;
use orion_kir::mir::{MInst, MLoc, MModule, MOperand, Place};
use orion_kir::sem::{eval_alu, eval_setp, Val};
use orion_kir::types::{BlockId, FuncId, MemSpace, SpecialReg, Width, NUM_PRED_REGS};
use serde::{Deserialize, Serialize};

/// Kernel launch shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Launch {
    pub grid: u32,
    pub block: u32,
}

/// Simulator failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The kernel cannot be resident on an SM (shared memory or register
    /// demand exceeds the hardware) — the paper's empty Table 3 cells.
    Unlaunchable(String),
    /// A memory access fell outside the provided buffer.
    OutOfBounds { space: MemSpace, addr: u64 },
    /// Scheduler found runnable work but no warp could progress.
    Deadlock,
    /// Dynamic instruction budget exceeded.
    StepLimit,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unlaunchable(s) => write!(f, "kernel not launchable: {s}"),
            SimError::OutOfBounds { space, addr } => {
                write!(f, "{space} access at {addr:#x} out of bounds")
            }
            SimError::Deadlock => write!(f, "simulation deadlock (barrier divergence?)"),
            SimError::StepLimit => write!(f, "dynamic instruction limit exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// Dynamic counters for one launch (summed over SMs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Warp-instructions issued.
    pub warp_insts: u64,
    /// Thread-instructions (warp_insts × active lanes).
    pub thread_insts: u64,
    /// Stack/argument move instructions executed (warp granularity).
    pub stack_moves: u64,
    /// Private shared-memory slot words accessed.
    pub smem_slot_accesses: u64,
    /// User shared-memory transactions (after conflict serialization).
    pub shared_mem_accesses: u64,
    /// Extra cycles serialized by bank conflicts.
    pub bank_conflict_extra: u64,
    /// Barriers executed (warp granularity).
    pub barriers: u64,
    /// Local-memory word transactions (spill traffic).
    pub local_transactions: u64,
    /// Memory hierarchy counters.
    pub mem: MemStats,
}

/// A machine module plus precomputed reconvergence points.
pub struct LinkedProgram<'m> {
    pub module: &'m MModule,
    /// `ipdom[func][block]` — SIMT reconvergence target of a divergent
    /// branch terminating `block`.
    ipdom: Vec<Vec<Option<BlockId>>>,
}

impl<'m> LinkedProgram<'m> {
    /// Precompute per-function post-dominators.
    pub fn new(module: &'m MModule) -> Self {
        let ipdom = module
            .funcs
            .iter()
            .map(|f| {
                if f.blocks.is_empty() {
                    return Vec::new();
                }
                // Build a terminator-skeleton kir function to reuse the
                // post-dominator analysis.
                let mut sk = Function::new(f.name.clone(), FuncKind::Kernel);
                sk.blocks = f
                    .blocks
                    .iter()
                    .map(|b| orion_kir::function::BasicBlock {
                        insts: Vec::new(),
                        term: b.term.clone(),
                    })
                    .collect();
                let cfg = Cfg::new(&sk);
                PostDominators::new(&sk, &cfg).ipdom
            })
            .collect();
        LinkedProgram { module, ipdom }
    }
}

const FULL_MASK: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct SimtEntry {
    block: BlockId,
    idx: usize,
    reconv: Option<BlockId>,
    mask: u32,
}

#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    stack: Vec<SimtEntry>,
}

struct LaneState {
    onchip: Vec<u32>,
    local: Vec<u8>,
    preds: [bool; NUM_PRED_REGS as usize],
}

struct Warp {
    /// Index into the SM's resident-CTA table.
    cta: usize,
    warp_in_block: u32,
    frames: Vec<Frame>,
    alive: u32,
    done: bool,
    at_barrier: bool,
    barrier_release: u64,
    next_free: u64,
    onchip_ready: Vec<u64>,
    local_ready: Vec<u64>,
    pred_ready: [u64; NUM_PRED_REGS as usize],
}

struct Cta {
    grid_idx: u32,
    lanes: Vec<LaneState>,
    shared: Vec<u8>,
    warps_left: usize,
}

/// One SM's execution of its share of the grid.
pub(crate) struct SmEngine<'m, 'g> {
    dev: &'m DeviceSpec,
    prog: &'m LinkedProgram<'m>,
    launch: Launch,
    params: &'m [u32],
    global: &'g mut [u8],
    mem: MemSystem,
    pub stats: SimStats,
    onchip_words: usize,
    local_words: usize,
    warps_per_block: u32,
    // time bookkeeping
    cur_cycle: u64,
    issued_this_cycle: u32,
    last_event: u64,
    steps_left: u64,
}

impl<'m, 'g> SmEngine<'m, 'g> {
    pub fn new(
        dev: &'m DeviceSpec,
        prog: &'m LinkedProgram<'m>,
        launch: Launch,
        params: &'m [u32],
        global: &'g mut [u8],
        step_limit: u64,
    ) -> Self {
        let m = prog.module;
        let onchip_words =
            usize::from(m.regs_per_thread) + usize::from(m.smem_slots_per_thread);
        SmEngine {
            dev,
            prog,
            launch,
            params,
            global,
            mem: MemSystem::new(dev),
            stats: SimStats::default(),
            onchip_words,
            local_words: usize::from(m.local_slots_per_thread),
            warps_per_block: launch.block.div_ceil(32),
            cur_cycle: 0,
            issued_this_cycle: 0,
            last_event: 0,
            steps_left: step_limit,
        }
    }

    /// Run `blocks` (grid indices) with at most `residency` concurrent
    /// CTAs; returns the completion cycle.
    pub fn run(&mut self, blocks: &[u32], residency: u32) -> Result<u64, SimError> {
        let mut pending = blocks.iter().copied();
        let mut ctas: Vec<Cta> = Vec::new();
        let mut warps: Vec<Warp> = Vec::new();
        // Seed initial residency.
        for _ in 0..residency {
            if let Some(b) = pending.next() {
                self.admit_cta(&mut ctas, &mut warps, b, 0);
            }
        }
        loop {
            // Pick the runnable warp with the earliest ready time.
            let mut best: Option<(u64, usize)> = None;
            for (i, w) in warps.iter().enumerate() {
                if w.done || w.at_barrier {
                    continue;
                }
                let r = self.warp_ready_time(w);
                if best.is_none_or(|(br, _)| r < br) {
                    best = Some((r, i));
                }
            }
            let Some((ready, wi)) = best else {
                // No runnable warps: all done, or all at barriers (which
                // release eagerly), or deadlock.
                if warps.iter().all(|w| w.done) {
                    break;
                }
                return Err(SimError::Deadlock);
            };
            if self.steps_left == 0 {
                return Err(SimError::StepLimit);
            }
            self.steps_left -= 1;
            // Issue-slot bookkeeping: `schedulers_per_sm` issues/cycle.
            let mut t = ready.max(self.cur_cycle);
            if t > self.cur_cycle {
                self.cur_cycle = t;
                self.issued_this_cycle = 0;
            }
            if self.issued_this_cycle >= self.dev.schedulers_per_sm {
                self.cur_cycle += 1;
                self.issued_this_cycle = 0;
                t = self.cur_cycle;
            }
            self.issued_this_cycle += 1;

            self.step_warp(&mut warps, wi, &mut ctas, t)?;

            // Barrier release: if every live warp of the CTA is waiting.
            let cta = warps[wi].cta;
            if warps[wi].at_barrier {
                let all = warps
                    .iter()
                    .filter(|w| w.cta == cta && !w.done)
                    .all(|w| w.at_barrier);
                if all {
                    let release = warps
                        .iter()
                        .filter(|w| w.cta == cta && !w.done)
                        .map(|w| w.barrier_release)
                        .max()
                        .unwrap_or(t);
                    for w in warps.iter_mut().filter(|w| w.cta == cta && !w.done) {
                        w.at_barrier = false;
                        w.next_free = w.next_free.max(release);
                    }
                }
            }
            // CTA completion: free its memory and admit the next block.
            // (memory counters are folded into stats on exit below)
            if warps[wi].done {
                let c = warps[wi].cta;
                ctas[c].warps_left -= 1;
                if ctas[c].warps_left == 0 {
                    ctas[c].lanes = Vec::new();
                    ctas[c].shared = Vec::new();
                    if let Some(b) = pending.next() {
                        let start = self.last_event.max(t);
                        self.admit_cta(&mut ctas, &mut warps, b, start);
                    }
                }
            }
        }
        self.stats.mem = self.mem.stats;
        Ok(self.last_event)
    }

    fn admit_cta(&self, ctas: &mut Vec<Cta>, warps: &mut Vec<Warp>, grid_idx: u32, start: u64) {
        let cta_slot = ctas.len();
        let lanes = (0..self.launch.block.max(1))
            .map(|_| LaneState {
                onchip: vec![0u32; self.onchip_words],
                local: vec![0u8; self.local_words * 4],
                preds: [false; NUM_PRED_REGS as usize],
            })
            .collect();
        ctas.push(Cta {
            grid_idx,
            lanes,
            shared: vec![0u8; self.prog.module.user_smem_bytes as usize],
            warps_left: self.warps_per_block as usize,
        });
        for w in 0..self.warps_per_block {
            let lanes_in_warp = (self.launch.block - w * 32).min(32);
            let alive = if lanes_in_warp == 32 {
                FULL_MASK
            } else {
                (1u32 << lanes_in_warp) - 1
            };
            warps.push(Warp {
                cta: cta_slot,
                warp_in_block: w,
                frames: vec![Frame {
                    func: self.prog.module.entry,
                    stack: vec![SimtEntry {
                        block: BlockId(0),
                        idx: 0,
                        reconv: None,
                        mask: alive,
                    }],
                }],
                alive,
                done: false,
                at_barrier: false,
                barrier_release: 0,
                next_free: start,
                onchip_ready: vec![0; self.onchip_words],
                local_ready: vec![0; self.local_words],
                pred_ready: [0; NUM_PRED_REGS as usize],
            });
        }
    }

    fn warp_ready_time(&self, w: &Warp) -> u64 {
        let mut t = w.next_free;
        let frame = w.frames.last().expect("live warp has a frame");
        let tos = frame.stack.last().expect("live warp has a path");
        let mf = self.prog.module.func(frame.func);
        let blk = &mf.blocks[tos.block.0 as usize];
        if tos.idx < blk.insts.len() {
            let inst = &blk.insts[tos.idx];
            for s in &inst.srcs {
                if let MOperand::Loc(l) = s {
                    t = t.max(self.loc_ready(w, *l));
                }
            }
            if let Some(p) = inst.pred {
                t = t.max(w.pred_ready[p.0 as usize]);
            }
            if let Some(p) = inst.sel_pred {
                t = t.max(w.pred_ready[p.0 as usize]);
            }
        } else if let Terminator::Branch { pred, .. } = &blk.term {
            t = t.max(w.pred_ready[pred.0 as usize]);
        }
        t
    }

    fn loc_ready(&self, w: &Warp, l: MLoc) -> u64 {
        let mut t = 0;
        for k in 0..l.width.words() {
            let idx = usize::from(l.slot + k);
            t = t.max(match l.place {
                Place::Onchip => w.onchip_ready.get(idx).copied().unwrap_or(0),
                Place::Local => w.local_ready.get(idx).copied().unwrap_or(0),
            });
        }
        t
    }

    fn set_loc_ready(&self, w: &mut Warp, l: MLoc, t: u64) {
        for k in 0..l.width.words() {
            let idx = usize::from(l.slot + k);
            match l.place {
                Place::Onchip => {
                    if idx < w.onchip_ready.len() {
                        w.onchip_ready[idx] = t;
                    }
                }
                Place::Local => {
                    if idx < w.local_ready.len() {
                        w.local_ready[idx] = t;
                    }
                }
            }
        }
    }

    /// Words of an on-chip location that live in the shared-memory
    /// region (absolute slot ≥ register budget).
    fn smem_words(&self, l: MLoc) -> u32 {
        if l.place != Place::Onchip {
            return 0;
        }
        let boundary = self.prog.module.regs_per_thread;
        (0..l.width.words())
            .filter(|k| l.slot + k >= boundary)
            .count() as u32
    }

    fn read_loc(lane: &LaneState, l: MLoc) -> Val {
        let mut v = Val::default();
        for k in 0..l.width.words() as usize {
            let idx = usize::from(l.slot) + k;
            v.w[k] = match l.place {
                Place::Onchip => lane.onchip[idx],
                Place::Local => {
                    let b = idx * 4;
                    u32::from_le_bytes(lane.local[b..b + 4].try_into().expect("local word"))
                }
            };
        }
        v
    }

    fn write_loc(lane: &mut LaneState, l: MLoc, v: Val) {
        for k in 0..l.width.words() as usize {
            let idx = usize::from(l.slot) + k;
            match l.place {
                Place::Onchip => lane.onchip[idx] = v.w[k],
                Place::Local => {
                    let b = idx * 4;
                    lane.local[b..b + 4].copy_from_slice(&v.w[k].to_le_bytes());
                }
            }
        }
    }

    fn operand(&self, lane: &LaneState, op: &MOperand, cta_grid: u32, tid: u32) -> Val {
        match op {
            MOperand::Loc(l) => Self::read_loc(lane, *l),
            MOperand::Imm(i) => Val::scalar(*i as u32),
            MOperand::Param(p) => {
                Val::scalar(self.params.get(*p as usize).copied().unwrap_or(0))
            }
            MOperand::Special(s) => Val::scalar(match s {
                SpecialReg::TidX => tid,
                SpecialReg::CtaIdX => cta_grid,
                SpecialReg::NTidX => self.launch.block,
                SpecialReg::NCtaIdX => self.launch.grid,
                SpecialReg::LaneId => tid % 32,
                SpecialReg::WarpId => tid / 32,
            }),
        }
    }

    /// Interleaved local-memory address of `word` for a thread, unique
    /// per (grid block, thread): warp accesses to one spill word coalesce
    /// into a single 128-byte line.
    fn local_addr(&self, grid_idx: u32, tid: u32, word: usize) -> u64 {
        (u64::from(grid_idx) << 32)
            | ((word as u64 * u64::from(self.launch.block) + u64::from(tid)) * 4)
    }

    #[allow(clippy::too_many_lines)]
    fn step_warp(
        &mut self,
        warps: &mut [Warp],
        wi: usize,
        ctas: &mut [Cta],
        t: u64,
    ) -> Result<(), SimError> {
        let w = &mut warps[wi];
        let frame_idx = w.frames.len() - 1;
        let (func_id, tos) = {
            let f = &w.frames[frame_idx];
            (f.func, f.stack.last().expect("path").clone())
        };
        let mf = self.prog.module.func(func_id);
        let blk = &mf.blocks[tos.block.0 as usize];
        let mask = tos.mask & w.alive;
        if mask == 0 {
            // All lanes of this path have exited: discard the path and
            // unwind empty frames. Never happens for the bottom entry of
            // a warp with live lanes.
            let stack = &mut w.frames[frame_idx].stack;
            stack.pop();
            if stack.is_empty() {
                if w.frames.len() > 1 {
                    w.frames.pop();
                } else {
                    w.done = true;
                }
            }
            w.next_free = t + 1;
            return Ok(());
        }
        let cta = &mut ctas[w.cta];
        let warp_base_tid = w.warp_in_block * 32;

        if tos.idx >= blk.insts.len() {
            // ---- terminator ----
            w.next_free = t + 1;
            self.last_event = self.last_event.max(t + 1);
            match blk.term.clone() {
                Terminator::Jump(target) => {
                    self.transfer(w, frame_idx, target);
                }
                Terminator::Branch { pred, neg, then_bb, else_bb } => {
                    let mut t_mask = 0u32;
                    for lane in 0..32u32 {
                        if mask & (1 << lane) != 0 {
                            let p = cta.lanes[(warp_base_tid + lane) as usize].preds
                                [pred.0 as usize]
                                ^ neg;
                            if p {
                                t_mask |= 1 << lane;
                            }
                        }
                    }
                    let nt_mask = mask & !t_mask;
                    if nt_mask == 0 {
                        self.transfer(w, frame_idx, then_bb);
                    } else if t_mask == 0 {
                        self.transfer(w, frame_idx, else_bb);
                    } else {
                        let reconv = self.prog.ipdom[func_id.0 as usize][tos.block.0 as usize];
                        let stack = &mut w.frames[frame_idx].stack;
                        // Current entry becomes the reconvergence entry.
                        let top = stack.last_mut().expect("path");
                        if let Some(r) = reconv {
                            top.block = r;
                            top.idx = 0;
                            // Pending else-path, then taken path on top.
                            if Some(else_bb) != reconv {
                                stack.push(SimtEntry {
                                    block: else_bb,
                                    idx: 0,
                                    reconv,
                                    mask: nt_mask,
                                });
                            }
                            if Some(then_bb) != reconv {
                                stack.push(SimtEntry {
                                    block: then_bb,
                                    idx: 0,
                                    reconv,
                                    mask: t_mask,
                                });
                            }
                        } else {
                            // Paths never reconverge (both exit): replace
                            // the entry with two independent paths.
                            stack.pop();
                            stack.push(SimtEntry {
                                block: else_bb,
                                idx: 0,
                                reconv: None,
                                mask: nt_mask,
                            });
                            stack.push(SimtEntry {
                                block: then_bb,
                                idx: 0,
                                reconv: None,
                                mask: t_mask,
                            });
                        }
                    }
                }
                Terminator::Ret => {
                    w.frames.pop();
                    debug_assert!(!w.frames.is_empty(), "ret from kernel frame");
                }
                Terminator::Exit => {
                    w.alive &= !mask;
                    let stack = &mut w.frames[frame_idx].stack;
                    stack.pop();
                    if stack.is_empty() || w.alive == 0 {
                        w.done = true;
                    }
                }
            }
            return Ok(());
        }

        // ---- instruction ----
        let inst: &MInst = &blk.insts[tos.idx];
        w.frames[frame_idx].stack.last_mut().expect("path").idx += 1;
        self.stats.warp_insts += 1;
        self.stats.thread_insts += u64::from(mask.count_ones());
        if inst.is_stack_move {
            self.stats.stack_moves += 1;
        }

        // Timing: operand readiness is folded into scheduling; compute
        // the completion latency here.
        let mut issue_cost = 1u64;
        let mut result_latency = self.dev.alu_latency;

        // Private smem-slot operand penalties.
        let mut smem_words = 0u32;
        for s in &inst.srcs {
            if let MOperand::Loc(l) = s {
                smem_words += self.smem_words(*l);
            }
        }
        if let Some(d) = inst.dst {
            smem_words += self.smem_words(d);
        }
        if smem_words > 0 {
            self.stats.smem_slot_accesses += u64::from(smem_words) * u64::from(mask.count_ones());
            result_latency += self.dev.smem_latency;
        }

        // Local-slot operand traffic (spills): one transaction per word.
        let mut local_ready_max = t;
        let handle_local = |me: &mut Self, l: MLoc, grid_idx: u32| -> u64 {
            let mut done = t;
            for k in 0..l.width.words() {
                let addr = me.local_addr(grid_idx, warp_base_tid, usize::from(l.slot + k));
                let c = me.mem.access(addr, t, MemKind::Local);
                me.stats.local_transactions += 1;
                done = done.max(c);
            }
            done
        };
        if inst.op != Opcode::Bar {
            for s in &inst.srcs {
                if let MOperand::Loc(l) = s {
                    if l.place == Place::Local {
                        local_ready_max = local_ready_max.max(handle_local(self, *l, cta.grid_idx));
                    }
                }
            }
        }

        let cta_grid = cta.grid_idx;
        match &inst.op {
            Opcode::Bar => {
                w.at_barrier = true;
                w.barrier_release = t + 1;
                w.next_free = t + 1;
                self.stats.barriers += 1;
                self.last_event = self.last_event.max(t + 1);
                Ok(())
            }
            Opcode::Call(callee) => {
                w.frames.push(Frame {
                    func: *callee,
                    stack: vec![SimtEntry {
                        block: BlockId(0),
                        idx: 0,
                        reconv: None,
                        mask,
                    }],
                });
                w.next_free = t + 1;
                self.last_event = self.last_event.max(t + 1);
                Ok(())
            }
            Opcode::Ld { space, width, offset } => {
                // Gather per-lane addresses.
                let mut completions = t;
                let mut addrs: Vec<u64> = Vec::with_capacity(32);
                for lane in 0..32u32 {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let tid = warp_base_tid + lane;
                    let lane_state = &cta.lanes[tid as usize];
                    if let Some(p) = inst.pred {
                        if !(lane_state.preds[p.0 as usize] ^ inst.pred_neg) {
                            continue;
                        }
                    }
                    let base = self.operand(lane_state, &inst.srcs[0], cta_grid, tid).as_i32();
                    let addr = (i64::from(base) + i64::from(*offset)) as u64;
                    addrs.push(addr);
                }
                match space {
                    MemSpace::Global => {
                        let lines = self.mem.coalesce(
                            addrs
                                .iter()
                                .flat_map(|&a| (0..width.words()).map(move |k| a + u64::from(k) * 4)),
                        );
                        for line in lines {
                            let c = self.mem.access(line, t, MemKind::Global);
                            completions = completions.max(c);
                        }
                        result_latency = 0; // completion-driven
                    }
                    MemSpace::Shared => {
                        // Bank conflicts: 32 banks of 4 bytes; lanes
                        // reading the *same* word broadcast (no conflict),
                        // so count distinct words per bank.
                        let mut words: Vec<u64> = addrs
                            .iter()
                            .flat_map(|&a| (0..width.words()).map(move |k| a / 4 + u64::from(k)))
                            .collect();
                        words.sort_unstable();
                        words.dedup();
                        let mut per_bank = [0u32; 32];
                        for w in words {
                            per_bank[(w % 32) as usize] += 1;
                        }
                        let degree = u64::from(*per_bank.iter().max().unwrap_or(&1)).max(1);
                        self.stats.shared_mem_accesses += degree;
                        self.stats.bank_conflict_extra += (degree - 1) * 2;
                        completions = completions.max(t + self.dev.smem_latency + (degree - 1) * 2);
                        result_latency = 0;
                        issue_cost = degree.min(8);
                    }
                    MemSpace::Local => {
                        for &a in &addrs {
                            let c = self.mem.access(a, t, MemKind::Local);
                            completions = completions.max(c);
                            self.stats.local_transactions += 1;
                        }
                        result_latency = 0;
                    }
                }
                // Execute values.
                for lane in 0..32u32 {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let tid = warp_base_tid + lane;
                    if let Some(p) = inst.pred {
                        if !(cta.lanes[tid as usize].preds[p.0 as usize] ^ inst.pred_neg) {
                            continue;
                        }
                    }
                    let base = self
                        .operand(&cta.lanes[tid as usize], &inst.srcs[0], cta_grid, tid)
                        .as_i32();
                    let addr = (i64::from(base) + i64::from(*offset)) as u64;
                    let v = match space {
                        MemSpace::Global => read_bytes(self.global, addr, *width)
                            .ok_or(SimError::OutOfBounds { space: *space, addr })?,
                        MemSpace::Shared => read_bytes(&cta.shared, addr, *width)
                            .ok_or(SimError::OutOfBounds { space: *space, addr })?,
                        MemSpace::Local => read_bytes(&cta.lanes[tid as usize].local, addr, *width)
                            .ok_or(SimError::OutOfBounds { space: *space, addr })?,
                    };
                    if let Some(d) = inst.dst {
                        Self::write_loc(&mut cta.lanes[tid as usize], d, v);
                    }
                }
                let done = completions.max(local_ready_max) + result_latency;
                if let Some(d) = inst.dst {
                    let dl = handle_local_dst(self, d, cta_grid, warp_base_tid, done);
                    self.set_loc_ready(w, d, dl);
                }
                w.next_free = t + issue_cost;
                self.last_event = self.last_event.max(done);
                Ok(())
            }
            Opcode::St { space, width, offset } => {
                let mut addrs: Vec<u64> = Vec::with_capacity(32);
                for lane in 0..32u32 {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let tid = warp_base_tid + lane;
                    let lane_state = &cta.lanes[tid as usize];
                    if let Some(p) = inst.pred {
                        if !(lane_state.preds[p.0 as usize] ^ inst.pred_neg) {
                            continue;
                        }
                    }
                    let base = self.operand(lane_state, &inst.srcs[0], cta_grid, tid).as_i32();
                    let addr = (i64::from(base) + i64::from(*offset)) as u64;
                    let v = self.operand(lane_state, &inst.srcs[1], cta_grid, tid);
                    match space {
                        MemSpace::Global => write_bytes(self.global, addr, *width, v)
                            .ok_or(SimError::OutOfBounds { space: *space, addr })?,
                        MemSpace::Shared => write_bytes(&mut cta.shared, addr, *width, v)
                            .ok_or(SimError::OutOfBounds { space: *space, addr })?,
                        MemSpace::Local => {
                            write_bytes(&mut cta.lanes[tid as usize].local, addr, *width, v)
                                .ok_or(SimError::OutOfBounds { space: *space, addr })?
                        }
                    }
                    addrs.push(addr);
                }
                // Bandwidth accounting (fire-and-forget stores).
                match space {
                    MemSpace::Global => {
                        let lines = self.mem.coalesce(
                            addrs
                                .iter()
                                .flat_map(|&a| (0..width.words()).map(move |k| a + u64::from(k) * 4)),
                        );
                        for line in lines {
                            self.mem.access(line, t, MemKind::Global);
                        }
                    }
                    MemSpace::Shared => {
                        let mut words: Vec<u64> = addrs
                            .iter()
                            .flat_map(|&a| (0..width.words()).map(move |k| a / 4 + u64::from(k)))
                            .collect();
                        words.sort_unstable();
                        words.dedup();
                        let mut per_bank = [0u32; 32];
                        for w in words {
                            per_bank[(w % 32) as usize] += 1;
                        }
                        let degree = u64::from(*per_bank.iter().max().unwrap_or(&1)).max(1);
                        self.stats.shared_mem_accesses += degree;
                        self.stats.bank_conflict_extra += (degree - 1) * 2;
                        issue_cost = degree.min(8);
                    }
                    MemSpace::Local => {
                        for &a in &addrs {
                            self.mem.access(a, t, MemKind::Local);
                            self.stats.local_transactions += 1;
                        }
                    }
                }
                w.next_free = t + issue_cost;
                self.last_event = self.last_event.max(t + issue_cost);
                Ok(())
            }
            Opcode::ISetp(_) | Opcode::FSetp(_) => {
                for lane in 0..32u32 {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let tid = warp_base_tid + lane;
                    let lane_state = &cta.lanes[tid as usize];
                    if let Some(p) = inst.pred {
                        if !(lane_state.preds[p.0 as usize] ^ inst.pred_neg) {
                            continue;
                        }
                    }
                    let s: Vec<Val> = inst
                        .srcs
                        .iter()
                        .map(|o| self.operand(lane_state, o, cta_grid, tid))
                        .collect();
                    let r = eval_setp(&inst.op, &s);
                    let p = inst.pdst.expect("setp pdst");
                    cta.lanes[tid as usize].preds[p.0 as usize] = r;
                }
                let done = local_ready_max.max(t) + result_latency;
                if let Some(p) = inst.pdst {
                    w.pred_ready[p.0 as usize] = done;
                }
                w.next_free = t + issue_cost;
                self.last_event = self.last_event.max(done);
                Ok(())
            }
            _ => {
                // ALU / Mov / Sel / conversions (incl. Nop).
                for lane in 0..32u32 {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let tid = warp_base_tid + lane;
                    let lane_state = &cta.lanes[tid as usize];
                    if let Some(p) = inst.pred {
                        if !(lane_state.preds[p.0 as usize] ^ inst.pred_neg) {
                            continue;
                        }
                    }
                    if inst.op == Opcode::Nop {
                        continue;
                    }
                    let s: Vec<Val> = inst
                        .srcs
                        .iter()
                        .map(|o| self.operand(lane_state, o, cta_grid, tid))
                        .collect();
                    let v = if inst.op == Opcode::Sel {
                        let p = inst.sel_pred.expect("sel pred");
                        if lane_state.preds[p.0 as usize] {
                            s[0]
                        } else {
                            s[1]
                        }
                    } else {
                        eval_alu(&inst.op, &s)
                    };
                    if let Some(d) = inst.dst {
                        Self::write_loc(&mut cta.lanes[tid as usize], d, v);
                    }
                }
                let done = local_ready_max.max(t) + result_latency;
                if let Some(d) = inst.dst {
                    let dl = handle_local_dst(self, d, cta_grid, warp_base_tid, done);
                    self.set_loc_ready(w, d, dl);
                }
                w.next_free = t + issue_cost;
                self.last_event = self.last_event.max(done);
                Ok(())
            }
        }
    }

    /// Jump / fall-through transfer with reconvergence-pop handling.
    fn transfer(&self, w: &mut Warp, frame_idx: usize, target: BlockId) {
        let stack = &mut w.frames[frame_idx].stack;
        let tos = stack.last().expect("path");
        if tos.reconv == Some(target) {
            stack.pop();
            debug_assert!(!stack.is_empty(), "reconvergence under empty stack");
        } else {
            let tos = stack.last_mut().expect("path");
            tos.block = target;
            tos.idx = 0;
        }
    }
}

/// Store traffic for a local-memory destination; returns the readiness.
fn handle_local_dst(
    me: &mut SmEngine,
    d: MLoc,
    grid_idx: u32,
    warp_base_tid: u32,
    done: u64,
) -> u64 {
    if d.place != Place::Local {
        return done;
    }
    let mut c = done;
    for k in 0..d.width.words() {
        let addr = me.local_addr(grid_idx, warp_base_tid, usize::from(d.slot + k));
        let a = me.mem.access(addr, done, MemKind::Local);
        me.stats.local_transactions += 1;
        c = c.max(a);
    }
    c
}

fn read_bytes(buf: &[u8], addr: u64, width: Width) -> Option<Val> {
    let n = width.bytes() as usize;
    let a = addr as usize;
    if a.checked_add(n)? > buf.len() {
        return None;
    }
    let mut v = Val::default();
    for (i, chunk) in buf[a..a + n].chunks(4).enumerate() {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        v.w[i] = u32::from_le_bytes(w);
    }
    Some(v)
}

fn write_bytes(buf: &mut [u8], addr: u64, width: Width, v: Val) -> Option<()> {
    let n = width.bytes() as usize;
    let a = addr as usize;
    if a.checked_add(n)? > buf.len() {
        return None;
    }
    for i in 0..width.words() as usize {
        let bytes = v.w[i].to_le_bytes();
        let take = (n - i * 4).min(4);
        buf[a + i * 4..a + i * 4 + take].copy_from_slice(&bytes[..take]);
    }
    Some(())
}
