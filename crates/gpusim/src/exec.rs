//! Per-SM execution engine: SIMT warps over machine code, with
//! scoreboarded latencies, coalescing, shared-memory bank conflicts,
//! barriers, calls, and divergence via an immediate-post-dominator
//! reconvergence stack.
//!
//! The engine is *value-accurate*: it computes the same results as the
//! reference interpreter (`orion_kir::interp`) while attributing cycle
//! costs, so semantic-preservation tests can compare global memory
//! bit-for-bit.
//!
//! Execution runs over predecoded instruction tables (`decode`) and,
//! by default, pooled structure-of-arrays lane state (`lanes`):
//! warp-wide register-file gathers, packed
//! predicate masks, and masked slice write-backs replace the seed
//! engine's per-lane scalar loops. The seed array-of-structs layout is
//! retained as [`LaneLayout::Aos`] — the frozen reference both for perf
//! baselines and for the bit-identity suites in `tests/schedule.rs`.

use crate::decode::{decode_module, DecTerm, DecodedFunc, MAX_SRCS};
use crate::device::DeviceSpec;
use crate::lanes::{warp_alu, SoaCta, WarpCtx, WarpOperand};
use crate::memory::{MemKind, MemStats, MemSystem};
use orion_kir::cfg::{Cfg, PostDominators};
use orion_kir::function::{FuncKind, Function};
use orion_kir::inst::Opcode;
use orion_kir::mir::{MLoc, MModule, MOperand, Place};
use orion_kir::sem::{eval_alu, eval_setp, Val};
use orion_kir::types::{BlockId, FuncId, MemSpace, SpecialReg, Width, NUM_PRED_REGS};
use serde::{Deserialize, Serialize};

/// Kernel launch shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Launch {
    pub grid: u32,
    pub block: u32,
}

/// Simulator failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The kernel cannot be resident on an SM (shared memory or register
    /// demand exceeds the hardware) — the paper's empty Table 3 cells.
    Unlaunchable(String),
    /// A memory access fell outside the provided buffer.
    OutOfBounds { space: MemSpace, addr: u64 },
    /// Scheduler found runnable work but no warp could progress.
    Deadlock,
    /// Dynamic instruction budget exceeded.
    StepLimit,
    /// The launch failed for a momentary, retryable reason (injected by
    /// the fault layer; on real hardware a driver hiccup or a spurious
    /// `CUDA_ERROR_LAUNCH_FAILED`). The code disambiguates independent
    /// occurrences for logs.
    TransientLaunchFailure { code: u32 },
    /// The device could not provide the resources the launch needs right
    /// now (perturbed/contended device state) — unlike
    /// [`SimError::Unlaunchable`] this is a property of the moment, not
    /// of the binary, but retrying the same version is unlikely to help
    /// while the pressure lasts.
    ResourceExceeded { detail: String },
    /// The launch exceeded its cycle budget without completing — the
    /// simulator watchdog fired instead of spinning forever on a hung
    /// kernel.
    Watchdog { budget: u64 },
}

impl SimError {
    /// Whether a retry of the same launch may succeed (bounded-retry
    /// candidates for the resilient runtime).
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::TransientLaunchFailure { .. })
    }

    /// Whether the failure indicts this *version* at this moment
    /// (quarantine candidates): the binary may be fine, but launching it
    /// again right away will keep failing, so tuning should continue
    /// over the surviving candidates.
    pub fn is_quarantineable(&self) -> bool {
        matches!(
            self,
            SimError::ResourceExceeded { .. }
                | SimError::Watchdog { .. }
                | SimError::Unlaunchable(_)
        )
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unlaunchable(s) => write!(f, "kernel not launchable: {s}"),
            SimError::OutOfBounds { space, addr } => {
                write!(f, "{space} access at {addr:#x} out of bounds")
            }
            SimError::Deadlock => write!(f, "simulation deadlock (barrier divergence?)"),
            SimError::StepLimit => write!(f, "dynamic instruction limit exceeded"),
            SimError::TransientLaunchFailure { code } => {
                write!(f, "transient launch failure (code {code})")
            }
            SimError::ResourceExceeded { detail } => {
                write!(f, "device resources exceeded: {detail}")
            }
            SimError::Watchdog { budget } => {
                write!(f, "watchdog: launch exceeded its cycle budget of {budget}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Per-cycle stall attribution, mirroring what CUPTI/nsight expose on
/// real hardware. Every SM cycle lands in exactly one bucket, so after
/// device aggregation (which pads idle SMs — see `sim::run_launch_opts`)
/// the buckets **provably sum to `cycles × num_sms`**.
///
/// The engine is event-driven, so attribution works on gaps: when the
/// scheduler issues at cycle `t` after last issuing at cycle `s`, the
/// cycles in `(s, t)` are charged to the binding constraint that kept
/// the issued warp (the earliest-ready one) from issuing sooner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallStats {
    /// Cycles in which the SM issued at least one warp instruction.
    pub issued: u64,
    /// Waiting on a register written by an in-flight ALU/pipeline op
    /// (RAW hazard), or on issue-port serialization (bank-conflict
    /// replays, multi-cycle issue).
    pub scoreboard: u64,
    /// Waiting on an outstanding memory access (global/L1/L2/DRAM or
    /// spill traffic to local memory).
    pub mem_pending: u64,
    /// Waiting for the rest of the CTA at a barrier.
    pub barrier: u64,
    /// No warp was eligible: the SM had no resident work that cycle
    /// (device-level padding for SMs that finished before the slowest
    /// SM, or received no blocks at all).
    pub no_eligible: u64,
    /// SM done issuing; in-flight latency draining to completion.
    pub drain: u64,
}

impl StallStats {
    /// Total accounted cycles (the sum of every bucket).
    pub fn total(&self) -> u64 {
        self.issued
            + self.scoreboard
            + self.mem_pending
            + self.barrier
            + self.no_eligible
            + self.drain
    }

    /// Buckets with their metric names, for exporters and tests.
    pub fn as_named(&self) -> [(&'static str, u64); 6] {
        [
            ("issued", self.issued),
            ("scoreboard", self.scoreboard),
            ("mem_pending", self.mem_pending),
            ("barrier", self.barrier),
            ("no_eligible", self.no_eligible),
            ("drain", self.drain),
        ]
    }

    pub fn absorb(&mut self, o: &StallStats) {
        self.issued += o.issued;
        self.scoreboard += o.scoreboard;
        self.mem_pending += o.mem_pending;
        self.barrier += o.barrier;
        self.no_eligible += o.no_eligible;
        self.drain += o.drain;
    }
}

/// Warp-scheduler implementation for the per-SM engine.
///
/// Both schedulers realize the same **total order**: among runnable
/// warps (not done, not at a barrier), issue the one minimizing the
/// pair `(ready_cycle, warp_id)` lexicographically. The linear scan
/// realizes it by keeping the *first* index on ties (its comparison is
/// strict, `r < br`); the event heap realizes it by keying its entries
/// on exactly `(ready_cycle, warp_id)`. Results are therefore
/// bit-identical; a debug assertion cross-checks the heap's pick
/// against the reference scan on every issue, and
/// `tests/schedule.rs` pins the equivalence end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Scheduler {
    /// Monotone ready-queue: a `BinaryHeap` keyed on
    /// `(ready_cycle, warp_id)` with lazy invalidation. O(log W) per
    /// issue instead of O(W).
    #[default]
    EventHeap,
    /// The seed engine's O(W) per-issue scan, kept as the reference
    /// implementation for perf baselines and equivalence tests.
    LinearScan,
}

/// Lane-state memory layout for the per-SM engine.
///
/// Both layouts execute the same predecoded program and are
/// **bit-identical** in every observable: cycles, stall buckets, memory
/// state and counters, and error variant + cycle. `tests/schedule.rs`
/// pins the equivalence across workloads × occupancy × schedulers ×
/// fault seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LaneLayout {
    /// Pooled structure-of-arrays lane state (`crate::lanes`): one
    /// slot-major on-chip arena per CTA (`onchip[slot * stride + tid]`),
    /// one lane-strided local arena, and predicates packed as one `u32`
    /// mask per (warp, pred-reg). Warp instructions execute as
    /// gather → warp-wide compute → masked scatter.
    #[default]
    Soa,
    /// The seed engine's array-of-structs layout: each lane owns its own
    /// register/local vectors and `bool` predicate file. Kept as the
    /// reference implementation for perf baselines and equivalence
    /// tests.
    Aos,
}

/// Why a warp's earliest-ready time is what it is — the binding
/// constraint used to classify scheduling gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    /// Issue-side: previous instruction's issue cost / replays.
    Pipeline,
    /// Released from a barrier at that time.
    Barrier,
    /// Source operand written by an in-flight non-memory op.
    Raw,
    /// Source operand waiting on a memory access.
    Mem,
}

/// Dynamic counters for one launch (summed over SMs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Warp-instructions issued.
    pub warp_insts: u64,
    /// Thread-instructions (warp_insts × active lanes).
    pub thread_insts: u64,
    /// Stack/argument move instructions executed (warp granularity).
    pub stack_moves: u64,
    /// Private shared-memory slot words accessed.
    pub smem_slot_accesses: u64,
    /// User shared-memory transactions (after conflict serialization).
    pub shared_mem_accesses: u64,
    /// Extra cycles serialized by bank conflicts.
    pub bank_conflict_extra: u64,
    /// Barriers executed (warp granularity).
    pub barriers: u64,
    /// Local-memory word transactions (spill traffic).
    pub local_transactions: u64,
    /// Memory hierarchy counters.
    pub mem: MemStats,
    /// Per-cycle stall attribution.
    pub stalls: StallStats,
}

/// A machine module plus its predecoded execution tables.
pub struct LinkedProgram<'m> {
    pub module: &'m MModule,
    /// Per-function flat instruction/terminator tables with SIMT
    /// reconvergence targets (immediate post-dominators) resolved at
    /// decode time.
    pub(crate) dec: Vec<DecodedFunc>,
}

impl<'m> LinkedProgram<'m> {
    /// Precompute per-function post-dominators and decode every
    /// function into its flat side tables.
    pub fn new(module: &'m MModule) -> Self {
        let ipdom: Vec<Vec<Option<BlockId>>> = module
            .funcs
            .iter()
            .map(|f| {
                if f.blocks.is_empty() {
                    return Vec::new();
                }
                // Build a terminator-skeleton kir function to reuse the
                // post-dominator analysis.
                let mut sk = Function::new(f.name.clone(), FuncKind::Kernel);
                sk.blocks = f
                    .blocks
                    .iter()
                    .map(|b| orion_kir::function::BasicBlock {
                        insts: Vec::new(),
                        term: b.term.clone(),
                    })
                    .collect();
                let cfg = Cfg::new(&sk);
                PostDominators::new(&sk, &cfg).ipdom
            })
            .collect();
        let dec = decode_module(module, &ipdom);
        LinkedProgram { module, dec }
    }
}

const FULL_MASK: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct SimtEntry {
    block: BlockId,
    idx: usize,
    reconv: Option<BlockId>,
    mask: u32,
}

#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    stack: Vec<SimtEntry>,
}

/// One lane's state in the reference array-of-structs layout.
struct LaneState {
    onchip: Vec<u32>,
    local: Vec<u8>,
    preds: [bool; NUM_PRED_REGS as usize],
}

struct Warp {
    /// Index into the SM's resident-CTA table.
    cta: usize,
    warp_in_block: u32,
    frames: Vec<Frame>,
    alive: u32,
    done: bool,
    at_barrier: bool,
    barrier_release: u64,
    next_free: u64,
    /// Why `next_free` is what it is (stall attribution).
    free_reason: Wait,
    onchip_ready: Vec<u64>,
    /// Provenance of each `onchip_ready` entry: was the last writer a
    /// memory access? (Local slots are always memory: spill traffic.)
    onchip_mem: Vec<bool>,
    local_ready: Vec<u64>,
    pred_ready: [u64; NUM_PRED_REGS as usize],
    /// Generation of this warp's latest ready-queue entry; older heap
    /// entries are lazily discarded on pop (ready times are monotone,
    /// so the latest push is the only live one).
    sched_gen: u64,
    /// Binding constraint cached at the latest ready-queue push (the
    /// `Wait` half of `warp_ready_info` at that instant; the warp has
    /// not mutated since, or it would have been re-pushed).
    ready_why: Wait,
}

/// A CTA's lane state in whichever layout the launch selected.
enum LaneArena {
    /// Per-lane structs (reference layout).
    Aos(Vec<LaneState>),
    /// Pooled slot-major arenas (default layout).
    Soa(SoaCta),
}

impl Default for LaneArena {
    fn default() -> Self {
        LaneArena::Aos(Vec::new())
    }
}

struct Cta {
    grid_idx: u32,
    lanes: LaneArena,
    shared: Vec<u8>,
    warps_left: usize,
    /// Cycle at which this CTA was admitted (telemetry timeline).
    admitted_at: u64,
}

/// Free-pools recycling the per-CTA/per-warp buffers as CTAs retire —
/// after warm-up the engine allocates nothing per admitted block, so a
/// launch's allocation cost is bounded by its residency, not its grid —
/// plus the per-instruction working buffers that used to be allocated
/// per `step_warp` (Ld/St address gathers, bank-conflict word lists,
/// coalesced line lists, warp-wide operand files).
#[derive(Default)]
struct Scratch {
    /// Retired CTA lane tables (each lane keeps its own vectors).
    lanes: Vec<Vec<LaneState>>,
    /// Retired CTA user shared-memory buffers.
    shared: Vec<Vec<u8>>,
    /// Retired warp readiness scoreboards (`onchip_ready`/`local_ready`).
    ready_words: Vec<Vec<u64>>,
    /// Retired warp provenance bitmaps (`onchip_mem`).
    ready_flags: Vec<Vec<bool>>,
    /// Retired SoA on-chip register arenas.
    soa_onchip: Vec<Vec<u32>>,
    /// Retired SoA local-memory arenas.
    soa_local: Vec<Vec<u8>>,
    /// Retired SoA packed-predicate tables.
    soa_preds: Vec<Vec<u32>>,
    /// Ld/St per-lane address gather (was a per-instruction `Vec`).
    addrs: Vec<u64>,
    /// Bank-conflict word list (was a per-instruction `Vec`).
    words: Vec<u64>,
    /// Coalesced cache-line list (was a per-instruction `Vec`).
    lines: Vec<u64>,
    /// Warp-wide operand register files (SoA ALU/Setp gather targets).
    ops: [WarpOperand; MAX_SRCS],
    /// Warp-wide result register file (SoA ALU scatter source).
    out: WarpOperand,
}

/// One SM's execution of its share of the grid.
pub(crate) struct SmEngine<'m, 'g> {
    dev: &'m DeviceSpec,
    prog: &'m LinkedProgram<'m>,
    launch: Launch,
    params: &'m [u32],
    global: &'g mut [u8],
    mem: MemSystem,
    pub stats: SimStats,
    /// Warp-instructions issued per hardware warp slot (resident-CTA
    /// slot × warps-per-block + warp-in-block), for the per-warp-slot
    /// occupancy rollup.
    pub per_warp_issued: Vec<u64>,
    /// SM index on the device (telemetry lane id).
    sm_id: u32,
    onchip_words: usize,
    local_words: usize,
    warps_per_block: u32,
    // time bookkeeping
    cur_cycle: u64,
    issued_this_cycle: u32,
    last_event: u64,
    /// First cycle not yet attributed to a stall bucket.
    acct_cursor: u64,
    steps_left: u64,
    /// Watchdog: the engine refuses to advance past this cycle and
    /// returns [`SimError::Watchdog`] instead of spinning forever.
    cycle_budget: u64,
    /// Fault injection: wedge the first admitted warp (its ready time is
    /// pushed past the cycle budget, so the launch can only end via the
    /// watchdog — a deterministic stand-in for a stuck-warp hang).
    stuck_warp: bool,
    /// Warp-scheduler implementation (bit-identical alternatives).
    scheduler: Scheduler,
    /// Lane-state layout (bit-identical alternatives).
    layout: LaneLayout,
    /// Resident-CTA limit of the current launch (per-warp-slot rollup).
    residency: u32,
    /// Recycled per-CTA/per-warp buffers.
    scratch: Scratch,
}

/// Per-launch safety/fault knobs threaded from the launch path into
/// each SM engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineGuards {
    /// Hard cap on interpreted warp-instructions.
    pub step_limit: u64,
    /// Watchdog budget in cycles.
    pub cycle_budget: u64,
    /// Injected hang: wedge the first admitted warp past the budget.
    pub stuck_warp: bool,
    /// Warp-scheduler implementation.
    pub scheduler: Scheduler,
    /// Lane-state memory layout.
    pub layout: LaneLayout,
}

impl<'m, 'g> SmEngine<'m, 'g> {
    pub fn new(
        dev: &'m DeviceSpec,
        prog: &'m LinkedProgram<'m>,
        launch: Launch,
        params: &'m [u32],
        global: &'g mut [u8],
        sm_id: u32,
        guards: EngineGuards,
    ) -> Self {
        let m = prog.module;
        let onchip_words = usize::from(m.regs_per_thread) + usize::from(m.smem_slots_per_thread);
        SmEngine {
            dev,
            prog,
            launch,
            params,
            global,
            mem: MemSystem::new(dev),
            stats: SimStats::default(),
            per_warp_issued: Vec::new(),
            sm_id,
            onchip_words,
            local_words: usize::from(m.local_slots_per_thread),
            warps_per_block: launch.block.div_ceil(32),
            cur_cycle: 0,
            issued_this_cycle: 0,
            last_event: 0,
            acct_cursor: 0,
            steps_left: guards.step_limit,
            cycle_budget: guards.cycle_budget,
            stuck_warp: guards.stuck_warp,
            scheduler: guards.scheduler,
            layout: guards.layout,
            residency: 1,
            scratch: Scratch::default(),
        }
    }

    /// Run `blocks` (grid indices) with at most `residency` concurrent
    /// CTAs; returns the completion cycle.
    pub fn run(&mut self, blocks: &[u32], residency: u32) -> Result<u64, SimError> {
        self.residency = residency;
        let mut pending = blocks.iter().copied();
        let mut ctas: Vec<Cta> = Vec::with_capacity(residency as usize);
        let mut warps: Vec<Warp> = Vec::new();
        // Seed initial residency.
        for _ in 0..residency {
            if let Some(b) = pending.next() {
                self.admit_cta(&mut ctas, &mut warps, b, 0);
            }
        }
        // Injected hang: wedge the first warp past the cycle budget so
        // the launch can only terminate through the watchdog.
        if self.stuck_warp {
            if let Some(w) = warps.first_mut() {
                w.next_free = self.cycle_budget.saturating_add(1);
                w.free_reason = Wait::Mem;
            }
        }
        match self.scheduler {
            Scheduler::EventHeap => self.run_heap(&mut pending, &mut ctas, &mut warps)?,
            Scheduler::LinearScan => self.run_scan(&mut pending, &mut ctas, &mut warps)?,
        }
        self.stats.mem = self.mem.stats;
        // Close the per-SM accounting: everything between the last issue
        // and engine completion is latency drain. `last_event` can in
        // principle trail the accounting cursor by a bookkeeping-only
        // issue (empty-path discard), so completion is their max — which
        // makes the invariant `Σ buckets == completion` exact.
        let end = self.last_event.max(self.acct_cursor);
        self.last_event = end;
        self.stats.stalls.drain += end - self.acct_cursor;
        self.acct_cursor = end;
        debug_assert_eq!(self.stats.stalls.total(), end, "stall buckets must cover every cycle");
        Ok(end)
    }

    /// Reference scheduler: O(W) scan for the runnable warp minimizing
    /// `(ready_cycle, warp_id)` — the strict `r < br` comparison keeps
    /// the first (lowest-id) warp on ready-time ties, which is exactly
    /// the lexicographic order the event heap reproduces.
    fn scan_best(&self, warps: &[Warp]) -> Option<(u64, usize, Wait)> {
        let mut best: Option<(u64, usize, Wait)> = None;
        for (i, w) in warps.iter().enumerate() {
            if w.done || w.at_barrier {
                continue;
            }
            let (r, why) = self.warp_ready_info(w);
            if best.is_none_or(|(br, _, _)| r < br) {
                best = Some((r, i, why));
            }
        }
        best
    }

    fn run_scan<I: Iterator<Item = u32>>(
        &mut self,
        pending: &mut I,
        ctas: &mut Vec<Cta>,
        warps: &mut Vec<Warp>,
    ) -> Result<(), SimError> {
        let mut touched: Vec<usize> = Vec::new();
        loop {
            let Some((ready, wi, wait)) = self.scan_best(warps) else {
                // No runnable warps: all done, or all at barriers (which
                // release eagerly), or deadlock.
                if warps.iter().all(|w| w.done) {
                    return Ok(());
                }
                return Err(SimError::Deadlock);
            };
            touched.clear();
            self.issue_at(pending, ctas, warps, wi, ready, wait, &mut touched)?;
        }
    }

    /// Push warp `i` into the ready-queue with its current ready time.
    /// Ready times are monotone (a warp's earliest issue cycle never
    /// moves backwards), so stale entries are recognized on pop by a
    /// per-warp generation counter instead of being removed eagerly.
    fn heap_push(
        &self,
        heap: &mut std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32, u64)>>,
        warps: &mut [Warp],
        i: usize,
    ) {
        if warps[i].done || warps[i].at_barrier {
            return;
        }
        let (r, why) = self.warp_ready_info(&warps[i]);
        let w = &mut warps[i];
        w.ready_why = why;
        w.sched_gen += 1;
        heap.push(std::cmp::Reverse((r, i as u32, w.sched_gen)));
    }

    fn run_heap<I: Iterator<Item = u32>>(
        &mut self,
        pending: &mut I,
        ctas: &mut Vec<Cta>,
        warps: &mut Vec<Warp>,
    ) -> Result<(), SimError> {
        use std::cmp::Reverse;
        // Invariant: every runnable warp has exactly one *live* entry
        // (matching its `sched_gen`); every state change that can move a
        // warp's ready time lands its index in `touched`, which re-pushes
        // with a bumped generation. Dead entries pop in front of their
        // replacement (ready times only grow) and are discarded.
        let mut heap: std::collections::BinaryHeap<Reverse<(u64, u32, u64)>> =
            std::collections::BinaryHeap::with_capacity(warps.len() + 1);
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..warps.len() {
            self.heap_push(&mut heap, warps, i);
        }
        loop {
            let Some(Reverse((ready, id, gen))) = heap.pop() else {
                // Queue drained with no runnable warp left — same
                // terminal condition as the reference scan.
                if warps.iter().all(|w| w.done) {
                    return Ok(());
                }
                return Err(SimError::Deadlock);
            };
            let wi = id as usize;
            if warps[wi].done || warps[wi].at_barrier || gen != warps[wi].sched_gen {
                continue; // dead entry (lazy deletion)
            }
            let wait = warps[wi].ready_why;
            #[cfg(debug_assertions)]
            {
                // The heap must reproduce the reference scan's
                // `(ready, warp_id)` total order pick for pick.
                let reference = self.scan_best(warps);
                debug_assert_eq!(
                    reference,
                    Some((ready, wi, wait)),
                    "event heap diverged from the reference scan order"
                );
            }
            touched.clear();
            self.issue_at(pending, ctas, warps, wi, ready, wait, &mut touched)?;
            for &k in &touched {
                self.heap_push(&mut heap, warps, k);
            }
        }
    }

    /// One issue step: step-limit/watchdog guards, issue-slot and stall
    /// bookkeeping, the warp step itself, then barrier release and CTA
    /// retirement/admission. Indices of warps whose scheduling state
    /// changed (beyond `wi` going done/to-barrier) are appended to
    /// `touched` so the event heap can re-queue them; the scan scheduler
    /// ignores the list.
    #[allow(clippy::too_many_arguments)]
    fn issue_at<I: Iterator<Item = u32>>(
        &mut self,
        pending: &mut I,
        ctas: &mut Vec<Cta>,
        warps: &mut Vec<Warp>,
        wi: usize,
        ready: u64,
        wait: Wait,
        touched: &mut Vec<usize>,
    ) -> Result<(), SimError> {
        if self.steps_left == 0 {
            return Err(SimError::StepLimit);
        }
        self.steps_left -= 1;
        // Watchdog: a warp whose earliest ready time lies beyond the
        // cycle budget will never issue within it — the launch is
        // hung (injected stuck warp, or a genuinely runaway stall).
        // Bail out instead of simulating forever.
        if ready.max(self.cur_cycle) > self.cycle_budget {
            return Err(SimError::Watchdog { budget: self.cycle_budget });
        }
        // Issue-slot bookkeeping: `schedulers_per_sm` issues/cycle.
        let mut t = ready.max(self.cur_cycle);
        if t > self.cur_cycle {
            self.cur_cycle = t;
            self.issued_this_cycle = 0;
        }
        if self.issued_this_cycle >= self.dev.schedulers_per_sm {
            self.cur_cycle += 1;
            self.issued_this_cycle = 0;
            t = self.cur_cycle;
        }
        self.issued_this_cycle += 1;

        // Stall attribution: charge the un-issued gap up to `t` to
        // the binding constraint of the warp we are about to issue,
        // then mark cycle `t` itself as an issue cycle.
        if t >= self.acct_cursor {
            let gap = t - self.acct_cursor;
            if gap > 0 {
                match wait {
                    Wait::Barrier => self.stats.stalls.barrier += gap,
                    Wait::Mem => self.stats.stalls.mem_pending += gap,
                    Wait::Pipeline | Wait::Raw => self.stats.stalls.scoreboard += gap,
                }
            }
            self.stats.stalls.issued += 1;
            self.acct_cursor = t + 1;
        }
        // Per-warp-slot rollup: hardware slots are recycled as CTAs
        // retire, so key by (resident slot, warp-in-block).
        let slot = (warps[wi].cta % self.residency.max(1) as usize) * self.warps_per_block as usize
            + warps[wi].warp_in_block as usize;
        if slot >= self.per_warp_issued.len() {
            self.per_warp_issued.resize(slot + 1, 0);
        }
        self.per_warp_issued[slot] += 1;

        self.step_warp(warps, wi, ctas, t)?;

        // Barrier release: if every live warp of the CTA is waiting.
        let cta = warps[wi].cta;
        if warps[wi].at_barrier {
            let all = warps.iter().filter(|w| w.cta == cta && !w.done).all(|w| w.at_barrier);
            if all {
                let release = warps
                    .iter()
                    .filter(|w| w.cta == cta && !w.done)
                    .map(|w| w.barrier_release)
                    .max()
                    .unwrap_or(t);
                for (i, w) in warps.iter_mut().enumerate().filter(|(_, w)| w.cta == cta && !w.done)
                {
                    w.at_barrier = false;
                    w.next_free = w.next_free.max(release);
                    w.free_reason = Wait::Barrier;
                    if i != wi {
                        touched.push(i);
                    }
                }
            }
        }
        // CTA completion: recycle its memory and admit the next block.
        // (memory counters are folded into stats on exit)
        if warps[wi].done {
            // The warp will never be scheduled again: recycle its
            // readiness scoreboards.
            let w = &mut warps[wi];
            self.scratch.ready_words.push(std::mem::take(&mut w.onchip_ready));
            self.scratch.ready_words.push(std::mem::take(&mut w.local_ready));
            self.scratch.ready_flags.push(std::mem::take(&mut w.onchip_mem));
            let c = warps[wi].cta;
            ctas[c].warps_left -= 1;
            if ctas[c].warps_left == 0 {
                if orion_telemetry::is_enabled() {
                    let begin = ctas[c].admitted_at;
                    let end = self.last_event.max(t);
                    orion_telemetry::complete(
                        "sim",
                        &format!("cta{}", ctas[c].grid_idx),
                        self.sm_id,
                        begin,
                        end.saturating_sub(begin),
                        vec![("grid_idx", ctas[c].grid_idx.into())],
                    );
                }
                match std::mem::take(&mut ctas[c].lanes) {
                    LaneArena::Aos(lanes) => self.scratch.lanes.push(lanes),
                    LaneArena::Soa(soa) => {
                        let (onchip, local, preds) = soa.into_parts();
                        self.scratch.soa_onchip.push(onchip);
                        self.scratch.soa_local.push(local);
                        self.scratch.soa_preds.push(preds);
                    }
                }
                self.scratch.shared.push(std::mem::take(&mut ctas[c].shared));
                if let Some(b) = pending.next() {
                    let start = self.last_event.max(t);
                    let first_new = warps.len();
                    self.admit_cta(ctas, warps, b, start);
                    for i in first_new..warps.len() {
                        touched.push(i);
                    }
                }
            }
        } else if !warps[wi].at_barrier {
            touched.push(wi);
        }
        Ok(())
    }

    /// Pop a recycled buffer (or a fresh one) and reset it to `n`
    /// zeroed/default entries.
    fn recycled<T: Clone + Default>(pool: &mut Vec<Vec<T>>, n: usize) -> Vec<T> {
        let mut v = pool.pop().unwrap_or_default();
        v.clear();
        v.resize(n, T::default());
        v
    }

    /// Build the lane-state arena for a newly admitted CTA in the
    /// engine's layout, reusing retired buffers where possible.
    fn build_arena(&mut self) -> LaneArena {
        match self.layout {
            LaneLayout::Aos => {
                let block = self.launch.block.max(1) as usize;
                let mut lanes = self.scratch.lanes.pop().unwrap_or_default();
                lanes.truncate(block);
                for lane in &mut lanes {
                    lane.onchip.clear();
                    lane.onchip.resize(self.onchip_words, 0);
                    lane.local.clear();
                    lane.local.resize(self.local_words * 4, 0);
                    lane.preds = [false; NUM_PRED_REGS as usize];
                }
                while lanes.len() < block {
                    lanes.push(LaneState {
                        onchip: vec![0u32; self.onchip_words],
                        local: vec![0u8; self.local_words * 4],
                        preds: [false; NUM_PRED_REGS as usize],
                    });
                }
                LaneArena::Aos(lanes)
            }
            LaneLayout::Soa => {
                // Arenas cover whole warps (`warps_per_block * 32` lanes)
                // even when the block is not a multiple of 32: the tail
                // lanes are dead (never in `alive`), but warp-wide
                // gathers may read their zeros.
                let stride = self.warps_per_block as usize * 32;
                let onchip =
                    Self::recycled(&mut self.scratch.soa_onchip, self.onchip_words * stride);
                let local =
                    Self::recycled(&mut self.scratch.soa_local, self.local_words * 4 * stride);
                let preds = Self::recycled(
                    &mut self.scratch.soa_preds,
                    usize::from(NUM_PRED_REGS) * self.warps_per_block as usize,
                );
                LaneArena::Soa(SoaCta::new(onchip, local, preds, stride, self.local_words * 4))
            }
        }
    }

    fn admit_cta(&mut self, ctas: &mut Vec<Cta>, warps: &mut Vec<Warp>, grid_idx: u32, start: u64) {
        let cta_slot = ctas.len();
        let lanes = self.build_arena();
        let smem = self.prog.module.user_smem_bytes as usize;
        let shared = Self::recycled(&mut self.scratch.shared, smem);
        ctas.push(Cta {
            grid_idx,
            lanes,
            shared,
            warps_left: self.warps_per_block as usize,
            admitted_at: start,
        });
        for w in 0..self.warps_per_block {
            let lanes_in_warp = (self.launch.block - w * 32).min(32);
            let alive = if lanes_in_warp == 32 { FULL_MASK } else { (1u32 << lanes_in_warp) - 1 };
            let onchip_ready = Self::recycled(&mut self.scratch.ready_words, self.onchip_words);
            let local_ready = Self::recycled(&mut self.scratch.ready_words, self.local_words);
            let onchip_mem = Self::recycled(&mut self.scratch.ready_flags, self.onchip_words);
            warps.push(Warp {
                cta: cta_slot,
                warp_in_block: w,
                frames: vec![Frame {
                    func: self.prog.module.entry,
                    stack: vec![SimtEntry { block: BlockId(0), idx: 0, reconv: None, mask: alive }],
                }],
                alive,
                done: false,
                at_barrier: false,
                barrier_release: 0,
                next_free: start,
                free_reason: Wait::Pipeline,
                onchip_ready,
                onchip_mem,
                local_ready,
                pred_ready: [0; NUM_PRED_REGS as usize],
                sched_gen: 0,
                ready_why: Wait::Pipeline,
            });
        }
    }

    /// Earliest cycle at which `w` can issue, plus the binding
    /// constraint that sets it (for stall attribution). Ties resolve in
    /// favour of the issue-side reason, then program order of operands.
    /// Walks the predecoded slot-operand list instead of re-matching
    /// `MOperand`s.
    fn warp_ready_info(&self, w: &Warp) -> (u64, Wait) {
        let mut t = w.next_free;
        let mut why = w.free_reason;
        let frame = w.frames.last().expect("live warp has a frame");
        let tos = frame.stack.last().expect("live warp has a path");
        let df = &self.prog.dec[frame.func.0 as usize];
        if tos.idx < df.block_len(tos.block) {
            let inst = df.inst(tos.block, tos.idx);
            for l in inst.loc_srcs() {
                let (r, mem) = self.loc_ready_info(w, *l);
                if r > t {
                    t = r;
                    why = if mem { Wait::Mem } else { Wait::Raw };
                }
            }
            if let Some(p) = inst.pred {
                if w.pred_ready[p.0 as usize] > t {
                    t = w.pred_ready[p.0 as usize];
                    why = Wait::Raw;
                }
            }
            if let Some(p) = inst.sel_pred {
                if w.pred_ready[p.0 as usize] > t {
                    t = w.pred_ready[p.0 as usize];
                    why = Wait::Raw;
                }
            }
        } else if let DecTerm::Branch { pred, .. } = df.term(tos.block) {
            if w.pred_ready[pred.0 as usize] > t {
                t = w.pred_ready[pred.0 as usize];
                why = Wait::Raw;
            }
        }
        (t, why)
    }

    /// Readiness of a location and whether the binding word was produced
    /// by a memory access (local slots are spill traffic, always memory).
    fn loc_ready_info(&self, w: &Warp, l: MLoc) -> (u64, bool) {
        let mut t = 0;
        let mut mem = false;
        for k in 0..l.width.words() {
            let idx = usize::from(l.slot + k);
            let (r, m) = match l.place {
                Place::Onchip => (
                    w.onchip_ready.get(idx).copied().unwrap_or(0),
                    w.onchip_mem.get(idx).copied().unwrap_or(false),
                ),
                Place::Local => (w.local_ready.get(idx).copied().unwrap_or(0), true),
            };
            if r > t || (r == t && m && k == 0) {
                mem = m;
            }
            t = t.max(r);
        }
        (t, mem)
    }

    fn set_loc_ready(&self, w: &mut Warp, l: MLoc, t: u64, mem: bool) {
        for k in 0..l.width.words() {
            let idx = usize::from(l.slot + k);
            match l.place {
                Place::Onchip => {
                    if idx < w.onchip_ready.len() {
                        w.onchip_ready[idx] = t;
                        w.onchip_mem[idx] = mem;
                    }
                }
                Place::Local => {
                    if idx < w.local_ready.len() {
                        w.local_ready[idx] = t;
                    }
                }
            }
        }
    }

    fn read_loc(lane: &LaneState, l: MLoc) -> Val {
        let mut v = Val::default();
        for k in 0..l.width.words() as usize {
            let idx = usize::from(l.slot) + k;
            v.w[k] = match l.place {
                Place::Onchip => lane.onchip[idx],
                Place::Local => {
                    let b = idx * 4;
                    u32::from_le_bytes(lane.local[b..b + 4].try_into().expect("local word"))
                }
            };
        }
        v
    }

    fn write_loc(lane: &mut LaneState, l: MLoc, v: Val) {
        for k in 0..l.width.words() as usize {
            let idx = usize::from(l.slot) + k;
            match l.place {
                Place::Onchip => lane.onchip[idx] = v.w[k],
                Place::Local => {
                    let b = idx * 4;
                    lane.local[b..b + 4].copy_from_slice(&v.w[k].to_le_bytes());
                }
            }
        }
    }

    fn operand(&self, lane: &LaneState, op: &MOperand, cta_grid: u32, tid: u32) -> Val {
        match op {
            MOperand::Loc(l) => Self::read_loc(lane, *l),
            MOperand::Imm(i) => Val::scalar(*i as u32),
            MOperand::Param(p) => Val::scalar(self.params.get(*p as usize).copied().unwrap_or(0)),
            MOperand::Special(s) => Val::scalar(match s {
                SpecialReg::TidX => tid,
                SpecialReg::CtaIdX => cta_grid,
                SpecialReg::NTidX => self.launch.block,
                SpecialReg::NCtaIdX => self.launch.grid,
                SpecialReg::LaneId => tid % 32,
                SpecialReg::WarpId => tid / 32,
            }),
        }
    }

    /// Interleaved local-memory address of `word` for a thread, unique
    /// per (grid block, thread): warp accesses to one spill word coalesce
    /// into a single 128-byte line.
    fn local_addr(&self, grid_idx: u32, tid: u32, word: usize) -> u64 {
        (u64::from(grid_idx) << 32)
            | ((word as u64 * u64::from(self.launch.block) + u64::from(tid)) * 4)
    }

    /// Coalesce `addrs` (each expanded to `width` words) into unique
    /// cache-line transactions and issue them at `t`; returns the last
    /// completion cycle. Uses the recycled line buffer — no allocation.
    fn coalesced_access(&mut self, addrs: &[u64], width: Width, t: u64) -> u64 {
        let mut lines = std::mem::take(&mut self.scratch.lines);
        self.mem.coalesce_into(
            addrs.iter().flat_map(|&a| (0..width.words()).map(move |k| a + u64::from(k) * 4)),
            &mut lines,
        );
        let mut completions = t;
        for &line in &lines {
            completions = completions.max(self.mem.access(line, t, MemKind::Global));
        }
        self.scratch.lines = lines;
        completions
    }

    /// Shared-memory bank-conflict degree of a warp access: 32 banks of
    /// 4 bytes; lanes reading the *same* word broadcast (no conflict),
    /// so count distinct words per bank. Updates the conflict counters.
    fn bank_degree(&mut self, addrs: &[u64], width: Width) -> u64 {
        let words = &mut self.scratch.words;
        words.clear();
        words.extend(
            addrs.iter().flat_map(|&a| (0..width.words()).map(move |k| a / 4 + u64::from(k))),
        );
        words.sort_unstable();
        words.dedup();
        let mut per_bank = [0u32; 32];
        for w in words.iter() {
            per_bank[(w % 32) as usize] += 1;
        }
        let degree = u64::from(per_bank.iter().copied().max().unwrap_or(1)).max(1);
        self.stats.shared_mem_accesses += degree;
        self.stats.bank_conflict_extra += (degree - 1) * 2;
        degree
    }

    #[allow(clippy::too_many_lines)]
    fn step_warp(
        &mut self,
        warps: &mut [Warp],
        wi: usize,
        ctas: &mut [Cta],
        t: u64,
    ) -> Result<(), SimError> {
        let w = &mut warps[wi];
        // Whatever happens below, the warp's own `next_free` wait is an
        // issue-pipeline cost; data and barrier waits are tracked apart.
        w.free_reason = Wait::Pipeline;
        let frame_idx = w.frames.len() - 1;
        let (func_id, tos) = {
            let f = &w.frames[frame_idx];
            (f.func, *f.stack.last().expect("path"))
        };
        // `prog` is a copied reference — borrows of the decoded tables
        // below do not pin `self`.
        let prog = self.prog;
        let df = &prog.dec[func_id.0 as usize];
        let mask = tos.mask & w.alive;
        if mask == 0 {
            // All lanes of this path have exited: discard the path and
            // unwind empty frames. Never happens for the bottom entry of
            // a warp with live lanes.
            let stack = &mut w.frames[frame_idx].stack;
            stack.pop();
            if stack.is_empty() {
                if w.frames.len() > 1 {
                    w.frames.pop();
                } else {
                    w.done = true;
                }
            }
            w.next_free = t + 1;
            return Ok(());
        }
        let warp_base_tid = w.warp_in_block * 32;

        if tos.idx >= df.block_len(tos.block) {
            // ---- terminator ----
            w.next_free = t + 1;
            self.last_event = self.last_event.max(t + 1);
            match *df.term(tos.block) {
                DecTerm::Jump(target) => {
                    self.transfer(w, frame_idx, target);
                }
                DecTerm::Branch { pred, neg, then_bb, else_bb, reconv } => {
                    let t_mask = match &ctas[w.cta].lanes {
                        LaneArena::Aos(lanes) => {
                            let mut tm = 0u32;
                            for lane in 0..32u32 {
                                if mask & (1 << lane) != 0 {
                                    let p = lanes[(warp_base_tid + lane) as usize].preds
                                        [pred.0 as usize]
                                        ^ neg;
                                    if p {
                                        tm |= 1 << lane;
                                    }
                                }
                            }
                            tm
                        }
                        // One mask op instead of 32 bool loads.
                        LaneArena::Soa(soa) => {
                            let pb = soa.pred_bits(w.warp_in_block, pred);
                            mask & if neg { !pb } else { pb }
                        }
                    };
                    let nt_mask = mask & !t_mask;
                    if nt_mask == 0 {
                        self.transfer(w, frame_idx, then_bb);
                    } else if t_mask == 0 {
                        self.transfer(w, frame_idx, else_bb);
                    } else {
                        let stack = &mut w.frames[frame_idx].stack;
                        // Current entry becomes the reconvergence entry.
                        let top = stack.last_mut().expect("path");
                        if let Some(r) = reconv {
                            top.block = r;
                            top.idx = 0;
                            // Pending else-path, then taken path on top.
                            if Some(else_bb) != reconv {
                                stack.push(SimtEntry {
                                    block: else_bb,
                                    idx: 0,
                                    reconv,
                                    mask: nt_mask,
                                });
                            }
                            if Some(then_bb) != reconv {
                                stack.push(SimtEntry {
                                    block: then_bb,
                                    idx: 0,
                                    reconv,
                                    mask: t_mask,
                                });
                            }
                        } else {
                            // Paths never reconverge (both exit): replace
                            // the entry with two independent paths.
                            stack.pop();
                            stack.push(SimtEntry {
                                block: else_bb,
                                idx: 0,
                                reconv: None,
                                mask: nt_mask,
                            });
                            stack.push(SimtEntry {
                                block: then_bb,
                                idx: 0,
                                reconv: None,
                                mask: t_mask,
                            });
                        }
                    }
                }
                DecTerm::Ret => {
                    w.frames.pop();
                    debug_assert!(!w.frames.is_empty(), "ret from kernel frame");
                }
                DecTerm::Exit => {
                    w.alive &= !mask;
                    let stack = &mut w.frames[frame_idx].stack;
                    stack.pop();
                    if stack.is_empty() || w.alive == 0 {
                        w.done = true;
                    }
                }
            }
            return Ok(());
        }

        // ---- instruction ----
        let inst = df.inst(tos.block, tos.idx);
        w.frames[frame_idx].stack.last_mut().expect("path").idx += 1;
        self.stats.warp_insts += 1;
        self.stats.thread_insts += u64::from(mask.count_ones());
        if inst.is_stack_move {
            self.stats.stack_moves += 1;
        }

        // Timing: operand readiness is folded into scheduling; compute
        // the completion latency here. Private smem-slot word counts are
        // static, precomputed at decode time.
        let mut issue_cost = 1u64;
        let mut result_latency = self.dev.alu_latency;
        if inst.smem_words > 0 {
            self.stats.smem_slot_accesses +=
                u64::from(inst.smem_words) * u64::from(mask.count_ones());
            result_latency += self.dev.smem_latency;
        }

        // Local-slot operand traffic (spills): one transaction per word,
        // over the predecoded spill-source list.
        let cta_grid = ctas[w.cta].grid_idx;
        let mut local_ready_max = t;
        if inst.op != Opcode::Bar {
            for l in inst.local_srcs() {
                for k in 0..l.width.words() {
                    let addr = self.local_addr(cta_grid, warp_base_tid, usize::from(l.slot + k));
                    let c = self.mem.access(addr, t, MemKind::Local);
                    self.stats.local_transactions += 1;
                    local_ready_max = local_ready_max.max(c);
                }
            }
        }

        let ctx = WarpCtx {
            warp: w.warp_in_block,
            warp_base_tid,
            block: self.launch.block,
            grid: self.launch.grid,
            cta_grid,
            params: self.params,
        };
        match inst.op {
            Opcode::Bar => {
                w.at_barrier = true;
                // The CTA releases `barrier_latency` cycles after the
                // last warp arrives (bar.sync pipeline flush); the gap
                // is attributed to the barrier stall bucket.
                w.barrier_release = t + self.dev.barrier_latency.max(1);
                w.next_free = t + 1;
                self.stats.barriers += 1;
                self.last_event = self.last_event.max(w.barrier_release);
                Ok(())
            }
            Opcode::Call(callee) => {
                w.frames.push(Frame {
                    func: callee,
                    stack: vec![SimtEntry { block: BlockId(0), idx: 0, reconv: None, mask }],
                });
                w.next_free = t + 1;
                self.last_event = self.last_event.max(t + 1);
                Ok(())
            }
            Opcode::Ld { space, width, offset } => {
                // Phase 1: gather per-lane addresses into the recycled
                // scratch buffer (ascending lane order in both layouts).
                let mut completions = t;
                let mut addrs = std::mem::take(&mut self.scratch.addrs);
                addrs.clear();
                let Cta { lanes, shared, .. } = &mut ctas[w.cta];
                let soa_gather = match lanes {
                    LaneArena::Aos(lanes) => {
                        for lane in 0..32u32 {
                            if mask & (1 << lane) == 0 {
                                continue;
                            }
                            let tid = warp_base_tid + lane;
                            let lane_state = &lanes[tid as usize];
                            if let Some(p) = inst.pred {
                                if !(lane_state.preds[p.0 as usize] ^ inst.pred_neg) {
                                    continue;
                                }
                            }
                            let base =
                                self.operand(lane_state, &inst.srcs()[0], cta_grid, tid).as_i32();
                            addrs.push((i64::from(base) + i64::from(offset)) as u64);
                        }
                        None
                    }
                    LaneArena::Soa(soa) => {
                        let exec = soa.exec_mask(ctx.warp, mask, inst.pred, inst.pred_neg);
                        let mut base = WarpOperand::default();
                        soa.gather(&inst.srcs()[0], &ctx, &mut base);
                        let mut m = exec;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            addrs
                                .push((i64::from(base.w0(lane) as i32) + i64::from(offset)) as u64);
                            m &= m - 1;
                        }
                        Some((exec, base))
                    }
                };
                // Phase 2: timing over the gathered addresses.
                match space {
                    MemSpace::Global => {
                        completions = completions.max(self.coalesced_access(&addrs, width, t));
                        result_latency = 0; // completion-driven
                    }
                    MemSpace::Shared => {
                        let degree = self.bank_degree(&addrs, width);
                        completions = completions.max(t + self.dev.smem_latency + (degree - 1) * 2);
                        result_latency = 0;
                        issue_cost = degree.min(8);
                    }
                    MemSpace::Local => {
                        for &a in &addrs {
                            let c = self.mem.access(a, t, MemKind::Local);
                            completions = completions.max(c);
                            self.stats.local_transactions += 1;
                        }
                        result_latency = 0;
                    }
                }
                self.scratch.addrs = addrs;
                // Phase 3: execute values (ascending lane order).
                match lanes {
                    LaneArena::Aos(lanes) => {
                        for lane in 0..32u32 {
                            if mask & (1 << lane) == 0 {
                                continue;
                            }
                            let tid = warp_base_tid + lane;
                            if let Some(p) = inst.pred {
                                if !(lanes[tid as usize].preds[p.0 as usize] ^ inst.pred_neg) {
                                    continue;
                                }
                            }
                            let base = self
                                .operand(&lanes[tid as usize], &inst.srcs()[0], cta_grid, tid)
                                .as_i32();
                            let addr = (i64::from(base) + i64::from(offset)) as u64;
                            let v = match space {
                                MemSpace::Global => read_bytes(self.global, addr, width)
                                    .ok_or(SimError::OutOfBounds { space, addr })?,
                                MemSpace::Shared => read_bytes(shared, addr, width)
                                    .ok_or(SimError::OutOfBounds { space, addr })?,
                                MemSpace::Local => {
                                    read_bytes(&lanes[tid as usize].local, addr, width)
                                        .ok_or(SimError::OutOfBounds { space, addr })?
                                }
                            };
                            if let Some(d) = inst.dst {
                                Self::write_loc(&mut lanes[tid as usize], d, v);
                            }
                        }
                    }
                    LaneArena::Soa(soa) => {
                        let (exec, base) = soa_gather.expect("soa gather state");
                        let mut m = exec;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            let tid = warp_base_tid + lane as u32;
                            let addr = (i64::from(base.w0(lane) as i32) + i64::from(offset)) as u64;
                            let v = match space {
                                MemSpace::Global => read_bytes(self.global, addr, width)
                                    .ok_or(SimError::OutOfBounds { space, addr })?,
                                MemSpace::Shared => read_bytes(shared, addr, width)
                                    .ok_or(SimError::OutOfBounds { space, addr })?,
                                MemSpace::Local => read_bytes(soa.local_region(tid), addr, width)
                                    .ok_or(SimError::OutOfBounds { space, addr })?,
                            };
                            if let Some(d) = inst.dst {
                                soa.write_val(d, ctx.warp, tid, v);
                            }
                            m &= m - 1;
                        }
                    }
                }
                let done = completions.max(local_ready_max) + result_latency;
                if let Some(d) = inst.dst {
                    let dl = handle_local_dst(self, d, cta_grid, warp_base_tid, done);
                    self.set_loc_ready(w, d, dl, true);
                }
                w.next_free = t + issue_cost;
                self.last_event = self.last_event.max(done);
                Ok(())
            }
            Opcode::St { space, width, offset } => {
                let mut addrs = std::mem::take(&mut self.scratch.addrs);
                addrs.clear();
                let Cta { lanes, shared, .. } = &mut ctas[w.cta];
                match lanes {
                    LaneArena::Aos(lanes) => {
                        for lane in 0..32u32 {
                            if mask & (1 << lane) == 0 {
                                continue;
                            }
                            let tid = warp_base_tid + lane;
                            let lane_state = &lanes[tid as usize];
                            if let Some(p) = inst.pred {
                                if !(lane_state.preds[p.0 as usize] ^ inst.pred_neg) {
                                    continue;
                                }
                            }
                            let base =
                                self.operand(lane_state, &inst.srcs()[0], cta_grid, tid).as_i32();
                            let addr = (i64::from(base) + i64::from(offset)) as u64;
                            let v = self.operand(lane_state, &inst.srcs()[1], cta_grid, tid);
                            match space {
                                MemSpace::Global => write_bytes(self.global, addr, width, v)
                                    .ok_or(SimError::OutOfBounds { space, addr })?,
                                MemSpace::Shared => write_bytes(shared, addr, width, v)
                                    .ok_or(SimError::OutOfBounds { space, addr })?,
                                MemSpace::Local => {
                                    write_bytes(&mut lanes[tid as usize].local, addr, width, v)
                                        .ok_or(SimError::OutOfBounds { space, addr })?
                                }
                            }
                            addrs.push(addr);
                        }
                    }
                    LaneArena::Soa(soa) => {
                        // Gather base + value warp-wide, then write in
                        // ascending lane order. Safe to pre-gather: store
                        // targets (global/shared/lane-local bytes) are
                        // never operand sources, and each lane's write
                        // happens after its own reads.
                        let exec = soa.exec_mask(ctx.warp, mask, inst.pred, inst.pred_neg);
                        let mut base = WarpOperand::default();
                        let mut value = WarpOperand::default();
                        soa.gather(&inst.srcs()[0], &ctx, &mut base);
                        soa.gather(&inst.srcs()[1], &ctx, &mut value);
                        let mut m = exec;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            let tid = warp_base_tid + lane as u32;
                            let addr = (i64::from(base.w0(lane) as i32) + i64::from(offset)) as u64;
                            let v = value.val(lane);
                            match space {
                                MemSpace::Global => write_bytes(self.global, addr, width, v)
                                    .ok_or(SimError::OutOfBounds { space, addr })?,
                                MemSpace::Shared => write_bytes(shared, addr, width, v)
                                    .ok_or(SimError::OutOfBounds { space, addr })?,
                                MemSpace::Local => {
                                    write_bytes(soa.local_region_mut(tid), addr, width, v)
                                        .ok_or(SimError::OutOfBounds { space, addr })?
                                }
                            }
                            addrs.push(addr);
                            m &= m - 1;
                        }
                    }
                }
                // Bandwidth accounting (fire-and-forget stores).
                match space {
                    MemSpace::Global => {
                        self.coalesced_access(&addrs, width, t);
                    }
                    MemSpace::Shared => {
                        let degree = self.bank_degree(&addrs, width);
                        issue_cost = degree.min(8);
                    }
                    MemSpace::Local => {
                        for &a in &addrs {
                            self.mem.access(a, t, MemKind::Local);
                            self.stats.local_transactions += 1;
                        }
                    }
                }
                self.scratch.addrs = addrs;
                w.next_free = t + issue_cost;
                self.last_event = self.last_event.max(t + issue_cost);
                Ok(())
            }
            Opcode::ISetp(_) | Opcode::FSetp(_) => {
                match &mut ctas[w.cta].lanes {
                    LaneArena::Aos(lanes) => {
                        for lane in 0..32u32 {
                            if mask & (1 << lane) == 0 {
                                continue;
                            }
                            let tid = warp_base_tid + lane;
                            let lane_state = &lanes[tid as usize];
                            if let Some(p) = inst.pred {
                                if !(lane_state.preds[p.0 as usize] ^ inst.pred_neg) {
                                    continue;
                                }
                            }
                            let s: Vec<Val> = inst
                                .srcs()
                                .iter()
                                .map(|o| self.operand(lane_state, o, cta_grid, tid))
                                .collect();
                            let r = eval_setp(&inst.op, &s);
                            let p = inst.pdst.expect("setp pdst");
                            lanes[tid as usize].preds[p.0 as usize] = r;
                        }
                    }
                    LaneArena::Soa(soa) => {
                        // Gather both operands, compare all 32 lanes
                        // (compares are pure — inactive lanes' results
                        // are masked out by the merge), pack into one
                        // predicate-mask merge.
                        debug_assert_eq!(inst.srcs().len(), 2, "setp has two sources");
                        let exec = soa.exec_mask(ctx.warp, mask, inst.pred, inst.pred_neg);
                        let Scratch { ops, .. } = &mut self.scratch;
                        soa.gather(&inst.srcs()[0], &ctx, &mut ops[0]);
                        soa.gather(&inst.srcs()[1], &ctx, &mut ops[1]);
                        let mut bits = 0u32;
                        for lane in 0..32 {
                            if eval_setp(&inst.op, &[ops[0].val(lane), ops[1].val(lane)]) {
                                bits |= 1 << lane;
                            }
                        }
                        let p = inst.pdst.expect("setp pdst");
                        soa.merge_pred(ctx.warp, p, bits, exec);
                    }
                }
                let done = local_ready_max.max(t) + result_latency;
                if let Some(p) = inst.pdst {
                    w.pred_ready[p.0 as usize] = done;
                }
                w.next_free = t + issue_cost;
                self.last_event = self.last_event.max(done);
                Ok(())
            }
            _ => {
                // ALU / Mov / Sel / conversions (incl. Nop).
                match &mut ctas[w.cta].lanes {
                    LaneArena::Aos(lanes) => {
                        for lane in 0..32u32 {
                            if mask & (1 << lane) == 0 {
                                continue;
                            }
                            let tid = warp_base_tid + lane;
                            let lane_state = &lanes[tid as usize];
                            if let Some(p) = inst.pred {
                                if !(lane_state.preds[p.0 as usize] ^ inst.pred_neg) {
                                    continue;
                                }
                            }
                            if inst.op == Opcode::Nop {
                                continue;
                            }
                            let s: Vec<Val> = inst
                                .srcs()
                                .iter()
                                .map(|o| self.operand(lane_state, o, cta_grid, tid))
                                .collect();
                            let v = if inst.op == Opcode::Sel {
                                let p = inst.sel_pred.expect("sel pred");
                                if lane_state.preds[p.0 as usize] {
                                    s[0]
                                } else {
                                    s[1]
                                }
                            } else {
                                eval_alu(&inst.op, &s)
                            };
                            if let Some(d) = inst.dst {
                                Self::write_loc(&mut lanes[tid as usize], d, v);
                            }
                        }
                    }
                    LaneArena::Soa(soa) => {
                        let exec = soa.exec_mask(ctx.warp, mask, inst.pred, inst.pred_neg);
                        if inst.op != Opcode::Nop && exec != 0 {
                            let srcs = inst.srcs();
                            let Scratch { ops, out, .. } = &mut self.scratch;
                            for (k, s) in srcs.iter().enumerate() {
                                soa.gather(s, &ctx, &mut ops[k]);
                            }
                            if inst.op == Opcode::Sel {
                                let p = inst.sel_pred.expect("sel pred");
                                let pb = soa.pred_bits(ctx.warp, p);
                                out.words = 4;
                                for lane in 0..32 {
                                    let v = if pb & (1 << lane) != 0 {
                                        ops[0].val(lane)
                                    } else {
                                        ops[1].val(lane)
                                    };
                                    for j in 0..4 {
                                        out.planes[j][lane] = v.w[j];
                                    }
                                }
                            } else {
                                warp_alu(&inst.op, &ops[..srcs.len()], out);
                            }
                            if let Some(d) = inst.dst {
                                soa.scatter(d, &ctx, exec, out);
                            }
                        }
                    }
                }
                let done = local_ready_max.max(t) + result_latency;
                if let Some(d) = inst.dst {
                    let dl = handle_local_dst(self, d, cta_grid, warp_base_tid, done);
                    self.set_loc_ready(w, d, dl, false);
                }
                w.next_free = t + issue_cost;
                self.last_event = self.last_event.max(done);
                Ok(())
            }
        }
    }

    /// Jump / fall-through transfer with reconvergence-pop handling.
    fn transfer(&self, w: &mut Warp, frame_idx: usize, target: BlockId) {
        let stack = &mut w.frames[frame_idx].stack;
        let tos = stack.last().expect("path");
        if tos.reconv == Some(target) {
            stack.pop();
            debug_assert!(!stack.is_empty(), "reconvergence under empty stack");
        } else {
            let tos = stack.last_mut().expect("path");
            tos.block = target;
            tos.idx = 0;
        }
    }
}

/// Store traffic for a local-memory destination; returns the readiness.
fn handle_local_dst(
    me: &mut SmEngine,
    d: MLoc,
    grid_idx: u32,
    warp_base_tid: u32,
    done: u64,
) -> u64 {
    if d.place != Place::Local {
        return done;
    }
    let mut c = done;
    for k in 0..d.width.words() {
        let addr = me.local_addr(grid_idx, warp_base_tid, usize::from(d.slot + k));
        let a = me.mem.access(addr, done, MemKind::Local);
        me.stats.local_transactions += 1;
        c = c.max(a);
    }
    c
}

fn read_bytes(buf: &[u8], addr: u64, width: Width) -> Option<Val> {
    let n = width.bytes() as usize;
    let a = addr as usize;
    if a.checked_add(n)? > buf.len() {
        return None;
    }
    let mut v = Val::default();
    for (i, chunk) in buf[a..a + n].chunks(4).enumerate() {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        v.w[i] = u32::from_le_bytes(w);
    }
    Some(v)
}

fn write_bytes(buf: &mut [u8], addr: u64, width: Width, v: Val) -> Option<()> {
    let n = width.bytes() as usize;
    let a = addr as usize;
    if a.checked_add(n)? > buf.len() {
        return None;
    }
    for i in 0..width.words() as usize {
        let bytes = v.w[i].to_le_bytes();
        let take = (n - i * 4).min(4);
        buf[a + i * 4..a + i * 4 + take].copy_from_slice(&bytes[..take]);
    }
    Some(())
}
