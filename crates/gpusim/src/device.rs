//! Device descriptors for the two GPUs the paper evaluates on.

use serde::{Deserialize, Serialize};

/// L1/shared-memory split of the 64 KB on-chip SRAM (§4, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheConfig {
    /// "Small cache": 16 KB L1, 48 KB shared memory (the paper's default).
    SmallCache,
    /// "Large cache": 48 KB L1, 16 KB shared memory.
    LargeCache,
}

impl CacheConfig {
    /// L1 capacity in bytes.
    pub fn l1_bytes(self) -> u32 {
        match self {
            CacheConfig::SmallCache => 16 * 1024,
            CacheConfig::LargeCache => 48 * 1024,
        }
    }

    /// Shared-memory capacity in bytes.
    pub fn smem_bytes(self) -> u32 {
        match self {
            CacheConfig::SmallCache => 48 * 1024,
            CacheConfig::LargeCache => 16 * 1024,
        }
    }
}

/// Microarchitectural description of a GPU.
///
/// Two factory functions, [`DeviceSpec::gtx680`] (Kepler) and
/// [`DeviceSpec::c2075`] (Fermi), encode the platforms from the paper's
/// evaluation section; every structural number (SMs, registers, warp
/// limits) matches the text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    pub name: String,
    /// Streaming multiprocessors.
    pub num_sms: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Register allocation granularity in registers per warp (the
    /// occupancy-calculator rounding rule).
    pub reg_alloc_granularity: u32,
    /// Hardware cap on registers per thread.
    pub max_regs_per_thread: u16,
    /// Warp width (always 32 on the modeled devices).
    pub warp_size: u32,
    /// Warp schedulers per SM (issue slots per cycle).
    pub schedulers_per_sm: u32,
    /// L1 ↔ shared-memory split.
    pub cache_config: CacheConfig,
    /// Whether L1 caches *global* loads (Fermi: yes; Kepler: local only).
    pub l1_caches_global: bool,
    /// L1 line size in bytes.
    pub l1_line: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Per-SM slice of the L2 in bytes.
    pub l2_slice_bytes: u32,
    /// L2 line size in bytes.
    pub l2_line: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Latencies in core cycles.
    pub alu_latency: u64,
    pub smem_latency: u64,
    pub l1_latency: u64,
    pub l2_latency: u64,
    pub dram_latency: u64,
    /// DRAM service time per 128-byte transaction per SM share, cycles.
    pub dram_cycles_per_transaction: u64,
    /// `bar.sync` pipeline-flush cost: cycles between the last warp
    /// arriving at a CTA barrier and the released warps issuing again.
    pub barrier_latency: u64,
}

impl DeviceSpec {
    /// NVIDIA GTX 680 (Kepler GK104): 8 SMs, 65536 registers/SM, 64
    /// warps/SM, 2048 threads/SM, 64 KB L1+shared.
    pub fn gtx680() -> DeviceSpec {
        DeviceSpec {
            name: "GTX680".to_string(),
            num_sms: 8,
            regs_per_sm: 65536,
            max_warps_per_sm: 64,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            reg_alloc_granularity: 256,
            max_regs_per_thread: 63,
            warp_size: 32,
            schedulers_per_sm: 4,
            cache_config: CacheConfig::SmallCache,
            l1_caches_global: false,
            l1_line: 128,
            l1_ways: 4,
            l2_slice_bytes: 512 * 1024 / 8,
            l2_line: 128,
            l2_ways: 8,
            alu_latency: 10,
            smem_latency: 26,
            l1_latency: 30,
            l2_latency: 175,
            dram_latency: 380,
            dram_cycles_per_transaction: 6,
            barrier_latency: 24,
        }
    }

    /// NVIDIA Tesla C2075 (Fermi GF110): 14 SMs, 32768 registers/SM, 48
    /// warps/SM, 1536 threads/SM, 64 KB L1+shared, L1 caches global and
    /// local memory.
    pub fn c2075() -> DeviceSpec {
        DeviceSpec {
            name: "C2075".to_string(),
            num_sms: 14,
            regs_per_sm: 32768,
            max_warps_per_sm: 48,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            reg_alloc_granularity: 64,
            max_regs_per_thread: 63,
            warp_size: 32,
            schedulers_per_sm: 2,
            cache_config: CacheConfig::SmallCache,
            l1_caches_global: true,
            l1_line: 128,
            l1_ways: 4,
            l2_slice_bytes: 768 * 1024 / 14,
            l2_line: 128,
            l2_ways: 8,
            alu_latency: 18,
            smem_latency: 30,
            l1_latency: 36,
            l2_latency: 190,
            dram_latency: 420,
            dram_cycles_per_transaction: 14,
            barrier_latency: 30,
        }
    }

    /// The same device with a different L1/shared split (Table 3).
    pub fn with_cache_config(&self, cfg: CacheConfig) -> DeviceSpec {
        DeviceSpec { cache_config: cfg, ..self.clone() }
    }

    /// Shared-memory bytes available per SM under the current config.
    pub fn smem_per_sm(&self) -> u32 {
        self.cache_config.smem_bytes()
    }

    /// L1 bytes per SM under the current config.
    pub fn l1_per_sm(&self) -> u32 {
        self.cache_config.l1_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_numbers() {
        let g = DeviceSpec::gtx680();
        assert_eq!(g.num_sms, 8);
        assert_eq!(g.regs_per_sm, 65536);
        assert_eq!(g.max_warps_per_sm, 64);
        assert_eq!(g.max_threads_per_sm, 2048);
        let c = DeviceSpec::c2075();
        assert_eq!(c.num_sms, 14);
        assert_eq!(c.regs_per_sm, 32768);
        assert_eq!(c.max_warps_per_sm, 48);
        assert_eq!(c.max_threads_per_sm, 1536);
        assert!(c.l1_caches_global && !g.l1_caches_global);
    }

    #[test]
    fn cache_configs_split_64kb() {
        for cfg in [CacheConfig::SmallCache, CacheConfig::LargeCache] {
            assert_eq!(cfg.l1_bytes() + cfg.smem_bytes(), 64 * 1024);
        }
        let g = DeviceSpec::gtx680().with_cache_config(CacheConfig::LargeCache);
        assert_eq!(g.smem_per_sm(), 16 * 1024);
        assert_eq!(g.l1_per_sm(), 48 * 1024);
    }
}
