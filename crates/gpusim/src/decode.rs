//! Predecoded machine code: flat per-function side tables the engine
//! executes from instead of the serialized [`MModule`] form.
//!
//! [`LinkedProgram::new`](crate::exec::LinkedProgram::new) decodes each
//! [`MInst`]/[`Terminator`] exactly once per launch. The decoded form is
//! `Copy`, fixed-size, and carries everything the per-step hot paths
//! used to re-derive per issue:
//!
//! * sources in a fixed inline array (no `Vec` indirection, no per-lane
//!   `Vec<Val>` collects downstream);
//! * the slot operands (`loc_srcs`) in source order, pre-extracted for
//!   the scheduler's readiness scan;
//! * the local-memory (spill) sources, pre-extracted for the spill
//!   traffic loop;
//! * the static private-shared-memory word count (a pure function of
//!   slot indices and the module's register boundary);
//! * the terminator as a `Copy` enum with the SIMT reconvergence target
//!   (immediate post-dominator) folded into `Branch`, so the engine
//!   neither clones terminators nor consults the ipdom table per step.
//!
//! Decoding is a faithful re-encoding — it cannot change behavior, and
//! both lane layouts ([`LaneLayout`](crate::exec::LaneLayout)) execute
//! from the same tables.

use orion_kir::function::Terminator;
use orion_kir::inst::Opcode;
use orion_kir::mir::{MFunction, MInst, MLoc, MModule, MOperand, Place};
use orion_kir::types::{BlockId, PredReg, Width};

/// Maximum machine-instruction source count (`IMad`/`FFma` use three;
/// one spare word keeps the layout future-proof).
pub(crate) const MAX_SRCS: usize = 4;

/// A machine instruction, decoded for execution.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecInst {
    pub op: Opcode,
    pub dst: Option<MLoc>,
    pub pdst: Option<PredReg>,
    pub pred: Option<PredReg>,
    pub pred_neg: bool,
    pub sel_pred: Option<PredReg>,
    pub is_stack_move: bool,
    /// Sources, `srcs[..nsrcs]` valid (padding is `Imm(0)`).
    srcs: [MOperand; MAX_SRCS],
    nsrcs: u8,
    /// Slot sources in source order, `loc_srcs[..n_loc_srcs]` valid —
    /// the readiness scan's operand walk, pre-extracted.
    loc_srcs: [MLoc; MAX_SRCS],
    n_loc_srcs: u8,
    /// Local-place (spill) sources in source order.
    local_srcs: [MLoc; MAX_SRCS],
    n_local_srcs: u8,
    /// Static words of `srcs` + `dst` that live in the private
    /// shared-memory region (absolute slot ≥ register budget).
    pub smem_words: u32,
}

impl DecInst {
    /// The live sources.
    #[inline]
    pub fn srcs(&self) -> &[MOperand] {
        &self.srcs[..usize::from(self.nsrcs)]
    }

    /// Slot operands among the sources, in source order.
    #[inline]
    pub fn loc_srcs(&self) -> &[MLoc] {
        &self.loc_srcs[..usize::from(self.n_loc_srcs)]
    }

    /// Local-memory (spill) operands among the sources, in source order.
    #[inline]
    pub fn local_srcs(&self) -> &[MLoc] {
        &self.local_srcs[..usize::from(self.n_local_srcs)]
    }
}

/// A terminator, decoded: `Copy`, with the divergence reconvergence
/// point resolved at decode time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DecTerm {
    Jump(BlockId),
    Branch {
        pred: PredReg,
        neg: bool,
        then_bb: BlockId,
        else_bb: BlockId,
        /// Immediate post-dominator of the branch block (`None` when the
        /// paths never reconverge — both exit).
        reconv: Option<BlockId>,
    },
    Ret,
    Exit,
}

/// One function's flat decoded tables.
#[derive(Debug)]
pub(crate) struct DecodedFunc {
    /// All blocks' instructions, concatenated in block order.
    insts: Vec<DecInst>,
    /// Per-block `(start, len)` into `insts`.
    ranges: Vec<(u32, u32)>,
    /// Per-block decoded terminator.
    terms: Vec<DecTerm>,
}

impl DecodedFunc {
    /// Decode `f`, resolving reconvergence targets from `ipdom` and the
    /// register/shared-memory boundary from `regs_per_thread`.
    pub fn new(f: &MFunction, ipdom: &[Option<BlockId>], regs_per_thread: u16) -> Self {
        let mut insts = Vec::with_capacity(f.num_insts());
        let mut ranges = Vec::with_capacity(f.blocks.len());
        let mut terms = Vec::with_capacity(f.blocks.len());
        for (bi, b) in f.blocks.iter().enumerate() {
            let start = insts.len() as u32;
            insts.extend(b.insts.iter().map(|i| decode_inst(i, regs_per_thread)));
            ranges.push((start, b.insts.len() as u32));
            terms.push(match &b.term {
                Terminator::Jump(t) => DecTerm::Jump(*t),
                Terminator::Branch { pred, neg, then_bb, else_bb } => DecTerm::Branch {
                    pred: *pred,
                    neg: *neg,
                    then_bb: *then_bb,
                    else_bb: *else_bb,
                    reconv: ipdom.get(bi).copied().flatten(),
                },
                Terminator::Ret => DecTerm::Ret,
                Terminator::Exit => DecTerm::Exit,
            });
        }
        DecodedFunc { insts, ranges, terms }
    }

    /// Number of instructions in `block`.
    #[inline]
    pub fn block_len(&self, block: BlockId) -> usize {
        self.ranges[block.0 as usize].1 as usize
    }

    /// Instruction `idx` of `block`.
    #[inline]
    pub fn inst(&self, block: BlockId, idx: usize) -> &DecInst {
        let (start, _) = self.ranges[block.0 as usize];
        &self.insts[start as usize + idx]
    }

    /// The decoded terminator of `block`.
    #[inline]
    pub fn term(&self, block: BlockId) -> &DecTerm {
        &self.terms[block.0 as usize]
    }
}

/// Words of `l` that fall in the private shared-memory region: on-chip
/// slots at or above the register boundary (decided per 32-bit word so
/// wide values may straddle the boundary).
fn smem_words_of(l: MLoc, regs_per_thread: u16) -> u32 {
    if l.place != Place::Onchip {
        return 0;
    }
    (0..l.width.words()).filter(|k| l.slot + k >= regs_per_thread).count() as u32
}

fn decode_inst(i: &MInst, regs_per_thread: u16) -> DecInst {
    const PAD_OP: MOperand = MOperand::Imm(0);
    const PAD_LOC: MLoc = MLoc { place: Place::Onchip, slot: 0, width: Width::W32 };
    assert!(i.srcs.len() <= MAX_SRCS, "machine instruction with {} sources", i.srcs.len());
    let mut srcs = [PAD_OP; MAX_SRCS];
    let mut loc_srcs = [PAD_LOC; MAX_SRCS];
    let mut local_srcs = [PAD_LOC; MAX_SRCS];
    let mut n_loc = 0usize;
    let mut n_local = 0usize;
    let mut smem = 0u32;
    for (k, s) in i.srcs.iter().enumerate() {
        srcs[k] = *s;
        if let MOperand::Loc(l) = s {
            loc_srcs[n_loc] = *l;
            n_loc += 1;
            if l.place == Place::Local {
                local_srcs[n_local] = *l;
                n_local += 1;
            }
            smem += smem_words_of(*l, regs_per_thread);
        }
    }
    if let Some(d) = i.dst {
        smem += smem_words_of(d, regs_per_thread);
    }
    DecInst {
        op: i.op,
        dst: i.dst,
        pdst: i.pdst,
        pred: i.pred,
        pred_neg: i.pred_neg,
        sel_pred: i.sel_pred,
        is_stack_move: i.is_stack_move,
        srcs,
        nsrcs: i.srcs.len() as u8,
        loc_srcs,
        n_loc_srcs: n_loc as u8,
        local_srcs,
        n_local_srcs: n_local as u8,
        smem_words: smem,
    }
}

/// Decode every function of `module` against its per-function ipdom
/// tables.
pub(crate) fn decode_module(module: &MModule, ipdom: &[Vec<Option<BlockId>>]) -> Vec<DecodedFunc> {
    module
        .funcs
        .iter()
        .zip(ipdom)
        .map(|(f, ip)| DecodedFunc::new(f, ip, module.regs_per_thread))
        .collect()
}
