//! Deterministic, seedable fault injection for the simulator.
//!
//! The paper's runtime adaptation (§3.4, Figure 9) assumes every kernel
//! invocation launches successfully and every timing sample is
//! noise-free. Real drivers are not so kind: launches fail transiently,
//! device resources shrink under contention, kernels hang, and timers
//! jitter. This module injects exactly those failure modes into
//! [`crate::sim::run_launch_faulty`] so the resilient runtime
//! (`orion-core`) can be exercised — and regression-tested — under
//! chaos.
//!
//! # Gating
//!
//! Injection is double-gated, mirroring `orion-telemetry`:
//!
//! * **Compile time** — the `faults` cargo feature. Without it,
//!   [`FaultInjector::draw`] always returns [`LaunchFaults::NONE`] and
//!   the injection hooks in the launch path fold to nothing; production
//!   builds carry no chaos code on the hot path.
//! * **Run time** — an injector is only consulted when the caller
//!   explicitly passes one to `run_launch_faulty`. The plain
//!   [`crate::sim::run_launch`]/[`crate::sim::run_launch_opts`] entry
//!   points never inject.
//!
//! # Determinism
//!
//! Every fault decision is a pure function of `(plan.seed, launch
//! index)` via splitmix64, so a chaos run replays bit-identically for a
//! given plan regardless of scheduling: the injector's only mutable
//! state is a monotone launch counter and the fault tally.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Whether the `faults` cargo feature was compiled into this build of
/// the simulator. Downstream crates (the chaos bench, its tests) branch
/// on this rather than on their *own* feature flags, which may disagree
/// with the simulator's under cargo feature unification.
pub const INJECTION_COMPILED: bool = cfg!(feature = "faults");

/// Fault rates and magnitudes for one chaos scenario. All rates are
/// probabilities in `[0, 1]` applied independently per launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-launch fault stream.
    pub seed: u64,
    /// Probability a launch fails with a retryable
    /// [`crate::exec::SimError::TransientLaunchFailure`].
    pub transient_rate: f64,
    /// Probability the launch sees a perturbed device (half the register
    /// file and shared memory). If the kernel no longer fits, the launch
    /// fails with [`crate::exec::SimError::ResourceExceeded`]; if it
    /// still fits, the fault is absorbed silently — exactly like a real
    /// driver under transient resource contention.
    pub resource_rate: f64,
    /// Half-width of the uniform multiplicative timing jitter applied to
    /// the reported cycle count, as a fraction (`0.05` = ±5%). The
    /// simulation itself is untouched: only the *measurement* is noisy,
    /// modeling timer noise on real hardware.
    pub jitter_frac: f64,
    /// Probability a measurement is a gross outlier (scaled by
    /// [`FaultPlan::outlier_scale`]) — a context switch or ECC scrub
    /// landing mid-measurement.
    pub outlier_rate: f64,
    /// Multiplier applied to outlier measurements.
    pub outlier_scale: f64,
    /// Probability a launch hangs: one warp never becomes ready and the
    /// launch only terminates via the simulator watchdog
    /// ([`crate::exec::SimError::Watchdog`]).
    pub hang_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a control arm).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            resource_rate: 0.0,
            jitter_frac: 0.0,
            outlier_rate: 0.0,
            outlier_scale: 1.0,
            hang_rate: 0.0,
        }
    }

    /// The chaos-bench scenario: `rate` transient failures, `rate / 4`
    /// resource and hang faults, ±`jitter_frac` timing jitter and a 2%
    /// outlier rate at 8x.
    pub fn chaos(seed: u64, rate: f64, jitter_frac: f64) -> Self {
        FaultPlan {
            seed,
            transient_rate: rate,
            resource_rate: rate / 4.0,
            jitter_frac,
            outlier_rate: if jitter_frac > 0.0 { 0.02 } else { 0.0 },
            outlier_scale: 8.0,
            hang_rate: rate / 4.0,
        }
    }
}

/// Fault decisions for one launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchFaults {
    /// Fail the launch with a transient error before simulating.
    pub transient: bool,
    /// Perturb the device spec (may or may not surface as an error).
    pub resource: bool,
    /// Wedge one warp so the watchdog trips.
    pub hang: bool,
    /// Signed measurement perturbation in parts-per-million applied to
    /// the reported cycles (`0` = exact).
    pub jitter_ppm: i64,
    /// Scale the measurement by the plan's outlier factor.
    pub outlier: bool,
}

impl LaunchFaults {
    /// No faults (what disabled builds always draw).
    pub const NONE: LaunchFaults = LaunchFaults {
        transient: false,
        resource: false,
        hang: false,
        jitter_ppm: 0,
        outlier: false,
    };
}

/// Monotone tally of injected faults, for reconciliation against
/// telemetry counters and `BENCH_chaos.json`.
#[derive(Debug, Default)]
pub struct FaultStats {
    pub launches: AtomicU64,
    pub transient: AtomicU64,
    pub resource: AtomicU64,
    pub jitter: AtomicU64,
    pub outliers: AtomicU64,
    pub hangs: AtomicU64,
}

/// A plain-value snapshot of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSnapshot {
    pub launches: u64,
    pub transient: u64,
    pub resource: u64,
    pub jitter: u64,
    pub outliers: u64,
    pub hangs: u64,
}

impl FaultSnapshot {
    /// Total injected faults of any kind (jitter excluded — every launch
    /// with a nonzero jitter plan jitters).
    pub fn total_faults(&self) -> u64 {
        self.transient + self.resource + self.outliers + self.hangs
    }
}

/// The per-run fault source: a [`FaultPlan`] plus the launch counter and
/// tally. Shared by reference across launches; interior mutability keeps
/// the launch path `&self`.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    next_launch: AtomicU64,
    stats: FaultStats,
}

/// splitmix64 — tiny, seedable, and statistically fine for fault draws.
#[cfg_attr(not(feature = "faults"), allow(dead_code))]
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the stream.
#[cfg_attr(not(feature = "faults"), allow(dead_code))]
#[inline]
fn unit(state: &mut u64) -> f64 {
    // 53 random mantissa bits.
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, next_launch: AtomicU64::new(0), stats: FaultStats::default() }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draw the fault decisions for the next launch. Deterministic in
    /// `(plan.seed, launch index)`; a build without the `faults` feature
    /// always returns [`LaunchFaults::NONE`] and counts nothing.
    pub fn draw(&self) -> LaunchFaults {
        let idx = self.next_launch.fetch_add(1, Ordering::Relaxed);
        #[cfg(not(feature = "faults"))]
        {
            let _ = idx;
            LaunchFaults::NONE
        }
        #[cfg(feature = "faults")]
        {
            self.stats.launches.fetch_add(1, Ordering::Relaxed);
            // Decorrelate the per-launch stream from the seed stream.
            let mut s = self.plan.seed ^ idx.wrapping_mul(0xd134_2543_de82_ef95);
            let _ = splitmix64(&mut s); // burn one to mix the xor in
            let mut f = LaunchFaults::NONE;
            if unit(&mut s) < self.plan.transient_rate {
                f.transient = true;
            }
            if unit(&mut s) < self.plan.resource_rate {
                f.resource = true;
            }
            if unit(&mut s) < self.plan.hang_rate {
                f.hang = true;
            }
            if self.plan.jitter_frac > 0.0 {
                let u = unit(&mut s) * 2.0 - 1.0; // [-1, 1)
                f.jitter_ppm = (u * self.plan.jitter_frac * 1e6) as i64;
            }
            if unit(&mut s) < self.plan.outlier_rate {
                f.outlier = true;
            }
            // A launch that fails before running never produces a
            // measurement, so measurement faults are tallied only when
            // the launch can reach one. Tally launch faults in priority
            // order (transient masks the rest, matching the injection
            // order in the launch path).
            // Journal the injected fault kinds (typed, per launch) next
            // to the aggregate telemetry counters.
            let tally = |kind: &'static str| {
                orion_telemetry::counter("faults", kind, 1);
                if orion_telemetry::is_enabled() {
                    orion_telemetry::journal::record(
                        orion_telemetry::journal::JournalEvent::FaultInjected { kind, launch: idx },
                    );
                }
            };
            if f.transient {
                self.stats.transient.fetch_add(1, Ordering::Relaxed);
                tally("transient");
                f.resource = false;
                f.hang = false;
                f.jitter_ppm = 0;
                f.outlier = false;
            } else {
                if f.resource {
                    self.stats.resource.fetch_add(1, Ordering::Relaxed);
                    tally("resource");
                }
                if f.hang {
                    self.stats.hangs.fetch_add(1, Ordering::Relaxed);
                    tally("hang");
                    f.jitter_ppm = 0;
                    f.outlier = false;
                } else {
                    if f.jitter_ppm != 0 {
                        self.stats.jitter.fetch_add(1, Ordering::Relaxed);
                        tally("jitter");
                    }
                    if f.outlier {
                        self.stats.outliers.fetch_add(1, Ordering::Relaxed);
                        tally("outlier");
                    }
                }
            }
            f
        }
    }

    /// Snapshot the tally.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            launches: self.stats.launches.load(Ordering::Relaxed),
            transient: self.stats.transient.load(Ordering::Relaxed),
            resource: self.stats.resource.load(Ordering::Relaxed),
            jitter: self.stats.jitter.load(Ordering::Relaxed),
            outliers: self.stats.outliers.load(Ordering::Relaxed),
            hangs: self.stats.hangs.load(Ordering::Relaxed),
        }
    }

    /// Apply the measurement-side faults to a cycle count.
    pub fn perturb_cycles(&self, faults: &LaunchFaults, cycles: u64) -> u64 {
        let mut c = cycles as i128;
        if faults.jitter_ppm != 0 {
            c += c * i128::from(faults.jitter_ppm) / 1_000_000;
        }
        if faults.outlier {
            c = (c as f64 * self.plan.outlier_scale.max(1.0)) as i128;
        }
        u64::try_from(c.max(1)).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_or_zero_plan_draws_nothing() {
        let inj = FaultInjector::new(FaultPlan::none(7));
        for _ in 0..64 {
            assert_eq!(inj.draw(), LaunchFaults::NONE);
        }
        let s = inj.snapshot();
        assert_eq!(s.total_faults(), 0);
        assert_eq!(s.jitter, 0);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn draws_are_deterministic_per_seed() {
        let plan = FaultPlan::chaos(42, 0.2, 0.05);
        let a: Vec<LaunchFaults> = {
            let inj = FaultInjector::new(plan);
            (0..256).map(|_| inj.draw()).collect()
        };
        let b: Vec<LaunchFaults> = {
            let inj = FaultInjector::new(plan);
            (0..256).map(|_| inj.draw()).collect()
        };
        assert_eq!(a, b);
        let other = FaultInjector::new(FaultPlan::chaos(43, 0.2, 0.05));
        let c: Vec<LaunchFaults> = (0..256).map(|_| other.draw()).collect();
        assert_ne!(a, c, "different seeds must give different streams");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn rates_are_approximately_respected() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 9,
            transient_rate: 0.1,
            resource_rate: 0.0,
            jitter_frac: 0.0,
            outlier_rate: 0.0,
            outlier_scale: 1.0,
            hang_rate: 0.0,
        });
        let n = 10_000;
        let hits = (0..n).filter(|_| inj.draw().transient).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.1).abs() < 0.02, "measured {rate}");
        assert_eq!(inj.snapshot().transient, hits as u64);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn jitter_stays_in_band_and_perturbs_cycles() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 3,
            transient_rate: 0.0,
            resource_rate: 0.0,
            jitter_frac: 0.05,
            outlier_rate: 0.0,
            outlier_scale: 1.0,
            hang_rate: 0.0,
        });
        for _ in 0..512 {
            let f = inj.draw();
            assert!(f.jitter_ppm.abs() <= 50_000, "{}", f.jitter_ppm);
            let c = inj.perturb_cycles(&f, 1_000_000);
            assert!((950_000..=1_050_000).contains(&c), "{c}");
        }
    }
}
