//! Deterministic, seedable fault injection for the simulator.
//!
//! The paper's runtime adaptation (§3.4, Figure 9) assumes every kernel
//! invocation launches successfully and every timing sample is
//! noise-free. Real drivers are not so kind: launches fail transiently,
//! device resources shrink under contention, kernels hang, and timers
//! jitter. This module injects exactly those failure modes into
//! [`crate::sim::run_launch_faulty`] so the resilient runtime
//! (`orion-core`) can be exercised — and regression-tested — under
//! chaos.
//!
//! # Gating
//!
//! Injection is double-gated, mirroring `orion-telemetry`:
//!
//! * **Compile time** — the `faults` cargo feature. Without it,
//!   [`FaultInjector::draw`] always returns [`LaunchFaults::NONE`] and
//!   the injection hooks in the launch path fold to nothing; production
//!   builds carry no chaos code on the hot path.
//! * **Run time** — an injector is only consulted when the caller
//!   explicitly passes one to `run_launch_faulty`. The plain
//!   [`crate::sim::run_launch`]/[`crate::sim::run_launch_opts`] entry
//!   points never inject.
//!
//! # Determinism
//!
//! Every fault decision is a pure function of `(plan.seed, launch
//! index)` via splitmix64, so a chaos run replays bit-identically for a
//! given plan regardless of scheduling: the injector's only mutable
//! state is a monotone launch counter and the fault tally.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Whether the `faults` cargo feature was compiled into this build of
/// the simulator. Downstream crates (the chaos bench, its tests) branch
/// on this rather than on their *own* feature flags, which may disagree
/// with the simulator's under cargo feature unification.
pub const INJECTION_COMPILED: bool = cfg!(feature = "faults");

/// Fault rates and magnitudes for one chaos scenario. All rates are
/// probabilities in `[0, 1]` applied independently per launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-launch fault stream.
    pub seed: u64,
    /// Probability a launch fails with a retryable
    /// [`crate::exec::SimError::TransientLaunchFailure`].
    pub transient_rate: f64,
    /// Probability the launch sees a perturbed device (half the register
    /// file and shared memory). If the kernel no longer fits, the launch
    /// fails with [`crate::exec::SimError::ResourceExceeded`]; if it
    /// still fits, the fault is absorbed silently — exactly like a real
    /// driver under transient resource contention.
    pub resource_rate: f64,
    /// Half-width of the uniform multiplicative timing jitter applied to
    /// the reported cycle count, as a fraction (`0.05` = ±5%). The
    /// simulation itself is untouched: only the *measurement* is noisy,
    /// modeling timer noise on real hardware.
    pub jitter_frac: f64,
    /// Probability a measurement is a gross outlier (scaled by
    /// [`FaultPlan::outlier_scale`]) — a context switch or ECC scrub
    /// landing mid-measurement.
    pub outlier_rate: f64,
    /// Multiplier applied to outlier measurements.
    pub outlier_scale: f64,
    /// Probability a launch hangs: one warp never becomes ready and the
    /// launch only terminates via the simulator watchdog
    /// ([`crate::exec::SimError::Watchdog`]).
    pub hang_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a control arm).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            resource_rate: 0.0,
            jitter_frac: 0.0,
            outlier_rate: 0.0,
            outlier_scale: 1.0,
            hang_rate: 0.0,
        }
    }

    /// Whether this plan can ever inject anything.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.transient_rate <= 0.0
            && self.resource_rate <= 0.0
            && self.jitter_frac <= 0.0
            && self.outlier_rate <= 0.0
            && self.hang_rate <= 0.0
    }

    /// The chaos-bench scenario: `rate` transient failures, `rate / 4`
    /// resource and hang faults, ±`jitter_frac` timing jitter and a 2%
    /// outlier rate at 8x.
    pub fn chaos(seed: u64, rate: f64, jitter_frac: f64) -> Self {
        FaultPlan {
            seed,
            transient_rate: rate,
            resource_rate: rate / 4.0,
            jitter_frac,
            outlier_rate: if jitter_frac > 0.0 { 0.02 } else { 0.0 },
            outlier_scale: 8.0,
            hang_rate: rate / 4.0,
        }
    }
}

/// Fault decisions for one launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchFaults {
    /// Fail the launch with a transient error before simulating.
    pub transient: bool,
    /// Perturb the device spec (may or may not surface as an error).
    pub resource: bool,
    /// Wedge one warp so the watchdog trips.
    pub hang: bool,
    /// Signed measurement perturbation in parts-per-million applied to
    /// the reported cycles (`0` = exact).
    pub jitter_ppm: i64,
    /// Scale the measurement by the plan's outlier factor.
    pub outlier: bool,
}

impl LaunchFaults {
    /// No faults (what disabled builds always draw).
    pub const NONE: LaunchFaults = LaunchFaults {
        transient: false,
        resource: false,
        hang: false,
        jitter_ppm: 0,
        outlier: false,
    };
}

/// Monotone tally of injected faults, for reconciliation against
/// telemetry counters and `BENCH_chaos.json`.
#[derive(Debug, Default)]
pub struct FaultStats {
    pub launches: AtomicU64,
    pub transient: AtomicU64,
    pub resource: AtomicU64,
    pub jitter: AtomicU64,
    pub outliers: AtomicU64,
    pub hangs: AtomicU64,
}

/// A plain-value snapshot of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSnapshot {
    pub launches: u64,
    pub transient: u64,
    pub resource: u64,
    pub jitter: u64,
    pub outliers: u64,
    pub hangs: u64,
}

impl FaultSnapshot {
    /// Total injected faults of any kind (jitter excluded — every launch
    /// with a nonzero jitter plan jitters).
    pub fn total_faults(&self) -> u64 {
        self.transient + self.resource + self.outliers + self.hangs
    }
}

/// The per-run fault source: a [`FaultPlan`] plus the launch counter and
/// tally. Shared by reference across launches; interior mutability keeps
/// the launch path `&self`.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    next_launch: AtomicU64,
    stats: FaultStats,
}

/// splitmix64 — tiny, seedable, and statistically fine for fault draws.
#[cfg_attr(not(feature = "faults"), allow(dead_code))]
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the stream.
#[cfg_attr(not(feature = "faults"), allow(dead_code))]
#[inline]
fn unit(state: &mut u64) -> f64 {
    // 53 random mantissa bits.
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, next_launch: AtomicU64::new(0), stats: FaultStats::default() }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draw the fault decisions for the next launch. Deterministic in
    /// `(plan.seed, launch index)`; a build without the `faults` feature
    /// always returns [`LaunchFaults::NONE`] and counts nothing.
    pub fn draw(&self) -> LaunchFaults {
        let idx = self.next_launch.fetch_add(1, Ordering::Relaxed);
        #[cfg(not(feature = "faults"))]
        {
            let _ = idx;
            LaunchFaults::NONE
        }
        #[cfg(feature = "faults")]
        {
            self.stats.launches.fetch_add(1, Ordering::Relaxed);
            // Decorrelate the per-launch stream from the seed stream.
            let mut s = self.plan.seed ^ idx.wrapping_mul(0xd134_2543_de82_ef95);
            let _ = splitmix64(&mut s); // burn one to mix the xor in
            let mut f = LaunchFaults::NONE;
            if unit(&mut s) < self.plan.transient_rate {
                f.transient = true;
            }
            if unit(&mut s) < self.plan.resource_rate {
                f.resource = true;
            }
            if unit(&mut s) < self.plan.hang_rate {
                f.hang = true;
            }
            if self.plan.jitter_frac > 0.0 {
                let u = unit(&mut s) * 2.0 - 1.0; // [-1, 1)
                f.jitter_ppm = (u * self.plan.jitter_frac * 1e6) as i64;
            }
            if unit(&mut s) < self.plan.outlier_rate {
                f.outlier = true;
            }
            // A launch that fails before running never produces a
            // measurement, so measurement faults are tallied only when
            // the launch can reach one. Tally launch faults in priority
            // order (transient masks the rest, matching the injection
            // order in the launch path).
            // Journal the injected fault kinds (typed, per launch) next
            // to the aggregate telemetry counters.
            let tally = |kind: &'static str| {
                orion_telemetry::counter("faults", kind, 1);
                if orion_telemetry::is_enabled() {
                    orion_telemetry::journal::record(
                        orion_telemetry::journal::JournalEvent::FaultInjected { kind, launch: idx },
                    );
                }
            };
            if f.transient {
                self.stats.transient.fetch_add(1, Ordering::Relaxed);
                tally("transient");
                f.resource = false;
                f.hang = false;
                f.jitter_ppm = 0;
                f.outlier = false;
            } else {
                if f.resource {
                    self.stats.resource.fetch_add(1, Ordering::Relaxed);
                    tally("resource");
                }
                if f.hang {
                    self.stats.hangs.fetch_add(1, Ordering::Relaxed);
                    tally("hang");
                    f.jitter_ppm = 0;
                    f.outlier = false;
                } else {
                    if f.jitter_ppm != 0 {
                        self.stats.jitter.fetch_add(1, Ordering::Relaxed);
                        tally("jitter");
                    }
                    if f.outlier {
                        self.stats.outliers.fetch_add(1, Ordering::Relaxed);
                        tally("outlier");
                    }
                }
            }
            f
        }
    }

    /// Snapshot the tally.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            launches: self.stats.launches.load(Ordering::Relaxed),
            transient: self.stats.transient.load(Ordering::Relaxed),
            resource: self.stats.resource.load(Ordering::Relaxed),
            jitter: self.stats.jitter.load(Ordering::Relaxed),
            outliers: self.stats.outliers.load(Ordering::Relaxed),
            hangs: self.stats.hangs.load(Ordering::Relaxed),
        }
    }

    /// Apply the measurement-side faults to a cycle count.
    pub fn perturb_cycles(&self, faults: &LaunchFaults, cycles: u64) -> u64 {
        let mut c = cycles as i128;
        if faults.jitter_ppm != 0 {
            c += c * i128::from(faults.jitter_ppm) / 1_000_000;
        }
        if faults.outlier {
            c = (c as f64 * self.plan.outlier_scale.max(1.0)) as i128;
        }
        u64::try_from(c.max(1)).unwrap_or(u64::MAX)
    }
}

/// A window of jobs hit by elevated fault rates — modeling a *fault
/// storm* (a flaky driver episode, thermal throttling, a bad rack
/// neighbour) rather than uniformly sprinkled failures. Jobs whose
/// submission index falls in `[start_job, start_job + len)` have their
/// launch-fault rates multiplied by `multiplier` (clamped to
/// probability 1) and their panic/deadline pressure doubled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultStorm {
    /// First job index inside the storm window.
    pub start_job: usize,
    /// Number of consecutive jobs in the window.
    pub len: usize,
    /// Rate multiplier applied to the per-launch fault plan.
    pub multiplier: f64,
}

impl FaultStorm {
    /// Whether `job_index` falls inside the storm window.
    #[must_use]
    pub fn covers(&self, job_index: usize) -> bool {
        job_index >= self.start_job && job_index - self.start_job < self.len
    }
}

/// Service-boundary chaos scenario: a per-launch [`FaultPlan`] template
/// plus job-granular failure modes the launch path cannot express —
/// worker panics mid-session and injected deadline pressure — and an
/// optional [`FaultStorm`] window. Every per-job decision is a pure
/// function of `(seed, job index)` (same splitmix64 streams as the
/// launch-level injector), so a chaos batch replays bit-identically at
/// any service worker count.
///
/// Consumed by `orion_core::service::OrionService` (via
/// `ServiceConfig::chaos`) and the `chaos-service` bench; like the
/// launch-level injector it is double-gated — without the `faults`
/// cargo feature [`ServiceFaultPlan::job_faults`] always returns the
/// all-quiet [`JobFaults`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceFaultPlan {
    /// Seed for the per-job fault streams.
    pub seed: u64,
    /// Template for each job's launch-level faults; the per-job plan
    /// gets its own derived seed (and storm-scaled rates).
    pub launch: FaultPlan,
    /// Probability a job's worker thread panics mid-session (after a
    /// deterministic number of successful launches).
    pub panic_rate: f64,
    /// Probability a job is put under deadline pressure: its sim-cycle
    /// deadline is overridden with [`ServiceFaultPlan::deadline_cycles`].
    pub deadline_rate: f64,
    /// The injected tight deadline (simulated cycles).
    pub deadline_cycles: u64,
    /// Optional elevated-rate window over the job sequence.
    pub storm: Option<FaultStorm>,
}

impl ServiceFaultPlan {
    /// A plan that injects nothing at the service boundary.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        ServiceFaultPlan {
            seed,
            launch: FaultPlan::none(seed),
            panic_rate: 0.0,
            deadline_rate: 0.0,
            deadline_cycles: 0,
            storm: None,
        }
    }

    /// The chaos-service scenario: launch faults per
    /// [`FaultPlan::chaos`] at `rate`, worker panics at `panic_rate`,
    /// and 10% deadline pressure with a 50k-cycle injected deadline.
    #[must_use]
    pub fn chaos(seed: u64, rate: f64, panic_rate: f64) -> Self {
        ServiceFaultPlan {
            seed,
            launch: FaultPlan::chaos(seed, rate, 0.05),
            panic_rate,
            deadline_rate: 0.1,
            deadline_cycles: 50_000,
            storm: None,
        }
    }

    /// Fault decisions for the job at `job_index`. Pure in
    /// `(self.seed, job_index)`; independent of scheduling, worker
    /// count, and every other job. A build without the `faults`
    /// feature always returns [`JobFaults::NONE`].
    #[must_use]
    pub fn job_faults(&self, job_index: usize) -> JobFaults {
        #[cfg(not(feature = "faults"))]
        {
            let _ = job_index;
            JobFaults::NONE
        }
        #[cfg(feature = "faults")]
        {
            let mut s = self.seed ^ (job_index as u64).wrapping_mul(0xa076_1d64_78bd_642f);
            let _ = splitmix64(&mut s); // burn one to mix the xor in
            let stormy = self.storm.is_some_and(|w| w.covers(job_index));
            let scale =
                if stormy { self.storm.map_or(1.0, |w| w.multiplier.max(0.0)) } else { 1.0 };
            let pressure = if stormy { 2.0 } else { 1.0 };
            let rate = |r: f64| (r * scale).clamp(0.0, 1.0);
            // Per-job launch plan: derived seed, storm-scaled rates.
            let plan = FaultPlan {
                seed: splitmix64(&mut s),
                transient_rate: rate(self.launch.transient_rate),
                resource_rate: rate(self.launch.resource_rate),
                jitter_frac: self.launch.jitter_frac,
                outlier_rate: rate(self.launch.outlier_rate),
                outlier_scale: self.launch.outlier_scale,
                hang_rate: rate(self.launch.hang_rate),
            };
            let panics = unit(&mut s) < (self.panic_rate * pressure).clamp(0.0, 1.0);
            // Panic after 1..=8 successful launches — deep enough to
            // catch sessions mid-walk, deterministic per job.
            let panic_after = (splitmix64(&mut s) % 8 + 1) as u32;
            let deadline = unit(&mut s) < (self.deadline_rate * pressure).clamp(0.0, 1.0);
            JobFaults {
                plan: (!plan.is_quiet()).then_some(plan),
                panic_after_launches: panics.then_some(panic_after),
                deadline_cycles: (deadline && self.deadline_cycles > 0)
                    .then_some(self.deadline_cycles),
            }
        }
    }
}

/// The per-job slice of a [`ServiceFaultPlan`] draw: what the service
/// should inject into one job's session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobFaults {
    /// Launch-level fault plan to drive through a per-job
    /// [`FaultInjector`] at the service boundary (`None` = clean).
    pub plan: Option<FaultPlan>,
    /// Panic the worker after this many successful launches.
    pub panic_after_launches: Option<u32>,
    /// Override the job's sim-cycle deadline with this tight budget.
    pub deadline_cycles: Option<u64>,
}

impl JobFaults {
    /// No service-level faults (what disabled builds always draw).
    pub const NONE: JobFaults =
        JobFaults { plan: None, panic_after_launches: None, deadline_cycles: None };

    /// Whether this job draws any injection at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.plan.is_none() && self.panic_after_launches.is_none() && self.deadline_cycles.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_or_zero_plan_draws_nothing() {
        let inj = FaultInjector::new(FaultPlan::none(7));
        for _ in 0..64 {
            assert_eq!(inj.draw(), LaunchFaults::NONE);
        }
        let s = inj.snapshot();
        assert_eq!(s.total_faults(), 0);
        assert_eq!(s.jitter, 0);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn draws_are_deterministic_per_seed() {
        let plan = FaultPlan::chaos(42, 0.2, 0.05);
        let a: Vec<LaunchFaults> = {
            let inj = FaultInjector::new(plan);
            (0..256).map(|_| inj.draw()).collect()
        };
        let b: Vec<LaunchFaults> = {
            let inj = FaultInjector::new(plan);
            (0..256).map(|_| inj.draw()).collect()
        };
        assert_eq!(a, b);
        let other = FaultInjector::new(FaultPlan::chaos(43, 0.2, 0.05));
        let c: Vec<LaunchFaults> = (0..256).map(|_| other.draw()).collect();
        assert_ne!(a, c, "different seeds must give different streams");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn rates_are_approximately_respected() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 9,
            transient_rate: 0.1,
            resource_rate: 0.0,
            jitter_frac: 0.0,
            outlier_rate: 0.0,
            outlier_scale: 1.0,
            hang_rate: 0.0,
        });
        let n = 10_000;
        let hits = (0..n).filter(|_| inj.draw().transient).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.1).abs() < 0.02, "measured {rate}");
        assert_eq!(inj.snapshot().transient, hits as u64);
    }

    #[test]
    fn quiet_service_plan_draws_no_job_faults() {
        let plan = ServiceFaultPlan::none(11);
        for i in 0..64 {
            assert!(plan.job_faults(i).is_none(), "job {i} drew faults from a quiet plan");
        }
    }

    #[cfg(feature = "faults")]
    #[test]
    fn job_faults_are_deterministic_and_per_job() {
        let plan = ServiceFaultPlan::chaos(42, 0.2, 0.3);
        let a: Vec<JobFaults> = (0..128).map(|i| plan.job_faults(i)).collect();
        let b: Vec<JobFaults> = (0..128).map(|i| plan.job_faults(i)).collect();
        assert_eq!(a, b, "draws must be pure in (seed, job index)");
        let other = ServiceFaultPlan::chaos(43, 0.2, 0.3);
        let c: Vec<JobFaults> = (0..128).map(|i| other.job_faults(i)).collect();
        assert_ne!(a, c, "different seeds must give different job streams");
        // Per-job launch plans carry distinct derived seeds.
        let seeds: std::collections::HashSet<u64> =
            a.iter().filter_map(|f| f.plan.map(|p| p.seed)).collect();
        assert!(seeds.len() > 100, "per-job plans must not share a seed");
        // Panic and deadline pressure land at roughly the configured rates.
        let panics = a.iter().filter(|f| f.panic_after_launches.is_some()).count();
        assert!((20..=60).contains(&panics), "panic draws at 30%: {panics}/128");
        assert!(a.iter().all(|f| f.panic_after_launches.is_none_or(|n| (1..=8).contains(&n))));
    }

    #[cfg(feature = "faults")]
    #[test]
    fn storm_window_elevates_rates() {
        let mut plan = ServiceFaultPlan::chaos(7, 0.05, 0.1);
        plan.storm = Some(FaultStorm { start_job: 10, len: 10, multiplier: 8.0 });
        assert!(plan.storm.unwrap().covers(10) && plan.storm.unwrap().covers(19));
        assert!(!plan.storm.unwrap().covers(9) && !plan.storm.unwrap().covers(20));
        let inside = plan.job_faults(12).plan.expect("stormy job has a launch plan");
        let outside = plan.job_faults(30).plan.expect("chaos plan is never quiet");
        assert!(inside.transient_rate > outside.transient_rate);
        assert!(inside.transient_rate <= 1.0, "storm rates clamp to probability 1");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn jitter_stays_in_band_and_perturbs_cycles() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 3,
            transient_rate: 0.0,
            resource_rate: 0.0,
            jitter_frac: 0.05,
            outlier_rate: 0.0,
            outlier_scale: 1.0,
            hang_rate: 0.0,
        });
        for _ in 0..512 {
            let f = inj.draw();
            assert!(f.jitter_ppm.abs() <= 50_000, "{}", f.jitter_ppm);
            let c = inj.perturb_cycles(&f, 1_000_000);
            assert!((950_000..=1_050_000).contains(&c), "{c}");
        }
    }
}
