//! Set-associative LRU cache model.

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    line_shift: u32,
    /// `tags[set][way] = Some((tag, last_use))`.
    tags: Vec<Vec<Option<(u64, u64)>>>,
    tick: u64,
    /// Hit/miss counters.
    pub hits: u64,
    pub misses: u64,
}

impl Cache {
    /// Build a cache of `bytes` capacity with `line` bytes per line and
    /// `ways` associativity.
    ///
    /// # Panics
    /// Panics if `line` is not a power of two or the geometry is
    /// degenerate.
    pub fn new(bytes: u32, line: u32, ways: u32) -> Cache {
        assert!(line.is_power_of_two() && line > 0);
        assert!(ways > 0);
        let lines = (bytes / line).max(1) as usize;
        let ways = (ways as usize).min(lines);
        let sets = (lines / ways).max(1);
        Cache {
            sets,
            line_shift: line.trailing_zeros(),
            tags: vec![vec![None; ways]; sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Access `addr`; returns `true` on hit. Misses allocate (LRU evict).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) % self.sets;
        let tag = line / self.sets as u64;
        let ways = &mut self.tags[set];
        for (t, last) in ways.iter_mut().flatten() {
            if *t == tag {
                *last = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        // Evict LRU (or fill an empty way).
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.map_or(0, |(_, last)| last))
            .map(|(i, _)| i)
            .expect("nonzero ways");
        ways[victim] = Some((tag, self.tick));
        false
    }

    /// Invalidate everything (used between kernel launches to model
    /// cold-ish caches conservatively; the paper's kernels are large
    /// enough that cross-launch reuse is negligible).
    pub fn flush(&mut self) {
        for set in &mut self.tags {
            for w in set {
                *w = None;
            }
        }
    }

    /// Hit rate so far (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(16 * 1024, 128, 4);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1040), "same 128B line");
        assert!(!c.access(0x2000));
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 2 sets × 2 ways × 128B = 512B cache.
        let mut c = Cache::new(512, 128, 2);
        // Addresses mapping to set 0: lines 0, 2, 4 (line % 2 == 0).
        let line = |n: u64| n * 128;
        assert!(!c.access(line(0)));
        assert!(!c.access(line(2)));
        assert!(c.access(line(0))); // refresh line 0
        assert!(!c.access(line(4))); // evicts line 2 (LRU)
        assert!(c.access(line(0)));
        assert!(!c.access(line(2))); // line 2 was evicted
    }

    #[test]
    fn flush_clears() {
        let mut c = Cache::new(1024, 128, 2);
        c.access(0);
        c.flush();
        assert!(!c.access(0));
    }

    #[test]
    fn thrashing_working_set() {
        // Working set larger than capacity never hits with a strided scan.
        let mut c = Cache::new(1024, 128, 2);
        for round in 0..4 {
            for i in 0..16u64 {
                let hit = c.access(i * 128);
                if round == 0 {
                    assert!(!hit);
                }
            }
        }
        assert!(c.hit_rate() < 0.01, "{}", c.hit_rate());
    }
}
