//! Per-SM memory system: L1 → L2 slice → bandwidth-limited DRAM.
//!
//! The model captures exactly the mechanisms occupancy tuning interacts
//! with: latency that more warps can hide, cache capacity that more
//! warps thrash, and DRAM bandwidth that saturates. DRAM is a queue with
//! a fixed per-transaction service time (the SM's share of device
//! bandwidth); queueing delay emerges when many warps miss at once.

use crate::cache::Cache;
use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Which address space a transaction belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// Global memory (L1-cached only on Fermi).
    Global,
    /// Per-thread local memory (spills) — L1-cached on both devices.
    Local,
}

/// Dynamic memory counters (feed the power model and reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    pub l1_hits: u64,
    pub l1_misses: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub dram_transactions: u64,
    pub dram_bytes: u64,
}

/// One SM's view of the memory hierarchy.
#[derive(Debug)]
pub struct MemSystem {
    l1: Cache,
    l2: Cache,
    l1_caches_global: bool,
    l1_latency: u64,
    l2_latency: u64,
    dram_latency: u64,
    dram_service: u64,
    /// Next cycle at which the DRAM channel share is free.
    dram_free: u64,
    line: u64,
    pub stats: MemStats,
}

impl MemSystem {
    /// Build the memory system for one SM of `dev`.
    pub fn new(dev: &DeviceSpec) -> MemSystem {
        MemSystem {
            l1: Cache::new(dev.l1_per_sm(), dev.l1_line, dev.l1_ways),
            l2: Cache::new(dev.l2_slice_bytes, dev.l2_line, dev.l2_ways),
            l1_caches_global: dev.l1_caches_global,
            l1_latency: dev.l1_latency,
            l2_latency: dev.l2_latency,
            dram_latency: dev.dram_latency,
            dram_service: dev.dram_cycles_per_transaction,
            dram_free: 0,
            line: u64::from(dev.l1_line),
            stats: MemStats::default(),
        }
    }

    /// Issue one 128-byte transaction at cycle `now`; returns its
    /// completion cycle. Stores consume the same bandwidth but callers
    /// typically ignore the completion time (store buffering).
    pub fn access(&mut self, addr: u64, now: u64, kind: MemKind) -> u64 {
        let use_l1 = match kind {
            MemKind::Global => self.l1_caches_global,
            MemKind::Local => true,
        };
        if use_l1 {
            if self.l1.access(addr) {
                self.stats.l1_hits += 1;
                return now + self.l1_latency;
            }
            self.stats.l1_misses += 1;
        }
        if self.l2.access(addr) {
            self.stats.l2_hits += 1;
            return now + self.l2_latency;
        }
        self.stats.l2_misses += 1;
        // DRAM: wait for the channel, occupy it for the service time.
        let start = now.max(self.dram_free);
        self.dram_free = start + self.dram_service;
        self.stats.dram_transactions += 1;
        self.stats.dram_bytes += self.line;
        start + self.dram_latency
    }

    /// Coalesce per-lane byte addresses into unique cache-line
    /// transactions (the hardware's 128-byte segment rule).
    pub fn coalesce(&self, addrs: impl Iterator<Item = u64>) -> Vec<u64> {
        let mut lines = Vec::new();
        self.coalesce_into(addrs, &mut lines);
        lines
    }

    /// [`coalesce`](Self::coalesce) into a caller-owned buffer, so hot
    /// paths can recycle one allocation across every warp access.
    pub fn coalesce_into(&self, addrs: impl Iterator<Item = u64>, lines: &mut Vec<u64>) {
        lines.clear();
        lines.extend(addrs.map(|a| a & !(self.line - 1)));
        lines.sort_unstable();
        lines.dedup();
    }

    /// Drop all cached state (between launches).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    /// L1 hit/miss counters of this SM.
    pub fn l1(&self) -> &Cache {
        &self.l1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(global_in_l1: bool) -> MemSystem {
        let mut dev = DeviceSpec::c2075();
        dev.l1_caches_global = global_in_l1;
        MemSystem::new(&dev)
    }

    #[test]
    fn dram_queueing_serializes() {
        let mut m = sys(false);
        // Two cold misses to distinct lines at the same cycle: the second
        // completes later because the channel is busy.
        let t1 = m.access(0, 0, MemKind::Global);
        let t2 = m.access(1 << 20, 0, MemKind::Global);
        assert!(t2 > t1);
        assert_eq!(m.stats.dram_transactions, 2);
    }

    #[test]
    fn l2_hit_is_faster_than_dram() {
        let mut m = sys(false);
        let cold = m.access(0, 0, MemKind::Global);
        let warm = m.access(0, cold, MemKind::Global) - cold;
        assert!(warm < cold);
        assert_eq!(m.stats.l2_hits, 1);
    }

    #[test]
    fn local_always_uses_l1() {
        let mut m = sys(false); // Kepler-style: global bypasses L1
        m.access(0, 0, MemKind::Local);
        let t = m.access(0, 1000, MemKind::Local);
        assert_eq!(t, 1000 + m.l1_latency);
        assert_eq!(m.stats.l1_hits, 1);
    }

    #[test]
    fn global_bypasses_l1_on_kepler() {
        let mut m = sys(false);
        m.access(0, 0, MemKind::Global);
        m.access(0, 1000, MemKind::Global);
        assert_eq!(m.stats.l1_hits + m.stats.l1_misses, 0);
        assert_eq!(m.stats.l2_hits, 1);
    }

    #[test]
    fn coalescing_dedups_lines() {
        let m = sys(true);
        // 32 lanes × 4B stride from base 256: one 128B line.
        let lines = m.coalesce((0..32u64).map(|i| 256 + i * 4));
        assert_eq!(lines, vec![256]);
        // Stride 128: 32 distinct lines.
        let lines = m.coalesce((0..32u64).map(|i| i * 128));
        assert_eq!(lines.len(), 32);
    }
}
