//! The occupancy calculator (Equation 1 + NVIDIA-calculator rounding).
//!
//! Occupancy = active warps / maximum schedulable warps, limited by four
//! resources: the block-count cap, the thread/warp caps, the register
//! file (with per-warp allocation granularity), and shared memory.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Resource usage of one compiled kernel at launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelResources {
    /// Registers per thread.
    pub regs_per_thread: u16,
    /// Shared memory per block in bytes (user arrays + allocator slots).
    pub smem_per_block: u32,
    /// Threads per block.
    pub block_size: u32,
}

/// Occupancy outcome for a kernel on a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyInfo {
    /// Resident blocks per SM.
    pub active_blocks: u32,
    /// Resident warps per SM.
    pub active_warps: u32,
    /// `active_warps / max_warps_per_sm` — the paper's occupancy.
    pub occupancy: f64,
    /// Which resource limited the occupancy.
    pub limiter: Limiter,
}

/// The binding resource constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    Blocks,
    Threads,
    Registers,
    SharedMemory,
}

/// Compute occupancy of `res` on `dev` (NVIDIA occupancy calculator
/// semantics: block-granular residency, per-warp register rounding).
pub fn occupancy(dev: &DeviceSpec, res: &KernelResources) -> OccupancyInfo {
    let warps_per_block = res.block_size.div_ceil(dev.warp_size);
    let by_blocks = dev.max_blocks_per_sm;
    let by_threads = (dev.max_threads_per_sm / res.block_size.max(1))
        .min(dev.max_warps_per_sm / warps_per_block.max(1));
    let by_regs = if res.regs_per_thread == 0 {
        u32::MAX
    } else {
        // Registers are allocated per warp, rounded up to the granularity.
        let regs_per_warp = (u32::from(res.regs_per_thread) * dev.warp_size)
            .div_ceil(dev.reg_alloc_granularity)
            * dev.reg_alloc_granularity;
        let warps_by_regs = dev.regs_per_sm / regs_per_warp;
        warps_by_regs / warps_per_block.max(1)
    };
    let by_smem = dev.smem_per_sm().checked_div(res.smem_per_block).unwrap_or(u32::MAX);
    let active_blocks = by_blocks.min(by_threads).min(by_regs).min(by_smem);
    let limiter = if active_blocks == by_smem && by_smem <= by_regs && by_smem <= by_threads {
        Limiter::SharedMemory
    } else if active_blocks == by_regs && by_regs <= by_threads {
        Limiter::Registers
    } else if active_blocks == by_threads {
        Limiter::Threads
    } else {
        Limiter::Blocks
    };
    let active_warps = (active_blocks * warps_per_block).min(dev.max_warps_per_sm);
    OccupancyInfo {
        active_blocks,
        active_warps,
        occupancy: f64::from(active_warps) / f64::from(dev.max_warps_per_sm),
        limiter,
    }
}

/// Largest register count per thread that still sustains `target_warps`
/// resident warps for the given block size and shared-memory usage, or
/// `None` if the target is unreachable regardless of registers.
pub fn max_regs_for_warps(
    dev: &DeviceSpec,
    target_warps: u32,
    block_size: u32,
    smem_per_block: u32,
) -> Option<u16> {
    let mut best = None;
    for regs in 1..=dev.max_regs_per_thread {
        let info =
            occupancy(dev, &KernelResources { regs_per_thread: regs, smem_per_block, block_size });
        if info.active_warps >= target_warps {
            best = Some(regs);
        }
    }
    best
}

/// All achievable occupancy levels (distinct active-warp counts) for a
/// block size, sweeping registers per thread from the hardware max down
/// to 1 — the discrete tuning space of the paper's Figures 1/2/10/14/15.
pub fn achievable_warp_levels(dev: &DeviceSpec, block_size: u32, smem_per_block: u32) -> Vec<u32> {
    let mut levels: Vec<u32> = (1..=dev.max_regs_per_thread)
        .map(|r| {
            occupancy(dev, &KernelResources { regs_per_thread: r, smem_per_block, block_size })
                .active_warps
        })
        .collect();
    levels.sort_unstable();
    levels.dedup();
    levels.retain(|&w| w > 0);
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation1_basic() {
        // GTX680, 256-thread blocks, 32 regs/thread, no smem:
        // regs/warp = 1024, warps by regs = 64 → full occupancy.
        let dev = DeviceSpec::gtx680();
        let info = occupancy(
            &dev,
            &KernelResources { regs_per_thread: 32, smem_per_block: 0, block_size: 256 },
        );
        assert_eq!(info.active_warps, 64);
        assert!((info.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn register_limited() {
        // 63 regs/thread on GTX680: 63*32=2016 → rounds to 2048/warp;
        // 65536/2048 = 32 warps = 50% occupancy.
        let dev = DeviceSpec::gtx680();
        let info = occupancy(
            &dev,
            &KernelResources { regs_per_thread: 63, smem_per_block: 0, block_size: 256 },
        );
        assert_eq!(info.active_warps, 32);
        assert_eq!(info.limiter, Limiter::Registers);
        assert!((info.occupancy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn smem_limited() {
        // 24 KB smem per block with 48 KB per SM: 2 blocks.
        let dev = DeviceSpec::c2075();
        let info = occupancy(
            &dev,
            &KernelResources { regs_per_thread: 16, smem_per_block: 24 * 1024, block_size: 256 },
        );
        assert_eq!(info.active_blocks, 2);
        assert_eq!(info.limiter, Limiter::SharedMemory);
        assert_eq!(info.active_warps, 16);
    }

    #[test]
    fn block_rounding_matters() {
        // Block of 192 threads (6 warps) on C2075 (48 warps max): the
        // thread limit allows 8 blocks = 48 warps, but 1536/192 = 8 → ok;
        // with 352 threads (11 warps): 48/11 = 4 blocks = 44 warps.
        let dev = DeviceSpec::c2075();
        let info = occupancy(
            &dev,
            &KernelResources { regs_per_thread: 16, smem_per_block: 0, block_size: 352 },
        );
        assert_eq!(info.active_blocks, 4);
        assert_eq!(info.active_warps, 44);
    }

    #[test]
    fn max_regs_for_warps_inverse() {
        let dev = DeviceSpec::gtx680();
        // Full occupancy needs ≤ 32 regs/thread.
        let r = max_regs_for_warps(&dev, 64, 256, 0).unwrap();
        assert_eq!(r, 32);
        // Half occupancy allows up to the hardware cap.
        let r = max_regs_for_warps(&dev, 32, 256, 0).unwrap();
        assert_eq!(r, 63);
        // More than the hardware maximum warps: impossible.
        assert!(max_regs_for_warps(&dev, 65, 256, 0).is_none());
    }

    #[test]
    fn achievable_levels_are_monotone_targets() {
        let dev = DeviceSpec::c2075();
        let levels = achievable_warp_levels(&dev, 256, 0);
        assert!(levels.contains(&48), "{levels:?}");
        assert!(levels.len() >= 4);
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn occupancy_monotone_in_registers() {
        let dev = DeviceSpec::c2075();
        let mut prev = u32::MAX;
        for regs in 1..=63u16 {
            let info = occupancy(
                &dev,
                &KernelResources { regs_per_thread: regs, smem_per_block: 0, block_size: 192 },
            );
            assert!(info.active_warps <= prev);
            prev = info.active_warps;
        }
    }
}
