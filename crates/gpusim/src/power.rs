//! Power and energy model (§4.2, Figure 13).
//!
//! The paper's energy saving comes from one mechanism: at lower
//! occupancy the powered fraction of the register file (and the per-warp
//! scheduling structures) shrinks while runtime stays flat, so static
//! energy drops. The model therefore splits power into
//!
//! * a device static floor,
//! * register-file leakage proportional to *allocated* registers
//!   (`active warps × 32 × regs/thread`),
//! * dynamic energy per executed instruction and per memory event.
//!
//! Absolute numbers are calibrated to a Fermi-class ~200 W card; only
//! ratios are meaningful, as in EXPERIMENTS.md.

use crate::device::DeviceSpec;
use crate::exec::SimStats;
use crate::occupancy::OccupancyInfo;
use serde::{Deserialize, Serialize};

/// Energy model coefficients. Units: picojoules per event, watts-like
/// power in pJ/cycle (the time base is the core clock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static device power, pJ per cycle per SM.
    pub static_pj_per_cycle_sm: f64,
    /// Register-file leakage, pJ per cycle per allocated 32-bit register.
    pub regfile_pj_per_cycle_reg: f64,
    /// Dynamic energy per warp instruction, pJ.
    pub inst_pj: f64,
    /// Per private shared-memory slot word access, pJ.
    pub smem_slot_pj: f64,
    /// Per user shared-memory transaction, pJ.
    pub shared_pj: f64,
    /// Per L1 access, pJ.
    pub l1_pj: f64,
    /// Per L2 access, pJ.
    pub l2_pj: f64,
    /// Per DRAM byte, pJ.
    pub dram_pj_per_byte: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            static_pj_per_cycle_sm: 6_000.0,
            regfile_pj_per_cycle_reg: 0.02,
            inst_pj: 120.0,
            smem_slot_pj: 25.0,
            shared_pj: 35.0,
            l1_pj: 40.0,
            l2_pj: 90.0,
            dram_pj_per_byte: 25.0,
        }
    }
}

/// Energy accounting of one launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Static (occupancy-independent) energy, pJ.
    pub static_pj: f64,
    /// Register-file leakage energy, pJ (occupancy-dependent).
    pub regfile_pj: f64,
    /// Dynamic (event) energy, pJ.
    pub dynamic_pj: f64,
}

impl EnergyReport {
    /// Total energy, pJ.
    pub fn total(&self) -> f64 {
        self.static_pj + self.regfile_pj + self.dynamic_pj
    }
}

/// Energy of a launch that ran for `cycles` with the given counters and
/// occupancy, using `regs_per_thread` registers per thread.
pub fn energy(
    model: &PowerModel,
    dev: &DeviceSpec,
    stats: &SimStats,
    cycles: u64,
    occ: &OccupancyInfo,
    regs_per_thread: u16,
) -> EnergyReport {
    let cycles_f = cycles as f64;
    let static_pj = model.static_pj_per_cycle_sm * f64::from(dev.num_sms) * cycles_f;
    // Allocated registers per SM: resident warps × 32 lanes × regs.
    let allocated =
        f64::from(occ.active_warps) * f64::from(dev.warp_size) * f64::from(regs_per_thread);
    let regfile_pj = model.regfile_pj_per_cycle_reg * allocated * f64::from(dev.num_sms) * cycles_f;
    let dynamic_pj = model.inst_pj * stats.warp_insts as f64
        + model.smem_slot_pj * stats.smem_slot_accesses as f64
        + model.shared_pj * stats.shared_mem_accesses as f64
        + model.l1_pj * (stats.mem.l1_hits + stats.mem.l1_misses) as f64
        + model.l2_pj * (stats.mem.l2_hits + stats.mem.l2_misses) as f64
        + model.dram_pj_per_byte * stats.mem.dram_bytes as f64;
    EnergyReport { static_pj, regfile_pj, dynamic_pj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::Limiter;

    fn occ(warps: u32) -> OccupancyInfo {
        OccupancyInfo {
            active_blocks: warps / 8,
            active_warps: warps,
            occupancy: f64::from(warps) / 48.0,
            limiter: Limiter::Registers,
        }
    }

    #[test]
    fn lower_occupancy_same_runtime_saves_energy() {
        let dev = DeviceSpec::c2075();
        let model = PowerModel::default();
        let stats = SimStats::default();
        let high = energy(&model, &dev, &stats, 1_000_000, &occ(48), 20);
        let low = energy(&model, &dev, &stats, 1_000_000, &occ(24), 20);
        assert!(low.total() < high.total());
        assert_eq!(low.static_pj, high.static_pj);
        assert!(low.regfile_pj < high.regfile_pj);
    }

    #[test]
    fn longer_runtime_costs_more() {
        let dev = DeviceSpec::c2075();
        let model = PowerModel::default();
        let stats = SimStats::default();
        let fast = energy(&model, &dev, &stats, 1_000_000, &occ(48), 20);
        let slow = energy(&model, &dev, &stats, 2_000_000, &occ(48), 20);
        assert!(slow.total() > fast.total());
    }

    #[test]
    fn dynamic_energy_counts_events() {
        let dev = DeviceSpec::c2075();
        let model = PowerModel::default();
        let mut stats = SimStats { warp_insts: 1000, ..Default::default() };
        stats.mem.dram_bytes = 128 * 100;
        let e = energy(&model, &dev, &stats, 0, &occ(48), 20);
        assert!(e.dynamic_pj > 0.0);
        assert_eq!(e.static_pj, 0.0);
    }

    #[test]
    fn regfile_share_is_meaningful_but_not_dominant() {
        // The paper reports single-digit % savings; the leakage term must
        // be a visible but minor share of a typical balanced run.
        let dev = DeviceSpec::c2075();
        let model = PowerModel::default();
        let mut stats = SimStats { warp_insts: 2_000_000, ..Default::default() };
        stats.mem.dram_bytes = 50_000_000;
        let e = energy(&model, &dev, &stats, 1_000_000, &occ(48), 21);
        let share = e.regfile_pj / e.total();
        assert!(share > 0.03 && share < 0.20, "regfile share {share}");
    }
}
