//! # orion-gpusim — an event-driven, cycle-approximate GPU simulator
//!
//! The hardware substrate for the Orion occupancy-tuning reproduction
//! (Hayes et al., *Middleware 2016*). It executes the machine code
//! produced by `orion-alloc` with value-accurate semantics while
//! modeling the mechanisms occupancy interacts with:
//!
//! * warp scheduling with per-slot scoreboards (latency hiding grows
//!   with resident warps);
//! * set-associative L1/L2 caches (more warps thrash them);
//! * a bandwidth-limited DRAM channel share (saturates under load);
//! * shared-memory bank conflicts and private-slot access costs;
//! * SIMT divergence via immediate-post-dominator reconvergence;
//! * barriers, device-function calls, and compressible-stack moves;
//! * the NVIDIA occupancy calculator ([`mod@occupancy`]) and device
//!   descriptors for the paper's GTX680 and Tesla C2075;
//! * a power/energy model attributing register-file leakage to
//!   occupancy ([`power`]).
//!
//! ```
//! use orion_alloc::realize::{allocate, AllocOptions, SlotBudget};
//! use orion_gpusim::device::DeviceSpec;
//! use orion_gpusim::exec::Launch;
//! use orion_gpusim::sim::run_launch;
//! use orion_kir::builder::FunctionBuilder;
//! use orion_kir::function::Module;
//! use orion_kir::inst::Operand;
//! use orion_kir::types::{MemSpace, SpecialReg, Width};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::kernel("inc");
//! let tid = b.mov(Operand::Special(SpecialReg::TidX));
//! let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
//! let nt = b.mov(Operand::Special(SpecialReg::NTidX));
//! let gid = b.imad(cta, nt, tid);
//! let a = b.imad(gid, Operand::Imm(4), Operand::Param(0));
//! let x = b.ld(MemSpace::Global, Width::W32, a, 0);
//! let y = b.iadd(x, Operand::Imm(1));
//! b.st(MemSpace::Global, Width::W32, a, y, 0);
//! let module = Module::new(b.finish());
//!
//! let binary = allocate(&module, SlotBudget { reg_slots: 16, smem_slots: 0 },
//!                       &AllocOptions::default())?;
//! let dev = DeviceSpec::gtx680();
//! let mut global = vec![0u8; 4 * 64];
//! let result = run_launch(&dev, &binary.machine, Launch { grid: 2, block: 32 },
//!                         &[0], &mut global)?;
//! assert!(result.cycles > 0);
//! assert_eq!(global[0], 1);
//! # Ok(())
//! # }
//! ```

pub mod cache;
mod decode;
pub mod device;
pub mod exec;
pub mod faults;
mod lanes;
pub mod memory;
pub mod occupancy;
pub mod power;
pub mod sim;

pub use device::{CacheConfig, DeviceSpec};
pub use exec::{LaneLayout, Launch, Scheduler, SimError, SimStats, StallStats};
pub use faults::{FaultInjector, FaultPlan, FaultSnapshot, LaunchFaults};
pub use occupancy::{occupancy, KernelResources, Limiter, OccupancyInfo};
pub use power::{energy, EnergyReport, PowerModel};
pub use sim::{
    run_launch, run_launch_faulty, run_launch_opts, DerivedMetrics, LaunchOptions, RunResult,
    SmSummary, DEFAULT_CYCLE_BUDGET,
};
