//! Structure-of-arrays lane state: the batched execution layout.
//!
//! The seed engine kept an array-of-structs `LaneState` per thread —
//! every lane owned a heap-allocated register vector, a local-memory
//! vector, and a `bool` predicate file — so each warp instruction
//! chased 32 separate allocations and re-matched its operands per lane.
//! This module stores a CTA's lane state in three pooled arenas instead:
//!
//! * **On-chip slots, slot-major**: one contiguous `Vec<u32>` indexed
//!   `onchip[slot * stride + tid]` with `stride = warps_per_block * 32`.
//!   The 32 lanes of a warp's slot `k` are therefore adjacent, so
//!   operand reads, ALU results, and spill writes are contiguous
//!   32-word slice operations the compiler can vectorize.
//! * **Local memory, lane-strided**: one contiguous `Vec<u8>` where
//!   lane `tid` owns bytes `[tid * local_bytes, (tid + 1) * local_bytes)`
//!   — local addresses are runtime values, so the lane keeps its seed
//!   byte-addressing while losing its private allocation.
//! * **Predicates, packed**: one `u32` per `(warp, predicate register)`
//!   at `preds[warp * NUM_PRED_REGS + p]`, bit `l` = lane `l`'s value.
//!   Branch-mask evaluation and predication checks become single mask
//!   operations instead of 32 `bool` loads.
//!
//! The warp-wide register file ([`WarpOperand`]) gathers one operand's
//! value for all 32 lanes into stack-resident word planes; [`warp_alu`]
//! evaluates an opcode over those planes with the *same scalar
//! semantics* as [`eval_alu`] (hot single-word opcodes get unrolled
//! plane loops, everything else falls back to per-lane [`eval_alu`]),
//! so results are bit-identical to the array-of-structs reference by
//! construction — `tests/schedule.rs` pins this end to end.

use orion_kir::inst::Opcode;
use orion_kir::mir::{MLoc, MOperand, Place};
use orion_kir::sem::{eval_alu, Val};
use orion_kir::types::{PredReg, SpecialReg, NUM_PRED_REGS};

/// Per-warp execution context for operand gathering: everything a
/// special register or parameter read needs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WarpCtx<'a> {
    /// Warp index within the block.
    pub warp: u32,
    /// First thread id of the warp (`warp * 32`).
    pub warp_base_tid: u32,
    /// Threads per block (`%ntid`).
    pub block: u32,
    /// Blocks per grid (`%nctaid`).
    pub grid: u32,
    /// Grid index of the CTA (`%ctaid`).
    pub cta_grid: u32,
    /// Kernel parameters.
    pub params: &'a [u32],
}

/// One CTA's lane state in the pooled SoA layout.
#[derive(Debug, Default)]
pub(crate) struct SoaCta {
    /// Slot-major on-chip arena: `onchip[slot * stride + tid]`.
    onchip: Vec<u32>,
    /// Lane-strided local-memory arena: lane `tid` owns
    /// `local[tid * local_bytes ..][..local_bytes]`.
    local: Vec<u8>,
    /// Packed predicates: `preds[warp * NUM_PRED_REGS + p]`, bit = lane.
    preds: Vec<u32>,
    /// Lanes per slot plane (`warps_per_block * 32`).
    stride: usize,
    /// Local-memory bytes per lane.
    local_bytes: usize,
}

impl SoaCta {
    /// Assemble a CTA arena from (recycled) zeroed buffers.
    pub fn new(
        onchip: Vec<u32>,
        local: Vec<u8>,
        preds: Vec<u32>,
        stride: usize,
        local_bytes: usize,
    ) -> Self {
        debug_assert_eq!(onchip.len() % stride.max(1), 0);
        debug_assert_eq!(local.len(), stride * local_bytes);
        SoaCta { onchip, local, preds, stride, local_bytes }
    }

    /// Tear the arena back into its pooled buffers
    /// `(onchip, local, preds)` on CTA retirement.
    pub fn into_parts(self) -> (Vec<u32>, Vec<u8>, Vec<u32>) {
        (self.onchip, self.local, self.preds)
    }

    /// The 32-lane word plane of on-chip slot word `slot` for `warp`.
    #[inline]
    fn plane(&self, slot: usize, warp: u32) -> &[u32] {
        let base = slot * self.stride + warp as usize * 32;
        &self.onchip[base..base + 32]
    }

    /// Mutable 32-lane word plane (see [`Self::plane`]).
    #[inline]
    fn plane_mut(&mut self, slot: usize, warp: u32) -> &mut [u32] {
        let base = slot * self.stride + warp as usize * 32;
        &mut self.onchip[base..base + 32]
    }

    /// Lane `tid`'s local-memory region (same length the AoS lane's
    /// private buffer had, so bounds behavior is identical).
    #[inline]
    pub fn local_region(&self, tid: u32) -> &[u8] {
        &self.local[tid as usize * self.local_bytes..][..self.local_bytes]
    }

    /// Mutable lane-local region (see [`Self::local_region`]).
    #[inline]
    pub fn local_region_mut(&mut self, tid: u32) -> &mut [u8] {
        &mut self.local[tid as usize * self.local_bytes..][..self.local_bytes]
    }

    /// Packed predicate bits of `p` for `warp` (bit `l` = lane `l`).
    #[inline]
    pub fn pred_bits(&self, warp: u32, p: PredReg) -> u32 {
        self.preds[warp as usize * usize::from(NUM_PRED_REGS) + usize::from(p.0)]
    }

    /// Replace the predicate bits of active lanes: lanes in `exec` take
    /// `bits`, the rest keep their value — the packed equivalent of the
    /// per-lane predicated `preds[p] = r` writes.
    #[inline]
    pub fn merge_pred(&mut self, warp: u32, p: PredReg, bits: u32, exec: u32) {
        let slot = warp as usize * usize::from(NUM_PRED_REGS) + usize::from(p.0);
        self.preds[slot] = (self.preds[slot] & !exec) | (bits & exec);
    }

    /// Active-lane mask of a (possibly predicated) instruction: the
    /// SIMT path mask narrowed by the guard predicate in one mask op.
    #[inline]
    pub fn exec_mask(&self, warp: u32, mask: u32, pred: Option<PredReg>, neg: bool) -> u32 {
        match pred {
            None => mask,
            Some(p) => {
                let pb = self.pred_bits(warp, p);
                mask & if neg { !pb } else { pb }
            }
        }
    }

    /// Write a slot value for one lane (the scalar phase of `Ld`).
    #[inline]
    pub fn write_val(&mut self, l: MLoc, warp: u32, tid: u32, v: Val) {
        let lane = tid as usize % 32;
        for k in 0..l.width.words() as usize {
            let slot = usize::from(l.slot) + k;
            match l.place {
                Place::Onchip => self.plane_mut(slot, warp)[lane] = v.w[k],
                Place::Local => {
                    let b = slot * 4;
                    self.local_region_mut(tid)[b..b + 4].copy_from_slice(&v.w[k].to_le_bytes());
                }
            }
        }
    }

    /// Gather one operand into a warp-wide register file: all 32 lanes'
    /// values, word-plane-major.
    pub fn gather(&self, op: &MOperand, ctx: &WarpCtx, out: &mut WarpOperand) {
        match op {
            MOperand::Loc(l) => {
                let words = l.width.words() as usize;
                out.words = words as u8;
                match l.place {
                    Place::Onchip => {
                        for k in 0..words {
                            out.planes[k]
                                .copy_from_slice(self.plane(usize::from(l.slot) + k, ctx.warp));
                        }
                    }
                    Place::Local => {
                        for k in 0..words {
                            let b = (usize::from(l.slot) + k) * 4;
                            for lane in 0..32u32 {
                                let region = self.local_region(ctx.warp_base_tid + lane);
                                out.planes[k][lane as usize] =
                                    u32::from_le_bytes(region[b..b + 4].try_into().expect("word"));
                            }
                        }
                    }
                }
            }
            MOperand::Special(SpecialReg::TidX) => {
                out.words = 1;
                for lane in 0..32u32 {
                    out.planes[0][lane as usize] = ctx.warp_base_tid + lane;
                }
            }
            MOperand::Special(SpecialReg::LaneId) => {
                out.words = 1;
                for lane in 0..32u32 {
                    out.planes[0][lane as usize] = lane;
                }
            }
            // Everything else is uniform across the warp.
            _ => {
                out.words = 1;
                out.planes[0] = [scalar_operand(op, ctx, 0); 32];
            }
        }
    }

    /// Masked write-back of a warp-wide result into `dst`: full-warp
    /// planes become straight slice copies, partial warps scatter only
    /// the active lanes.
    pub fn scatter(&mut self, dst: MLoc, ctx: &WarpCtx, exec: u32, out: &WarpOperand) {
        let words = dst.width.words() as usize;
        for k in 0..words {
            let slot = usize::from(dst.slot) + k;
            // Result words past the operand's width are zero (the same
            // `Val::default` zero-extension the scalar path applies).
            let src: &[u32; 32] = if k < usize::from(out.words) { &out.planes[k] } else { &ZEROS };
            match dst.place {
                Place::Onchip => {
                    let plane = self.plane_mut(slot, ctx.warp);
                    if exec == u32::MAX {
                        plane.copy_from_slice(src);
                    } else {
                        let mut m = exec;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            plane[lane] = src[lane];
                            m &= m - 1;
                        }
                    }
                }
                Place::Local => {
                    let b = slot * 4;
                    let mut m = exec;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        let region = self.local_region_mut(ctx.warp_base_tid + lane);
                        region[b..b + 4].copy_from_slice(&src[lane as usize].to_le_bytes());
                        m &= m - 1;
                    }
                }
            }
        }
    }
}

static ZEROS: [u32; 32] = [0; 32];

/// Scalar (lane-independent or affine) operand value.
#[inline]
fn scalar_operand(op: &MOperand, ctx: &WarpCtx, lane: u32) -> u32 {
    match op {
        MOperand::Loc(_) => unreachable!("slot operands gather from the arena"),
        MOperand::Imm(i) => *i as u32,
        MOperand::Param(p) => ctx.params.get(usize::from(*p)).copied().unwrap_or(0),
        MOperand::Special(s) => match s {
            SpecialReg::TidX => ctx.warp_base_tid + lane,
            SpecialReg::CtaIdX => ctx.cta_grid,
            SpecialReg::NTidX => ctx.block,
            SpecialReg::NCtaIdX => ctx.grid,
            SpecialReg::LaneId => lane,
            // `tid / 32` is constant across a warp.
            SpecialReg::WarpId => ctx.warp,
        },
    }
}

/// A warp-wide register file: one operand's value for all 32 lanes,
/// stored word-plane-major so 32-bit opcodes stream over one contiguous
/// `[u32; 32]`. Planes at or past `words` are logically zero.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WarpOperand {
    pub planes: [[u32; 32]; 4],
    pub words: u8,
}

impl WarpOperand {
    /// Lane `l`'s word 0 (the scalar view 32-bit opcodes use).
    #[inline]
    pub fn w0(&self, lane: usize) -> u32 {
        self.planes[0][lane]
    }

    /// Lane `l`'s full value (zero-extended past `words`, exactly like
    /// the scalar `read_loc`).
    #[inline]
    pub fn val(&self, lane: usize) -> Val {
        let mut v = Val::default();
        for j in 0..usize::from(self.words) {
            v.w[j] = self.planes[j][lane];
        }
        v
    }
}

/// Evaluate `op` over warp-wide operands into `out` word planes.
///
/// All 32 lanes are computed unconditionally — every ALU opcode is pure
/// and total, so inactive lanes' garbage inputs produce garbage outputs
/// that the masked [`SoaCta::scatter`] never writes back. Hot
/// single-word opcodes use explicit plane loops built from the *same
/// scalar expressions* as [`eval_alu`]; the rest assemble per-lane
/// [`Val`]s and call [`eval_alu`] itself, so semantics cannot drift.
pub(crate) fn warp_alu(op: &Opcode, srcs: &[WarpOperand], out: &mut WarpOperand) {
    use Opcode::*;
    out.words = 1;
    match op {
        IAdd => bin_i32(srcs, out, |a, b| a.wrapping_add(b)),
        ISub => bin_i32(srcs, out, |a, b| a.wrapping_sub(b)),
        IMul => bin_i32(srcs, out, |a, b| a.wrapping_mul(b)),
        IMin => bin_i32(srcs, out, i32::min),
        IMax => bin_i32(srcs, out, i32::max),
        IMad => {
            for l in 0..32 {
                let v = (srcs[0].w0(l) as i32)
                    .wrapping_mul(srcs[1].w0(l) as i32)
                    .wrapping_add(srcs[2].w0(l) as i32);
                out.planes[0][l] = v as u32;
            }
        }
        Shl => bin_u32(srcs, out, |a, b| a << (b & 31)),
        Shr => bin_u32(srcs, out, |a, b| a >> (b & 31)),
        And => bin_u32(srcs, out, |a, b| a & b),
        Or => bin_u32(srcs, out, |a, b| a | b),
        Xor => bin_u32(srcs, out, |a, b| a ^ b),
        FAdd => bin_f32(srcs, out, |a, b| a + b),
        FSub => bin_f32(srcs, out, |a, b| a - b),
        FMul => bin_f32(srcs, out, |a, b| a * b),
        FMin => bin_f32(srcs, out, f32::min),
        FMax => bin_f32(srcs, out, f32::max),
        FFma => {
            for l in 0..32 {
                let v = f32::from_bits(srcs[0].w0(l))
                    .mul_add(f32::from_bits(srcs[1].w0(l)), f32::from_bits(srcs[2].w0(l)));
                out.planes[0][l] = v.to_bits();
            }
        }
        Mov if srcs[0].words <= 1 => out.planes[0] = srcs[0].planes[0],
        // Wide moves, doubles, conversions, pack/unpack, rcp/sqrt, …:
        // per-lane through the shared scalar semantics.
        _ => {
            out.words = 4;
            for l in 0..32 {
                let mut vals = [Val::default(); 4];
                for (k, s) in srcs.iter().enumerate() {
                    vals[k] = s.val(l);
                }
                let v = eval_alu(op, &vals[..srcs.len()]);
                for j in 0..4 {
                    out.planes[j][l] = v.w[j];
                }
            }
        }
    }
}

#[inline]
fn bin_i32(srcs: &[WarpOperand], out: &mut WarpOperand, f: impl Fn(i32, i32) -> i32) {
    for l in 0..32 {
        out.planes[0][l] = f(srcs[0].w0(l) as i32, srcs[1].w0(l) as i32) as u32;
    }
}

#[inline]
fn bin_u32(srcs: &[WarpOperand], out: &mut WarpOperand, f: impl Fn(u32, u32) -> u32) {
    for l in 0..32 {
        out.planes[0][l] = f(srcs[0].w0(l), srcs[1].w0(l));
    }
}

#[inline]
fn bin_f32(srcs: &[WarpOperand], out: &mut WarpOperand, f: impl Fn(f32, f32) -> f32) {
    for l in 0..32 {
        out.planes[0][l] =
            f(f32::from_bits(srcs[0].w0(l)), f32::from_bits(srcs[1].w0(l))).to_bits();
    }
}
