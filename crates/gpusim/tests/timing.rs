//! Timing-behavior tests: the simulator must exhibit the qualitative
//! mechanisms the paper's occupancy tuning relies on.

use orion_alloc::realize::{allocate, AllocOptions, SlotBudget};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_gpusim::sim::run_launch;
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::interp::LaunchConfig;
use orion_kir::mir::MModule;
use orion_kir::types::{MemSpace, SpecialReg, Width};

/// A streaming (memory-bound) kernel: out[gid] = f(in[gid]) with a few
/// FMAs per element.
fn streaming_kernel(flops: usize) -> Module {
    let mut b = FunctionBuilder::kernel("stream");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let mut acc = x;
    for _ in 0..flops {
        acc = b.ffma(acc, x, Operand::Imm(0x3f800000));
    }
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, acc, 0);
    Module::new(b.finish())
}

fn compile(m: &Module, regs: u16, smem: u16) -> MModule {
    allocate(m, SlotBudget { reg_slots: regs, smem_slots: smem }, &AllocOptions::default())
        .unwrap()
        .machine
}

/// Run with an artificial occupancy cap by inflating the reported
/// register count of the binary (same code, fewer resident warps).
fn run_at_regs(
    dev: &DeviceSpec,
    mut machine: MModule,
    fake_regs: u16,
    launch: Launch,
    n: u32,
) -> u64 {
    machine.regs_per_thread = machine.regs_per_thread.max(fake_regs);
    let mut global = vec![0u8; (8 * n) as usize];
    run_launch(dev, &machine, launch, &[0, 4 * n], &mut global).unwrap().cycles
}

#[test]
fn more_warps_hide_memory_latency() {
    // Memory-bound streaming kernel: occupancy 8 warps vs 32 warps.
    let dev = DeviceSpec::gtx680();
    let m = streaming_kernel(4);
    let machine = compile(&m, 16, 0);
    let n = 256 * 64;
    let launch = Launch { grid: 64, block: 256 };
    // regs=16 → high occupancy; fake 63 regs → 32 warps; fake huge smem
    // is not needed: use register-limited residency.
    let fast = run_at_regs(&dev, machine.clone(), 0, launch, n);
    let slow = run_at_regs(&dev, machine, 63, launch, n);
    assert!(slow > fast * 3 / 2, "low occupancy {slow} should be clearly slower than high {fast}");
}

#[test]
fn compute_bound_kernel_insensitive_to_occupancy() {
    // Heavy dependent-FMA chain per element: ALU latency dominates and a
    // moderate warp count already saturates issue slots.
    let dev = DeviceSpec::gtx680();
    let m = streaming_kernel(64);
    let machine = compile(&m, 16, 0);
    let n = 256 * 16;
    let launch = Launch { grid: 16, block: 256 };
    let high = run_at_regs(&dev, machine.clone(), 0, launch, n);
    let half = run_at_regs(&dev, machine, 32, launch, n); // 32 regs → 64 warps? still high
    let ratio = half as f64 / high as f64;
    assert!(ratio < 1.25, "plateau expected, got ratio {ratio}");
}

#[test]
fn spills_cost_time() {
    // The same high-pressure kernel compiled with ample vs starved slots.
    let mut b = FunctionBuilder::kernel("pressure");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let vals: Vec<_> = (1..=16)
        .map(|k| {
            let c = b.mov_f32(k as f32);
            b.fmul(x, c)
        })
        .collect();
    let mut acc = b.mov_f32(0.0);
    for v in vals {
        acc = b.fadd(acc, v);
    }
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, acc, 0);
    let m = Module::new(b.finish());

    let dev = DeviceSpec::c2075();
    let launch = Launch { grid: 28, block: 128 };
    let n = 128 * 28;
    let roomy = compile(&m, 32, 0);
    let starved = compile(&m, 4, 0); // everything else spills to local
    assert!(starved.local_slots_per_thread > roomy.local_slots_per_thread);
    let mut g1 = vec![0u8; (8 * n) as usize];
    let t_roomy = run_launch(&dev, &roomy, launch, &[0, 4 * n], &mut g1).unwrap().cycles;
    let mut g2 = vec![0u8; (8 * n) as usize];
    let t_starved = run_launch(&dev, &starved, launch, &[0, 4 * n], &mut g2).unwrap().cycles;
    assert_eq!(g1, g2, "spilling must not change results");
    assert!(t_starved > t_roomy, "spills should cost cycles: {t_starved} vs {t_roomy}");
}

#[test]
fn smem_slots_cheaper_than_local_spills() {
    // Same pressure kernel: starved registers with smem slots available
    // vs starved registers spilling to local memory.
    let m = streaming_kernel(0);
    let mut b = FunctionBuilder::kernel("p2");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let vals: Vec<_> = (1..=10)
        .map(|k| {
            let c = b.mov_f32(k as f32);
            b.fmul(x, c)
        })
        .collect();
    let mut acc = b.mov_f32(0.0);
    for v in vals {
        acc = b.fadd(acc, v);
    }
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, acc, 0);
    let m2 = Module::new(b.finish());
    drop(m);

    let dev = DeviceSpec::c2075();
    let launch = Launch { grid: 28, block: 128 };
    let n = 128 * 28;
    let with_smem = compile(&m2, 4, 10);
    let with_local = compile(&m2, 4, 0);
    assert!(with_smem.smem_slots_per_thread > 0);
    assert!(with_local.local_slots_per_thread > with_smem.local_slots_per_thread);
    let mut g1 = vec![0u8; (8 * n) as usize];
    let t_smem = run_launch(&dev, &with_smem, launch, &[0, 4 * n], &mut g1).unwrap().cycles;
    let mut g2 = vec![0u8; (8 * n) as usize];
    let t_local = run_launch(&dev, &with_local, launch, &[0, 4 * n], &mut g2).unwrap().cycles;
    assert_eq!(g1, g2);
    assert!(
        t_smem < t_local,
        "shared-memory slots should beat local spills: {t_smem} vs {t_local}"
    );
}

#[test]
fn unlaunchable_when_smem_exceeds_sm() {
    let mut b = FunctionBuilder::kernel("fat");
    let x = b.mov_i32(1);
    b.st(MemSpace::Global, Width::W32, Operand::Imm(0), x, 0);
    let mut m = Module::new(b.finish());
    m.user_smem_bytes = 49 * 1024; // > 48KB SC budget
    let machine = compile(&m, 16, 0);
    let dev = DeviceSpec::c2075();
    let mut g = vec![0u8; 64];
    let err = run_launch(&dev, &machine, Launch { grid: 1, block: 32 }, &[], &mut g);
    assert!(err.is_err());
}

#[test]
fn barrier_synchronizes_timing_and_values() {
    // Producer/consumer through shared memory across a barrier.
    let mut b = FunctionBuilder::kernel("barrier");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let saddr = b.imul(tid, Operand::Imm(4));
    b.st(MemSpace::Shared, Width::W32, saddr, tid, 0);
    b.bar();
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let last = b.isub(nt, Operand::Imm(1));
    let ridx = b.isub(last, tid);
    let raddr = b.imul(ridx, Operand::Imm(4));
    let v = b.ld(MemSpace::Shared, Width::W32, raddr, 0);
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let gid = b.imad(cta, nt, tid);
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    b.st(MemSpace::Global, Width::W32, out, v, 0);
    let mut m = Module::new(b.finish());
    m.user_smem_bytes = 4 * 128;
    let machine = compile(&m, 16, 0);
    let dev = DeviceSpec::gtx680();
    let mut g = vec![0u8; 4 * 256];
    let r = run_launch(&dev, &machine, Launch { grid: 2, block: 128 }, &[0], &mut g).unwrap();
    assert!(r.stats.barriers >= 8, "4 warps × 2 blocks, got {}", r.stats.barriers);
    for i in 0..128u32 {
        let v = u32::from_le_bytes(g[(i * 4) as usize..(i * 4 + 4) as usize].try_into().unwrap());
        assert_eq!(v, 127 - i);
    }
}

#[test]
fn coalesced_beats_strided_access() {
    // Coalesced: addr = gid*4. Strided: addr = (gid*32 % N)*4 — each warp
    // touches 32 distinct lines.
    fn kernel(stride: bool, n: u32) -> Module {
        let mut b = FunctionBuilder::kernel(if stride { "strided" } else { "coalesced" });
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
        let nt = b.mov(Operand::Special(SpecialReg::NTidX));
        let gid = b.imad(cta, nt, tid);
        let idx = if stride {
            // Odd multiplier: a bijection mod 2^k, so there is no reuse,
            // but each warp's lanes scatter over 32+ distinct lines.
            let scaled = b.imul(gid, Operand::Imm(33));
            b.and(scaled, Operand::Imm(i64::from(n - 1)))
        } else {
            gid
        };
        let addr = b.imad(idx, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let y = b.iadd(x, Operand::Imm(1));
        let oaddr = b.imad(gid, Operand::Imm(4), Operand::Param(1));
        b.st(MemSpace::Global, Width::W32, oaddr, y, 0);
        Module::new(b.finish())
    }
    let dev = DeviceSpec::gtx680();
    let n: u32 = 1 << 15;
    let launch = Launch { grid: (n / 256), block: 256 };
    let run = |m: &Module| {
        let machine = compile(m, 16, 0);
        let mut g = vec![0u8; (8 * n) as usize];
        run_launch(&dev, &machine, launch, &[0, 4 * n], &mut g).unwrap()
    };
    let co = run(&kernel(false, n));
    let st = run(&kernel(true, n));
    assert!(st.cycles > co.cycles * 2, "strided {} vs coalesced {}", st.cycles, co.cycles);
    assert!(st.stats.mem.dram_transactions > co.stats.mem.dram_transactions);
}

#[test]
fn launch_config_helpers() {
    assert_eq!(LaunchConfig { grid: 3, block: 64 }.total_threads(), 192);
}
