//! Stall-attribution invariants: the six per-cycle buckets partition
//! every SM-cycle of a run, so they must sum to `cycles × num_sms`
//! exactly, and the binding-constraint classifier must charge the
//! bucket that actually gated issue.

use orion_alloc::realize::{allocate, AllocOptions, SlotBudget};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_gpusim::sim::run_launch;
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::mir::MModule;
use orion_kir::types::{MemSpace, SpecialReg, Width};

fn compile(m: &Module, regs: u16, smem: u16) -> MModule {
    allocate(m, SlotBudget { reg_slots: regs, smem_slots: smem }, &AllocOptions::default())
        .unwrap()
        .machine
}

/// out[gid] = f(in[gid]) with `flops` dependent FMAs per element.
fn streaming_kernel(flops: usize) -> Module {
    let mut b = FunctionBuilder::kernel("stream");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let mut acc = x;
    for _ in 0..flops {
        acc = b.ffma(acc, x, Operand::Imm(0x3f80_0000));
    }
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, acc, 0);
    Module::new(b.finish())
}

/// Shared-memory exchange across a barrier.
fn barrier_kernel() -> Module {
    let mut b = FunctionBuilder::kernel("barrier");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let saddr = b.imul(tid, Operand::Imm(4));
    b.st(MemSpace::Shared, Width::W32, saddr, tid, 0);
    b.bar();
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let last = b.isub(nt, Operand::Imm(1));
    let ridx = b.isub(last, tid);
    let raddr = b.imul(ridx, Operand::Imm(4));
    let v = b.ld(MemSpace::Shared, Width::W32, raddr, 0);
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let gid = b.imad(cta, nt, tid);
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    b.st(MemSpace::Global, Width::W32, out, v, 0);
    let mut m = Module::new(b.finish());
    m.user_smem_bytes = 4 * 128;
    m
}

fn assert_partition(dev: &DeviceSpec, machine: &MModule, launch: Launch, params: &[u32], n: u32) {
    let mut global = vec![0u8; (8 * n) as usize];
    let r = run_launch(dev, machine, launch, params, &mut global).unwrap();
    let st = &r.stats.stalls;
    assert_eq!(
        st.total(),
        r.cycles * u64::from(r.num_sms),
        "stall buckets must partition cycles x num_sms: {st:?}"
    );
    assert!(st.issued > 0 && st.issued <= r.stats.warp_insts, "issue cycles bounded by insts");
    assert_eq!(r.per_sm.len(), r.num_sms as usize, "one rollup per SM, idle included");
    let mut per_sm_sum = 0u64;
    for sm in &r.per_sm {
        assert_eq!(
            sm.stalls.total(),
            r.cycles,
            "each SM's buckets (after device-drain padding) cover the full run"
        );
        // Terminators (branch/ret/exit) consume issue slots but are not
        // counted as warp instructions, so the rollup is a superset.
        assert!(
            sm.per_warp_slot_issued.iter().sum::<u64>() >= sm.warp_insts,
            "per-warp-slot rollup covers at least the SM instruction count"
        );
        per_sm_sum += sm.stalls.total();
    }
    assert_eq!(per_sm_sum, st.total(), "per-SM rollups must absorb into the aggregate");
}

#[test]
fn memory_bound_stalls_partition_and_charge_mem() {
    let dev = DeviceSpec::gtx680();
    let machine = compile(&streaming_kernel(2), 16, 0);
    let n = 256 * 16;
    let launch = Launch { grid: 16, block: 256 };
    assert_partition(&dev, &machine, launch, &[0, 4 * n], n);

    let mut global = vec![0u8; (8 * n) as usize];
    let r = run_launch(&dev, &machine, launch, &[0, 4 * n], &mut global).unwrap();
    assert!(
        r.stats.stalls.mem_pending > r.stats.stalls.scoreboard,
        "a streaming kernel waits on memory, not ALU RAW: {:?}",
        r.stats.stalls
    );
}

#[test]
fn occupancy_capped_run_still_partitions() {
    // Same code with the reported register count inflated: fewer
    // resident warps, longer exposed latency — the accounting identity
    // must hold at both occupancies.
    let dev = DeviceSpec::gtx680();
    let mut machine = compile(&streaming_kernel(2), 16, 0);
    machine.regs_per_thread = 63;
    let n = 256 * 16;
    assert_partition(&dev, &machine, Launch { grid: 16, block: 256 }, &[0, 4 * n], n);
}

#[test]
fn barrier_kernel_charges_barrier_bucket() {
    let dev = DeviceSpec::c2075();
    let machine = compile(&barrier_kernel(), 16, 0);
    let n = 256u32;
    assert_partition(&dev, &machine, Launch { grid: 2, block: 128 }, &[0], n);

    let mut global = vec![0u8; (8 * n) as usize];
    let r = run_launch(&dev, &machine, Launch { grid: 2, block: 128 }, &[0], &mut global).unwrap();
    assert!(
        r.stats.stalls.barrier > 0,
        "a bar.sync kernel must charge the barrier bucket: {:?}",
        r.stats.stalls
    );
}

#[test]
fn underfilled_device_charges_idle_sms_to_no_eligible() {
    // One CTA on a multi-SM device: every other SM idles for the whole
    // run and must be padded into no_eligible.
    let dev = DeviceSpec::gtx680();
    let machine = compile(&streaming_kernel(2), 16, 0);
    let n = 256u32;
    let mut global = vec![0u8; (8 * n) as usize];
    let r = run_launch(&dev, &machine, Launch { grid: 1, block: 256 }, &[0, 4 * n], &mut global)
        .unwrap();
    assert!(r.num_sms > 1);
    assert_eq!(r.stats.stalls.total(), r.cycles * u64::from(r.num_sms));
    assert!(
        r.stats.stalls.no_eligible >= r.cycles * (u64::from(r.num_sms) - 1),
        "idle SMs contribute full-run no_eligible time: {:?}",
        r.stats.stalls
    );
    let busy = r.per_sm.iter().filter(|s| s.blocks > 0).count();
    assert_eq!(busy, 1, "exactly one SM should have received the single CTA");
}
