//! Scheduler-equivalence and fan-out determinism regressions.
//!
//! The engine defines one scheduling total order — issue the runnable
//! warp minimizing `(ready_cycle, warp_id)` lexicographically — and two
//! implementations of it (the reference linear scan, whose strict
//! `r < br` comparison keeps the first index on ties, and the event
//! heap keyed on exactly that pair). These tests pin that the
//! implementations, and the serial/parallel SM fan-out, are
//! bit-identical: same cycles, same stall buckets, same per-SM rollups,
//! same global memory bytes.

use orion_alloc::realize::{allocate, AllocOptions, SlotBudget};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_gpusim::sim::{run_launch_opts, LaunchOptions, RunResult};
use orion_gpusim::Scheduler;
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::mir::MModule;
use orion_kir::types::{MemSpace, SpecialReg, Width};

fn compile(m: &Module, regs: u16, smem: u16) -> MModule {
    allocate(m, SlotBudget { reg_slots: regs, smem_slots: smem }, &AllocOptions::default())
        .unwrap()
        .machine
}

/// out[gid] = f(in[gid]) with dependent FMAs (latency-bound warps whose
/// ready times interleave — plenty of scheduling ties to resolve).
fn streaming_kernel(flops: usize) -> Module {
    let mut b = FunctionBuilder::kernel("stream");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let mut acc = x;
    for _ in 0..flops {
        acc = b.ffma(acc, x, Operand::Imm(0x3f80_0000));
    }
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, acc, 0);
    Module::new(b.finish())
}

/// Shared-memory exchange across a barrier (exercises barrier release,
/// where a whole CTA's warps re-enter the ready queue at once).
fn barrier_kernel() -> Module {
    let mut b = FunctionBuilder::kernel("barrier");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let saddr = b.imul(tid, Operand::Imm(4));
    b.st(MemSpace::Shared, Width::W32, saddr, tid, 0);
    b.bar();
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let last = b.isub(nt, Operand::Imm(1));
    let ridx = b.isub(last, tid);
    let raddr = b.imul(ridx, Operand::Imm(4));
    let v = b.ld(MemSpace::Shared, Width::W32, raddr, 0);
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let gid = b.imad(cta, nt, tid);
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    b.st(MemSpace::Global, Width::W32, out, v, 0);
    let mut m = Module::new(b.finish());
    m.user_smem_bytes = 4 * 128;
    m
}

fn run_with(
    dev: &DeviceSpec,
    machine: &MModule,
    launch: Launch,
    params: &[u32],
    bytes: usize,
    opts: LaunchOptions,
) -> (RunResult, Vec<u8>) {
    let mut global = vec![0u8; bytes];
    let r = run_launch_opts(dev, machine, launch, params, &mut global, opts).unwrap();
    (r, global)
}

/// Every (scheduler, parallelism) combination must agree bit-for-bit
/// with the seed configuration (linear scan, single thread).
fn assert_all_configs_identical(
    dev: &DeviceSpec,
    machine: &MModule,
    launch: Launch,
    params: &[u32],
    bytes: usize,
) {
    let base = LaunchOptions {
        parallelism: 1,
        scheduler: Scheduler::LinearScan,
        ..LaunchOptions::default()
    };
    let (reference, ref_global) = run_with(dev, machine, launch, params, bytes, base);
    for scheduler in [Scheduler::LinearScan, Scheduler::EventHeap] {
        for parallelism in [1u32, 2, 3, dev.num_sms] {
            let opts = LaunchOptions { parallelism, scheduler, ..LaunchOptions::default() };
            let (r, global) = run_with(dev, machine, launch, params, bytes, opts);
            assert_eq!(
                r, reference,
                "{scheduler:?}/parallelism={parallelism} diverged from the seed configuration"
            );
            assert_eq!(
                global, ref_global,
                "{scheduler:?}/parallelism={parallelism} produced different memory"
            );
        }
    }
}

#[test]
fn heap_and_scan_agree_on_latency_bound_kernel() {
    let dev = DeviceSpec::gtx680();
    let machine = compile(&streaming_kernel(6), 16, 0);
    let n = 256 * 24;
    assert_all_configs_identical(
        &dev,
        &machine,
        Launch { grid: 24, block: 256 },
        &[0, 4 * n],
        (8 * n) as usize,
    );
}

#[test]
fn heap_and_scan_agree_across_barriers() {
    let dev = DeviceSpec::c2075();
    let machine = compile(&barrier_kernel(), 16, 0);
    let n = 128 * 6;
    assert_all_configs_identical(
        &dev,
        &machine,
        Launch { grid: 6, block: 128 },
        &[0],
        (4 * n) as usize,
    );
}

#[test]
fn heap_and_scan_agree_under_register_pressure() {
    // A tight slot budget forces spills: local-memory (always "memory")
    // readiness competes with ALU readiness, stressing the tie-break
    // between `Wait` reasons that ride along with the ready time.
    let dev = DeviceSpec::gtx680();
    let machine = compile(&streaming_kernel(8), 4, 2);
    let n = 128 * 16;
    assert_all_configs_identical(
        &dev,
        &machine,
        Launch { grid: 16, block: 128 },
        &[0, 4 * n],
        (8 * n) as usize,
    );
}

#[test]
fn errors_are_identical_across_fanout() {
    // The output region is truncated so the first out-of-bounds store
    // lands on SM 3 (block 3): whichever configuration runs it, the
    // reported error AND the memory state must match the serial engine
    // — SMs 0-2 ran to completion, SM 3's partial writes landed, and
    // SMs 4+ (which the serial engine never reached) left no trace.
    let dev = DeviceSpec::gtx680();
    let machine = compile(&streaming_kernel(2), 16, 0);
    let n = 256 * 16;
    let launch = Launch { grid: 16, block: 256 };
    let params = [0u32, 4 * n];
    // Inputs need bytes [0, 16384); outputs start at 16384, so 20000
    // bytes cuts the output region off inside block 3.
    let bytes = 20000usize;
    let base = LaunchOptions {
        parallelism: 1,
        scheduler: Scheduler::LinearScan,
        ..LaunchOptions::default()
    };
    let mut ref_global = vec![0u8; bytes];
    let reference =
        run_launch_opts(&dev, &machine, launch, &params, &mut ref_global, base).unwrap_err();
    for scheduler in [Scheduler::LinearScan, Scheduler::EventHeap] {
        for parallelism in [2u32, dev.num_sms] {
            let opts = LaunchOptions { parallelism, scheduler, ..LaunchOptions::default() };
            let mut g = vec![0u8; bytes];
            let err = run_launch_opts(&dev, &machine, launch, &params, &mut g, opts).unwrap_err();
            assert_eq!(err, reference, "{scheduler:?}/parallelism={parallelism}");
            assert_eq!(
                g, ref_global,
                "{scheduler:?}/parallelism={parallelism} left different memory after the error"
            );
        }
    }
}
