//! Scheduler-, layout-, and fan-out-equivalence regressions.
//!
//! The engine defines one scheduling total order — issue the runnable
//! warp minimizing `(ready_cycle, warp_id)` lexicographically — and two
//! implementations of it (the reference linear scan, whose strict
//! `r < br` comparison keeps the first index on ties, and the event
//! heap keyed on exactly that pair). Orthogonally it defines two
//! lane-state memory layouts — the reference array-of-structs and the
//! pooled structure-of-arrays arenas — that execute the same predecoded
//! program. These tests pin that every (scheduler, layout, parallelism)
//! configuration is bit-identical: same cycles, same stall buckets,
//! same per-SM rollups, same global memory bytes, same error variant at
//! the same cycle.

use orion_alloc::realize::{allocate, AllocOptions, SlotBudget};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_gpusim::sim::{run_launch_opts, LaunchOptions, RunResult};
use orion_gpusim::{LaneLayout, Scheduler};
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::{Cmp, Operand};
use orion_kir::mir::MModule;
use orion_kir::types::{MemSpace, PredReg, SpecialReg, Width};

fn compile(m: &Module, regs: u16, smem: u16) -> MModule {
    allocate(m, SlotBudget { reg_slots: regs, smem_slots: smem }, &AllocOptions::default())
        .unwrap()
        .machine
}

/// out[gid] = f(in[gid]) with dependent FMAs (latency-bound warps whose
/// ready times interleave — plenty of scheduling ties to resolve).
fn streaming_kernel(flops: usize) -> Module {
    let mut b = FunctionBuilder::kernel("stream");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let mut acc = x;
    for _ in 0..flops {
        acc = b.ffma(acc, x, Operand::Imm(0x3f80_0000));
    }
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, acc, 0);
    Module::new(b.finish())
}

/// Shared-memory exchange across a barrier (exercises barrier release,
/// where a whole CTA's warps re-enter the ready queue at once).
fn barrier_kernel() -> Module {
    let mut b = FunctionBuilder::kernel("barrier");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let saddr = b.imul(tid, Operand::Imm(4));
    b.st(MemSpace::Shared, Width::W32, saddr, tid, 0);
    b.bar();
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let last = b.isub(nt, Operand::Imm(1));
    let ridx = b.isub(last, tid);
    let raddr = b.imul(ridx, Operand::Imm(4));
    let v = b.ld(MemSpace::Shared, Width::W32, raddr, 0);
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let gid = b.imad(cta, nt, tid);
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    b.st(MemSpace::Global, Width::W32, out, v, 0);
    let mut m = Module::new(b.finish());
    m.user_smem_bytes = 4 * 128;
    m
}

/// Full-warp divergent branch with unbalanced arms: odd/even lanes take
/// different paths (3x+1 vs x/2), reconverging at the join — exercises
/// the SIMT stack and the packed-predicate branch evaluation.
fn divergent_kernel() -> Module {
    let mut b = FunctionBuilder::kernel("diverge");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let bit = b.and(x, Operand::Imm(1));
    b.isetp(Cmp::Ne, bit, Operand::Imm(0), PredReg(0));
    let odd = b.new_block();
    let even = b.new_block();
    let join = b.new_block();
    b.branch(PredReg(0), false, odd, even);
    b.switch_to(odd);
    let three = b.imad(x, Operand::Imm(3), Operand::Imm(1));
    b.jump(join);
    b.switch_to(even);
    let half = b.shr(x, Operand::Imm(1));
    b.jump(join);
    b.switch_to(join);
    let res = b.sel(PredReg(0), three, half);
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, res, 0);
    b.exit();
    Module::new(b.finish())
}

/// Worst-case shared-memory banking: every lane of a warp hits the same
/// bank at a distinct word (`word = lane*32 + warp`), a 32-way conflict
/// on store and load — exercises the conflict-degree serialization and
/// its issue-cost clamp. Words are distinct per thread, so there are no
/// cross-warp write races to make the result order-dependent.
fn bank_conflict_kernel() -> Module {
    let mut b = FunctionBuilder::kernel("conflict");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let lane = b.mov(Operand::Special(SpecialReg::LaneId));
    let warp = b.mov(Operand::Special(SpecialReg::WarpId));
    let word = b.imad(lane, Operand::Imm(32), warp);
    let saddr = b.imul(word, Operand::Imm(4));
    b.st(MemSpace::Shared, Width::W32, saddr, tid, 0);
    b.bar();
    let v = b.ld(MemSpace::Shared, Width::W32, saddr, 0);
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    b.st(MemSpace::Global, Width::W32, out, v, 0);
    let mut m = Module::new(b.finish());
    m.user_smem_bytes = 4 * 32 * 32;
    m
}

fn run_with(
    dev: &DeviceSpec,
    machine: &MModule,
    launch: Launch,
    params: &[u32],
    bytes: usize,
    opts: LaunchOptions,
) -> (RunResult, Vec<u8>) {
    let mut global = vec![0u8; bytes];
    let r = run_launch_opts(dev, machine, launch, params, &mut global, opts).unwrap();
    (r, global)
}

/// The seed configuration every sweep compares against: the reference
/// scheduler and the reference lane layout on a single thread.
fn reference_opts() -> LaunchOptions {
    LaunchOptions {
        parallelism: 1,
        scheduler: Scheduler::LinearScan,
        layout: LaneLayout::Aos,
        ..LaunchOptions::default()
    }
}

/// Every (scheduler, layout, parallelism) combination must agree
/// bit-for-bit with the seed configuration (linear scan, AoS lanes,
/// single thread).
fn assert_all_configs_identical(
    dev: &DeviceSpec,
    machine: &MModule,
    launch: Launch,
    params: &[u32],
    bytes: usize,
) {
    let (reference, ref_global) = run_with(dev, machine, launch, params, bytes, reference_opts());
    for scheduler in [Scheduler::LinearScan, Scheduler::EventHeap] {
        for layout in [LaneLayout::Aos, LaneLayout::Soa] {
            for parallelism in [1u32, 2, 3, dev.num_sms] {
                let opts =
                    LaunchOptions { parallelism, scheduler, layout, ..LaunchOptions::default() };
                let (r, global) = run_with(dev, machine, launch, params, bytes, opts);
                assert_eq!(
                    r, reference,
                    "{scheduler:?}/{layout:?}/parallelism={parallelism} diverged from the seed \
                     configuration"
                );
                assert_eq!(
                    global, ref_global,
                    "{scheduler:?}/{layout:?}/parallelism={parallelism} produced different memory"
                );
            }
        }
    }
}

#[test]
fn heap_and_scan_agree_on_latency_bound_kernel() {
    let dev = DeviceSpec::gtx680();
    let machine = compile(&streaming_kernel(6), 16, 0);
    let n = 256 * 24;
    assert_all_configs_identical(
        &dev,
        &machine,
        Launch { grid: 24, block: 256 },
        &[0, 4 * n],
        (8 * n) as usize,
    );
}

#[test]
fn heap_and_scan_agree_across_barriers() {
    let dev = DeviceSpec::c2075();
    let machine = compile(&barrier_kernel(), 16, 0);
    let n = 128 * 6;
    assert_all_configs_identical(
        &dev,
        &machine,
        Launch { grid: 6, block: 128 },
        &[0],
        (4 * n) as usize,
    );
}

#[test]
fn heap_and_scan_agree_under_register_pressure() {
    // A tight slot budget forces spills: local-memory (always "memory")
    // readiness competes with ALU readiness, stressing the tie-break
    // between `Wait` reasons that ride along with the ready time.
    let dev = DeviceSpec::gtx680();
    let machine = compile(&streaming_kernel(8), 4, 2);
    let n = 128 * 16;
    assert_all_configs_identical(
        &dev,
        &machine,
        Launch { grid: 16, block: 128 },
        &[0, 4 * n],
        (8 * n) as usize,
    );
}

#[test]
fn errors_are_identical_across_fanout() {
    // The output region is truncated so the first out-of-bounds store
    // lands on SM 3 (block 3): whichever configuration runs it, the
    // reported error AND the memory state must match the serial engine
    // — SMs 0-2 ran to completion, SM 3's partial writes landed, and
    // SMs 4+ (which the serial engine never reached) left no trace.
    let dev = DeviceSpec::gtx680();
    let machine = compile(&streaming_kernel(2), 16, 0);
    let n = 256 * 16;
    let launch = Launch { grid: 16, block: 256 };
    let params = [0u32, 4 * n];
    // Inputs need bytes [0, 16384); outputs start at 16384, so 20000
    // bytes cuts the output region off inside block 3.
    let bytes = 20000usize;
    let base = LaunchOptions {
        parallelism: 1,
        scheduler: Scheduler::LinearScan,
        ..LaunchOptions::default()
    };
    let mut ref_global = vec![0u8; bytes];
    let reference =
        run_launch_opts(&dev, &machine, launch, &params, &mut ref_global, base).unwrap_err();
    for scheduler in [Scheduler::LinearScan, Scheduler::EventHeap] {
        for layout in [LaneLayout::Aos, LaneLayout::Soa] {
            for parallelism in [2u32, dev.num_sms] {
                let opts =
                    LaunchOptions { parallelism, scheduler, layout, ..LaunchOptions::default() };
                let mut g = vec![0u8; bytes];
                let err =
                    run_launch_opts(&dev, &machine, launch, &params, &mut g, opts).unwrap_err();
                assert_eq!(err, reference, "{scheduler:?}/{layout:?}/parallelism={parallelism}");
                assert_eq!(
                    g, ref_global,
                    "{scheduler:?}/{layout:?}/parallelism={parallelism} left different memory \
                     after the error"
                );
            }
        }
    }
}

/// The layout-equivalence sweep of the SoA rebuild: three workloads
/// (latency-bound streaming, full-warp divergence, 32-way bank
/// conflicts) × two occupancy settings (native, and shared-memory
/// padding that halves residency) must be bit-identical between the SoA
/// engine and the LinearScan/AoS reference — cycles, per-SM stall
/// rollups, memory counters, and global memory bytes.
#[test]
fn soa_layout_is_bit_identical_across_workloads_and_occupancy() {
    let dev = DeviceSpec::gtx680();
    let n_threads = |launch: Launch| launch.grid * launch.block;
    let cases: [(&str, MModule, Launch, Vec<u32>, u32); 3] = {
        let stream_launch = Launch { grid: 16, block: 128 };
        let div_launch = Launch { grid: 12, block: 128 };
        let bank_launch = Launch { grid: 8, block: 128 };
        [
            (
                "stream",
                compile(&streaming_kernel(6), 16, 0),
                stream_launch,
                vec![0, 4 * n_threads(stream_launch)],
                8 * n_threads(stream_launch),
            ),
            (
                "diverge",
                compile(&divergent_kernel(), 16, 0),
                div_launch,
                vec![0, 4 * n_threads(div_launch)],
                8 * n_threads(div_launch),
            ),
            (
                "conflict",
                compile(&bank_conflict_kernel(), 16, 0),
                bank_launch,
                vec![0],
                4 * n_threads(bank_launch),
            ),
        ]
    };
    for (name, machine, launch, params, bytes) in &cases {
        for extra_smem in [0u32, 24 * 1024] {
            let base = reference_opts().with_extra_smem(extra_smem);
            let (reference, ref_global) =
                run_with(&dev, machine, *launch, params, *bytes as usize, base);
            for scheduler in [Scheduler::LinearScan, Scheduler::EventHeap] {
                let opts = LaunchOptions {
                    scheduler,
                    layout: LaneLayout::Soa,
                    parallelism: 1,
                    ..LaunchOptions::default()
                }
                .with_extra_smem(extra_smem);
                let (r, global) = run_with(&dev, machine, *launch, params, *bytes as usize, opts);
                assert_eq!(
                    r, reference,
                    "{name}/smem+{extra_smem}/{scheduler:?}: SoA diverged from the AoS reference"
                );
                assert_eq!(
                    global, ref_global,
                    "{name}/smem+{extra_smem}/{scheduler:?}: SoA produced different memory"
                );
            }
        }
    }
}

#[test]
fn layouts_agree_on_divergent_branches() {
    let dev = DeviceSpec::c2075();
    let machine = compile(&divergent_kernel(), 16, 0);
    let n = 128 * 12;
    assert_all_configs_identical(
        &dev,
        &machine,
        Launch { grid: 12, block: 128 },
        &[0, 4 * n],
        (8 * n) as usize,
    );
}

#[test]
fn layouts_agree_on_bank_conflicts() {
    let dev = DeviceSpec::gtx680();
    let machine = compile(&bank_conflict_kernel(), 16, 0);
    let n = 128 * 8;
    assert_all_configs_identical(
        &dev,
        &machine,
        Launch { grid: 8, block: 128 },
        &[0],
        (4 * n) as usize,
    );
}

/// Fault-seed sweep: under deterministic chaos (transients, resource
/// kills, hangs, jitter) both layouts must fail — or survive — with the
/// same outcome at the same cycle, for every seed. Fresh injectors with
/// equal seeds draw identical fault streams, so any divergence is the
/// layout's fault.
#[cfg(feature = "faults")]
mod fault_sweep {
    use super::*;
    use orion_gpusim::faults::{FaultInjector, FaultPlan};
    use orion_gpusim::sim::run_launch_faulty;

    #[test]
    fn layouts_agree_under_fault_injection() {
        let dev = DeviceSpec::gtx680();
        let workloads: [(&str, MModule, Launch, Vec<u32>, u32); 3] = {
            let stream_launch = Launch { grid: 16, block: 128 };
            let div_launch = Launch { grid: 12, block: 128 };
            let bank_launch = Launch { grid: 8, block: 128 };
            [
                (
                    "stream",
                    compile(&streaming_kernel(4), 16, 0),
                    stream_launch,
                    vec![0, 4 * stream_launch.grid * stream_launch.block],
                    8 * stream_launch.grid * stream_launch.block,
                ),
                (
                    "diverge",
                    compile(&divergent_kernel(), 16, 0),
                    div_launch,
                    vec![0, 4 * div_launch.grid * div_launch.block],
                    8 * div_launch.grid * div_launch.block,
                ),
                (
                    "conflict",
                    compile(&bank_conflict_kernel(), 16, 0),
                    bank_launch,
                    vec![0],
                    4 * bank_launch.grid * bank_launch.block,
                ),
            ]
        };
        for (name, machine, launch, params, bytes) in &workloads {
            for seed in [1u64, 7, 42] {
                let run = |layout: LaneLayout| {
                    let inj = FaultInjector::new(FaultPlan::chaos(seed, 0.5, 0.05));
                    let mut global = vec![0u8; *bytes as usize];
                    let opts = LaunchOptions {
                        layout,
                        scheduler: Scheduler::LinearScan,
                        parallelism: 1,
                        cycle_budget: Some(2_000_000),
                        ..LaunchOptions::default()
                    };
                    let r = run_launch_faulty(
                        &dev,
                        machine,
                        *launch,
                        params,
                        &mut global,
                        opts,
                        Some(&inj),
                    );
                    (r, global, inj.snapshot())
                };
                let (ra, ga, sa) = run(LaneLayout::Aos);
                let (rs, gs, ss) = run(LaneLayout::Soa);
                assert_eq!(ra, rs, "{name}/seed={seed}: outcome diverged between layouts");
                assert_eq!(ga, gs, "{name}/seed={seed}: memory diverged between layouts");
                assert_eq!(sa, ss, "{name}/seed={seed}: fault draws diverged (seed misuse)");
            }
        }
    }
}
