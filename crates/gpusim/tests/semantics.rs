//! Semantic-preservation tests: for a battery of kernels, the machine
//! code produced by the allocator at *any* slot budget must compute the
//! same global memory as the reference interpreter on the virtual IR —
//! with spilling, shared-memory promotion, stack compression, and layout
//! optimization all in play.

use orion_alloc::realize::{allocate, AllocOptions, SlotBudget};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_gpusim::sim::run_launch;
use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::{Cmp, Inst, Opcode, Operand};
use orion_kir::interp::{Interpreter, LaunchConfig};
use orion_kir::types::{MemSpace, PredReg, SpecialReg, Width};
use orion_kir::verify::verify;

/// Run both engines and compare global memory bit-for-bit.
fn check_equivalence(m: &Module, launch: Launch, params: &[u32], init_global: &[u8]) {
    verify(m).expect("valid module");
    // Reference execution on virtual registers.
    let mut ref_global = init_global.to_vec();
    Interpreter::new(m, params)
        .run(LaunchConfig { grid: launch.grid, block: launch.block }, &mut ref_global)
        .expect("reference run");

    let dev = DeviceSpec::c2075();
    let budgets = [
        SlotBudget { reg_slots: 63, smem_slots: 0 },
        SlotBudget { reg_slots: 16, smem_slots: 8 },
        SlotBudget { reg_slots: 8, smem_slots: 8 },
        SlotBudget { reg_slots: 4, smem_slots: 2 },
        SlotBudget { reg_slots: 2, smem_slots: 0 },
    ];
    let opt_sets = [
        AllocOptions { compress_stack: true, optimize_layout: true },
        AllocOptions { compress_stack: true, optimize_layout: false },
        AllocOptions { compress_stack: false, optimize_layout: false },
    ];
    for budget in budgets {
        for opts in &opt_sets {
            let alloc = allocate(m, budget, opts).expect("allocation");
            let mut global = init_global.to_vec();
            let r = run_launch(&dev, &alloc.machine, launch, params, &mut global)
                .expect("simulated run");
            assert!(r.cycles > 0);
            assert_eq!(
                global,
                ref_global,
                "mismatch at budget {budget:?} opts {opts:?} (kernel {})",
                m.kernel().name
            );
        }
    }
}

fn f32s(words: &[f32]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_bits().to_le_bytes()).collect()
}

fn read_f32(b: &[u8], i: usize) -> f32 {
    f32::from_bits(u32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().unwrap()))
}

#[test]
fn high_pressure_straightline_kernel() {
    // Many simultaneously live values force spills at small budgets.
    let mut b = FunctionBuilder::kernel("pressure");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    // 12 live products combined at the end.
    let vals: Vec<_> = (1..=12)
        .map(|k| {
            let c = b.mov_f32(k as f32);
            b.fmul(x, c)
        })
        .collect();
    let mut acc = b.mov_f32(0.0);
    for v in vals {
        acc = b.fadd(acc, v);
    }
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, acc, 0);
    let m = Module::new(b.finish());

    let n = 64u32;
    let init = f32s(&(0..2 * n).map(|i| i as f32).collect::<Vec<_>>());
    check_equivalence(&m, Launch { grid: 2, block: 32 }, &[0, 4 * n], &init);
}

#[test]
fn loop_kernel_with_reused_counter() {
    // acc = sum of in[gid] * i for i in 0..8
    let mut b = FunctionBuilder::kernel("loop");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let acc = b.mov_i32(0);
    orion_kir::builder::build_counted_loop(
        &mut b,
        Operand::Imm(0),
        Operand::Imm(8),
        1,
        PredReg(0),
        |b, i| {
            let term = b.imul(x, i);
            b.push(Inst::new(Opcode::IAdd, Some(acc), vec![acc.into(), term.into()]));
        },
    );
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, acc, 0);
    b.exit();
    let m = Module::new(b.finish());

    let n = 64u32;
    let init: Vec<u8> = (0..2 * n).flat_map(|i| i.to_le_bytes()).collect();
    check_equivalence(&m, Launch { grid: 2, block: 32 }, &[0, 4 * n], &init);
}

#[test]
fn divergent_branches_and_early_exit() {
    // if gid >= count: exit; if in[gid] odd: out = 3*in+1 else out = in/2.
    let mut b = FunctionBuilder::kernel("collatz");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    b.isetp(Cmp::Ge, gid, Operand::Param(2), PredReg(1));
    let body = b.new_block();
    let exit = b.new_block();
    b.branch(PredReg(1), false, exit, body);
    b.switch_to(exit);
    b.exit();
    b.switch_to(body);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let bit = b.and(x, Operand::Imm(1));
    b.isetp(Cmp::Ne, bit, Operand::Imm(0), PredReg(0));
    let odd = b.new_block();
    let even = b.new_block();
    let join = b.new_block();
    let res = b.vreg(Width::W32);
    b.branch(PredReg(0), false, odd, even);
    b.switch_to(odd);
    b.push(Inst::new(Opcode::IMad, Some(res), vec![x.into(), Operand::Imm(3), Operand::Imm(1)]));
    b.jump(join);
    b.switch_to(even);
    b.push(Inst::new(Opcode::Shr, Some(res), vec![x.into(), Operand::Imm(1)]));
    b.jump(join);
    b.switch_to(join);
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, res, 0);
    b.exit();
    let m = Module::new(b.finish());

    let n = 64u32;
    let count = 50u32; // some threads exit early
    let init: Vec<u8> = (0..2 * n).flat_map(|i| (i * 7 + 3).to_le_bytes()).collect();
    check_equivalence(&m, Launch { grid: 2, block: 32 }, &[0, 4 * n, count], &init);
}

#[test]
fn device_calls_with_live_values_across() {
    // out = (a/b) + (b/a) + keep, exercising two calls with compression.
    let kb = FunctionBuilder::kernel("calls");
    let mut m = Module::new(kb.finish());
    let fdiv = m.add_func(build_fdiv_device());
    let mut kb = FunctionBuilder::kernel("calls");
    let tid = kb.mov(Operand::Special(SpecialReg::TidX));
    let cta = kb.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = kb.mov(Operand::Special(SpecialReg::NTidX));
    let gid = kb.imad(cta, nt, tid);
    let addr = kb.imad(gid, Operand::Imm(8), Operand::Param(0));
    let a = kb.ld(MemSpace::Global, Width::W32, addr, 0);
    let bb = kb.ld(MemSpace::Global, Width::W32, addr, 4);
    let keep = kb.fadd(a, bb);
    let q1 = kb.call(fdiv, vec![a.into(), bb.into()], &[Width::W32]);
    let q2 = kb.call(fdiv, vec![bb.into(), a.into()], &[Width::W32]);
    let s = kb.fadd(q1[0], q2[0]);
    let s2 = kb.fadd(s, keep);
    let out = kb.imad(gid, Operand::Imm(4), Operand::Param(1));
    kb.st(MemSpace::Global, Width::W32, out, s2, 0);
    m.funcs[0] = kb.finish();

    let n = 64u32;
    let mut init = Vec::new();
    for i in 0..n {
        init.extend(f32s(&[(i + 1) as f32, (2 * i + 3) as f32]));
    }
    init.extend(f32s(&vec![0.0; n as usize]));
    check_equivalence(&m, Launch { grid: 2, block: 32 }, &[0, 8 * n], &init);
    // Sanity: the math itself.
    let mut g = init.clone();
    let alloc =
        allocate(&m, SlotBudget { reg_slots: 8, smem_slots: 4 }, &AllocOptions::default()).unwrap();
    run_launch(
        &DeviceSpec::gtx680(),
        &alloc.machine,
        Launch { grid: 2, block: 32 },
        &[0, 8 * n],
        &mut g,
    )
    .unwrap();
    let a = 1.0f32;
    let b_ = 3.0f32;
    let expect = a / b_ + b_ / a + (a + b_);
    let got = read_f32(&g[(8 * n) as usize..], 0);
    assert!((got - expect).abs() < 1e-3, "got {got}, expect {expect}");
}

#[test]
fn shared_memory_and_barrier_reduction() {
    // Block-wide tree-less reduction: sh[tid] = in[gid]; bar;
    // out[gid] = sh[tid] + sh[(tid+1) % ntid]
    let mut b = FunctionBuilder::kernel("smem");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let saddr = b.imul(tid, Operand::Imm(4));
    b.st(MemSpace::Shared, Width::W32, saddr, x, 0);
    b.bar();
    let t1 = b.iadd(tid, Operand::Imm(1));
    // (tid+1) % ntid via compare+select.
    b.isetp(Cmp::Ge, t1, nt, PredReg(0));
    let wrapped = b.sel(PredReg(0), Operand::Imm(0), Operand::Reg(t1));
    let naddr = b.imul(wrapped, Operand::Imm(4));
    let y = b.ld(MemSpace::Shared, Width::W32, naddr, 0);
    let s = b.iadd(x, y);
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, s, 0);
    let mut m = Module::new(b.finish());
    m.user_smem_bytes = 4 * 64;

    let n = 128u32;
    let init: Vec<u8> = (0..2 * n).flat_map(|i| (i * i).to_le_bytes()).collect();
    check_equivalence(&m, Launch { grid: 2, block: 64 }, &[0, 4 * n], &init);
}

#[test]
fn wide_values_and_doubles() {
    // out_f64[gid] = in_f64[gid] * 2.0 + 1.0 via W64 registers.
    let mut b = FunctionBuilder::kernel("wide");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(8), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W64, addr, 0);
    let two = b.vreg(Width::W64);
    let half = f64::to_bits(2.0);
    // Build the f64 constant 2.0 by packing words.
    let lo = b.mov_i32(half as u32 as i32);
    let hi = b.mov_i32((half >> 32) as u32 as i32);
    b.push(Inst::new(Opcode::Mov, Some(two), vec![Operand::Imm(0)]));
    let t1 = b.pack(two, lo, 0);
    let t2 = b.pack(t1, hi, 1);
    let prod = b.dmul(x, t2);
    let out = b.imad(gid, Operand::Imm(8), Operand::Param(1));
    b.st(MemSpace::Global, Width::W64, out, prod, 0);
    let m = Module::new(b.finish());

    let n = 32u32;
    let mut init = Vec::new();
    for i in 0..n {
        init.extend(f64::to_bits(i as f64 * 0.5).to_le_bytes());
    }
    init.extend(std::iter::repeat_n(0u8, 8 * n as usize));
    check_equivalence(&m, Launch { grid: 1, block: 32 }, &[0, 8 * n], &init);
    // Numeric spot check through one configuration.
    let alloc = allocate(&m, SlotBudget { reg_slots: 63, smem_slots: 0 }, &AllocOptions::default())
        .unwrap();
    let mut g = init.clone();
    run_launch(
        &DeviceSpec::c2075(),
        &alloc.machine,
        Launch { grid: 1, block: 32 },
        &[0, 8 * n],
        &mut g,
    )
    .unwrap();
    let off = (8 * n) as usize;
    let v = f64::from_bits(u64::from_le_bytes(g[off + 8..off + 16].try_into().unwrap()));
    assert!((v - 1.0).abs() < 1e-12, "{v}");
}

#[test]
fn predicated_instructions() {
    // out[gid] = x > 10 ? x - 10 : x  (via predicated subtract)
    let mut b = FunctionBuilder::kernel("pred");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let res = b.mov(x);
    b.isetp(Cmp::Gt, x, Operand::Imm(10), PredReg(0));
    let mut sub = Inst::new(Opcode::ISub, Some(res), vec![res.into(), Operand::Imm(10)]);
    sub.pred = Some(PredReg(0));
    b.push(sub);
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, res, 0);
    let m = Module::new(b.finish());

    let n = 64u32;
    let init: Vec<u8> = (0..2 * n).flat_map(|i| i.to_le_bytes()).collect();
    check_equivalence(&m, Launch { grid: 2, block: 32 }, &[0, 4 * n], &init);
}
