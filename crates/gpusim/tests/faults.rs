//! Fault-injection and watchdog integration tests: a real kernel, the
//! real launch path. The watchdog tests run in every build; the
//! injection tests need the `faults` feature
//! (`cargo test -p orion-gpusim --features faults`).

use orion_alloc::realize::{allocate, AllocOptions, SlotBudget};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::{Launch, SimError};
use orion_gpusim::sim::{run_launch_opts, LaunchOptions};
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::mir::MModule;
use orion_kir::types::{MemSpace, SpecialReg, Width};

/// out[gid] = in[gid] + 1.
fn inc_kernel() -> MModule {
    let mut b = FunctionBuilder::kernel("inc");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let a = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, a, 0);
    let y = b.iadd(x, Operand::Imm(1));
    b.st(MemSpace::Global, Width::W32, a, y, 0);
    let module = Module::new(b.finish());
    allocate(&module, SlotBudget { reg_slots: 16, smem_slots: 0 }, &AllocOptions::default())
        .expect("alloc")
        .machine
}

const LAUNCH: Launch = Launch { grid: 2, block: 64 };

fn opts(budget: Option<u64>) -> LaunchOptions {
    LaunchOptions { cycle_budget: budget, ..Default::default() }
}

#[test]
fn watchdog_trips_on_tiny_cycle_budget() {
    let dev = DeviceSpec::gtx680();
    let machine = inc_kernel();
    let mut global = vec![0u8; 4 * 128];
    let err = run_launch_opts(&dev, &machine, LAUNCH, &[0], &mut global, opts(Some(2)))
        .expect_err("two cycles cannot finish a memory load");
    assert_eq!(err, SimError::Watchdog { budget: 2 });
    assert!(err.is_quarantineable() && !err.is_transient());
}

#[test]
fn default_budget_is_generous_enough() {
    let dev = DeviceSpec::gtx680();
    let machine = inc_kernel();
    let mut global = vec![0u8; 4 * 128];
    let r = run_launch_opts(&dev, &machine, LAUNCH, &[0], &mut global, opts(None))
        .expect("default watchdog budget must not trip on a normal kernel");
    assert!(r.cycles > 0);
    assert_eq!(global[0], 1);
}

#[cfg(feature = "faults")]
mod injection {
    use super::*;
    use orion_gpusim::faults::{FaultInjector, FaultPlan};
    use orion_gpusim::sim::run_launch_faulty;

    #[test]
    fn transient_fault_fails_launch_before_simulation() {
        let dev = DeviceSpec::gtx680();
        let machine = inc_kernel();
        let mut plan = FaultPlan::none(1);
        plan.transient_rate = 1.0;
        let inj = FaultInjector::new(plan);
        let mut global = vec![0u8; 4 * 128];
        let err =
            run_launch_faulty(&dev, &machine, LAUNCH, &[0], &mut global, opts(None), Some(&inj))
                .expect_err("certain transient fault");
        assert!(matches!(err, SimError::TransientLaunchFailure { .. }));
        assert!(err.is_transient());
        // The launch never ran: memory untouched, fault tallied.
        assert_eq!(global[0], 0);
        assert_eq!(inj.snapshot().transient, 1);
    }

    #[test]
    fn hang_fault_terminates_via_the_watchdog() {
        let dev = DeviceSpec::gtx680();
        let machine = inc_kernel();
        let mut plan = FaultPlan::none(2);
        plan.hang_rate = 1.0;
        let inj = FaultInjector::new(plan);
        let budget = 100_000;
        let mut global = vec![0u8; 4 * 128];
        let err = run_launch_faulty(
            &dev,
            &machine,
            LAUNCH,
            &[0],
            &mut global,
            opts(Some(budget)),
            Some(&inj),
        )
        .expect_err("a wedged warp can only end at the watchdog");
        assert_eq!(err, SimError::Watchdog { budget });
        assert_eq!(inj.snapshot().hangs, 1);
    }

    #[test]
    fn jitter_perturbs_the_measurement_not_the_execution() {
        let dev = DeviceSpec::gtx680();
        let machine = inc_kernel();
        let mut clean_global = vec![0u8; 4 * 128];
        let clean = run_launch_opts(&dev, &machine, LAUNCH, &[0], &mut clean_global, opts(None))
            .expect("clean run");
        let mut plan = FaultPlan::none(3);
        plan.jitter_frac = 0.05;
        let inj = FaultInjector::new(plan);
        let mut global = vec![0u8; 4 * 128];
        let r =
            run_launch_faulty(&dev, &machine, LAUNCH, &[0], &mut global, opts(None), Some(&inj))
                .expect("jitter never fails a launch");
        // Execution identical; only the reported cycles wobble within
        // the ±5% band.
        assert_eq!(global, clean_global);
        let lo = clean.cycles - clean.cycles / 20 - 1;
        let hi = clean.cycles + clean.cycles / 20 + 1;
        assert!(
            (lo..=hi).contains(&r.cycles),
            "{} outside the ±5% band around {}",
            r.cycles,
            clean.cycles
        );
        assert_eq!(inj.snapshot().jitter, 1);
    }

    #[test]
    fn fault_stream_replays_identically() {
        let dev = DeviceSpec::gtx680();
        let machine = inc_kernel();
        let run_series = |seed: u64| -> Vec<Result<u64, SimError>> {
            let inj = FaultInjector::new(FaultPlan::chaos(seed, 0.3, 0.05));
            (0..16)
                .map(|_| {
                    let mut global = vec![0u8; 4 * 128];
                    run_launch_faulty(
                        &dev,
                        &machine,
                        LAUNCH,
                        &[0],
                        &mut global,
                        opts(Some(100_000)),
                        Some(&inj),
                    )
                    .map(|r| r.cycles)
                })
                .collect()
        };
        assert_eq!(run_series(42), run_series(42), "same seed, same fate");
        assert_ne!(run_series(42), run_series(43), "different seed, different fate");
    }
}
