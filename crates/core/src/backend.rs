//! Device-agnostic execution backends.
//!
//! Everything above this module — the [`TuningSession`] walk, the
//! [`OrionService`] scheduler, the benches — used to call the simulator
//! directly, which welded the tuning logic to `orion-gpusim`. The
//! [`Backend`] trait is the seam: *compile a kernel into candidate
//! versions, launch one version, tell me about the device* — nothing
//! else. The paper's runtime needs exactly that surface, so a PTX
//! backend targeting real GPUs (see ROADMAP) slots in underneath
//! without touching a line of tuning code.
//!
//! Two implementations ship:
//!
//! * [`SimBackend`] — the `orion-gpusim` simulated device, optionally
//!   wrapped in a fault injector for chaos runs;
//! * [`ReplayBackend`] — a scripted backend that plays back a recorded
//!   (or hand-written) sequence of per-version launch outcomes. It
//!   never executes anything, which makes session-level tests — e.g.
//!   "quarantine every version and check the decision log" —
//!   deterministic, instant, and independent of the simulator.
//!
//! ## Asynchronous submission
//!
//! The event-loop service plane needs more than the blocking
//! [`Backend::launch`]: one scheduler thread multiplexing many sessions
//! must be able to *submit* a launch and move on. [`AsyncBackend`] is
//! that extension — [`AsyncBackend::submit`] hands back a [`TicketId`]
//! immediately, and [`AsyncBackend::poll_completions`] /
//! [`AsyncBackend::wait_completions`] deliver [`Completion`]s as
//! launches retire. [`SimBackend`] executes submissions on an internal
//! worker pool (sized by [`AsyncBackend::configure_pool`]; size 0 runs
//! them inline on the submitter); [`ReplayBackend`] completes
//! synchronously at submit time; [`InlineAsync`] adapts any other
//! [`Backend`] the same way. A launch that *panics* never loses its
//! ticket: the panic is caught on the executing thread and surfaces as
//! an [`OrionError::SessionPanicked`] completion.
//!
//! [`TuningSession`]: crate::session::TuningSession
//! [`OrionService`]: crate::service::OrionService

use crate::compiler::{compile, CompiledKernel, KernelVersion, TuningConfig};
use crate::error::OrionError;
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::{Launch, SimError};
use orion_gpusim::faults::FaultInjector;
use orion_gpusim::sim::{run_launch_faulty, LaunchOptions};
use orion_kir::function::Module;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// What a [`Backend`] can and cannot do. Callers branch on these
/// instead of downcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCaps {
    /// Identical inputs produce bit-identical cycle counts. True for
    /// the simulator and replay; false for real hardware.
    pub deterministic: bool,
    /// Honors [`LaunchOptions::cta_range`], enabling kernel splitting
    /// (§3.4).
    pub supports_splitting: bool,
    /// Launches may fail spuriously (fault injection or a real,
    /// fallible device); drivers should prefer the resilient walk.
    pub faulty: bool,
}

/// A device that can compile Orion candidate versions and launch them.
///
/// The contract is deliberately small — the tuning layers only ever
/// compile once and then launch versions repeatedly. `Sync` is
/// required so [`OrionService`](crate::service::OrionService) can share
/// one backend across session worker threads.
pub trait Backend: Sync {
    /// Human-readable backend name (appears in telemetry and benches).
    fn name(&self) -> &'static str;

    /// The device this backend executes on.
    fn device_spec(&self) -> &DeviceSpec;

    /// Capability flags.
    fn caps(&self) -> BackendCaps;

    /// Run the compile-time stage (Figure 8): verify, pick a tuning
    /// direction, and realize candidate versions for this device.
    ///
    /// # Errors
    /// Propagates verification/allocation failures.
    fn compile_probe(
        &self,
        module: &Module,
        cfg: &TuningConfig,
    ) -> Result<CompiledKernel, OrionError>;

    /// Launch one version once and return its cycle count. The
    /// version's driver-side shared-memory padding is wired in by the
    /// backend; `opts` carries everything else (CTA range for
    /// splitting, cycle budgets, scheduler choice).
    ///
    /// # Errors
    /// Propagates launch/execution failures.
    fn launch(
        &self,
        version: &KernelVersion,
        launch: Launch,
        params: &[u32],
        global: &mut [u8],
        opts: LaunchOptions,
    ) -> Result<u64, OrionError>;
}

/// Identifies one asynchronous launch submission on one backend.
/// Allocated monotonically per backend instance; never reused within
/// one instance's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TicketId(pub u64);

/// An owned, self-contained launch for [`AsyncBackend::submit`]: the
/// executing thread needs no borrows back into the submitter. The
/// `global` image moves in with the request and comes back in the
/// [`Completion`], so per-job memory isolation survives the handoff.
#[derive(Debug, Clone)]
pub struct LaunchRequest {
    /// The compiled candidate set (shared, immutable).
    pub kernel: Arc<CompiledKernel>,
    /// Index into `kernel.versions` to launch.
    pub version: usize,
    /// Launch geometry.
    pub launch: Launch,
    /// Kernel parameters.
    pub params: Vec<u32>,
    /// Global-memory image; mutated by the launch and returned in the
    /// completion (possibly torn if the launch panicked).
    pub global: Vec<u8>,
    /// Launch options (CTA range, budgets, scheduler, parallelism).
    pub opts: LaunchOptions,
    /// Telemetry lane the executing thread stamps
    /// ([`orion_telemetry::set_scope`]) so traces stay attributable.
    pub lane: u32,
}

/// A retired asynchronous launch.
#[derive(Debug)]
pub struct Completion {
    /// The ticket [`AsyncBackend::submit`] returned for this launch.
    pub ticket: TicketId,
    /// Cycle count, or the launch failure. A panic on the executing
    /// thread is converted to [`OrionError::SessionPanicked`] — a
    /// submitted launch always completes.
    pub result: Result<u64, OrionError>,
    /// The request's global image, handed back to the owner.
    pub global: Vec<u8>,
    /// Wall-clock microseconds the request waited in the backend queue
    /// before a worker picked it up. **Not** deterministic — excluded
    /// from every bit-equality gate.
    pub queue_wait_us: u64,
    /// Wall-clock microseconds the launch spent executing. **Not**
    /// deterministic either.
    pub exec_us: u64,
}

/// Non-blocking submission on top of [`Backend`] — the seam the
/// event-loop service plane schedules against.
///
/// Contract:
///
/// * every [`AsyncBackend::submit`] eventually yields exactly one
///   [`Completion`] carrying its ticket (panics included);
/// * [`AsyncBackend::wait_completions`] blocks until at least one
///   completion is deliverable, and returns empty only when nothing is
///   in flight;
/// * completion *order* across distinct tickets is unspecified (pool
///   backends retire in wall-clock order), so callers must key off the
///   ticket, never the position.
pub trait AsyncBackend: Backend {
    /// Enqueue one launch; returns immediately.
    fn submit(&self, req: LaunchRequest) -> TicketId;

    /// Deliver every completion retired so far without blocking.
    fn poll_completions(&self) -> Vec<Completion>;

    /// Block until at least one completion is deliverable and return
    /// the batch; returns empty immediately if nothing is in flight.
    fn wait_completions(&self) -> Vec<Completion>;

    /// Submissions not yet delivered through
    /// [`AsyncBackend::poll_completions`] /
    /// [`AsyncBackend::wait_completions`].
    fn in_flight(&self) -> usize;

    /// Resize the backend's execution pool (best effort; inline
    /// backends ignore it). `0` executes submissions on the submitter
    /// thread.
    fn configure_pool(&self, workers: usize) {
        let _ = workers;
    }
}

/// Human-readable detail from a caught panic payload.
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Run one [`LaunchRequest`] against a closure, converting a panic into
/// an [`OrionError::SessionPanicked`] so the ticket still completes.
fn guarded_launch(
    req: &LaunchRequest,
    global: &mut [u8],
    f: impl FnOnce(&KernelVersion, Launch, &[u32], &mut [u8], LaunchOptions) -> Result<u64, OrionError>,
) -> Result<u64, OrionError> {
    let Some(version) = req.kernel.versions.get(req.version) else {
        return Err(OrionError::Tuner(format!(
            "async launch requested version {} of a {}-version kernel",
            req.version,
            req.kernel.versions.len()
        )));
    };
    catch_unwind(AssertUnwindSafe(|| f(version, req.launch, &req.params, global, req.opts)))
        .unwrap_or_else(|payload| {
            Err(OrionError::SessionPanicked { detail: panic_detail(payload.as_ref()) })
        })
}

/// Completion mailbox shared by every [`AsyncBackend`] implementation
/// here: tickets, the retired-completion queue, and the in-flight
/// account (submitted and not yet *delivered*).
#[derive(Debug, Default)]
struct Mailbox {
    next_ticket: AtomicU64,
    done: Mutex<Vec<Completion>>,
    done_cv: Condvar,
    in_flight: AtomicUsize,
}

impl Mailbox {
    fn issue(&self) -> TicketId {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        TicketId(self.next_ticket.fetch_add(1, Ordering::Relaxed))
    }

    fn retire(&self, completion: Completion) {
        self.done.lock().unwrap_or_else(PoisonError::into_inner).push(completion);
        self.done_cv.notify_all();
    }

    fn deliver(&self, batch: Vec<Completion>) -> Vec<Completion> {
        self.in_flight.fetch_sub(batch.len(), Ordering::SeqCst);
        batch
    }

    fn poll(&self) -> Vec<Completion> {
        let batch = std::mem::take(&mut *self.done.lock().unwrap_or_else(PoisonError::into_inner));
        self.deliver(batch)
    }

    fn wait(&self) -> Vec<Completion> {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !done.is_empty() {
                let batch = std::mem::take(&mut *done);
                drop(done);
                return self.deliver(batch);
            }
            if self.in_flight.load(Ordering::SeqCst) == 0 {
                return Vec::new();
            }
            done = self.done_cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }
}

/// The simulated device plus whatever the pool workers need — shared
/// between the owning [`SimBackend`] and its worker threads.
#[derive(Debug)]
struct SimCore {
    dev: DeviceSpec,
    injector: Option<FaultInjector>,
}

impl SimCore {
    fn launch(
        &self,
        version: &KernelVersion,
        launch: Launch,
        params: &[u32],
        global: &mut [u8],
        opts: LaunchOptions,
    ) -> Result<u64, OrionError> {
        let r = run_launch_faulty(
            &self.dev,
            &version.machine,
            launch,
            params,
            global,
            opts.with_extra_smem(version.extra_smem),
            self.injector.as_ref(),
        )?;
        Ok(r.cycles)
    }
}

/// Work queue feeding the [`SimBackend`] pool threads.
#[derive(Debug, Default)]
struct PoolQueue {
    queue: Mutex<VecDeque<(TicketId, LaunchRequest, Instant)>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

/// The `orion-gpusim` simulated device as a [`Backend`], optionally
/// fault-injected (chaos runs share one injector so the fault stream
/// is keyed by global launch index, matching the chaos harness).
///
/// As an [`AsyncBackend`] it owns a lazily-spawned worker pool:
/// [`AsyncBackend::configure_pool`] sets the target size, submissions
/// queue through an internal pool queue, and each worker retires
/// launches into a shared completion mailbox. With a pool size of 0
/// (the default)
/// submissions execute inline on the submitter thread — the exact
/// sequential semantics of [`Backend::launch`].
///
/// A backend-level fault injector draws per *global launch index*, so
/// pooled submission makes its fault stream depend on thread
/// interleaving; chaos runs that must stay deterministic inject at the
/// service boundary instead (see `ServiceConfig::chaos`).
#[derive(Debug)]
pub struct SimBackend {
    core: Arc<SimCore>,
    mailbox: Arc<Mailbox>,
    pool: Arc<PoolQueue>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    pool_target: AtomicUsize,
}

impl SimBackend {
    /// A clean (fault-free) simulator backend.
    #[must_use]
    pub fn new(dev: DeviceSpec) -> Self {
        SimBackend {
            core: Arc::new(SimCore { dev, injector: None }),
            mailbox: Arc::new(Mailbox::default()),
            pool: Arc::new(PoolQueue::default()),
            workers: Mutex::new(Vec::new()),
            pool_target: AtomicUsize::new(0),
        }
    }

    /// A fault-injected simulator backend. Without the `faults`
    /// feature on `orion-gpusim` the injector degrades to a no-op and
    /// this behaves like [`SimBackend::new`].
    #[must_use]
    pub fn with_injector(dev: DeviceSpec, injector: FaultInjector) -> Self {
        SimBackend {
            core: Arc::new(SimCore { dev, injector: Some(injector) }),
            mailbox: Arc::new(Mailbox::default()),
            pool: Arc::new(PoolQueue::default()),
            workers: Mutex::new(Vec::new()),
            pool_target: AtomicUsize::new(0),
        }
    }

    /// The fault injector, if any (for reading fault stats after a run).
    #[must_use]
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.core.injector.as_ref()
    }

    /// Ensure the worker pool matches the configured target (spawn-only;
    /// shrinking waits for [`Drop`]).
    fn ensure_workers(&self) {
        let target = self.pool_target.load(Ordering::SeqCst);
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        while workers.len() < target {
            let core = Arc::clone(&self.core);
            let mailbox = Arc::clone(&self.mailbox);
            let pool = Arc::clone(&self.pool);
            workers.push(std::thread::spawn(move || loop {
                let item = {
                    let mut queue = pool.queue.lock().unwrap_or_else(PoisonError::into_inner);
                    loop {
                        if let Some(item) = queue.pop_front() {
                            break Some(item);
                        }
                        if pool.shutdown.load(Ordering::SeqCst) {
                            break None;
                        }
                        queue = pool.work_cv.wait(queue).unwrap_or_else(PoisonError::into_inner);
                    }
                };
                let Some((ticket, mut req, queued_at)) = item else { return };
                let queue_wait_us = queued_at.elapsed().as_micros() as u64;
                orion_telemetry::set_scope(req.lane);
                let exec_start = Instant::now();
                let mut global = std::mem::take(&mut req.global);
                let result =
                    guarded_launch(&req, &mut global, |v, l, p, g, o| core.launch(v, l, p, g, o));
                mailbox.retire(Completion {
                    ticket,
                    result,
                    global,
                    queue_wait_us,
                    exec_us: exec_start.elapsed().as_micros() as u64,
                });
            }));
        }
    }
}

impl Drop for SimBackend {
    fn drop(&mut self) {
        self.pool.shutdown.store(true, Ordering::SeqCst);
        self.pool.work_cv.notify_all();
        let workers =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "gpusim"
    }

    fn device_spec(&self) -> &DeviceSpec {
        &self.core.dev
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            deterministic: true,
            supports_splitting: true,
            faulty: self.core.injector.is_some(),
        }
    }

    fn compile_probe(
        &self,
        module: &Module,
        cfg: &TuningConfig,
    ) -> Result<CompiledKernel, OrionError> {
        compile(module, &self.core.dev, cfg)
    }

    fn launch(
        &self,
        version: &KernelVersion,
        launch: Launch,
        params: &[u32],
        global: &mut [u8],
        opts: LaunchOptions,
    ) -> Result<u64, OrionError> {
        self.core.launch(version, launch, params, global, opts)
    }
}

impl AsyncBackend for SimBackend {
    fn submit(&self, mut req: LaunchRequest) -> TicketId {
        let ticket = self.mailbox.issue();
        if self.pool_target.load(Ordering::SeqCst) == 0 {
            // Inline path: execute on the submitter, complete at once.
            let mut global = std::mem::take(&mut req.global);
            let exec_start = Instant::now();
            let result =
                guarded_launch(&req, &mut global, |v, l, p, g, o| self.core.launch(v, l, p, g, o));
            self.mailbox.retire(Completion {
                ticket,
                result,
                global,
                queue_wait_us: 0,
                exec_us: exec_start.elapsed().as_micros() as u64,
            });
            return ticket;
        }
        self.ensure_workers();
        self.pool.queue.lock().unwrap_or_else(PoisonError::into_inner).push_back((
            ticket,
            req,
            Instant::now(),
        ));
        self.pool.work_cv.notify_one();
        ticket
    }

    fn poll_completions(&self) -> Vec<Completion> {
        self.mailbox.poll()
    }

    fn wait_completions(&self) -> Vec<Completion> {
        self.mailbox.wait()
    }

    fn in_flight(&self) -> usize {
        self.mailbox.in_flight()
    }

    fn configure_pool(&self, workers: usize) {
        self.pool_target.store(workers, Ordering::SeqCst);
        if workers > 0 {
            self.ensure_workers();
        }
    }
}

/// A scripted [`Backend`] for deterministic tests: per version label, a
/// queue of launch outcomes played back in order. Once a queue runs
/// dry its *last* outcome repeats forever (steady state), and a version
/// with no script at all yields [`ReplayBackend::default_cycles`] —
/// so short scripts drive arbitrarily long sessions.
///
/// `compile_probe` compiles for real (compilation is already
/// deterministic); only launches are replayed. The `global` buffer is
/// left untouched — replay reproduces *timing and failures*, not data.
#[derive(Debug)]
pub struct ReplayBackend {
    dev: DeviceSpec,
    script: Mutex<HashMap<String, VecDeque<Result<u64, SimError>>>>,
    default_cycles: u64,
    mailbox: Mailbox,
}

impl ReplayBackend {
    /// An empty-script replay backend; every launch of every version
    /// returns `default_cycles` until scripted otherwise.
    #[must_use]
    pub fn new(dev: DeviceSpec, default_cycles: u64) -> Self {
        ReplayBackend {
            dev,
            script: Mutex::new(HashMap::new()),
            default_cycles,
            mailbox: Mailbox::default(),
        }
    }

    /// Append outcomes to the queue for the version labeled `label`.
    /// Builder-style; call repeatedly to interleave successes and
    /// failures.
    #[must_use]
    pub fn script(
        self,
        label: impl Into<String>,
        outcomes: impl IntoIterator<Item = Result<u64, SimError>>,
    ) -> Self {
        self.script.lock().unwrap().entry(label.into()).or_default().extend(outcomes);
        self
    }

    /// The fallback cycle count for unscripted versions.
    #[must_use]
    pub fn default_cycles(&self) -> u64 {
        self.default_cycles
    }

    /// The scripted outcome for one launch of `label`.
    fn play(&self, label: &str) -> Result<u64, SimError> {
        let mut script = self.script.lock().unwrap();
        match script.get_mut(label) {
            Some(queue) => match queue.len() {
                0 => Ok(self.default_cycles),
                // Keep the last outcome as the version's steady state.
                1 => queue.front().cloned().expect("len checked"),
                _ => queue.pop_front().expect("len checked"),
            },
            None => Ok(self.default_cycles),
        }
    }
}

impl Backend for ReplayBackend {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn device_spec(&self) -> &DeviceSpec {
        &self.dev
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps { deterministic: true, supports_splitting: false, faulty: true }
    }

    fn compile_probe(
        &self,
        module: &Module,
        cfg: &TuningConfig,
    ) -> Result<CompiledKernel, OrionError> {
        compile(module, &self.dev, cfg)
    }

    fn launch(
        &self,
        version: &KernelVersion,
        _launch: Launch,
        _params: &[u32],
        _global: &mut [u8],
        _opts: LaunchOptions,
    ) -> Result<u64, OrionError> {
        self.play(&version.label).map_err(OrionError::from)
    }
}

/// Execute a submission synchronously through [`Backend::launch`] and
/// retire its completion at once — the inline [`AsyncBackend`] path
/// shared by [`ReplayBackend`] and [`InlineAsync`].
fn inline_submit<B: Backend + ?Sized>(
    backend: &B,
    mailbox: &Mailbox,
    mut req: LaunchRequest,
) -> TicketId {
    let ticket = mailbox.issue();
    let mut global = std::mem::take(&mut req.global);
    let exec_start = Instant::now();
    let result = guarded_launch(&req, &mut global, |v, l, p, g, o| backend.launch(v, l, p, g, o));
    mailbox.retire(Completion {
        ticket,
        result,
        global,
        queue_wait_us: 0,
        exec_us: exec_start.elapsed().as_micros() as u64,
    });
    ticket
}

impl AsyncBackend for ReplayBackend {
    fn submit(&self, req: LaunchRequest) -> TicketId {
        inline_submit(self, &self.mailbox, req)
    }

    fn poll_completions(&self) -> Vec<Completion> {
        self.mailbox.poll()
    }

    fn wait_completions(&self) -> Vec<Completion> {
        self.mailbox.wait()
    }

    fn in_flight(&self) -> usize {
        self.mailbox.in_flight()
    }
}

/// Adapt any [`Backend`] into an [`AsyncBackend`] that completes every
/// submission synchronously on the submitter thread — the bridge for
/// custom test backends (and any future backend without a native
/// submission queue) into the event-loop service plane.
#[derive(Debug)]
pub struct InlineAsync<B: Backend> {
    inner: B,
    mailbox: Mailbox,
}

impl<B: Backend> InlineAsync<B> {
    /// Wrap `inner`; launches execute inline at submit time.
    #[must_use]
    pub fn new(inner: B) -> Self {
        InlineAsync { inner, mailbox: Mailbox::default() }
    }

    /// The wrapped backend.
    #[must_use]
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Backend> Backend for InlineAsync<B> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn device_spec(&self) -> &DeviceSpec {
        self.inner.device_spec()
    }

    fn caps(&self) -> BackendCaps {
        self.inner.caps()
    }

    fn compile_probe(
        &self,
        module: &Module,
        cfg: &TuningConfig,
    ) -> Result<CompiledKernel, OrionError> {
        self.inner.compile_probe(module, cfg)
    }

    fn launch(
        &self,
        version: &KernelVersion,
        launch: Launch,
        params: &[u32],
        global: &mut [u8],
        opts: LaunchOptions,
    ) -> Result<u64, OrionError> {
        self.inner.launch(version, launch, params, global, opts)
    }
}

impl<B: Backend> AsyncBackend for InlineAsync<B> {
    fn submit(&self, req: LaunchRequest) -> TicketId {
        inline_submit(&self.inner, &self.mailbox, req)
    }

    fn poll_completions(&self) -> Vec<Completion> {
        self.mailbox.poll()
    }

    fn wait_completions(&self) -> Vec<Completion> {
        self.mailbox.wait()
    }

    fn in_flight(&self) -> usize {
        self.mailbox.in_flight()
    }
}

/// Wrap any backend and record each version's launch outcomes, in
/// order, so a live run can later be replayed bit-for-bit on a
/// [`ReplayBackend`] (via [`Recorder::into_replay`]).
#[derive(Debug)]
pub struct Recorder<B: Backend> {
    inner: B,
    log: Mutex<HashMap<String, VecDeque<Result<u64, SimError>>>>,
}

impl<B: Backend> Recorder<B> {
    /// Record all launches going through `inner`.
    #[must_use]
    pub fn new(inner: B) -> Self {
        Recorder { inner, log: Mutex::new(HashMap::new()) }
    }

    /// The recorded script as a replay backend on the same device.
    /// Unrecorded versions fall back to `default_cycles`.
    #[must_use]
    pub fn into_replay(self, default_cycles: u64) -> ReplayBackend {
        ReplayBackend {
            dev: self.inner.device_spec().clone(),
            script: Mutex::new(self.log.into_inner().unwrap()),
            default_cycles,
            mailbox: Mailbox::default(),
        }
    }
}

impl<B: Backend> Backend for Recorder<B> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn device_spec(&self) -> &DeviceSpec {
        self.inner.device_spec()
    }

    fn caps(&self) -> BackendCaps {
        self.inner.caps()
    }

    fn compile_probe(
        &self,
        module: &Module,
        cfg: &TuningConfig,
    ) -> Result<CompiledKernel, OrionError> {
        self.inner.compile_probe(module, cfg)
    }

    fn launch(
        &self,
        version: &KernelVersion,
        launch: Launch,
        params: &[u32],
        global: &mut [u8],
        opts: LaunchOptions,
    ) -> Result<u64, OrionError> {
        let out = self.inner.launch(version, launch, params, global, opts);
        let recorded = match &out {
            Ok(c) => Ok(*c),
            // Only simulator failures replay; other compile-side errors
            // cannot occur at launch time on the shipped backends.
            Err(e) => match e.root_cause() {
                OrionError::Sim(s) => Err(s.clone()),
                _ => Ok(0),
            },
        };
        self.log.lock().unwrap().entry(version.label.clone()).or_default().push_back(recorded);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn toy_module() -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let addr = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let y = b.imul(x, tid);
        b.st(MemSpace::Global, Width::W32, addr, y, 0);
        Module::new(b.finish())
    }

    #[test]
    fn sim_backend_compiles_and_launches() {
        let be = SimBackend::new(DeviceSpec::gtx680());
        assert!(be.caps().deterministic && !be.caps().faulty);
        let ck = be.compile_probe(&toy_module(), &TuningConfig::new(32)).unwrap();
        let mut g = vec![0u8; 4 * 64];
        let c = be
            .launch(
                &ck.versions[0],
                Launch { grid: 2, block: 32 },
                &[0],
                &mut g,
                LaunchOptions::default(),
            )
            .unwrap();
        assert!(c > 0);
        // Determinism: same launch, same cycles.
        let mut g2 = vec![0u8; 4 * 64];
        let c2 = be
            .launch(
                &ck.versions[0],
                Launch { grid: 2, block: 32 },
                &[0],
                &mut g2,
                LaunchOptions::default(),
            )
            .unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn replay_backend_plays_script_then_repeats_last() {
        let be = ReplayBackend::new(DeviceSpec::gtx680(), 42)
            .script("occ=8", [Ok(100), Ok(90), Err(SimError::Deadlock)]);
        let ck = be.compile_probe(&toy_module(), &TuningConfig::new(32)).unwrap();
        let mut v = ck.versions[0].clone();
        v.label = "occ=8".into();
        let mut g = [];
        let mut go = |v: &KernelVersion| {
            be.launch(v, Launch { grid: 1, block: 32 }, &[], &mut g, LaunchOptions::default())
        };
        assert_eq!(go(&v).unwrap(), 100);
        assert_eq!(go(&v).unwrap(), 90);
        // The last outcome repeats forever.
        assert!(go(&v).is_err());
        assert!(go(&v).is_err());
        // Unscripted labels yield the default.
        v.label = "other".into();
        assert_eq!(go(&v).unwrap(), 42);
    }

    fn request(ck: &Arc<CompiledKernel>, version: usize, lane: u32) -> LaunchRequest {
        LaunchRequest {
            kernel: Arc::clone(ck),
            version,
            launch: Launch { grid: 2, block: 32 },
            params: vec![0],
            global: vec![0u8; 4 * 64],
            opts: LaunchOptions::default(),
            lane,
        }
    }

    #[test]
    fn async_pool_completes_every_ticket_with_sync_identical_cycles() {
        let be = SimBackend::new(DeviceSpec::gtx680());
        let ck = Arc::new(be.compile_probe(&toy_module(), &TuningConfig::new(32)).unwrap());
        // Reference cycles via the blocking path.
        let mut reference = Vec::new();
        for v in &ck.versions {
            let mut g = vec![0u8; 4 * 64];
            reference.push(
                be.launch(v, Launch { grid: 2, block: 32 }, &[0], &mut g, LaunchOptions::default())
                    .unwrap(),
            );
        }
        be.configure_pool(2);
        let tickets: Vec<TicketId> =
            (0..ck.versions.len()).map(|v| be.submit(request(&ck, v, 1))).collect();
        let mut got: HashMap<TicketId, u64> = HashMap::new();
        while got.len() < tickets.len() {
            let batch = be.wait_completions();
            assert!(!batch.is_empty(), "launches in flight but nothing completed");
            for c in batch {
                assert_eq!(c.global.len(), 4 * 64, "the global image comes back");
                got.insert(c.ticket, c.result.unwrap());
            }
        }
        assert_eq!(be.in_flight(), 0);
        for (t, want) in tickets.iter().zip(&reference) {
            assert_eq!(got[t], *want, "pooled cycles match the blocking launch");
        }
    }

    #[test]
    fn async_inline_pool_size_zero_is_synchronous() {
        let be = SimBackend::new(DeviceSpec::gtx680());
        let ck = Arc::new(be.compile_probe(&toy_module(), &TuningConfig::new(32)).unwrap());
        let t = be.submit(request(&ck, 0, 1));
        // Inline submission retires before submit returns.
        assert_eq!(be.in_flight(), 1);
        let batch = be.poll_completions();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].ticket, t);
        assert!(batch[0].result.is_ok());
        assert_eq!(be.in_flight(), 0);
        assert!(be.wait_completions().is_empty(), "nothing in flight returns empty, no hang");
    }

    #[test]
    fn async_replay_and_out_of_range_version_complete_as_errors() {
        let be =
            ReplayBackend::new(DeviceSpec::gtx680(), 42).script("occ=8", [Err(SimError::Deadlock)]);
        let ck = be.compile_probe(&toy_module(), &TuningConfig::new(32)).unwrap();
        let mut ck = ck;
        ck.versions[0].label = "occ=8".into();
        let ck = Arc::new(ck);
        be.submit(request(&ck, 0, 1));
        let batch = be.wait_completions();
        assert!(matches!(batch[0].result, Err(ref e)
            if matches!(e.root_cause(), OrionError::Sim(SimError::Deadlock))));
        // A version index past the candidate set still completes.
        be.submit(request(&ck, 99, 1));
        let batch = be.wait_completions();
        assert!(matches!(batch[0].result, Err(OrionError::Tuner(_))));
        assert_eq!(be.in_flight(), 0);
    }

    /// A backend whose launches always panic.
    struct ExplodingBackend(SimBackend);

    impl Backend for ExplodingBackend {
        fn name(&self) -> &'static str {
            "exploding"
        }
        fn device_spec(&self) -> &DeviceSpec {
            self.0.device_spec()
        }
        fn caps(&self) -> BackendCaps {
            self.0.caps()
        }
        fn compile_probe(
            &self,
            module: &Module,
            cfg: &TuningConfig,
        ) -> Result<CompiledKernel, OrionError> {
            self.0.compile_probe(module, cfg)
        }
        fn launch(
            &self,
            _version: &KernelVersion,
            _launch: Launch,
            _params: &[u32],
            _global: &mut [u8],
            _opts: LaunchOptions,
        ) -> Result<u64, OrionError> {
            panic!("backend exploded mid-launch");
        }
    }

    #[test]
    fn async_panic_never_loses_the_ticket() {
        let prior_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let be = InlineAsync::new(ExplodingBackend(SimBackend::new(DeviceSpec::gtx680())));
        let ck = Arc::new(be.compile_probe(&toy_module(), &TuningConfig::new(32)).unwrap());
        let t = be.submit(request(&ck, 0, 1));
        std::panic::set_hook(prior_hook);
        let batch = be.wait_completions();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].ticket, t);
        assert!(
            matches!(batch[0].result, Err(OrionError::SessionPanicked { ref detail })
                if detail.contains("exploded")),
            "panic must surface as a completion: {:?}",
            batch[0].result
        );
        assert_eq!(batch[0].global.len(), 4 * 64, "the global image survives the panic");
    }

    #[test]
    fn recorder_round_trips_through_replay() {
        let rec = Recorder::new(SimBackend::new(DeviceSpec::gtx680()));
        let ck = rec.compile_probe(&toy_module(), &TuningConfig::new(32)).unwrap();
        let launch = Launch { grid: 2, block: 32 };
        let mut live = Vec::new();
        for v in &ck.versions {
            let mut g = vec![0u8; 4 * 64];
            live.push(rec.launch(v, launch, &[0], &mut g, LaunchOptions::default()).unwrap());
        }
        let replay = rec.into_replay(0);
        for (v, &want) in ck.versions.iter().zip(&live) {
            let mut g = vec![0u8; 4 * 64];
            let got = replay.launch(v, launch, &[0], &mut g, LaunchOptions::default()).unwrap();
            assert_eq!(got, want, "replay reproduces the live run for {}", v.label);
        }
    }
}
