//! Device-agnostic execution backends.
//!
//! Everything above this module — the [`TuningSession`] walk, the
//! [`OrionService`] scheduler, the benches — used to call the simulator
//! directly, which welded the tuning logic to `orion-gpusim`. The
//! [`Backend`] trait is the seam: *compile a kernel into candidate
//! versions, launch one version, tell me about the device* — nothing
//! else. The paper's runtime needs exactly that surface, so a PTX
//! backend targeting real GPUs (see ROADMAP) slots in underneath
//! without touching a line of tuning code.
//!
//! Two implementations ship:
//!
//! * [`SimBackend`] — the `orion-gpusim` simulated device, optionally
//!   wrapped in a fault injector for chaos runs;
//! * [`ReplayBackend`] — a scripted backend that plays back a recorded
//!   (or hand-written) sequence of per-version launch outcomes. It
//!   never executes anything, which makes session-level tests — e.g.
//!   "quarantine every version and check the decision log" —
//!   deterministic, instant, and independent of the simulator.
//!
//! [`TuningSession`]: crate::session::TuningSession
//! [`OrionService`]: crate::service::OrionService

use crate::compiler::{compile, CompiledKernel, KernelVersion, TuningConfig};
use crate::error::OrionError;
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::{Launch, SimError};
use orion_gpusim::faults::FaultInjector;
use orion_gpusim::sim::{run_launch_faulty, LaunchOptions};
use orion_kir::function::Module;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Mutex;

/// What a [`Backend`] can and cannot do. Callers branch on these
/// instead of downcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCaps {
    /// Identical inputs produce bit-identical cycle counts. True for
    /// the simulator and replay; false for real hardware.
    pub deterministic: bool,
    /// Honors [`LaunchOptions::cta_range`], enabling kernel splitting
    /// (§3.4).
    pub supports_splitting: bool,
    /// Launches may fail spuriously (fault injection or a real,
    /// fallible device); drivers should prefer the resilient walk.
    pub faulty: bool,
}

/// A device that can compile Orion candidate versions and launch them.
///
/// The contract is deliberately small — the tuning layers only ever
/// compile once and then launch versions repeatedly. `Sync` is
/// required so [`OrionService`](crate::service::OrionService) can share
/// one backend across session worker threads.
pub trait Backend: Sync {
    /// Human-readable backend name (appears in telemetry and benches).
    fn name(&self) -> &'static str;

    /// The device this backend executes on.
    fn device_spec(&self) -> &DeviceSpec;

    /// Capability flags.
    fn caps(&self) -> BackendCaps;

    /// Run the compile-time stage (Figure 8): verify, pick a tuning
    /// direction, and realize candidate versions for this device.
    ///
    /// # Errors
    /// Propagates verification/allocation failures.
    fn compile_probe(
        &self,
        module: &Module,
        cfg: &TuningConfig,
    ) -> Result<CompiledKernel, OrionError>;

    /// Launch one version once and return its cycle count. The
    /// version's driver-side shared-memory padding is wired in by the
    /// backend; `opts` carries everything else (CTA range for
    /// splitting, cycle budgets, scheduler choice).
    ///
    /// # Errors
    /// Propagates launch/execution failures.
    fn launch(
        &self,
        version: &KernelVersion,
        launch: Launch,
        params: &[u32],
        global: &mut [u8],
        opts: LaunchOptions,
    ) -> Result<u64, OrionError>;
}

/// The `orion-gpusim` simulated device as a [`Backend`], optionally
/// fault-injected (chaos runs share one injector so the fault stream
/// is keyed by global launch index, matching the chaos harness).
#[derive(Debug)]
pub struct SimBackend {
    dev: DeviceSpec,
    injector: Option<FaultInjector>,
}

impl SimBackend {
    /// A clean (fault-free) simulator backend.
    #[must_use]
    pub fn new(dev: DeviceSpec) -> Self {
        SimBackend { dev, injector: None }
    }

    /// A fault-injected simulator backend. Without the `faults`
    /// feature on `orion-gpusim` the injector degrades to a no-op and
    /// this behaves like [`SimBackend::new`].
    #[must_use]
    pub fn with_injector(dev: DeviceSpec, injector: FaultInjector) -> Self {
        SimBackend { dev, injector: Some(injector) }
    }

    /// The fault injector, if any (for reading fault stats after a run).
    #[must_use]
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "gpusim"
    }

    fn device_spec(&self) -> &DeviceSpec {
        &self.dev
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            deterministic: true,
            supports_splitting: true,
            faulty: self.injector.is_some(),
        }
    }

    fn compile_probe(
        &self,
        module: &Module,
        cfg: &TuningConfig,
    ) -> Result<CompiledKernel, OrionError> {
        compile(module, &self.dev, cfg)
    }

    fn launch(
        &self,
        version: &KernelVersion,
        launch: Launch,
        params: &[u32],
        global: &mut [u8],
        opts: LaunchOptions,
    ) -> Result<u64, OrionError> {
        let r = run_launch_faulty(
            &self.dev,
            &version.machine,
            launch,
            params,
            global,
            opts.with_extra_smem(version.extra_smem),
            self.injector.as_ref(),
        )?;
        Ok(r.cycles)
    }
}

/// A scripted [`Backend`] for deterministic tests: per version label, a
/// queue of launch outcomes played back in order. Once a queue runs
/// dry its *last* outcome repeats forever (steady state), and a version
/// with no script at all yields [`ReplayBackend::default_cycles`] —
/// so short scripts drive arbitrarily long sessions.
///
/// `compile_probe` compiles for real (compilation is already
/// deterministic); only launches are replayed. The `global` buffer is
/// left untouched — replay reproduces *timing and failures*, not data.
#[derive(Debug)]
pub struct ReplayBackend {
    dev: DeviceSpec,
    script: Mutex<HashMap<String, VecDeque<Result<u64, SimError>>>>,
    default_cycles: u64,
}

impl ReplayBackend {
    /// An empty-script replay backend; every launch of every version
    /// returns `default_cycles` until scripted otherwise.
    #[must_use]
    pub fn new(dev: DeviceSpec, default_cycles: u64) -> Self {
        ReplayBackend { dev, script: Mutex::new(HashMap::new()), default_cycles }
    }

    /// Append outcomes to the queue for the version labeled `label`.
    /// Builder-style; call repeatedly to interleave successes and
    /// failures.
    #[must_use]
    pub fn script(
        self,
        label: impl Into<String>,
        outcomes: impl IntoIterator<Item = Result<u64, SimError>>,
    ) -> Self {
        self.script.lock().unwrap().entry(label.into()).or_default().extend(outcomes);
        self
    }

    /// The fallback cycle count for unscripted versions.
    #[must_use]
    pub fn default_cycles(&self) -> u64 {
        self.default_cycles
    }

    /// The scripted outcome for one launch of `label`.
    fn play(&self, label: &str) -> Result<u64, SimError> {
        let mut script = self.script.lock().unwrap();
        match script.get_mut(label) {
            Some(queue) => match queue.len() {
                0 => Ok(self.default_cycles),
                // Keep the last outcome as the version's steady state.
                1 => queue.front().cloned().expect("len checked"),
                _ => queue.pop_front().expect("len checked"),
            },
            None => Ok(self.default_cycles),
        }
    }
}

impl Backend for ReplayBackend {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn device_spec(&self) -> &DeviceSpec {
        &self.dev
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps { deterministic: true, supports_splitting: false, faulty: true }
    }

    fn compile_probe(
        &self,
        module: &Module,
        cfg: &TuningConfig,
    ) -> Result<CompiledKernel, OrionError> {
        compile(module, &self.dev, cfg)
    }

    fn launch(
        &self,
        version: &KernelVersion,
        _launch: Launch,
        _params: &[u32],
        _global: &mut [u8],
        _opts: LaunchOptions,
    ) -> Result<u64, OrionError> {
        self.play(&version.label).map_err(OrionError::from)
    }
}

/// Wrap any backend and record each version's launch outcomes, in
/// order, so a live run can later be replayed bit-for-bit on a
/// [`ReplayBackend`] (via [`Recorder::into_replay`]).
#[derive(Debug)]
pub struct Recorder<B: Backend> {
    inner: B,
    log: Mutex<HashMap<String, VecDeque<Result<u64, SimError>>>>,
}

impl<B: Backend> Recorder<B> {
    /// Record all launches going through `inner`.
    #[must_use]
    pub fn new(inner: B) -> Self {
        Recorder { inner, log: Mutex::new(HashMap::new()) }
    }

    /// The recorded script as a replay backend on the same device.
    /// Unrecorded versions fall back to `default_cycles`.
    #[must_use]
    pub fn into_replay(self, default_cycles: u64) -> ReplayBackend {
        ReplayBackend {
            dev: self.inner.device_spec().clone(),
            script: Mutex::new(self.log.into_inner().unwrap()),
            default_cycles,
        }
    }
}

impl<B: Backend> Backend for Recorder<B> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn device_spec(&self) -> &DeviceSpec {
        self.inner.device_spec()
    }

    fn caps(&self) -> BackendCaps {
        self.inner.caps()
    }

    fn compile_probe(
        &self,
        module: &Module,
        cfg: &TuningConfig,
    ) -> Result<CompiledKernel, OrionError> {
        self.inner.compile_probe(module, cfg)
    }

    fn launch(
        &self,
        version: &KernelVersion,
        launch: Launch,
        params: &[u32],
        global: &mut [u8],
        opts: LaunchOptions,
    ) -> Result<u64, OrionError> {
        let out = self.inner.launch(version, launch, params, global, opts);
        let recorded = match &out {
            Ok(c) => Ok(*c),
            // Only simulator failures replay; other compile-side errors
            // cannot occur at launch time on the shipped backends.
            Err(e) => match e.root_cause() {
                OrionError::Sim(s) => Err(s.clone()),
                _ => Ok(0),
            },
        };
        self.log.lock().unwrap().entry(version.label.clone()).or_default().push_back(recorded);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn toy_module() -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let addr = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let y = b.imul(x, tid);
        b.st(MemSpace::Global, Width::W32, addr, y, 0);
        Module::new(b.finish())
    }

    #[test]
    fn sim_backend_compiles_and_launches() {
        let be = SimBackend::new(DeviceSpec::gtx680());
        assert!(be.caps().deterministic && !be.caps().faulty);
        let ck = be.compile_probe(&toy_module(), &TuningConfig::new(32)).unwrap();
        let mut g = vec![0u8; 4 * 64];
        let c = be
            .launch(
                &ck.versions[0],
                Launch { grid: 2, block: 32 },
                &[0],
                &mut g,
                LaunchOptions::default(),
            )
            .unwrap();
        assert!(c > 0);
        // Determinism: same launch, same cycles.
        let mut g2 = vec![0u8; 4 * 64];
        let c2 = be
            .launch(
                &ck.versions[0],
                Launch { grid: 2, block: 32 },
                &[0],
                &mut g2,
                LaunchOptions::default(),
            )
            .unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn replay_backend_plays_script_then_repeats_last() {
        let be = ReplayBackend::new(DeviceSpec::gtx680(), 42)
            .script("occ=8", [Ok(100), Ok(90), Err(SimError::Deadlock)]);
        let ck = be.compile_probe(&toy_module(), &TuningConfig::new(32)).unwrap();
        let mut v = ck.versions[0].clone();
        v.label = "occ=8".into();
        let mut g = [];
        let mut go = |v: &KernelVersion| {
            be.launch(v, Launch { grid: 1, block: 32 }, &[], &mut g, LaunchOptions::default())
        };
        assert_eq!(go(&v).unwrap(), 100);
        assert_eq!(go(&v).unwrap(), 90);
        // The last outcome repeats forever.
        assert!(go(&v).is_err());
        assert!(go(&v).is_err());
        // Unscripted labels yield the default.
        v.label = "other".into();
        assert_eq!(go(&v).unwrap(), 42);
    }

    #[test]
    fn recorder_round_trips_through_replay() {
        let rec = Recorder::new(SimBackend::new(DeviceSpec::gtx680()));
        let ck = rec.compile_probe(&toy_module(), &TuningConfig::new(32)).unwrap();
        let launch = Launch { grid: 2, block: 32 };
        let mut live = Vec::new();
        for v in &ck.versions {
            let mut g = vec![0u8; 4 * 64];
            live.push(rec.launch(v, launch, &[0], &mut g, LaunchOptions::default()).unwrap());
        }
        let replay = rec.into_replay(0);
        for (v, &want) in ck.versions.iter().zip(&live) {
            let mut g = vec![0u8; 4 * 64];
            let got = replay.launch(v, launch, &[0], &mut g, LaunchOptions::default()).unwrap();
            assert_eq!(got, want, "replay reproduces the live run for {}", v.label);
        }
    }
}
