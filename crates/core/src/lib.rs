//! # orion-core — the Orion GPU occupancy-tuning framework
//!
//! Reproduction of *Orion: A Framework for GPU Occupancy Tuning*
//! (Hayes, Li, Chavarría, Song, Zhang — Middleware 2016), running on the
//! `orion-gpusim` simulated device instead of real GPUs.
//!
//! Orion works in two stages:
//!
//! 1. **Compile-time tuning** ([`compiler`], Figure 8): decide the
//!    tuning direction from the *max-live* metric, realize candidate
//!    occupancy levels through on-chip memory allocation
//!    (`orion-alloc`), and emit ≤ 5 kernel versions.
//! 2. **Runtime adaptation** ([`session`], Figure 9): walk the
//!    candidates across application iterations, finalizing the best (or
//!    the lowest occupancy within 2% of the best when tuning downward,
//!    which saves registers and energy). Applications without an
//!    iteration loop use [`splitting`] or the static selection.
//!
//! The runtime walk is one typed state machine,
//! [`session::TuningSession`], executed on a pluggable
//! [`backend::Backend`] (the `orion-gpusim` simulator, or a scripted
//! [`backend::ReplayBackend`] for tests). Whole applications — many
//! kernels, one device — go through [`service::OrionService`], an
//! event loop multiplexing one session per kernel over the backend's
//! async submission queue, sharing one compile cache and telemetry
//! stream; multi-device deployments wrap one service per device in
//! [`sharded::ShardedService`]:
//!
//! ```
//! use orion_core::backend::SimBackend;
//! use orion_core::compiler::TuningConfig;
//! use orion_core::service::{JobPolicy, KernelJob, OrionService, ServiceConfig};
//! use orion_gpusim::device::DeviceSpec;
//! use orion_gpusim::exec::Launch;
//! use orion_kir::builder::FunctionBuilder;
//! use orion_kir::function::Module;
//! use orion_kir::inst::Operand;
//! use orion_kir::types::{MemSpace, SpecialReg, Width};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A toy kernel: out[gid] = in[gid] * gid.
//! let mut b = FunctionBuilder::kernel("scale");
//! let tid = b.mov(Operand::Special(SpecialReg::TidX));
//! let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
//! let nt = b.mov(Operand::Special(SpecialReg::NTidX));
//! let gid = b.imad(cta, nt, tid);
//! let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
//! let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
//! let y = b.imul(x, gid);
//! b.st(MemSpace::Global, Width::W32, addr, y, 0);
//! let module = Module::new(b.finish());
//!
//! // Tune it (and any sibling kernels) as one service batch. The
//! // simulator is noise-free, so the paper's exact fault-free walk
//! // (`policy: None`) converges in a handful of iterations; keep the
//! // default resilient policy for noisy or fault-injected backends.
//! let service = OrionService::new(
//!     SimBackend::new(DeviceSpec::gtx680()),
//!     ServiceConfig { policy: None, ..ServiceConfig::default() },
//! );
//! let report = service.run(vec![KernelJob {
//!     name: "scale".into(),
//!     module,
//!     launch: Launch { grid: 8, block: 64 },
//!     params: vec![0],
//!     global: vec![0u8; 4 * 512],
//!     iterations: 6,
//!     tuning: TuningConfig::new(64),
//!     policy: JobPolicy::default(),
//! }]);
//! assert!(report.all_ok());
//! let outcome = report.kernels[0].outcome.as_ref().unwrap();
//! assert_eq!(outcome.iterations.len(), 6);
//! # Ok(())
//! # }
//! ```
//!
//! Single kernels can drive a [`session::TuningSession`] directly (the
//! pull-based `next_step()` / `on_launch_result()` loop), and the legacy
//! closure APIs — [`runtime::tune_loop`] and
//! [`resilient::resilient_tune_loop`] — remain as thin drivers over
//! the same machine, pinned bit-equal to their pre-refactor behavior
//! by the [`reference`](mod@reference) equivalence suite.

pub mod backend;
pub mod budget;
pub mod cache;
pub mod compiler;
pub mod error;
pub mod orion;
pub mod policy;
pub mod reference;
pub mod resilient;
pub mod runtime;
pub mod service;
pub mod session;
pub mod sharded;
pub mod splitting;
pub mod version;

pub use backend::{
    AsyncBackend, Backend, BackendCaps, Completion, InlineAsync, LaunchRequest, Recorder,
    ReplayBackend, SimBackend, TicketId,
};
pub use cache::{allocate_cached, CacheConfig, CompileCacheStats, ShardStats};
pub use compiler::{compile, CompiledKernel, Direction, KernelVersion, TuningConfig};
pub use error::{ErrorContext, OrionError};
pub use orion::{Orion, SpaceOutcome};
pub use policy::{
    analytic_bound, BanditConfig, BanditPolicy, BoundCtx, Measurement, PaperWalkPolicy, PolicyKind,
    PolicyVerdict, SearchPolicy,
};
pub use resilient::{
    resilient_tune_loop, robust_cycles, robust_measure, ResiliencePolicy, ResilienceStats,
    ResilientOutcome, RobustMeasure,
};
pub use runtime::{tune_loop, DynamicTuner, TuneDecision, TuneOutcome, TuneReason};
pub use service::{
    DegradeReason, JobDisposition, JobPolicy, KernelJob, KernelReport, OrionService, SchedulerMode,
    ServiceConfig, ServiceReport,
};
pub use session::{
    SessionMode, SessionObs, SessionOutcome, SessionState, SessionStep, TuningSession,
};
pub use sharded::{Placement, ShardedReport, ShardedService};
pub use splitting::{tune_by_splitting, SplitConfig};
pub use version::{CandidateSpace, SpaceArm, VersionBuilder};
