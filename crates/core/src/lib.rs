//! # orion-core — the Orion GPU occupancy-tuning framework
//!
//! Reproduction of *Orion: A Framework for GPU Occupancy Tuning*
//! (Hayes, Li, Chavarría, Song, Zhang — Middleware 2016), running on the
//! `orion-gpusim` simulated device instead of real GPUs.
//!
//! Orion works in two stages:
//!
//! 1. **Compile-time tuning** ([`compiler`], Figure 8): decide the
//!    tuning direction from the *max-live* metric, realize candidate
//!    occupancy levels through on-chip memory allocation
//!    (`orion-alloc`), and emit ≤ 5 kernel versions.
//! 2. **Runtime adaptation** ([`runtime`], Figure 9): walk the
//!    candidates across application iterations, finalizing the best (or
//!    the lowest occupancy within 2% of the best when tuning downward,
//!    which saves registers and energy). Applications without an
//!    iteration loop use [`splitting`] or the static selection.
//!
//! ```
//! use orion_core::orion::Orion;
//! use orion_core::runtime::tune_loop;
//! use orion_gpusim::device::DeviceSpec;
//! use orion_gpusim::exec::Launch;
//! use orion_kir::builder::FunctionBuilder;
//! use orion_kir::function::Module;
//! use orion_kir::inst::Operand;
//! use orion_kir::types::{MemSpace, SpecialReg, Width};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A toy kernel: out[gid] = in[gid] * gid.
//! let mut b = FunctionBuilder::kernel("scale");
//! let tid = b.mov(Operand::Special(SpecialReg::TidX));
//! let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
//! let nt = b.mov(Operand::Special(SpecialReg::NTidX));
//! let gid = b.imad(cta, nt, tid);
//! let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
//! let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
//! let y = b.imul(x, gid);
//! b.st(MemSpace::Global, Width::W32, addr, y, 0);
//! let module = Module::new(b.finish());
//!
//! let orion = Orion::new(DeviceSpec::gtx680(), 64);
//! let compiled = orion.compile(&module)?;
//! assert!(compiled.num_candidates() <= 5);
//!
//! // Tune across 6 application iterations on the simulator.
//! let launch = Launch { grid: 8, block: 64 };
//! let mut global = vec![0u8; 4 * 512];
//! let outcome = tune_loop(&compiled, 6, 0.02, |version| {
//!     orion.run_version(version, launch, &[0], &mut global).map(|r| r.cycles)
//! })?;
//! assert!(outcome.converged_after <= compiled.num_candidates() + 1);
//! # Ok(())
//! # }
//! ```

pub mod budget;
pub mod cache;
pub mod compiler;
pub mod error;
pub mod orion;
pub mod resilient;
pub mod runtime;
pub mod splitting;
pub mod version;

pub use cache::{allocate_cached, CacheConfig, CompileCacheStats};
pub use version::VersionBuilder;
pub use compiler::{compile, CompiledKernel, Direction, KernelVersion, TuningConfig};
pub use error::{ErrorContext, OrionError};
pub use orion::Orion;
pub use resilient::{
    resilient_tune_loop, robust_cycles, robust_measure, ResiliencePolicy, ResilienceStats,
    ResilientOutcome, RobustMeasure,
};
pub use runtime::{tune_loop, DynamicTuner, TuneDecision, TuneOutcome, TuneReason};
