//! `OrionService` — tuning many kernels as one workload.
//!
//! Real applications don't tune one kernel in a vacuum: a Rodinia-style
//! app launches several kernels, each wanting its own occupancy walk,
//! all sharing one device, one compile cache, and one telemetry stream.
//! [`OrionService`] is that multi-kernel driver: it owns a
//! [`Backend`], accepts a batch of named [`KernelJob`]s, and drives one
//! [`TuningSession`] per kernel across a pool of scoped worker threads.
//!
//! Three properties the service guarantees:
//!
//! * **Per-session isolation** — each job gets its own compiled
//!   candidates, global-memory image, and session; a kernel whose every
//!   candidate dies reports [`OrionError::AllCandidatesFailed`] in its
//!   own [`KernelReport`] without disturbing its neighbours.
//! * **Deterministic merge** — reports come back in submission order
//!   whatever the thread interleaving, and
//!   [`ServiceReport::merged_decisions`] is a deterministic flattening
//!   of the per-kernel decision logs. On a deterministic backend the
//!   per-kernel outcomes are bit-identical at any worker count (the
//!   service bench enforces exactly this).
//! * **Shared infrastructure** — one compile cache (kernels sharing a
//!   module fingerprint reuse allocations; [`ServiceReport::cache`]
//!   reports hit rates across the batch) and one telemetry buffer,
//!   with each session stamped onto its own lane
//!   ([`orion_telemetry::set_scope`]) so traces stay separable.
//!
//! [`TuningSession`]: crate::session::TuningSession

use crate::backend::Backend;
use crate::cache;
use crate::compiler::TuningConfig;
use crate::error::OrionError;
use crate::resilient::ResiliencePolicy;
use crate::runtime::TuneDecision;
use crate::session::{SessionOutcome, SessionStep, TuningSession};
use orion_gpusim::exec::Launch;
use orion_gpusim::sim::LaunchOptions;
use orion_kir::function::Module;
use orion_telemetry::hist::Histogram;
use orion_telemetry::journal::JournalDrain;
use orion_telemetry::registry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Service-wide knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads driving sessions; `0` means one per host core.
    /// Jobs never share a worker mid-session, so any worker count
    /// yields the same per-kernel results on a deterministic backend.
    pub workers: usize,
    /// Slowdown threshold for every session (the paper's 2%).
    pub threshold: f64,
    /// `Some` drives resilient sessions (retry/quarantine/fallback);
    /// `None` drives the paper's exact fault-free walk.
    pub policy: Option<ResiliencePolicy>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { workers: 0, threshold: 0.02, policy: Some(ResiliencePolicy::default()) }
    }
}

/// One kernel the service should tune: the module plus everything
/// needed to launch it repeatedly.
#[derive(Debug, Clone)]
pub struct KernelJob {
    /// Kernel name (error context, telemetry, reports).
    pub name: String,
    /// The kernel IR to compile into candidate versions.
    pub module: Module,
    /// Launch geometry for every invocation.
    pub launch: Launch,
    /// Kernel parameters for every invocation.
    pub params: Vec<u32>,
    /// Initial global-memory image; owned per job (iterated launches
    /// mutate it, and isolation requires no sharing).
    pub global: Vec<u8>,
    /// Application iterations to drive.
    pub iterations: u32,
    /// Compile-time tuning configuration (block size, version budget).
    pub tuning: TuningConfig,
}

/// Per-kernel latency observations. The cycle-domain histograms come
/// from the session ([`crate::session::SessionObs`]) and are
/// **deterministic**: bit-identical across worker counts and thread
/// interleavings on a deterministic backend. `compile_wall_us` is
/// wall-clock and excluded from every determinism gate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelMetrics {
    /// Simulated cycles of each successful launch.
    pub launch_cycles: Histogram,
    /// Simulated backoff cycles each launch chain waited (0 without
    /// retries).
    pub queue_wait_cycles: Histogram,
    /// Wall-clock microseconds spent in `compile_probe` for this job
    /// (candidate generation + allocation; cache hits make it cheap).
    pub compile_wall_us: u64,
}

impl KernelMetrics {
    /// The deterministic (simulated-cycle) half of the metrics — what
    /// the sequential-vs-concurrent gates compare.
    #[must_use]
    pub fn cycle_domain(&self) -> (&Histogram, &Histogram) {
        (&self.launch_cycles, &self.queue_wait_cycles)
    }
}

/// What happened to one [`KernelJob`].
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// The job's kernel name.
    pub name: String,
    /// Telemetry lane the session's events carry (`job index + 1`;
    /// lane 0 stays the unscoped default).
    pub lane: u32,
    /// The session outcome, or the error that stopped it. Errors are
    /// per-kernel: one dead kernel never aborts the batch.
    pub outcome: Result<SessionOutcome, OrionError>,
    /// Latency observations for this kernel's session.
    pub metrics: KernelMetrics,
}

/// Batch-wide latency distributions: the per-kernel cycle-domain
/// histograms merged in submission order (merge is order-independent,
/// so this is deterministic too), plus per-session totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceMetrics {
    /// Every kernel's launch cycles, merged.
    pub launch_cycles: Histogram,
    /// Every kernel's queue waits, merged.
    pub queue_wait_cycles: Histogram,
    /// One sample per kernel: the session's `total_cycles`.
    pub session_cycles: Histogram,
}

/// A completed service batch.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-kernel reports, in submission order.
    pub kernels: Vec<KernelReport>,
    /// Compile-cache activity **during this batch** (the delta between
    /// the before/after [`cache::stats`] snapshots, per shard included;
    /// `entries` is the resident count after the batch). With in-flight
    /// coalescing, hit/miss totals are a pure function of the job set,
    /// not the interleaving.
    pub cache: cache::CompileCacheStats,
    /// Batch-wide latency distributions.
    pub metrics: ServiceMetrics,
    /// Typed runtime decisions journaled during the batch (drained from
    /// the global ring — empty unless telemetry is enabled). A process
    /// running several services concurrently shares one journal; records
    /// carry the session lane for attribution.
    pub journal: JournalDrain,
}

impl ServiceReport {
    /// All decision logs flattened deterministically: kernels in
    /// submission order, each kernel's decisions in session order.
    #[must_use]
    pub fn merged_decisions(&self) -> Vec<(&str, &TuneDecision)> {
        self.kernels
            .iter()
            .filter_map(|k| k.outcome.as_ref().ok().map(|o| (k.name.as_str(), o)))
            .flat_map(|(name, o)| o.decisions.iter().map(move |d| (name, d)))
            .collect()
    }

    /// Whether every kernel tuned successfully.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.kernels.iter().all(|k| k.outcome.is_ok())
    }
}

/// The multi-kernel tuning service. See the module docs.
#[derive(Debug)]
pub struct OrionService<B: Backend> {
    backend: B,
    cfg: ServiceConfig,
}

impl<B: Backend> OrionService<B> {
    /// A service over `backend` with the given configuration.
    pub fn new(backend: B, cfg: ServiceConfig) -> Self {
        OrionService { backend, cfg }
    }

    /// The backend sessions execute on.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Tune one job to completion on the current thread (no telemetry
    /// lane is assigned; used by the workers and handy in tests).
    ///
    /// # Errors
    /// Compile failures, fatal launch errors, or
    /// [`OrionError::AllCandidatesFailed`], wrapped with the kernel
    /// name where the session applies context.
    pub fn tune_one(&self, job: &mut KernelJob) -> Result<SessionOutcome, OrionError> {
        self.tune_one_observed(job).0
    }

    /// [`OrionService::tune_one`] plus the session's latency metrics
    /// (collected even when the session errors out — partial
    /// distributions are still diagnostic).
    pub fn tune_one_observed(
        &self,
        job: &mut KernelJob,
    ) -> (Result<SessionOutcome, OrionError>, KernelMetrics) {
        let compile_start = Instant::now();
        let ck = match self.backend.compile_probe(&job.module, &job.tuning) {
            Ok(ck) => ck,
            Err(e) => {
                return (
                    Err(e),
                    KernelMetrics {
                        compile_wall_us: compile_start.elapsed().as_micros() as u64,
                        ..KernelMetrics::default()
                    },
                )
            }
        };
        let compile_wall_us = compile_start.elapsed().as_micros() as u64;
        let mut session = match self.cfg.policy {
            Some(policy) => TuningSession::resilient(
                job.name.as_str(),
                &ck,
                job.iterations,
                self.cfg.threshold,
                policy,
            ),
            None => TuningSession::simple(&ck, job.iterations, self.cfg.threshold),
        };
        let mut drive = |session: &mut TuningSession| -> Result<(), OrionError> {
            while let SessionStep::Launch(v) = session.next_step()? {
                let result = self.backend.launch(
                    &ck.versions[v],
                    job.launch,
                    &job.params,
                    &mut job.global,
                    LaunchOptions::default(),
                );
                session.on_launch_result(result)?;
            }
            Ok(())
        };
        let driven = drive(&mut session);
        let obs = session.observations().clone();
        let metrics = KernelMetrics {
            launch_cycles: obs.launch_cycles,
            queue_wait_cycles: obs.queue_wait_cycles,
            compile_wall_us,
        };
        match driven {
            Ok(()) => (Ok(session.finish()), metrics),
            Err(e) => (Err(e), metrics),
        }
    }

    /// Tune every job, concurrently, and report in submission order.
    pub fn run(&self, jobs: Vec<KernelJob>) -> ServiceReport {
        let n = jobs.len();
        let workers = match self.cfg.workers {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            w => w,
        }
        .min(n.max(1));
        let reg = registry::global().scope("service");
        let in_flight = reg.register_gauge("in_flight_sessions", "Sessions currently tuning", "");
        reg.register_counter("sessions_total", "Sessions started over the process lifetime", "")
            .add(n as u64);
        let cache_before = cache::stats();
        // Slot-per-job in/out tables: workers claim the next index off
        // the cursor, so reports land at their job's index and the
        // merge is submission-ordered by construction.
        let slots: Vec<Mutex<Option<KernelJob>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let reports: Vec<Mutex<Option<KernelReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let in_flight = in_flight.clone();
                let (slots, reports, cursor) = (&slots, &reports, &cursor);
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut job =
                        slots[i].lock().unwrap().take().expect("each slot is claimed once");
                    let lane = u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1);
                    orion_telemetry::set_scope(lane);
                    in_flight.inc();
                    let (outcome, metrics) = self.tune_one_observed(&mut job);
                    in_flight.dec();
                    *reports[i].lock().unwrap() =
                        Some(KernelReport { name: job.name, lane, outcome, metrics });
                });
            }
        });
        let kernels: Vec<KernelReport> = reports
            .into_iter()
            .map(|r| r.into_inner().unwrap().expect("every job produces a report"))
            .collect();
        // Merge per-kernel distributions in submission order (the merge
        // is order-independent, but fixing the order keeps even the
        // iteration deterministic) and mirror them into the global
        // registry for the exporters.
        let mut metrics = ServiceMetrics::default();
        for k in &kernels {
            metrics.launch_cycles.merge(&k.metrics.launch_cycles);
            metrics.queue_wait_cycles.merge(&k.metrics.queue_wait_cycles);
            if let Ok(o) = &k.outcome {
                metrics.session_cycles.record(o.total_cycles);
            }
        }
        reg.register_histogram("launch_cycles", "Per-launch simulated cycles", "cycles")
            .merge(&metrics.launch_cycles);
        reg.register_histogram("queue_wait_cycles", "Per-chain retry backoff", "cycles")
            .merge(&metrics.queue_wait_cycles);
        reg.register_histogram("session_cycles", "Per-session total simulated cycles", "cycles")
            .merge(&metrics.session_cycles);
        // Compile time is wall-clock: exported for operators, excluded
        // from every determinism gate.
        let compile_hist = reg.register_histogram(
            "compile_wall_us",
            "Per-kernel candidate-set compile wall time",
            "us",
        );
        for k in &kernels {
            compile_hist.record(k.metrics.compile_wall_us);
        }
        ServiceReport {
            kernels,
            cache: cache::stats().delta_since(&cache_before),
            metrics,
            journal: orion_telemetry::journal::drain(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ReplayBackend, SimBackend};
    use crate::session::SessionState;
    use orion_gpusim::device::DeviceSpec;
    use orion_gpusim::exec::SimError;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn toy_module(mul: i64) -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
        let nt = b.mov(Operand::Special(SpecialReg::NTidX));
        let gid = b.imad(cta, nt, tid);
        let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let y = b.imul(x, Operand::Imm(mul));
        b.st(MemSpace::Global, Width::W32, addr, y, 0);
        Module::new(b.finish())
    }

    fn job(name: &str, mul: i64, iterations: u32) -> KernelJob {
        KernelJob {
            name: name.into(),
            module: toy_module(mul),
            launch: Launch { grid: 4, block: 32 },
            params: vec![0],
            global: vec![0u8; 4 * 128],
            iterations,
            tuning: TuningConfig::new(32),
        }
    }

    #[test]
    fn reports_come_back_in_submission_order() {
        let svc = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
        );
        let names = ["a", "b", "c", "d", "e"];
        let report = svc.run(names.iter().map(|n| job(n, 3, 4)).collect());
        assert!(report.all_ok());
        let got: Vec<&str> = report.kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(got, names);
        // Lanes are 1-based job indices.
        assert_eq!(report.kernels[0].lane, 1);
        assert_eq!(report.kernels[4].lane, 5);
    }

    #[test]
    fn worker_count_does_not_change_outcomes() {
        let mk = || (1..=6).map(|i| job(&format!("k{i}"), i64::from(i), 6)).collect::<Vec<_>>();
        let seq = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 1, ..ServiceConfig::default() },
        )
        .run(mk());
        let par = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 4, ..ServiceConfig::default() },
        )
        .run(mk());
        for (a, b) in seq.kernels.iter().zip(&par.kernels) {
            assert_eq!(
                a.outcome.as_ref().unwrap(),
                b.outcome.as_ref().unwrap(),
                "kernel {} diverged across worker counts",
                a.name
            );
        }
        assert_eq!(seq.merged_decisions().len(), par.merged_decisions().len());
    }

    #[test]
    fn a_dead_kernel_is_reported_not_propagated() {
        // Script every candidate version dead on a replay backend: the
        // session quarantines them all, and the service captures the
        // AllCandidatesFailed error in the kernel's own report instead
        // of aborting the batch.
        let be = ReplayBackend::new(DeviceSpec::gtx680(), 100);
        let probe = be.compile_probe(&toy_module(2), &TuningConfig::new(32)).unwrap();
        let be = probe.versions.iter().fold(be, |b, v| {
            b.script(v.label.clone(), [Err(SimError::ResourceExceeded { detail: "regs".into() })])
        });
        let svc = OrionService::new(be, ServiceConfig { workers: 2, ..Default::default() });
        let report = svc.run(vec![job("dead", 2, 8)]);
        assert!(!report.all_ok());
        let err = report.kernels[0].outcome.as_ref().unwrap_err();
        assert!(
            matches!(err.root_cause(), OrionError::AllCandidatesFailed { .. }),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("dead"));
    }

    #[test]
    fn quarantined_session_reports_coherent_state() {
        let be = ReplayBackend::new(DeviceSpec::gtx680(), 100);
        let probe = be.compile_probe(&toy_module(2), &TuningConfig::new(32)).unwrap();
        let be = probe
            .versions
            .iter()
            .fold(be, |b, v| b.script(v.label.clone(), [Err(SimError::Watchdog { budget: 7 })]));
        let svc = OrionService::new(be, ServiceConfig { workers: 1, ..Default::default() });
        let mut j = job("hung", 2, 10);
        let err = svc.tune_one(&mut j).unwrap_err();
        assert!(matches!(err.root_cause(), OrionError::AllCandidatesFailed { .. }));
    }

    #[test]
    fn mixed_batch_keeps_healthy_kernels_healthy() {
        // One job with zero iterations (trivially fine), several real
        // ones; the batch must report each on its own terms.
        let svc = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 3, ..ServiceConfig::default() },
        );
        let mut jobs = vec![job("empty", 2, 0)];
        jobs.extend((1..=3).map(|i| job(&format!("k{i}"), i64::from(i), 5)));
        let report = svc.run(jobs);
        assert!(report.all_ok());
        let empty = report.kernels[0].outcome.as_ref().unwrap();
        assert!(empty.iterations.is_empty());
        for k in &report.kernels[1..] {
            let o = k.outcome.as_ref().unwrap();
            assert_eq!(o.iterations.len(), 5);
            // 5 iterations can't finish a 7-sample warmup pass; the
            // session ends mid-walk but never in a dead state.
            assert_ne!(o.state, SessionState::Quarantined);
        }
    }
}
