//! `OrionService` — tuning many kernels as one workload.
//!
//! Real applications don't tune one kernel in a vacuum: a Rodinia-style
//! app launches several kernels, each wanting its own occupancy walk,
//! all sharing one device, one compile cache, and one telemetry stream.
//! [`OrionService`] is that multi-kernel driver: it owns a
//! [`Backend`], accepts a batch of named [`KernelJob`]s, and drives one
//! [`TuningSession`] per kernel across a pool of scoped worker threads.
//!
//! Four properties the service guarantees:
//!
//! * **Per-session isolation** — each job gets its own compiled
//!   candidates, global-memory image, and session; a kernel whose every
//!   candidate dies reports [`OrionError::AllCandidatesFailed`] in its
//!   own [`KernelReport`] without disturbing its neighbours, and a
//!   worker thread that *panics* mid-session is caught at the job
//!   boundary ([`OrionError::SessionPanicked`]) instead of tearing the
//!   batch down.
//! * **Definite outcomes** — every submitted job terminates with
//!   exactly one [`JobDisposition`]: `Finalized`, `Quarantined`,
//!   `Degraded`, or `Rejected`. Jobs in equals definite outcomes out,
//!   whatever the backend, the allocator, or a worker thread does — the
//!   chaos-service bench gates exactly this invariant.
//! * **Deterministic merge** — reports come back in submission order
//!   whatever the thread interleaving, and
//!   [`ServiceReport::merged_decisions`] is a deterministic flattening
//!   of the per-kernel decision logs. On a deterministic backend the
//!   per-kernel outcomes are bit-identical at any worker count (the
//!   service bench enforces exactly this).
//! * **Shared infrastructure** — one compile cache (kernels sharing a
//!   module fingerprint reuse allocations; [`ServiceReport::cache`]
//!   reports hit rates across the batch) and one telemetry buffer,
//!   with each session stamped onto its own lane
//!   ([`orion_telemetry::set_scope`]) so traces stay separable.
//!
//! ## Job lifecycle
//!
//! ```text
//! submit ──► Admitted ──► Running ──► Finalized
//!    │                       ├──────► Quarantined   (errors, panics)
//!    │                       └──────► Degraded      (budget expired)
//!    └──► Rejected   (admission queue full, shed by priority)
//! ```
//!
//! Admission happens before any worker runs: with
//! [`ServiceConfig::queue_capacity`] set, a batch larger than the queue
//! sheds its lowest-priority (then latest-submitted) jobs, which report
//! [`OrionError::Overloaded`] immediately. Running jobs are metered
//! against their [`JobPolicy`] — a simulated-cycle deadline, a
//! wall-clock budget, and a retry budget shared across candidates — and
//! a blown budget resolves the session to **Degraded**: the tuner
//! settles on its fail-safe selection (the paper's §4 philosophy — the
//! original kernel always remains runnable) instead of erroring.
//!
//! [`TuningSession`]: crate::session::TuningSession

use crate::backend::Backend;
use crate::cache;
use crate::compiler::TuningConfig;
use crate::error::OrionError;
use crate::resilient::ResiliencePolicy;
use crate::runtime::TuneDecision;
use crate::session::{SessionOutcome, SessionState, SessionStep, TuningSession};
use orion_gpusim::exec::{Launch, SimError};
use orion_gpusim::faults::{FaultInjector, JobFaults, ServiceFaultPlan};
use orion_gpusim::sim::LaunchOptions;
use orion_kir::function::Module;
use orion_telemetry::hist::Histogram;
use orion_telemetry::journal::{self, JournalDrain, JournalEvent};
use orion_telemetry::registry;
use std::cmp::Reverse;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Default admission priority (midpoint of the `u8` range, so callers
/// can step both up and down from the default).
pub const DEFAULT_PRIORITY: u8 = 100;

/// Per-job execution budgets and admission priority, enforced by the
/// service around the session. All budgets default to *unlimited*: a
/// default-policy job behaves exactly as before this type existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPolicy {
    /// Simulated-cycle deadline across the whole session, retry backoff
    /// included ([`TuningSession::total_cycles_so_far`]). Deterministic:
    /// safe inside bit-equality gates. Exceeding it degrades the job.
    pub deadline_cycles: Option<u64>,
    /// Wall-clock budget for the whole job (compile excluded). **Not**
    /// deterministic — leave `None` in any run that must be bit-equal
    /// across worker counts. Exceeding it degrades the job.
    pub wall_budget: Option<Duration>,
    /// Retry budget shared across all candidates: once the session has
    /// spent *more* than this many retries in total, the job degrades
    /// (`Some(0)` allows no retries). `None` defers entirely to the
    /// per-launch [`ResiliencePolicy::max_retries`].
    pub retry_budget: Option<u32>,
    /// Admission priority; higher survives shedding longer. Ties shed
    /// the later submission first.
    pub priority: u8,
}

impl Default for JobPolicy {
    fn default() -> Self {
        JobPolicy {
            deadline_cycles: None,
            wall_budget: None,
            retry_budget: None,
            priority: DEFAULT_PRIORITY,
        }
    }
}

/// Which [`JobPolicy`] budget expired and degraded a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// [`JobPolicy::deadline_cycles`] was reached.
    DeadlineCycles,
    /// [`JobPolicy::wall_budget`] elapsed.
    WallBudget,
    /// [`JobPolicy::retry_budget`] was exhausted.
    RetryBudget,
}

impl DegradeReason {
    /// Stable lowercase tag (journal records, reports).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            DegradeReason::DeadlineCycles => "deadline_cycles",
            DegradeReason::WallBudget => "wall_budget",
            DegradeReason::RetryBudget => "retry_budget",
        }
    }
}

/// The definite outcome of one submitted [`KernelJob`]. Every job gets
/// exactly one of these — the service's core invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobDisposition {
    /// The session settled normally (a finalized walk, or a healthy
    /// session that simply ran out of iterations mid-walk).
    Finalized,
    /// The session died: every candidate quarantined, a fatal launch or
    /// compile error, or a worker panic.
    Quarantined,
    /// A policy budget expired; the job reports its fail-safe selection.
    Degraded(DegradeReason),
    /// Shed at admission ([`OrionError::Overloaded`]); never ran.
    Rejected,
}

impl JobDisposition {
    /// Stable lowercase name (reports, bench artifacts).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobDisposition::Finalized => "finalized",
            JobDisposition::Quarantined => "quarantined",
            JobDisposition::Degraded(_) => "degraded",
            JobDisposition::Rejected => "rejected",
        }
    }
}

/// Service-wide knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads driving sessions; `0` means one per host core.
    /// Jobs never share a worker mid-session, so any worker count
    /// yields the same per-kernel results on a deterministic backend.
    pub workers: usize,
    /// Slowdown threshold for every session (the paper's 2%).
    pub threshold: f64,
    /// `Some` drives resilient sessions (retry/quarantine/fallback);
    /// `None` drives the paper's exact fault-free walk.
    pub policy: Option<ResiliencePolicy>,
    /// Admission-queue bound: `None` admits every batch unbounded (the
    /// pre-resilience behavior); `Some(k)` admits at most `k` jobs per
    /// batch and sheds the rest by ascending priority (ties: latest
    /// submission first). `Some(0)` rejects everything — useful as a
    /// drain switch and in tests.
    pub queue_capacity: Option<usize>,
    /// Service-boundary chaos plan: per-job launch-fault injection,
    /// injected worker panics, and injected deadline pressure, drawn
    /// deterministically per submission index. Inert when `None` (and
    /// compiled out without the `faults` feature on `orion-gpusim`).
    pub chaos: Option<ServiceFaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            threshold: 0.02,
            policy: Some(ResiliencePolicy::default()),
            queue_capacity: None,
            chaos: None,
        }
    }
}

/// One kernel the service should tune: the module plus everything
/// needed to launch it repeatedly.
#[derive(Debug, Clone)]
pub struct KernelJob {
    /// Kernel name (error context, telemetry, reports).
    pub name: String,
    /// The kernel IR to compile into candidate versions.
    pub module: Module,
    /// Launch geometry for every invocation.
    pub launch: Launch,
    /// Kernel parameters for every invocation.
    pub params: Vec<u32>,
    /// Initial global-memory image; owned per job (iterated launches
    /// mutate it, and isolation requires no sharing).
    pub global: Vec<u8>,
    /// Application iterations to drive.
    pub iterations: u32,
    /// Compile-time tuning configuration (block size, version budget).
    pub tuning: TuningConfig,
    /// Execution budgets and admission priority for this job.
    pub policy: JobPolicy,
}

/// Per-kernel latency observations. The cycle-domain histograms come
/// from the session ([`crate::session::SessionObs`]) and are
/// **deterministic**: bit-identical across worker counts and thread
/// interleavings on a deterministic backend. `compile_wall_us` is
/// wall-clock and excluded from every determinism gate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelMetrics {
    /// Simulated cycles of each successful launch.
    pub launch_cycles: Histogram,
    /// Simulated backoff cycles each launch chain waited (0 without
    /// retries).
    pub queue_wait_cycles: Histogram,
    /// Wall-clock microseconds spent in `compile_probe` for this job
    /// (candidate generation + allocation; cache hits make it cheap).
    pub compile_wall_us: u64,
}

impl KernelMetrics {
    /// The deterministic (simulated-cycle) half of the metrics — what
    /// the sequential-vs-concurrent gates compare.
    #[must_use]
    pub fn cycle_domain(&self) -> (&Histogram, &Histogram) {
        (&self.launch_cycles, &self.queue_wait_cycles)
    }
}

/// What happened to one [`KernelJob`].
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// The job's kernel name.
    pub name: String,
    /// Telemetry lane the session's events carry (`job index + 1`;
    /// lane 0 stays the unscoped default).
    pub lane: u32,
    /// The session outcome, or the error that stopped it. Errors are
    /// per-kernel: one dead kernel never aborts the batch.
    pub outcome: Result<SessionOutcome, OrionError>,
    /// The job's definite disposition (see [`JobDisposition`]). Always
    /// consistent with `outcome`: `Rejected` and `Quarantined` carry
    /// errors, `Degraded` carries an `Ok` outcome whose session state
    /// is [`SessionState::Degraded`].
    pub disposition: JobDisposition,
    /// Latency observations for this kernel's session.
    pub metrics: KernelMetrics,
}

/// Batch-wide latency distributions: the per-kernel cycle-domain
/// histograms merged in submission order (merge is order-independent,
/// so this is deterministic too), plus per-session totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceMetrics {
    /// Every kernel's launch cycles, merged.
    pub launch_cycles: Histogram,
    /// Every kernel's queue waits, merged.
    pub queue_wait_cycles: Histogram,
    /// One sample per kernel: the session's `total_cycles`.
    pub session_cycles: Histogram,
}

/// A completed service batch.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-kernel reports, in submission order.
    pub kernels: Vec<KernelReport>,
    /// Compile-cache activity **during this batch** (the delta between
    /// the before/after [`cache::stats`] snapshots, per shard included;
    /// `entries` is the resident count after the batch). With in-flight
    /// coalescing, hit/miss totals are a pure function of the job set,
    /// not the interleaving.
    pub cache: cache::CompileCacheStats,
    /// Batch-wide latency distributions.
    pub metrics: ServiceMetrics,
    /// Typed runtime decisions journaled during the batch (drained from
    /// the global ring — empty unless telemetry is enabled). A process
    /// running several services concurrently shares one journal; records
    /// carry the session lane for attribution.
    pub journal: JournalDrain,
    /// Host cores reported by `std::thread::available_parallelism` at
    /// run time — makes single-core throughput artifacts self-explaining
    /// and gate-skip conditions auditable.
    pub host_cores: usize,
    /// Worker threads the batch actually ran on (after clamping to the
    /// admitted job count).
    pub workers: usize,
}

impl ServiceReport {
    /// All decision logs flattened deterministically: kernels in
    /// submission order, each kernel's decisions in session order.
    #[must_use]
    pub fn merged_decisions(&self) -> Vec<(&str, &TuneDecision)> {
        self.kernels
            .iter()
            .filter_map(|k| k.outcome.as_ref().ok().map(|o| (k.name.as_str(), o)))
            .flat_map(|(name, o)| o.decisions.iter().map(move |d| (name, d)))
            .collect()
    }

    /// Whether every kernel tuned successfully.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.kernels.iter().all(|k| k.outcome.is_ok())
    }

    /// Count kernels whose disposition matches `pred` (e.g.
    /// `|d| matches!(d, JobDisposition::Degraded(_))`).
    #[must_use]
    pub fn count_dispositions(&self, pred: impl Fn(JobDisposition) -> bool) -> usize {
        self.kernels.iter().filter(|k| pred(k.disposition)).count()
    }
}

/// Extract a human-readable detail from a caught panic payload.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// The multi-kernel tuning service. See the module docs.
#[derive(Debug)]
pub struct OrionService<B: Backend> {
    backend: B,
    cfg: ServiceConfig,
}

impl<B: Backend> OrionService<B> {
    /// A service over `backend` with the given configuration.
    pub fn new(backend: B, cfg: ServiceConfig) -> Self {
        OrionService { backend, cfg }
    }

    /// The backend sessions execute on.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Tune one job to completion on the current thread (no telemetry
    /// lane is assigned; used by the workers and handy in tests). The
    /// job's [`JobPolicy`] budgets are enforced; admission control and
    /// panic isolation are `run`-only (there is no queue here, and a
    /// panic on the caller's own thread is the caller's to catch).
    ///
    /// # Errors
    /// Compile failures, fatal launch errors, or
    /// [`OrionError::AllCandidatesFailed`], wrapped with the kernel
    /// name where the session applies context.
    pub fn tune_one(&self, job: &mut KernelJob) -> Result<SessionOutcome, OrionError> {
        self.tune_one_observed(job).0
    }

    /// [`OrionService::tune_one`] plus the session's latency metrics
    /// (collected even when the session errors out — partial
    /// distributions are still diagnostic).
    pub fn tune_one_observed(
        &self,
        job: &mut KernelJob,
    ) -> (Result<SessionOutcome, OrionError>, KernelMetrics) {
        let (outcome, metrics, _) = self.tune_job(job, &JobFaults::NONE);
        (outcome, metrics)
    }

    /// The full per-job driver: compile, open a session, drive it to a
    /// definite disposition under the job's [`JobPolicy`] budgets and
    /// any injected chaos (`faults`).
    fn tune_job(
        &self,
        job: &mut KernelJob,
        faults: &JobFaults,
    ) -> (Result<SessionOutcome, OrionError>, KernelMetrics, JobDisposition) {
        let compile_start = Instant::now();
        let ck = match self.backend.compile_probe(&job.module, &job.tuning) {
            Ok(ck) => ck,
            Err(e) => {
                return (
                    Err(e),
                    KernelMetrics {
                        compile_wall_us: compile_start.elapsed().as_micros() as u64,
                        ..KernelMetrics::default()
                    },
                    JobDisposition::Quarantined,
                )
            }
        };
        let compile_wall_us = compile_start.elapsed().as_micros() as u64;
        let mut session = match self.cfg.policy {
            Some(policy) => TuningSession::resilient(
                job.name.as_str(),
                &ck,
                job.iterations,
                self.cfg.threshold,
                policy,
            ),
            None => TuningSession::simple(&ck, job.iterations, self.cfg.threshold),
        };
        let policy = job.policy;
        // Injected deadline pressure composes with the job's own
        // deadline: the tighter one wins.
        let deadline = match (policy.deadline_cycles, faults.deadline_cycles) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let injector = faults.plan.map(FaultInjector::new);
        let wall_start = Instant::now();
        let mut degrade_reason: Option<DegradeReason> = None;
        let mut launches_done: u32 = 0;
        let mut drive = |session: &mut TuningSession| -> Result<(), OrionError> {
            loop {
                // Policy gates come first: a blown budget resolves the
                // session to Degraded *before* the next launch is issued,
                // so a deadline can never be overshot by more than one
                // launch chain.
                let blown = deadline
                    .filter(|&d| session.total_cycles_so_far() >= d)
                    .map(|_| DegradeReason::DeadlineCycles)
                    .or_else(|| {
                        policy
                            .wall_budget
                            .filter(|&w| wall_start.elapsed() >= w)
                            .map(|_| DegradeReason::WallBudget)
                    })
                    .or_else(|| {
                        policy
                            .retry_budget
                            .filter(|&r| session.stats().retries > u64::from(r))
                            .map(|_| DegradeReason::RetryBudget)
                    });
                if let Some(reason) = blown {
                    session.degrade(reason.tag());
                    degrade_reason = Some(reason);
                    return Ok(());
                }
                let SessionStep::Launch(v) = session.next_step()? else {
                    return Ok(());
                };
                // Service-boundary chaos: injected faults replace (or
                // perturb) the real launch, deterministically per
                // (job, launch index) — identical at any worker count.
                let result = match &injector {
                    Some(inj) => {
                        let f = inj.draw();
                        if f.transient {
                            Err(SimError::TransientLaunchFailure { code: 7 }.into())
                        } else if f.resource {
                            Err(SimError::ResourceExceeded {
                                detail: "chaos: injected resource fault".into(),
                            }
                            .into())
                        } else if f.hang {
                            Err(SimError::Watchdog { budget: deadline.unwrap_or(0) }.into())
                        } else {
                            self.backend
                                .launch(
                                    &ck.versions[v],
                                    job.launch,
                                    &job.params,
                                    &mut job.global,
                                    LaunchOptions::default(),
                                )
                                .map(|c| inj.perturb_cycles(&f, c))
                        }
                    }
                    None => self.backend.launch(
                        &ck.versions[v],
                        job.launch,
                        &job.params,
                        &mut job.global,
                        LaunchOptions::default(),
                    ),
                };
                launches_done += 1;
                session.on_launch_result(result)?;
                if let Some(after) = faults.panic_after_launches {
                    if launches_done >= after {
                        panic!("chaos: injected worker panic after {launches_done} launches");
                    }
                }
            }
        };
        let driven = drive(&mut session);
        let obs = session.observations().clone();
        let metrics = KernelMetrics {
            launch_cycles: obs.launch_cycles,
            queue_wait_cycles: obs.queue_wait_cycles,
            compile_wall_us,
        };
        match driven {
            Ok(()) => {
                let outcome = session.finish();
                let disposition = match (degrade_reason, outcome.state) {
                    (Some(reason), SessionState::Degraded) => JobDisposition::Degraded(reason),
                    // A degrade with every version quarantined (or a
                    // session that died on its own) is a quarantine.
                    _ if outcome.state == SessionState::Quarantined => JobDisposition::Quarantined,
                    _ => JobDisposition::Finalized,
                };
                (Ok(outcome), metrics, disposition)
            }
            Err(e) => (Err(e), metrics, JobDisposition::Quarantined),
        }
    }

    /// Tune every job, concurrently, and report in submission order.
    /// Every submitted job comes back with a definite
    /// [`JobDisposition`] — rejected at admission, or run to
    /// finalized/quarantined/degraded — no matter what the backend or a
    /// worker thread does.
    pub fn run(&self, jobs: Vec<KernelJob>) -> ServiceReport {
        let submitted = jobs.len();
        let host_cores =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let reg = registry::global().scope("service");
        let in_flight = reg.register_gauge("in_flight_sessions", "Sessions currently tuning", "");
        let shed_counter =
            reg.register_counter("shed", "Jobs shed at admission over the process lifetime", "");
        let degraded_counter = reg.register_counter(
            "degraded",
            "Jobs degraded by policy budgets over the process lifetime",
            "",
        );
        let cache_before = cache::stats();
        // Names and priorities outlive the jobs themselves: panic
        // reports and shed reports need them after (or without) the job
        // value being consumed by a worker.
        let names: Vec<String> = jobs.iter().map(|j| j.name.clone()).collect();
        let priorities: Vec<u8> = jobs.iter().map(|j| j.policy.priority).collect();
        // Admission control: shed down to the queue capacity, lowest
        // priority first, ties shedding the latest submission.
        let mut admitted = vec![true; submitted];
        if let Some(capacity) = self.cfg.queue_capacity {
            if submitted > capacity {
                let mut by_priority: Vec<usize> = (0..submitted).collect();
                by_priority.sort_by_key(|&i| (priorities[i], Reverse(i)));
                for &i in by_priority.iter().take(submitted - capacity) {
                    admitted[i] = false;
                    shed_counter.inc();
                    journal::record(JournalEvent::Shed {
                        kernel: names[i].clone(),
                        priority: priorities[i],
                    });
                }
            }
        }
        let admitted_count = admitted.iter().filter(|&&a| a).count();
        reg.register_counter("sessions_total", "Sessions started over the process lifetime", "")
            .add(admitted_count as u64);
        let workers = match self.cfg.workers {
            0 => host_cores,
            w => w,
        }
        .min(admitted_count.max(1));
        // Workers claim admitted jobs in priority order (ties:
        // submission order) — higher-priority work starts first under
        // saturation, without affecting any per-job outcome.
        let mut claim_order: Vec<usize> = (0..submitted).filter(|&i| admitted[i]).collect();
        claim_order.sort_by_key(|&i| (Reverse(priorities[i]), i));
        // Slot-per-job in/out tables: workers claim indices off the
        // cursor, so reports land at their job's index and the merge is
        // submission-ordered by construction.
        let slots: Vec<Mutex<Option<KernelJob>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let reports: Vec<Mutex<Option<KernelReport>>> =
            (0..submitted).map(|_| Mutex::new(None)).collect();
        // Shed jobs resolve immediately, before any worker runs.
        for (i, report) in reports.iter().enumerate() {
            if !admitted[i] {
                let lane = u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1);
                *report.lock().unwrap_or_else(PoisonError::into_inner) = Some(KernelReport {
                    name: names[i].clone(),
                    lane,
                    outcome: Err(OrionError::Overloaded {
                        capacity: self.cfg.queue_capacity.unwrap_or(usize::MAX),
                        submitted,
                    }),
                    disposition: JobDisposition::Rejected,
                    metrics: KernelMetrics::default(),
                });
            }
        }
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let in_flight = in_flight.clone();
                let (slots, reports, cursor) = (&slots, &reports, &cursor);
                let (names, claim_order) = (&names, &claim_order);
                scope.spawn(move || loop {
                    let pos = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = claim_order.get(pos) else { break };
                    let lane = u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1);
                    orion_telemetry::set_scope(lane);
                    let faults = match &self.cfg.chaos {
                        Some(plan) => plan.job_faults(i),
                        None => JobFaults::NONE,
                    };
                    in_flight.inc();
                    // Panic isolation: a session that unwinds — the
                    // backend, the allocator, injected chaos — is caught
                    // at the job boundary and reported as its own
                    // quarantined outcome; the batch keeps running.
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        let mut job =
                            slots[i].lock().unwrap_or_else(PoisonError::into_inner).take().expect(
                                "invariant violated: each admitted slot is claimed exactly once",
                            );
                        let (outcome, metrics, disposition) = self.tune_job(&mut job, &faults);
                        KernelReport { name: job.name, lane, outcome, disposition, metrics }
                    }));
                    in_flight.dec();
                    let report = caught.unwrap_or_else(|payload| {
                        let detail = panic_detail(payload.as_ref());
                        orion_telemetry::counter("resilience", "session_panic", 1);
                        journal::record(JournalEvent::SessionPanic { kernel: names[i].clone() });
                        KernelReport {
                            name: names[i].clone(),
                            lane,
                            outcome: Err(OrionError::SessionPanicked { detail }
                                .with_context(names[i].clone(), None)),
                            disposition: JobDisposition::Quarantined,
                            metrics: KernelMetrics::default(),
                        }
                    });
                    *reports[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(report);
                });
            }
        });
        // No job may be lost: even if a worker died in a way the catch
        // above couldn't express, its slot still resolves to a definite
        // (quarantined) report.
        let kernels: Vec<KernelReport> = reports
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.into_inner().unwrap_or_else(PoisonError::into_inner).unwrap_or_else(|| {
                    KernelReport {
                        name: names[i].clone(),
                        lane: u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1),
                        outcome: Err(OrionError::SessionPanicked {
                            detail: "worker produced no report".into(),
                        }),
                        disposition: JobDisposition::Quarantined,
                        metrics: KernelMetrics::default(),
                    }
                })
            })
            .collect();
        degraded_counter.add(
            kernels.iter().filter(|k| matches!(k.disposition, JobDisposition::Degraded(_))).count()
                as u64,
        );
        // Merge per-kernel distributions in submission order (the merge
        // is order-independent, but fixing the order keeps even the
        // iteration deterministic) and mirror them into the global
        // registry for the exporters.
        let mut metrics = ServiceMetrics::default();
        for k in &kernels {
            metrics.launch_cycles.merge(&k.metrics.launch_cycles);
            metrics.queue_wait_cycles.merge(&k.metrics.queue_wait_cycles);
            if let Ok(o) = &k.outcome {
                metrics.session_cycles.record(o.total_cycles);
            }
        }
        reg.register_histogram("launch_cycles", "Per-launch simulated cycles", "cycles")
            .merge(&metrics.launch_cycles);
        reg.register_histogram("queue_wait_cycles", "Per-chain retry backoff", "cycles")
            .merge(&metrics.queue_wait_cycles);
        reg.register_histogram("session_cycles", "Per-session total simulated cycles", "cycles")
            .merge(&metrics.session_cycles);
        // Compile time is wall-clock: exported for operators, excluded
        // from every determinism gate.
        let compile_hist = reg.register_histogram(
            "compile_wall_us",
            "Per-kernel candidate-set compile wall time",
            "us",
        );
        for k in &kernels {
            compile_hist.record(k.metrics.compile_wall_us);
        }
        ServiceReport {
            kernels,
            cache: cache::stats().delta_since(&cache_before),
            metrics,
            journal: orion_telemetry::journal::drain(),
            host_cores,
            workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendCaps, ReplayBackend, SimBackend};
    use crate::compiler::{CompiledKernel, KernelVersion};
    use crate::session::SessionState;
    use orion_gpusim::device::DeviceSpec;
    use orion_gpusim::exec::SimError;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn toy_module(mul: i64) -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
        let nt = b.mov(Operand::Special(SpecialReg::NTidX));
        let gid = b.imad(cta, nt, tid);
        let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let y = b.imul(x, Operand::Imm(mul));
        b.st(MemSpace::Global, Width::W32, addr, y, 0);
        Module::new(b.finish())
    }

    fn job(name: &str, mul: i64, iterations: u32) -> KernelJob {
        KernelJob {
            name: name.into(),
            module: toy_module(mul),
            launch: Launch { grid: 4, block: 32 },
            params: vec![0],
            global: vec![0u8; 4 * 128],
            iterations,
            tuning: TuningConfig::new(32),
            policy: JobPolicy::default(),
        }
    }

    #[test]
    fn reports_come_back_in_submission_order() {
        let svc = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
        );
        let names = ["a", "b", "c", "d", "e"];
        let report = svc.run(names.iter().map(|n| job(n, 3, 4)).collect());
        assert!(report.all_ok());
        let got: Vec<&str> = report.kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(got, names);
        // Lanes are 1-based job indices.
        assert_eq!(report.kernels[0].lane, 1);
        assert_eq!(report.kernels[4].lane, 5);
        // Healthy batch: every disposition is Finalized, and the report
        // records where it ran.
        assert_eq!(report.count_dispositions(|d| d == JobDisposition::Finalized), 5);
        assert_eq!(report.workers, 2);
        assert!(report.host_cores >= 1);
    }

    #[test]
    fn worker_count_does_not_change_outcomes() {
        let mk = || (1..=6).map(|i| job(&format!("k{i}"), i64::from(i), 6)).collect::<Vec<_>>();
        let seq = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 1, ..ServiceConfig::default() },
        )
        .run(mk());
        let par = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 4, ..ServiceConfig::default() },
        )
        .run(mk());
        for (a, b) in seq.kernels.iter().zip(&par.kernels) {
            assert_eq!(
                a.outcome.as_ref().unwrap(),
                b.outcome.as_ref().unwrap(),
                "kernel {} diverged across worker counts",
                a.name
            );
            assert_eq!(a.disposition, b.disposition);
        }
        assert_eq!(seq.merged_decisions().len(), par.merged_decisions().len());
    }

    #[test]
    fn a_dead_kernel_is_reported_not_propagated() {
        // Script every candidate version dead on a replay backend: the
        // session quarantines them all, and the service captures the
        // AllCandidatesFailed error in the kernel's own report instead
        // of aborting the batch.
        let be = ReplayBackend::new(DeviceSpec::gtx680(), 100);
        let probe = be.compile_probe(&toy_module(2), &TuningConfig::new(32)).unwrap();
        let be = probe.versions.iter().fold(be, |b, v| {
            b.script(v.label.clone(), [Err(SimError::ResourceExceeded { detail: "regs".into() })])
        });
        let svc = OrionService::new(be, ServiceConfig { workers: 2, ..Default::default() });
        let report = svc.run(vec![job("dead", 2, 8)]);
        assert!(!report.all_ok());
        let err = report.kernels[0].outcome.as_ref().unwrap_err();
        assert!(
            matches!(err.root_cause(), OrionError::AllCandidatesFailed { .. }),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("dead"));
        assert_eq!(report.kernels[0].disposition, JobDisposition::Quarantined);
    }

    #[test]
    fn quarantined_session_reports_coherent_state() {
        let be = ReplayBackend::new(DeviceSpec::gtx680(), 100);
        let probe = be.compile_probe(&toy_module(2), &TuningConfig::new(32)).unwrap();
        let be = probe
            .versions
            .iter()
            .fold(be, |b, v| b.script(v.label.clone(), [Err(SimError::Watchdog { budget: 7 })]));
        let svc = OrionService::new(be, ServiceConfig { workers: 1, ..Default::default() });
        let mut j = job("hung", 2, 10);
        let err = svc.tune_one(&mut j).unwrap_err();
        assert!(matches!(err.root_cause(), OrionError::AllCandidatesFailed { .. }));
    }

    #[test]
    fn mixed_batch_keeps_healthy_kernels_healthy() {
        // One job with zero iterations (trivially fine), several real
        // ones; the batch must report each on its own terms.
        let svc = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 3, ..ServiceConfig::default() },
        );
        let mut jobs = vec![job("empty", 2, 0)];
        jobs.extend((1..=3).map(|i| job(&format!("k{i}"), i64::from(i), 5)));
        let report = svc.run(jobs);
        assert!(report.all_ok());
        let empty = report.kernels[0].outcome.as_ref().unwrap();
        assert!(empty.iterations.is_empty());
        for k in &report.kernels[1..] {
            let o = k.outcome.as_ref().unwrap();
            assert_eq!(o.iterations.len(), 5);
            // 5 iterations can't finish a 7-sample warmup pass; the
            // session ends mid-walk but never in a dead state.
            assert_ne!(o.state, SessionState::Quarantined);
        }
    }

    #[test]
    fn saturated_queue_sheds_by_priority_and_rejects_cleanly() {
        let svc = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 2, queue_capacity: Some(3), ..ServiceConfig::default() },
        );
        // Five jobs, capacity three: the two lowest-priority jobs are
        // shed; within equal priority the later submission goes first.
        let mut jobs: Vec<KernelJob> = (0..5).map(|i| job(&format!("j{i}"), 3, 3)).collect();
        jobs[1].policy.priority = 10; // lowest: shed
        jobs[2].policy.priority = 200; // highest: safe
                                       // j0, j3, j4 tie at default priority; j4 (latest) is shed.
        let report = svc.run(jobs);
        let dispositions: Vec<JobDisposition> =
            report.kernels.iter().map(|k| k.disposition).collect();
        assert_eq!(
            dispositions,
            [
                JobDisposition::Finalized,
                JobDisposition::Rejected,
                JobDisposition::Finalized,
                JobDisposition::Finalized,
                JobDisposition::Rejected,
            ],
            "{dispositions:?}"
        );
        for k in &report.kernels {
            if k.disposition == JobDisposition::Rejected {
                let err = k.outcome.as_ref().unwrap_err();
                assert!(
                    matches!(
                        err.root_cause(),
                        OrionError::Overloaded { capacity: 3, submitted: 5 }
                    ),
                    "unexpected rejection error: {err}"
                );
            }
        }
        // Rejection is admission-time: shed jobs never compiled.
        assert_eq!(report.count_dispositions(|d| d == JobDisposition::Rejected), 2);
    }

    #[test]
    fn deadline_degrades_to_fail_safe_not_error() {
        // One simulated launch of this toy kernel costs well over 100
        // cycles, so a 100-cycle deadline fires after the baseline
        // measurement: the job must land Degraded with the original
        // version, not an error.
        let svc = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 1, ..ServiceConfig::default() },
        );
        let mut j = job("late", 3, 10);
        j.policy.deadline_cycles = Some(100);
        let report = svc.run(vec![j]);
        let k = &report.kernels[0];
        assert_eq!(k.disposition, JobDisposition::Degraded(DegradeReason::DeadlineCycles));
        let o = k.outcome.as_ref().expect("degraded jobs report an outcome, not an error");
        assert_eq!(o.state, SessionState::Degraded);
        assert_eq!(o.selected, 0, "fail-safe selection is the original version");
        assert!(
            o.decisions.last().is_some_and(|d| d.reason == crate::runtime::TuneReason::Degraded),
            "{:?}",
            o.decisions
        );
    }

    /// A backend whose launches always panic — the hostile case panic
    /// isolation exists for.
    struct PanickingBackend {
        inner: SimBackend,
    }

    impl Backend for PanickingBackend {
        fn name(&self) -> &'static str {
            "panicking"
        }
        fn device_spec(&self) -> &DeviceSpec {
            self.inner.device_spec()
        }
        fn caps(&self) -> BackendCaps {
            self.inner.caps()
        }
        fn compile_probe(
            &self,
            module: &Module,
            cfg: &TuningConfig,
        ) -> Result<CompiledKernel, OrionError> {
            self.inner.compile_probe(module, cfg)
        }
        fn launch(
            &self,
            _version: &KernelVersion,
            _launch: Launch,
            _params: &[u32],
            _global: &mut [u8],
            _opts: LaunchOptions,
        ) -> Result<u64, OrionError> {
            panic!("backend exploded mid-launch");
        }
    }

    #[test]
    fn worker_panic_is_caught_and_reported_per_kernel() {
        // Quiet hook: the induced panics are the test subject, not noise.
        let prior_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let svc = OrionService::new(
            PanickingBackend { inner: SimBackend::new(DeviceSpec::gtx680()) },
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
        );
        let report = svc.run(vec![job("boom1", 2, 4), job("boom2", 3, 4)]);
        std::panic::set_hook(prior_hook);
        assert_eq!(report.kernels.len(), 2, "no job may be lost to a panic");
        for k in &report.kernels {
            assert_eq!(k.disposition, JobDisposition::Quarantined);
            let err = k.outcome.as_ref().unwrap_err();
            assert!(
                matches!(err.root_cause(), OrionError::SessionPanicked { detail }
                    if detail.contains("exploded")),
                "unexpected error: {err}"
            );
            assert!(err.to_string().contains(&k.name), "context names the kernel: {err}");
        }
    }
}
