//! `OrionService` — tuning many kernels as one workload.
//!
//! Real applications don't tune one kernel in a vacuum: a Rodinia-style
//! app launches several kernels, each wanting its own occupancy walk,
//! all sharing one device, one compile cache, and one telemetry stream.
//! [`OrionService`] is that multi-kernel driver: it owns an
//! [`AsyncBackend`], accepts a batch of named [`KernelJob`]s, and
//! multiplexes one [`TuningSession`] per kernel over the backend's
//! submission queue from a single event loop.
//!
//! ## The event loop
//!
//! The sessions are pull-based state machines — `next_step()` hands out
//! a launch request, `on_launch_result()` folds the measurement back —
//! so tuning logic needs no thread of its own. The scheduler keeps up
//! to [`ServiceConfig::in_flight_limit`] sessions in flight: it *pumps*
//! each ready session until it emits a launch, submits that launch to
//! the backend ([`AsyncBackend::submit`]), and resumes the session when
//! its [`crate::backend::Completion`] arrives. Execution
//! parallelism lives entirely in the backend's worker pool (sized by
//! [`ServiceConfig::workers`]); with `in_flight_limit = 1` the very
//! same code path degenerates to strictly sequential execution — the
//! service bench's apples-to-apples baseline.
//!
//! Sessions start in **longest-job-first** order
//! ([`SchedulerMode::Ljf`]): per-job costs are estimated from the
//! probe-time occupancy curves (grid lanes × iterations, scaled by the
//! deepest candidate's occupancy rounds), so tail kernels are dispatched
//! early and don't strand backend workers at the end of the batch. The
//! dispatch order is a pure function of the job set — sessions are
//! always started from the head of the sorted queue, whatever the
//! completion interleaving — and is recorded in
//! [`ServiceReport::dispatch_order`].
//!
//! Four properties the service guarantees:
//!
//! * **Per-session isolation** — each job gets its own compiled
//!   candidates, global-memory image, and session; a kernel whose every
//!   candidate dies reports [`OrionError::AllCandidatesFailed`] in its
//!   own [`KernelReport`] without disturbing its neighbours. Panics are
//!   caught at two boundaries: a backend worker that unwinds mid-launch
//!   surfaces as an [`OrionError::SessionPanicked`] *completion*, and a
//!   session step (or completion callback) that unwinds on the
//!   scheduler is caught per step — either way the job resolves to its
//!   own quarantined report instead of tearing the batch down.
//! * **Definite outcomes** — every submitted job terminates with
//!   exactly one [`JobDisposition`]: `Finalized`, `Quarantined`,
//!   `Degraded`, or `Rejected`. Jobs in equals definite outcomes out,
//!   whatever the backend, the allocator, or a worker thread does — the
//!   chaos-service bench gates exactly this invariant.
//! * **Deterministic merge** — reports come back in submission order
//!   whatever the thread interleaving, and
//!   [`ServiceReport::merged_decisions`] is a deterministic flattening
//!   of the per-kernel decision logs. On a deterministic backend the
//!   per-kernel outcomes are bit-identical at any worker count (the
//!   service bench enforces exactly this).
//! * **Shared infrastructure** — one compile cache (kernels sharing a
//!   module fingerprint reuse allocations; [`ServiceReport::cache`]
//!   reports hit rates across the batch) and one telemetry buffer,
//!   with each session stamped onto its own lane
//!   ([`orion_telemetry::set_scope`]) so traces stay separable.
//!
//! ## Job lifecycle
//!
//! ```text
//! submit ──► Admitted ──► Running ──► Finalized
//!    │                       ├──────► Quarantined   (errors, panics)
//!    │                       └──────► Degraded      (budget expired)
//!    └──► Rejected   (admission queue full, shed by priority)
//! ```
//!
//! Admission happens before any worker runs: with
//! [`ServiceConfig::queue_capacity`] set, a batch larger than the queue
//! sheds its lowest-priority (then latest-submitted) jobs, which report
//! [`OrionError::Overloaded`] immediately. Running jobs are metered
//! against their [`JobPolicy`] — a simulated-cycle deadline, a
//! wall-clock budget, and a retry budget shared across candidates — and
//! a blown budget resolves the session to **Degraded**: the tuner
//! settles on its fail-safe selection (the paper's §4 philosophy — the
//! original kernel always remains runnable) instead of erroring.
//!
//! [`TuningSession`]: crate::session::TuningSession

use crate::backend::{AsyncBackend, Completion, LaunchRequest, TicketId};
use crate::cache;
use crate::compiler::{CompiledKernel, TuningConfig};
use crate::error::OrionError;
use crate::policy::PolicyKind;
use crate::resilient::ResiliencePolicy;
use crate::runtime::TuneDecision;
use crate::session::{SessionMode, SessionOutcome, SessionState, SessionStep, TuningSession};
use orion_gpusim::exec::{Launch, SimError};
use orion_gpusim::faults::{FaultInjector, JobFaults, LaunchFaults, ServiceFaultPlan};
use orion_gpusim::sim::LaunchOptions;
use orion_kir::function::Module;
use orion_telemetry::hist::Histogram;
use orion_telemetry::journal::{self, JournalDrain, JournalEvent};
use orion_telemetry::registry;
use std::cmp::Reverse;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default admission priority (midpoint of the `u8` range, so callers
/// can step both up and down from the default).
pub const DEFAULT_PRIORITY: u8 = 100;

/// Per-job execution budgets and admission priority, enforced by the
/// service around the session. All budgets default to *unlimited*: a
/// default-policy job behaves exactly as before this type existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPolicy {
    /// Simulated-cycle deadline across the whole session, retry backoff
    /// included ([`TuningSession::total_cycles_so_far`]). Deterministic:
    /// safe inside bit-equality gates. Exceeding it degrades the job.
    pub deadline_cycles: Option<u64>,
    /// Wall-clock budget for the whole job (compile excluded). **Not**
    /// deterministic — leave `None` in any run that must be bit-equal
    /// across worker counts. Exceeding it degrades the job.
    pub wall_budget: Option<Duration>,
    /// Retry budget shared across all candidates: once the session has
    /// spent *more* than this many retries in total, the job degrades
    /// (`Some(0)` allows no retries). `None` defers entirely to the
    /// per-launch [`ResiliencePolicy::max_retries`].
    pub retry_budget: Option<u32>,
    /// Admission priority; higher survives shedding longer. Ties shed
    /// the later submission first.
    pub priority: u8,
    /// Per-job [`SearchPolicy`](crate::policy::SearchPolicy) override;
    /// `None` inherits [`ServiceConfig::search`]. The policy only
    /// changes *which* candidate the session measures next — budgets,
    /// quarantine, fallback, and scheduling are session-level and apply
    /// identically under any search policy.
    pub search: Option<PolicyKind>,
}

impl Default for JobPolicy {
    fn default() -> Self {
        JobPolicy {
            deadline_cycles: None,
            wall_budget: None,
            retry_budget: None,
            priority: DEFAULT_PRIORITY,
            search: None,
        }
    }
}

/// Which [`JobPolicy`] budget expired and degraded a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// [`JobPolicy::deadline_cycles`] was reached.
    DeadlineCycles,
    /// [`JobPolicy::wall_budget`] elapsed.
    WallBudget,
    /// [`JobPolicy::retry_budget`] was exhausted.
    RetryBudget,
}

impl DegradeReason {
    /// Stable lowercase tag (journal records, reports).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            DegradeReason::DeadlineCycles => "deadline_cycles",
            DegradeReason::WallBudget => "wall_budget",
            DegradeReason::RetryBudget => "retry_budget",
        }
    }
}

/// The definite outcome of one submitted [`KernelJob`]. Every job gets
/// exactly one of these — the service's core invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobDisposition {
    /// The session settled normally (a finalized walk, or a healthy
    /// session that simply ran out of iterations mid-walk).
    Finalized,
    /// The session died: every candidate quarantined, a fatal launch or
    /// compile error, or a worker panic.
    Quarantined,
    /// A policy budget expired; the job reports its fail-safe selection.
    Degraded(DegradeReason),
    /// Shed at admission ([`OrionError::Overloaded`]); never ran.
    Rejected,
}

impl JobDisposition {
    /// Stable lowercase name (reports, bench artifacts).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobDisposition::Finalized => "finalized",
            JobDisposition::Quarantined => "quarantined",
            JobDisposition::Degraded(_) => "degraded",
            JobDisposition::Rejected => "rejected",
        }
    }
}

/// How the event loop orders session starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Longest-job-first: within an admission-priority class, sessions
    /// with the largest estimated cost (probe-time occupancy curve ×
    /// iterations) start first, so tail kernels don't strand backend
    /// workers at the end of the batch. The default.
    #[default]
    Ljf,
    /// Submission order within an admission-priority class (the
    /// pre-event-loop claim order).
    Fifo,
}

impl SchedulerMode {
    /// Stable lowercase name (reports, bench artifacts).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulerMode::Ljf => "ljf",
            SchedulerMode::Fifo => "fifo",
        }
    }
}

/// Service-wide knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Backend execution workers; `0` means one per host core. The
    /// scheduler itself is single-threaded — this sizes the
    /// [`AsyncBackend`] pool launches execute on. Results on a
    /// deterministic backend are bit-identical at any worker count.
    pub workers: usize,
    /// Maximum sessions with a launch in flight at once; `0` means
    /// unlimited (every admitted session). `1` is the strictly
    /// sequential baseline: one session runs start-to-finish before the
    /// next is dispatched, on the very same code path. Results on a
    /// deterministic backend are bit-identical at any limit.
    pub in_flight_limit: usize,
    /// Session-start ordering (see [`SchedulerMode`]).
    pub scheduler: SchedulerMode,
    /// Slowdown threshold for every session (the paper's 2%).
    pub threshold: f64,
    /// `Some` drives resilient sessions (retry/quarantine/fallback);
    /// `None` drives the paper's exact fault-free walk.
    pub policy: Option<ResiliencePolicy>,
    /// Admission-queue bound: `None` admits every batch unbounded (the
    /// pre-resilience behavior); `Some(k)` admits at most `k` jobs per
    /// batch and sheds the rest by ascending priority (ties: latest
    /// submission first). `Some(0)` rejects everything — useful as a
    /// drain switch and in tests.
    pub queue_capacity: Option<usize>,
    /// Service-boundary chaos plan: per-job launch-fault injection,
    /// injected worker panics, and injected deadline pressure, drawn
    /// deterministically per submission index. Inert when `None` (and
    /// compiled out without the `faults` feature on `orion-gpusim`).
    pub chaos: Option<ServiceFaultPlan>,
    /// Search policy for every session ([`PolicyKind::PaperWalk`] by
    /// default — the paper's exact Figure 9 walk); individual jobs may
    /// override it via [`JobPolicy::search`].
    pub search: PolicyKind,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            in_flight_limit: 0,
            scheduler: SchedulerMode::Ljf,
            threshold: 0.02,
            policy: Some(ResiliencePolicy::default()),
            queue_capacity: None,
            chaos: None,
            search: PolicyKind::PaperWalk,
        }
    }
}

/// One kernel the service should tune: the module plus everything
/// needed to launch it repeatedly.
#[derive(Debug, Clone)]
pub struct KernelJob {
    /// Kernel name (error context, telemetry, reports).
    pub name: String,
    /// The kernel IR to compile into candidate versions.
    pub module: Module,
    /// Launch geometry for every invocation.
    pub launch: Launch,
    /// Kernel parameters for every invocation.
    pub params: Vec<u32>,
    /// Initial global-memory image; owned per job (iterated launches
    /// mutate it, and isolation requires no sharing).
    pub global: Vec<u8>,
    /// Application iterations to drive.
    pub iterations: u32,
    /// Compile-time tuning configuration (block size, version budget).
    pub tuning: TuningConfig,
    /// Execution budgets and admission priority for this job.
    pub policy: JobPolicy,
}

/// Per-kernel latency observations. The cycle-domain histograms come
/// from the session ([`crate::session::SessionObs`]) and are
/// **deterministic**: bit-identical across worker counts and thread
/// interleavings on a deterministic backend. `compile_wall_us` is
/// wall-clock and excluded from every determinism gate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelMetrics {
    /// Simulated cycles of each successful launch.
    pub launch_cycles: Histogram,
    /// Simulated backoff cycles each launch chain waited (0 without
    /// retries).
    pub queue_wait_cycles: Histogram,
    /// Wall-clock microseconds spent in `compile_probe` for this job
    /// (candidate generation + allocation; cache hits make it cheap).
    pub compile_wall_us: u64,
    /// Wall-clock microseconds this job's launches spent queued behind
    /// the backend's worker pool (submission → execution start), summed
    /// across launches. Excluded from every determinism gate.
    pub dispatch_wait_us: u64,
    /// Wall-clock microseconds this job's launches spent executing on a
    /// backend worker, summed across launches. Excluded from every
    /// determinism gate.
    pub execute_us: u64,
}

impl KernelMetrics {
    /// The deterministic (simulated-cycle) half of the metrics — what
    /// the sequential-vs-concurrent gates compare.
    #[must_use]
    pub fn cycle_domain(&self) -> (&Histogram, &Histogram) {
        (&self.launch_cycles, &self.queue_wait_cycles)
    }
}

/// What happened to one [`KernelJob`].
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// The job's kernel name.
    pub name: String,
    /// Telemetry lane the session's events carry (`job index + 1`;
    /// lane 0 stays the unscoped default).
    pub lane: u32,
    /// The session outcome, or the error that stopped it. Errors are
    /// per-kernel: one dead kernel never aborts the batch.
    pub outcome: Result<SessionOutcome, OrionError>,
    /// The job's definite disposition (see [`JobDisposition`]). Always
    /// consistent with `outcome`: `Rejected` and `Quarantined` carry
    /// errors, `Degraded` carries an `Ok` outcome whose session state
    /// is [`SessionState::Degraded`].
    pub disposition: JobDisposition,
    /// Latency observations for this kernel's session.
    pub metrics: KernelMetrics,
}

/// Batch-wide latency distributions: the per-kernel cycle-domain
/// histograms merged in submission order (merge is order-independent,
/// so this is deterministic too), plus per-session totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceMetrics {
    /// Every kernel's launch cycles, merged.
    pub launch_cycles: Histogram,
    /// Every kernel's queue waits, merged.
    pub queue_wait_cycles: Histogram,
    /// One sample per kernel: the session's `total_cycles`.
    pub session_cycles: Histogram,
}

/// A completed service batch.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-kernel reports, in submission order.
    pub kernels: Vec<KernelReport>,
    /// Compile-cache activity **during this batch** (the delta between
    /// the before/after [`cache::stats`] snapshots, per shard included;
    /// `entries` is the resident count after the batch). With in-flight
    /// coalescing, hit/miss totals are a pure function of the job set,
    /// not the interleaving.
    pub cache: cache::CompileCacheStats,
    /// Batch-wide latency distributions.
    pub metrics: ServiceMetrics,
    /// Typed runtime decisions journaled during the batch (drained from
    /// the global ring — empty unless telemetry is enabled). A process
    /// running several services concurrently shares one journal; records
    /// carry the session lane for attribution.
    pub journal: JournalDrain,
    /// Host cores reported by `std::thread::available_parallelism` at
    /// run time — makes single-core throughput artifacts self-explaining
    /// and gate-skip conditions auditable.
    pub host_cores: usize,
    /// Worker threads the batch actually ran on (after clamping to the
    /// admitted job count).
    pub workers: usize,
    /// The in-flight session cap the batch actually ran with (the
    /// configured limit, or the admitted count when configured `0`).
    pub in_flight_limit: usize,
    /// The scheduler mode the batch ran with.
    pub scheduler: SchedulerMode,
    /// Job indices in the order the event loop started their sessions —
    /// a pure function of the job set (priorities, then estimated cost
    /// under [`SchedulerMode::Ljf`]), independent of completion
    /// interleaving. Rejected and compile-failed jobs don't appear.
    pub dispatch_order: Vec<usize>,
}

impl ServiceReport {
    /// All decision logs flattened deterministically: kernels in
    /// submission order, each kernel's decisions in session order.
    #[must_use]
    pub fn merged_decisions(&self) -> Vec<(&str, &TuneDecision)> {
        self.kernels
            .iter()
            .filter_map(|k| k.outcome.as_ref().ok().map(|o| (k.name.as_str(), o)))
            .flat_map(|(name, o)| o.decisions.iter().map(move |d| (name, d)))
            .collect()
    }

    /// Whether every kernel tuned successfully.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.kernels.iter().all(|k| k.outcome.is_ok())
    }

    /// Count kernels whose disposition matches `pred` (e.g.
    /// `|d| matches!(d, JobDisposition::Degraded(_))`).
    #[must_use]
    pub fn count_dispositions(&self, pred: impl Fn(JobDisposition) -> bool) -> usize {
        self.kernels.iter().filter(|k| pred(k.disposition)).count()
    }
}

/// Extract a human-readable detail from a caught panic payload.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// The definite report for a job whose session step (or completion
/// callback) unwound on the scheduler: counted, journaled, quarantined.
fn panic_report(
    name: &str,
    lane: u32,
    payload: &(dyn std::any::Any + Send),
    compile_wall_us: u64,
) -> KernelReport {
    let detail = panic_detail(payload);
    orion_telemetry::counter("resilience", "session_panic", 1);
    journal::record(JournalEvent::SessionPanic { kernel: name.to_string() });
    KernelReport {
        name: name.to_string(),
        lane,
        outcome: Err(OrionError::SessionPanicked { detail }.with_context(name.to_string(), None)),
        disposition: JobDisposition::Quarantined,
        metrics: KernelMetrics { compile_wall_us, ..KernelMetrics::default() },
    }
}

/// Which [`JobPolicy`] budget (if any) has expired for `session`.
/// `deadline` is the effective cycle deadline (policy composed with any
/// injected deadline pressure; the tighter one).
fn blown_budget(
    session: &TuningSession<'_>,
    deadline: Option<u64>,
    policy: &JobPolicy,
    wall_start: Instant,
) -> Option<DegradeReason> {
    deadline
        .filter(|&d| session.total_cycles_so_far() >= d)
        .map(|_| DegradeReason::DeadlineCycles)
        .or_else(|| {
            policy
                .wall_budget
                .filter(|&w| wall_start.elapsed() >= w)
                .map(|_| DegradeReason::WallBudget)
        })
        .or_else(|| {
            policy
                .retry_budget
                .filter(|&r| session.stats().retries > u64::from(r))
                .map(|_| DegradeReason::RetryBudget)
        })
}

/// The error an injected launch fault stands in for, if the draw `f`
/// injects one. Deterministic per draw — identical at any worker count
/// or in-flight limit.
fn injected_error(f: &LaunchFaults, deadline: Option<u64>) -> Option<OrionError> {
    if f.transient {
        Some(SimError::TransientLaunchFailure { code: 7 }.into())
    } else if f.resource {
        Some(SimError::ResourceExceeded { detail: "chaos: injected resource fault".into() }.into())
    } else if f.hang {
        Some(SimError::Watchdog { budget: deadline.unwrap_or(0) }.into())
    } else {
        None
    }
}

/// Estimated whole-session cost for longest-job-first dispatch, from
/// the probe-time occupancy curve: grid lanes × the deepest (non
/// fail-safe) candidate's execution rounds × application iterations.
/// A pure function of the compiled kernel and the job — identical on
/// every host, so LJF order is deterministic.
fn estimate_cost(ck: &CompiledKernel, job: &KernelJob) -> u64 {
    let lanes = u64::from(job.launch.grid) * u64::from(job.launch.block);
    let rounds = ck
        .versions
        .iter()
        .filter(|v| !v.fail_safe)
        .map(|v| lanes.div_ceil(u64::from(v.achieved_warps.max(1)) * 32))
        .max()
        .unwrap_or(1)
        .max(1);
    lanes * rounds * u64::from(job.iterations.max(1))
}

/// One admitted job being multiplexed by the event loop: the session,
/// its launch ingredients, policy/chaos state, and running wall-clock
/// phase accumulators. The session borrows its compiled kernel from the
/// scheduler's frozen candidate table (`'k`); the `Arc` clone feeds
/// [`LaunchRequest`]s.
struct ActiveJob<'k> {
    name: String,
    lane: u32,
    session: TuningSession<'k>,
    ck: Arc<CompiledKernel>,
    launch: Launch,
    params: Vec<u32>,
    /// The job's global-memory image; moved into each [`LaunchRequest`]
    /// and restored from its [`Completion`].
    global: Vec<u8>,
    policy: JobPolicy,
    /// Effective cycle deadline (policy ∧ injected pressure).
    deadline: Option<u64>,
    injector: Option<FaultInjector>,
    panic_after: Option<u32>,
    /// Fault draw for the launch currently in flight, applied to its
    /// completion ([`FaultInjector::perturb_cycles`]).
    pending_fault: Option<LaunchFaults>,
    wall_start: Instant,
    degrade_reason: Option<DegradeReason>,
    launches_done: u32,
    compile_wall_us: u64,
    dispatch_wait_us: u64,
    execute_us: u64,
}

/// What one pump of a session produced: a launch in flight, or a
/// definite report.
enum Pump {
    Submitted(TicketId),
    Finished(Box<KernelReport>),
}

impl ActiveJob<'_> {
    /// Resolve this job to its definite report.
    fn seal(
        &mut self,
        outcome: Result<SessionOutcome, OrionError>,
        disposition: JobDisposition,
    ) -> Pump {
        let obs = self.session.observations().clone();
        Pump::Finished(Box::new(KernelReport {
            name: self.name.clone(),
            lane: self.lane,
            outcome,
            disposition,
            metrics: KernelMetrics {
                launch_cycles: obs.launch_cycles,
                queue_wait_cycles: obs.queue_wait_cycles,
                compile_wall_us: self.compile_wall_us,
                dispatch_wait_us: self.dispatch_wait_us,
                execute_us: self.execute_us,
            },
        }))
    }

    /// Finish a session the driver stopped cleanly (walk done, or a
    /// budget degrade) and derive its disposition exactly as the
    /// synchronous driver does.
    fn seal_settled(&mut self) -> Pump {
        let outcome = self.session.clone().finish();
        let disposition = match (self.degrade_reason, outcome.state) {
            (Some(reason), SessionState::Degraded) => JobDisposition::Degraded(reason),
            // A degrade with every version quarantined (or a session
            // that died on its own) is a quarantine.
            _ if outcome.state == SessionState::Quarantined => JobDisposition::Quarantined,
            _ => JobDisposition::Finalized,
        };
        self.seal(Ok(outcome), disposition)
    }

    /// Injected worker-panic chaos: unwinds once the launch count
    /// reaches the plan's threshold. The message is deterministic, so
    /// panic reports stay bit-identical across worker counts.
    fn check_panic_fault(&self) {
        if let Some(after) = self.panic_after {
            if self.launches_done >= after {
                panic!("chaos: injected worker panic after {} launches", self.launches_done);
            }
        }
    }
}

/// The multi-kernel tuning service. See the module docs.
#[derive(Debug)]
pub struct OrionService<B: AsyncBackend> {
    backend: B,
    cfg: ServiceConfig,
}

impl<B: AsyncBackend> OrionService<B> {
    /// A service over `backend` with the given configuration.
    pub fn new(backend: B, cfg: ServiceConfig) -> Self {
        OrionService { backend, cfg }
    }

    /// The backend sessions execute on.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Tune one job to completion on the current thread (no telemetry
    /// lane is assigned; used by the workers and handy in tests). The
    /// job's [`JobPolicy`] budgets are enforced; admission control and
    /// panic isolation are `run`-only (there is no queue here, and a
    /// panic on the caller's own thread is the caller's to catch).
    ///
    /// # Errors
    /// Compile failures, fatal launch errors, or
    /// [`OrionError::AllCandidatesFailed`], wrapped with the kernel
    /// name where the session applies context.
    pub fn tune_one(&self, job: &mut KernelJob) -> Result<SessionOutcome, OrionError> {
        self.tune_one_observed(job).0
    }

    /// [`OrionService::tune_one`] plus the session's latency metrics
    /// (collected even when the session errors out — partial
    /// distributions are still diagnostic).
    pub fn tune_one_observed(
        &self,
        job: &mut KernelJob,
    ) -> (Result<SessionOutcome, OrionError>, KernelMetrics) {
        let (outcome, metrics, _) = self.tune_job(job, &JobFaults::NONE);
        (outcome, metrics)
    }

    /// The full per-job driver: compile, open a session, drive it to a
    /// definite disposition under the job's [`JobPolicy`] budgets and
    /// any injected chaos (`faults`).
    fn tune_job(
        &self,
        job: &mut KernelJob,
        faults: &JobFaults,
    ) -> (Result<SessionOutcome, OrionError>, KernelMetrics, JobDisposition) {
        let compile_start = Instant::now();
        let ck = match self.backend.compile_probe(&job.module, &job.tuning) {
            Ok(ck) => ck,
            Err(e) => {
                return (
                    Err(e),
                    KernelMetrics {
                        compile_wall_us: compile_start.elapsed().as_micros() as u64,
                        ..KernelMetrics::default()
                    },
                    JobDisposition::Quarantined,
                )
            }
        };
        let compile_wall_us = compile_start.elapsed().as_micros() as u64;
        let search = job.policy.search.unwrap_or(self.cfg.search);
        let mut session = match self.cfg.policy {
            Some(policy) => TuningSession::with_policy(
                job.name.as_str(),
                &ck,
                job.iterations,
                self.cfg.threshold,
                SessionMode::Resilient(policy),
                search,
            ),
            None => TuningSession::with_policy(
                "",
                &ck,
                job.iterations,
                self.cfg.threshold,
                SessionMode::Simple,
                search,
            ),
        };
        let policy = job.policy;
        // Injected deadline pressure composes with the job's own
        // deadline: the tighter one wins.
        let deadline = match (policy.deadline_cycles, faults.deadline_cycles) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let injector = faults.plan.map(FaultInjector::new);
        let wall_start = Instant::now();
        let mut degrade_reason: Option<DegradeReason> = None;
        let mut launches_done: u32 = 0;
        let mut drive = |session: &mut TuningSession| -> Result<(), OrionError> {
            loop {
                // Policy gates come first: a blown budget resolves the
                // session to Degraded *before* the next launch is issued,
                // so a deadline can never be overshot by more than one
                // launch chain.
                if let Some(reason) = blown_budget(session, deadline, &policy, wall_start) {
                    session.degrade(reason.tag());
                    degrade_reason = Some(reason);
                    return Ok(());
                }
                let SessionStep::Launch(v) = session.next_step()? else {
                    return Ok(());
                };
                // Service-boundary chaos: injected faults replace (or
                // perturb) the real launch, deterministically per
                // (job, launch index) — identical at any worker count.
                let result = match &injector {
                    Some(inj) => {
                        let f = inj.draw();
                        match injected_error(&f, deadline) {
                            Some(err) => Err(err),
                            None => self
                                .backend
                                .launch(
                                    &ck.versions[v],
                                    job.launch,
                                    &job.params,
                                    &mut job.global,
                                    LaunchOptions::default(),
                                )
                                .map(|c| inj.perturb_cycles(&f, c)),
                        }
                    }
                    None => self.backend.launch(
                        &ck.versions[v],
                        job.launch,
                        &job.params,
                        &mut job.global,
                        LaunchOptions::default(),
                    ),
                };
                launches_done += 1;
                session.on_launch_result(result)?;
                if let Some(after) = faults.panic_after_launches {
                    if launches_done >= after {
                        panic!("chaos: injected worker panic after {launches_done} launches");
                    }
                }
            }
        };
        let driven = drive(&mut session);
        let obs = session.observations().clone();
        let metrics = KernelMetrics {
            launch_cycles: obs.launch_cycles,
            queue_wait_cycles: obs.queue_wait_cycles,
            compile_wall_us,
            ..KernelMetrics::default()
        };
        match driven {
            Ok(()) => {
                let outcome = session.finish();
                let disposition = match (degrade_reason, outcome.state) {
                    (Some(reason), SessionState::Degraded) => JobDisposition::Degraded(reason),
                    // A degrade with every version quarantined (or a
                    // session that died on its own) is a quarantine.
                    _ if outcome.state == SessionState::Quarantined => JobDisposition::Quarantined,
                    _ => JobDisposition::Finalized,
                };
                (Ok(outcome), metrics, disposition)
            }
            Err(e) => (Err(e), metrics, JobDisposition::Quarantined),
        }
    }

    /// Pump one session until it either submits a launch to the backend
    /// or resolves to a definite report. May unwind (injected chaos, a
    /// hostile session) — the event loop catches per step.
    fn pump(&self, a: &mut ActiveJob<'_>) -> Pump {
        loop {
            // Policy gates come first: a blown budget resolves the
            // session to Degraded *before* the next launch is issued,
            // so a deadline can never be overshot by more than one
            // launch chain.
            if let Some(reason) = blown_budget(&a.session, a.deadline, &a.policy, a.wall_start) {
                a.session.degrade(reason.tag());
                a.degrade_reason = Some(reason);
                return a.seal_settled();
            }
            let step = match a.session.next_step() {
                Ok(step) => step,
                Err(e) => return a.seal(Err(e), JobDisposition::Quarantined),
            };
            let SessionStep::Launch(v) = step else {
                return a.seal_settled();
            };
            // Service-boundary chaos: injected faults replace (or
            // perturb) the real launch, deterministically per
            // (job, launch index) — identical at any in-flight limit.
            if let Some(inj) = &a.injector {
                let f = inj.draw();
                if let Some(err) = injected_error(&f, a.deadline) {
                    a.launches_done += 1;
                    if let Err(e) = a.session.on_launch_result(Err(err)) {
                        return a.seal(Err(e), JobDisposition::Quarantined);
                    }
                    a.check_panic_fault();
                    continue;
                }
                a.pending_fault = Some(f);
            }
            let global = std::mem::take(&mut a.global);
            let ticket = self.backend.submit(LaunchRequest {
                kernel: Arc::clone(&a.ck),
                version: v,
                launch: a.launch,
                params: a.params.clone(),
                global,
                // Inner launch parallelism stays at 1: the service's
                // parallelism is *across* in-flight sessions, one
                // backend worker per launch. Sim results are
                // bit-identical at every parallelism setting, so this
                // is a resource choice, not a semantic one.
                opts: LaunchOptions { parallelism: 1, ..LaunchOptions::default() },
                lane: a.lane,
            });
            return Pump::Submitted(ticket);
        }
    }

    /// Fold one completion back into its session, then pump it onward.
    /// May unwind (injected completion-callback panics) — the event
    /// loop catches per step.
    fn resume(&self, a: &mut ActiveJob<'_>, c: Completion) -> Pump {
        a.global = c.global;
        a.dispatch_wait_us += c.queue_wait_us;
        a.execute_us += c.exec_us;
        let result = match (a.pending_fault.take(), c.result) {
            (Some(f), Ok(cycles)) => Ok(a
                .injector
                .as_ref()
                .expect("a fault draw implies an injector")
                .perturb_cycles(&f, cycles)),
            (_, r) => r,
        };
        a.launches_done += 1;
        if let Err(e) = a.session.on_launch_result(result) {
            return a.seal(Err(e), JobDisposition::Quarantined);
        }
        a.check_panic_fault();
        self.pump(a)
    }

    /// Tune every job on the event loop and report in submission order.
    /// Every submitted job comes back with a definite
    /// [`JobDisposition`] — rejected at admission, or run to
    /// finalized/quarantined/degraded — no matter what the backend or a
    /// worker thread does.
    pub fn run(&self, jobs: Vec<KernelJob>) -> ServiceReport {
        let submitted = jobs.len();
        let host_cores =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let reg = registry::global().scope("service");
        let in_flight_gauge =
            reg.register_gauge("in_flight", "Launches submitted and not yet completed", "");
        let queue_depth_gauge =
            reg.register_gauge("queue_depth", "Admitted sessions awaiting dispatch", "");
        let sessions_gauge =
            reg.register_gauge("in_flight_sessions", "Sessions currently tuning", "");
        let shed_counter =
            reg.register_counter("shed", "Jobs shed at admission over the process lifetime", "");
        let degraded_counter = reg.register_counter(
            "degraded",
            "Jobs degraded by policy budgets over the process lifetime",
            "",
        );
        let cache_before = cache::stats();
        // Names and priorities outlive the jobs themselves: panic
        // reports and shed reports need them after (or without) the job
        // value being consumed by the event loop.
        let names: Vec<String> = jobs.iter().map(|j| j.name.clone()).collect();
        let priorities: Vec<u8> = jobs.iter().map(|j| j.policy.priority).collect();
        let lane_of = |i: usize| u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1);
        // Admission control: shed down to the queue capacity, lowest
        // priority first, ties shedding the latest submission.
        let mut admitted = vec![true; submitted];
        if let Some(capacity) = self.cfg.queue_capacity {
            if submitted > capacity {
                let mut by_priority: Vec<usize> = (0..submitted).collect();
                by_priority.sort_by_key(|&i| (priorities[i], Reverse(i)));
                for &i in by_priority.iter().take(submitted - capacity) {
                    admitted[i] = false;
                    shed_counter.inc();
                    journal::record(JournalEvent::Shed {
                        kernel: names[i].clone(),
                        priority: priorities[i],
                    });
                }
            }
        }
        let admitted_count = admitted.iter().filter(|&&a| a).count();
        reg.register_counter("sessions_total", "Sessions started over the process lifetime", "")
            .add(admitted_count as u64);
        let workers = match self.cfg.workers {
            0 => host_cores,
            w => w,
        }
        .min(admitted_count.max(1));
        // Execution parallelism lives entirely in the backend's pool:
        // `workers <= 1` keeps the pool empty so every launch runs
        // inline on the scheduler thread (zero extra threads — the
        // strictly sequential baseline), otherwise the pool gets one
        // thread per worker.
        self.backend.configure_pool(if workers <= 1 { 0 } else { workers });
        let in_flight_limit = match self.cfg.in_flight_limit {
            0 => admitted_count.max(1),
            k => k,
        };
        let mut reports: Vec<Option<KernelReport>> = (0..submitted).map(|_| None).collect();
        // Shed jobs resolve immediately, before anything runs.
        for i in 0..submitted {
            if !admitted[i] {
                reports[i] = Some(KernelReport {
                    name: names[i].clone(),
                    lane: lane_of(i),
                    outcome: Err(OrionError::Overloaded {
                        capacity: self.cfg.queue_capacity.unwrap_or(usize::MAX),
                        submitted,
                    }),
                    disposition: JobDisposition::Rejected,
                    metrics: KernelMetrics::default(),
                });
            }
        }
        // Compile phase: sequential, in submission order, on the
        // scheduler thread — cache hit/miss accounting stays a pure
        // function of the job set, and a compile panic (or error)
        // quarantines only its own job. The candidate table is frozen
        // before the event loop starts; sessions borrow from it.
        let mut jobs: Vec<Option<KernelJob>> = jobs.into_iter().map(Some).collect();
        let mut cks: Vec<Option<Arc<CompiledKernel>>> = (0..submitted).map(|_| None).collect();
        let mut compile_us: Vec<u64> = vec![0; submitted];
        for i in 0..submitted {
            if !admitted[i] {
                jobs[i] = None;
                continue;
            }
            let job = jobs[i].as_ref().expect("admitted slot holds its job until dispatch");
            orion_telemetry::set_scope(lane_of(i));
            let compile_start = Instant::now();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                self.backend.compile_probe(&job.module, &job.tuning)
            }));
            compile_us[i] = compile_start.elapsed().as_micros() as u64;
            let err = match caught {
                Ok(Ok(ck)) => {
                    cks[i] = Some(Arc::new(ck));
                    continue;
                }
                Ok(Err(e)) => e,
                Err(payload) => {
                    let detail = panic_detail(payload.as_ref());
                    orion_telemetry::counter("resilience", "session_panic", 1);
                    journal::record(JournalEvent::SessionPanic { kernel: names[i].clone() });
                    OrionError::SessionPanicked { detail }.with_context(names[i].clone(), None)
                }
            };
            jobs[i] = None;
            reports[i] = Some(KernelReport {
                name: names[i].clone(),
                lane: lane_of(i),
                outcome: Err(err),
                disposition: JobDisposition::Quarantined,
                metrics: KernelMetrics {
                    compile_wall_us: compile_us[i],
                    ..KernelMetrics::default()
                },
            });
        }
        // Dispatch order: a pure function of the job set. Sessions are
        // always started from the head of this queue, whatever the
        // completion interleaving, so the recorded order (and every
        // downstream outcome) is deterministic.
        let mut order: Vec<usize> =
            (0..submitted).filter(|&i| cks[i].is_some() && jobs[i].is_some()).collect();
        match self.cfg.scheduler {
            SchedulerMode::Ljf => order.sort_by_key(|&i| {
                let cost = estimate_cost(
                    cks[i].as_deref().expect("order is filtered to compiled jobs"),
                    jobs[i].as_ref().expect("order is filtered to live jobs"),
                );
                (Reverse(priorities[i]), Reverse(cost), i)
            }),
            SchedulerMode::Fifo => order.sort_by_key(|&i| (Reverse(priorities[i]), i)),
        }
        let dispatch_order = order.clone();
        // The event loop: keep up to `in_flight_limit` sessions with a
        // launch in flight; pump each ready session until it submits or
        // settles, and resume it when its completion arrives.
        let mut queue: VecDeque<usize> = order.into_iter().collect();
        let mut pending: HashMap<TicketId, usize> = HashMap::new();
        let mut active: Vec<Option<ActiveJob<'_>>> = (0..submitted).map(|_| None).collect();
        while !queue.is_empty() || !pending.is_empty() {
            // Fill free in-flight slots from the head of the dispatch
            // queue. A session that settles without submitting frees
            // its slot immediately, so the head keeps draining.
            while pending.len() < in_flight_limit {
                let Some(i) = queue.pop_front() else { break };
                let job = jobs[i].take().expect("dispatch queue holds live jobs");
                let ck: &CompiledKernel =
                    cks[i].as_deref().expect("dispatch queue holds compiled jobs");
                let faults = match &self.cfg.chaos {
                    Some(plan) => plan.job_faults(i),
                    None => JobFaults::NONE,
                };
                // Injected deadline pressure composes with the job's
                // own deadline: the tighter one wins.
                let deadline = match (job.policy.deadline_cycles, faults.deadline_cycles) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                let search = job.policy.search.unwrap_or(self.cfg.search);
                let session = match self.cfg.policy {
                    Some(policy) => TuningSession::with_policy(
                        names[i].as_str(),
                        ck,
                        job.iterations,
                        self.cfg.threshold,
                        SessionMode::Resilient(policy),
                        search,
                    ),
                    None => TuningSession::with_policy(
                        "",
                        ck,
                        job.iterations,
                        self.cfg.threshold,
                        SessionMode::Simple,
                        search,
                    ),
                };
                let mut a = ActiveJob {
                    name: names[i].clone(),
                    lane: lane_of(i),
                    session,
                    ck: Arc::clone(cks[i].as_ref().expect("dispatch queue holds compiled jobs")),
                    launch: job.launch,
                    params: job.params,
                    global: job.global,
                    policy: job.policy,
                    deadline,
                    injector: faults.plan.map(FaultInjector::new),
                    panic_after: faults.panic_after_launches,
                    pending_fault: None,
                    wall_start: Instant::now(),
                    degrade_reason: None,
                    launches_done: 0,
                    compile_wall_us: compile_us[i],
                    dispatch_wait_us: 0,
                    execute_us: 0,
                };
                orion_telemetry::set_scope(a.lane);
                sessions_gauge.inc();
                // Panic isolation, boundary one: a session step that
                // unwinds on the scheduler resolves only its own job.
                match catch_unwind(AssertUnwindSafe(|| self.pump(&mut a))) {
                    Ok(Pump::Submitted(t)) => {
                        pending.insert(t, i);
                        active[i] = Some(a);
                    }
                    Ok(Pump::Finished(report)) => {
                        sessions_gauge.dec();
                        reports[i] = Some(*report);
                    }
                    Err(payload) => {
                        sessions_gauge.dec();
                        reports[i] = Some(panic_report(
                            &names[i],
                            a.lane,
                            payload.as_ref(),
                            a.compile_wall_us,
                        ));
                    }
                }
            }
            in_flight_gauge.set(pending.len() as f64);
            queue_depth_gauge.set(queue.len() as f64);
            if pending.is_empty() {
                continue;
            }
            let completions = self.backend.wait_completions();
            if completions.is_empty() {
                // Defensive backstop: the backend claims nothing is in
                // flight while we still hold tickets. Resolve them to
                // definite reports rather than spin forever.
                for (_ticket, i) in pending.drain() {
                    active[i] = None;
                    sessions_gauge.dec();
                    reports[i] = Some(KernelReport {
                        name: names[i].clone(),
                        lane: lane_of(i),
                        outcome: Err(OrionError::SessionPanicked {
                            detail: "backend lost an in-flight ticket".into(),
                        }),
                        disposition: JobDisposition::Quarantined,
                        metrics: KernelMetrics {
                            compile_wall_us: compile_us[i],
                            ..KernelMetrics::default()
                        },
                    });
                }
                continue;
            }
            for c in completions {
                // Unknown tickets (a foreign submitter sharing the
                // backend) are not ours to resolve.
                let Some(i) = pending.remove(&c.ticket) else { continue };
                let mut a = active[i].take().expect("pending ticket has an active session");
                orion_telemetry::set_scope(a.lane);
                // Panic isolation, boundary two: a completion callback
                // that unwinds (injected chaos) resolves only its job.
                match catch_unwind(AssertUnwindSafe(|| self.resume(&mut a, c))) {
                    Ok(Pump::Submitted(t)) => {
                        pending.insert(t, i);
                        active[i] = Some(a);
                    }
                    Ok(Pump::Finished(report)) => {
                        sessions_gauge.dec();
                        reports[i] = Some(*report);
                    }
                    Err(payload) => {
                        sessions_gauge.dec();
                        reports[i] = Some(panic_report(
                            &names[i],
                            a.lane,
                            payload.as_ref(),
                            a.compile_wall_us,
                        ));
                    }
                }
            }
        }
        in_flight_gauge.set(0.0);
        queue_depth_gauge.set(0.0);
        orion_telemetry::set_scope(0);
        // No job may be lost: even if the loop exited in a way the
        // catches above couldn't express, every slot still resolves to
        // a definite (quarantined) report.
        let kernels: Vec<KernelReport> = reports
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| KernelReport {
                    name: names[i].clone(),
                    lane: lane_of(i),
                    outcome: Err(OrionError::SessionPanicked {
                        detail: "scheduler produced no report".into(),
                    }),
                    disposition: JobDisposition::Quarantined,
                    metrics: KernelMetrics::default(),
                })
            })
            .collect();
        degraded_counter.add(
            kernels.iter().filter(|k| matches!(k.disposition, JobDisposition::Degraded(_))).count()
                as u64,
        );
        // Merge per-kernel distributions in submission order (the merge
        // is order-independent, but fixing the order keeps even the
        // iteration deterministic) and mirror them into the global
        // registry for the exporters.
        let mut metrics = ServiceMetrics::default();
        for k in &kernels {
            metrics.launch_cycles.merge(&k.metrics.launch_cycles);
            metrics.queue_wait_cycles.merge(&k.metrics.queue_wait_cycles);
            if let Ok(o) = &k.outcome {
                metrics.session_cycles.record(o.total_cycles);
            }
        }
        reg.register_histogram("launch_cycles", "Per-launch simulated cycles", "cycles")
            .merge(&metrics.launch_cycles);
        reg.register_histogram("queue_wait_cycles", "Per-chain retry backoff", "cycles")
            .merge(&metrics.queue_wait_cycles);
        reg.register_histogram("session_cycles", "Per-session total simulated cycles", "cycles")
            .merge(&metrics.session_cycles);
        // Compile time is wall-clock: exported for operators, excluded
        // from every determinism gate.
        let compile_hist = reg.register_histogram(
            "compile_wall_us",
            "Per-kernel candidate-set compile wall time",
            "us",
        );
        let dispatch_hist = reg.register_histogram(
            "dispatch_wait_us",
            "Per-kernel wall time launches waited behind the backend pool",
            "us",
        );
        let execute_hist = reg.register_histogram(
            "execute_us",
            "Per-kernel wall time launches spent executing on the backend",
            "us",
        );
        for k in &kernels {
            compile_hist.record(k.metrics.compile_wall_us);
            dispatch_hist.record(k.metrics.dispatch_wait_us);
            execute_hist.record(k.metrics.execute_us);
        }
        ServiceReport {
            kernels,
            cache: cache::stats().delta_since(&cache_before),
            metrics,
            journal: orion_telemetry::journal::drain(),
            host_cores,
            workers,
            in_flight_limit,
            scheduler: self.cfg.scheduler,
            dispatch_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, BackendCaps, InlineAsync, ReplayBackend, SimBackend};
    use crate::compiler::{CompiledKernel, KernelVersion};
    use crate::session::SessionState;
    use orion_gpusim::device::DeviceSpec;
    use orion_gpusim::exec::SimError;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn toy_module(mul: i64) -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
        let nt = b.mov(Operand::Special(SpecialReg::NTidX));
        let gid = b.imad(cta, nt, tid);
        let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let y = b.imul(x, Operand::Imm(mul));
        b.st(MemSpace::Global, Width::W32, addr, y, 0);
        Module::new(b.finish())
    }

    fn job(name: &str, mul: i64, iterations: u32) -> KernelJob {
        KernelJob {
            name: name.into(),
            module: toy_module(mul),
            launch: Launch { grid: 4, block: 32 },
            params: vec![0],
            global: vec![0u8; 4 * 128],
            iterations,
            tuning: TuningConfig::new(32),
            policy: JobPolicy::default(),
        }
    }

    #[test]
    fn reports_come_back_in_submission_order() {
        let svc = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
        );
        let names = ["a", "b", "c", "d", "e"];
        let report = svc.run(names.iter().map(|n| job(n, 3, 4)).collect());
        assert!(report.all_ok());
        let got: Vec<&str> = report.kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(got, names);
        // Lanes are 1-based job indices.
        assert_eq!(report.kernels[0].lane, 1);
        assert_eq!(report.kernels[4].lane, 5);
        // Healthy batch: every disposition is Finalized, and the report
        // records where it ran.
        assert_eq!(report.count_dispositions(|d| d == JobDisposition::Finalized), 5);
        assert_eq!(report.workers, 2);
        assert!(report.host_cores >= 1);
    }

    #[test]
    fn worker_count_does_not_change_outcomes() {
        let mk = || (1..=6).map(|i| job(&format!("k{i}"), i64::from(i), 6)).collect::<Vec<_>>();
        let seq = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 1, ..ServiceConfig::default() },
        )
        .run(mk());
        let par = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 4, ..ServiceConfig::default() },
        )
        .run(mk());
        for (a, b) in seq.kernels.iter().zip(&par.kernels) {
            assert_eq!(
                a.outcome.as_ref().unwrap(),
                b.outcome.as_ref().unwrap(),
                "kernel {} diverged across worker counts",
                a.name
            );
            assert_eq!(a.disposition, b.disposition);
        }
        assert_eq!(seq.merged_decisions().len(), par.merged_decisions().len());
    }

    #[test]
    fn a_dead_kernel_is_reported_not_propagated() {
        // Script every candidate version dead on a replay backend: the
        // session quarantines them all, and the service captures the
        // AllCandidatesFailed error in the kernel's own report instead
        // of aborting the batch.
        let be = ReplayBackend::new(DeviceSpec::gtx680(), 100);
        let probe = be.compile_probe(&toy_module(2), &TuningConfig::new(32)).unwrap();
        let be = probe.versions.iter().fold(be, |b, v| {
            b.script(v.label.clone(), [Err(SimError::ResourceExceeded { detail: "regs".into() })])
        });
        let svc = OrionService::new(be, ServiceConfig { workers: 2, ..Default::default() });
        let report = svc.run(vec![job("dead", 2, 8)]);
        assert!(!report.all_ok());
        let err = report.kernels[0].outcome.as_ref().unwrap_err();
        assert!(
            matches!(err.root_cause(), OrionError::AllCandidatesFailed { .. }),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("dead"));
        assert_eq!(report.kernels[0].disposition, JobDisposition::Quarantined);
    }

    #[test]
    fn quarantined_session_reports_coherent_state() {
        let be = ReplayBackend::new(DeviceSpec::gtx680(), 100);
        let probe = be.compile_probe(&toy_module(2), &TuningConfig::new(32)).unwrap();
        let be = probe
            .versions
            .iter()
            .fold(be, |b, v| b.script(v.label.clone(), [Err(SimError::Watchdog { budget: 7 })]));
        let svc = OrionService::new(be, ServiceConfig { workers: 1, ..Default::default() });
        let mut j = job("hung", 2, 10);
        let err = svc.tune_one(&mut j).unwrap_err();
        assert!(matches!(err.root_cause(), OrionError::AllCandidatesFailed { .. }));
    }

    #[test]
    fn mixed_batch_keeps_healthy_kernels_healthy() {
        // One job with zero iterations (trivially fine), several real
        // ones; the batch must report each on its own terms.
        let svc = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 3, ..ServiceConfig::default() },
        );
        let mut jobs = vec![job("empty", 2, 0)];
        jobs.extend((1..=3).map(|i| job(&format!("k{i}"), i64::from(i), 5)));
        let report = svc.run(jobs);
        assert!(report.all_ok());
        let empty = report.kernels[0].outcome.as_ref().unwrap();
        assert!(empty.iterations.is_empty());
        for k in &report.kernels[1..] {
            let o = k.outcome.as_ref().unwrap();
            assert_eq!(o.iterations.len(), 5);
            // 5 iterations can't finish a 7-sample warmup pass; the
            // session ends mid-walk but never in a dead state.
            assert_ne!(o.state, SessionState::Quarantined);
        }
    }

    #[test]
    fn saturated_queue_sheds_by_priority_and_rejects_cleanly() {
        let svc = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 2, queue_capacity: Some(3), ..ServiceConfig::default() },
        );
        // Five jobs, capacity three: the two lowest-priority jobs are
        // shed; within equal priority the later submission goes first.
        let mut jobs: Vec<KernelJob> = (0..5).map(|i| job(&format!("j{i}"), 3, 3)).collect();
        jobs[1].policy.priority = 10; // lowest: shed
        jobs[2].policy.priority = 200; // highest: safe
                                       // j0, j3, j4 tie at default priority; j4 (latest) is shed.
        let report = svc.run(jobs);
        let dispositions: Vec<JobDisposition> =
            report.kernels.iter().map(|k| k.disposition).collect();
        assert_eq!(
            dispositions,
            [
                JobDisposition::Finalized,
                JobDisposition::Rejected,
                JobDisposition::Finalized,
                JobDisposition::Finalized,
                JobDisposition::Rejected,
            ],
            "{dispositions:?}"
        );
        for k in &report.kernels {
            if k.disposition == JobDisposition::Rejected {
                let err = k.outcome.as_ref().unwrap_err();
                assert!(
                    matches!(
                        err.root_cause(),
                        OrionError::Overloaded { capacity: 3, submitted: 5 }
                    ),
                    "unexpected rejection error: {err}"
                );
            }
        }
        // Rejection is admission-time: shed jobs never compiled.
        assert_eq!(report.count_dispositions(|d| d == JobDisposition::Rejected), 2);
    }

    #[test]
    fn deadline_degrades_to_fail_safe_not_error() {
        // One simulated launch of this toy kernel costs well over 100
        // cycles, so a 100-cycle deadline fires after the baseline
        // measurement: the job must land Degraded with the original
        // version, not an error.
        let svc = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 1, ..ServiceConfig::default() },
        );
        let mut j = job("late", 3, 10);
        j.policy.deadline_cycles = Some(100);
        let report = svc.run(vec![j]);
        let k = &report.kernels[0];
        assert_eq!(k.disposition, JobDisposition::Degraded(DegradeReason::DeadlineCycles));
        let o = k.outcome.as_ref().expect("degraded jobs report an outcome, not an error");
        assert_eq!(o.state, SessionState::Degraded);
        assert_eq!(o.selected, 0, "fail-safe selection is the original version");
        assert!(
            o.decisions.last().is_some_and(|d| d.reason == crate::runtime::TuneReason::Degraded),
            "{:?}",
            o.decisions
        );
    }

    #[test]
    fn in_flight_limit_does_not_change_outcomes() {
        // The strictly sequential baseline (limit 1) and the fully
        // multiplexed run (limit 0 = every admitted session) are the
        // same code path and must be bit-identical.
        let mk = || (1..=6).map(|i| job(&format!("k{i}"), i64::from(i), 6)).collect::<Vec<_>>();
        let seq = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 4, in_flight_limit: 1, ..ServiceConfig::default() },
        )
        .run(mk());
        let par = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 4, in_flight_limit: 0, ..ServiceConfig::default() },
        )
        .run(mk());
        assert_eq!(seq.in_flight_limit, 1);
        assert_eq!(par.in_flight_limit, 6);
        assert_eq!(seq.dispatch_order, par.dispatch_order);
        for (a, b) in seq.kernels.iter().zip(&par.kernels) {
            assert_eq!(
                a.outcome.as_ref().unwrap(),
                b.outcome.as_ref().unwrap(),
                "kernel {} diverged across in-flight limits",
                a.name
            );
            assert_eq!(a.disposition, b.disposition);
            assert_eq!(a.metrics.cycle_domain(), b.metrics.cycle_domain());
        }
    }

    #[test]
    fn ljf_dispatch_order_is_deterministic_and_longest_first() {
        // Same job set, different worker counts and in-flight limits —
        // the dispatch order is a pure function of the job set.
        let mk = || {
            vec![job("short", 2, 1), job("long", 3, 32), job("medium", 4, 8), job("urgent", 5, 1)]
        };
        let mut with_priority = mk();
        with_priority[3].policy.priority = 200;
        let a = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 1, in_flight_limit: 1, ..ServiceConfig::default() },
        )
        .run({
            let mut j = mk();
            j[3].policy.priority = 200;
            j
        });
        let b = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { workers: 4, in_flight_limit: 0, ..ServiceConfig::default() },
        )
        .run(with_priority);
        assert_eq!(a.scheduler, SchedulerMode::Ljf);
        assert_eq!(a.dispatch_order, b.dispatch_order);
        // Priority dominates; within a class, larger estimated cost
        // (more iterations here) dispatches first.
        assert_eq!(a.dispatch_order, vec![3, 1, 2, 0]);
        // FIFO keeps submission order within a priority class.
        let c = OrionService::new(
            SimBackend::new(DeviceSpec::gtx680()),
            ServiceConfig { scheduler: SchedulerMode::Fifo, ..ServiceConfig::default() },
        )
        .run({
            let mut j = mk();
            j[3].policy.priority = 200;
            j
        });
        assert_eq!(c.dispatch_order, vec![3, 0, 1, 2]);
    }

    /// A backend whose launches always panic — the hostile case panic
    /// isolation exists for.
    struct PanickingBackend {
        inner: SimBackend,
    }

    impl Backend for PanickingBackend {
        fn name(&self) -> &'static str {
            "panicking"
        }
        fn device_spec(&self) -> &DeviceSpec {
            self.inner.device_spec()
        }
        fn caps(&self) -> BackendCaps {
            self.inner.caps()
        }
        fn compile_probe(
            &self,
            module: &Module,
            cfg: &TuningConfig,
        ) -> Result<CompiledKernel, OrionError> {
            self.inner.compile_probe(module, cfg)
        }
        fn launch(
            &self,
            _version: &KernelVersion,
            _launch: Launch,
            _params: &[u32],
            _global: &mut [u8],
            _opts: LaunchOptions,
        ) -> Result<u64, OrionError> {
            panic!("backend exploded mid-launch");
        }
    }

    #[test]
    fn worker_panic_is_caught_and_reported_per_kernel() {
        // Quiet hook: the induced panics are the test subject, not noise.
        let prior_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let svc = OrionService::new(
            InlineAsync::new(PanickingBackend { inner: SimBackend::new(DeviceSpec::gtx680()) }),
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
        );
        let report = svc.run(vec![job("boom1", 2, 4), job("boom2", 3, 4)]);
        std::panic::set_hook(prior_hook);
        assert_eq!(report.kernels.len(), 2, "no job may be lost to a panic");
        for k in &report.kernels {
            assert_eq!(k.disposition, JobDisposition::Quarantined);
            let err = k.outcome.as_ref().unwrap_err();
            assert!(
                matches!(err.root_cause(), OrionError::SessionPanicked { detail }
                    if detail.contains("exploded")),
                "unexpected error: {err}"
            );
            assert!(err.to_string().contains(&k.name), "context names the kernel: {err}");
        }
    }
}
