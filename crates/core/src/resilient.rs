//! Resilient runtime adaptation — the chaos-hardened Figure 9 loop.
//!
//! [`tune_loop`](crate::runtime::tune_loop) assumes every launch
//! succeeds and every measurement is trustworthy. Real devices violate
//! both: launches fail transiently (driver hiccups, ECC retries),
//! kernels hang (watchdog), perturbed resource limits reject a version
//! outright, and timing is noisy. [`resilient_tune_loop`] wraps the
//! same [`DynamicTuner`](crate::runtime::DynamicTuner) walk with four
//! defenses:
//!
//! * **bounded retry with backoff** — transient launch failures are
//!   retried up to [`ResiliencePolicy::max_retries`] times, charging an
//!   exponentially growing simulated-cycle backoff to the run;
//! * **noise-robust measurement** — each exploration step measures
//!   mean-of-k with multiplicative outlier rejection
//!   ([`robust_measure`]) before feeding the degradation test; the
//!   observed sample spread sets a noise margin on the test
//!   ([`DynamicTuner::record_noisy`](crate::runtime::DynamicTuner::record_noisy))
//!   so jitter on a performance
//!   plateau cannot mimic a real slowdown, and a verdict landing
//!   within half a margin of the stop boundary earns one extension
//!   round of k more samples before the walk commits;
//! * **per-candidate quarantine** — a version accumulating
//!   [`ResiliencePolicy::quarantine_strikes`] *consecutive* hard
//!   failures is removed from the walk
//!   ([`DynamicTuner::quarantine`](crate::runtime::DynamicTuner::quarantine))
//!   and tuning continues over the survivors. Successes reset the
//!   count (circuit-breaker style), so sporadic unlucky hangs are
//!   forgiven no matter how long the run — only persistent breakage
//!   fails straight through the budget;
//! * **last-resort fallback** — if the *finalized* version dies, the
//!   tuner falls back to the compiler's fail-safe (then the original),
//!   recorded as
//!   [`TuneReason::FellBack`](crate::runtime::TuneReason::FellBack) in
//!   the decision log.
//!
//! Failures that are neither transient nor quarantineable (out-of-bounds
//! accesses, deadlocks) are real bugs and propagate immediately, wrapped
//! with kernel name and failure cycle via
//! [`OrionError::with_context`].
//!
//! All four defenses live in the *session* layer
//! ([`TuningSession`](crate::session::TuningSession) in
//! [`SessionMode::Resilient`](crate::session::SessionMode)), not in
//! the search policy: a session running any
//! [`SearchPolicy`](crate::policy::SearchPolicy) — the default
//! [`PaperWalkPolicy`](crate::policy::PaperWalkPolicy) or the
//! [`BanditPolicy`](crate::policy::BanditPolicy) — gets identical
//! retry, robust-measurement, quarantine, and fallback semantics; the
//! policy only chooses which candidate each exploration step measures.

use crate::compiler::{CompiledKernel, KernelVersion};
use crate::error::OrionError;
use crate::runtime::TuneDecision;
use serde::{Deserialize, Serialize};

/// Knobs for the resilient executor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// Maximum relaunches after a transient failure (per invocation).
    pub max_retries: u32,
    /// Simulated-cycle cost of the first backoff wait; doubles per
    /// retry (exponential backoff).
    pub backoff_base_cycles: u64,
    /// Samples per exploration measurement (the k in mean-of-k). The
    /// default of 7 keeps the clipped-mean error near 1% under ±5%
    /// timing jitter — comfortably inside the paper's degradation
    /// thresholds; median-of-3 measurably flips walk decisions at that
    /// noise level. A borderline verdict gets one extension round of
    /// another k samples before the walk commits.
    pub samples: usize,
    /// Multiplicative band for outlier rejection: samples outside
    /// `[median / f, median * f]` are dropped before re-taking the
    /// median.
    pub outlier_factor: f64,
    /// *Consecutive* hard (quarantineable) failures a version must
    /// accumulate before it is actually quarantined; every successful
    /// launch resets the version's strike count (circuit-breaker
    /// style). The reset is what separates persistent breakage from
    /// bad luck: with hard faults injected at a few percent per
    /// launch, a *lifetime* tally would all but guarantee the
    /// eviction of a perfectly good finalized version over a long
    /// run, while three consecutive random faults stay vanishingly
    /// rare — and a genuinely dead version still fails straight
    /// through its budget.
    pub quarantine_strikes: u32,
    /// Scale factor from a measurement's observed relative spread
    /// ([`RobustMeasure::rel_spread`]) to the noise margin passed to
    /// [`DynamicTuner::record_noisy`](crate::runtime::DynamicTuner::record_noisy).
    /// At ±5% uniform jitter the
    /// expected spread of 7 samples is ~7.5%, so 0.75 yields a ~5.6%
    /// margin — several σ of the clipped-mean error — while clean data
    /// keeps a zero margin and the paper's exact walk. The margin
    /// replaces a smaller degradation threshold rather than adding to
    /// it, so it can never mask a genuine over-threshold slowdown on
    /// the downward walk.
    pub noise_margin_factor: f64,
    /// Upper bound on the noise margin, whatever the observed spread.
    pub noise_margin_cap: f64,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: 3,
            backoff_base_cycles: 1_000,
            samples: 7,
            outlier_factor: 4.0,
            quarantine_strikes: 3,
            noise_margin_factor: 0.75,
            noise_margin_cap: 0.15,
        }
    }
}

/// What the resilient executor had to absorb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Launch attempts issued (including retries).
    pub launches: u64,
    /// Launch attempts that returned an error.
    pub failed_launches: u64,
    /// Transient failures that were retried.
    pub retries: u64,
    /// Simulated cycles spent waiting in backoff.
    pub backoff_cycles: u64,
    /// Hard failures charged against a version (a version is
    /// quarantined at [`ResiliencePolicy::quarantine_strikes`]
    /// *consecutive* ones; a success resets its count).
    pub strikes: u64,
    /// Versions quarantined while still tuning.
    pub quarantined: u64,
    /// Fallback events (a finalized version died).
    pub fellback: u64,
}

/// A completed resilient tuning run — [`TuneOutcome`] fields plus the
/// absorbed-failure accounting.
///
/// [`TuneOutcome`]: crate::runtime::TuneOutcome
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilientOutcome {
    /// The selected version index.
    pub selected: usize,
    /// `(version, cycles)` per successful application iteration.
    pub iterations: Vec<(usize, u64)>,
    /// Iterations spent exploring before the selection was final.
    pub converged_after: usize,
    /// Total simulated cycles, backoff waits included.
    pub total_cycles: u64,
    /// Per-decision log, including quarantine and fallback entries.
    pub decisions: Vec<TuneDecision>,
    /// Failure accounting.
    pub stats: ResilienceStats,
}

/// A noise-robust measurement: the clipped mean after outlier
/// rejection, plus the relative spread (`(max - min) / mean`) of the
/// kept samples. The spread is the executor's live noise estimate — it
/// sets the noise margin on the tuner's degradation test so jitter
/// cannot mimic a real slowdown, and is exactly zero on clean data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustMeasure {
    pub cycles: u64,
    pub rel_spread: f64,
}

/// Mean-of-k with multiplicative outlier rejection: sorts the samples,
/// drops everything outside `[median / f, median * f]`, and returns the
/// *mean* of the survivors together with their relative spread. The
/// median only guards the rejection band; once the heavy tail is
/// clipped, the remaining jitter is light-tailed and the clipped mean
/// is the tighter estimator (under uniform ±5% jitter, median-of-5 has
/// ~2.2% error, the clipped mean ~1.3%). With all samples rejected
/// (impossible for `f >= 1`) or a single sample, that sample wins with
/// zero spread.
pub fn robust_measure(samples: &mut [u64], outlier_factor: f64) -> RobustMeasure {
    if samples.is_empty() {
        return RobustMeasure { cycles: 0, rel_spread: 0.0 };
    }
    samples.sort_unstable();
    let med = samples[samples.len() / 2].max(1);
    let f = outlier_factor.max(1.0);
    let lo = (med as f64 / f) as u64;
    let hi = (med as f64 * f).min(u64::MAX as f64) as u64;
    let kept: Vec<u64> = samples.iter().copied().filter(|&s| s >= lo && s <= hi).collect();
    let rejected = samples.len() - kept.len();
    if rejected > 0 && orion_telemetry::is_enabled() {
        orion_telemetry::counter("resilience", "outlier_rejected", rejected as u64);
    }
    if kept.is_empty() {
        RobustMeasure { cycles: med, rel_spread: 0.0 }
    } else {
        let sum: u128 = kept.iter().map(|&s| u128::from(s)).sum();
        let cycles = (sum / kept.len() as u128) as u64;
        let rel_spread = (kept[kept.len() - 1] - kept[0]) as f64 / cycles.max(1) as f64;
        RobustMeasure { cycles, rel_spread }
    }
}

/// The cycles of [`robust_measure`], for callers that don't need the
/// spread.
pub fn robust_cycles(samples: &mut [u64], outlier_factor: f64) -> u64 {
    robust_measure(samples, outlier_factor).cycles
}

/// Should this failure remove the candidate from the walk (as opposed
/// to aborting the application)? Quarantineable: resource rejection,
/// watchdog trips, unlaunchable configurations — and transient failures
/// that survived the retry budget (a persistently flaky version is a
/// bad version).
pub(crate) fn should_quarantine(e: &OrionError) -> bool {
    match e.root_cause() {
        OrionError::Sim(s) => s.is_quarantineable() || s.is_transient(),
        _ => false,
    }
}

/// Drive the full tuning loop under faults: `iterations` invocations of
/// the kernel, tuning per Figure 9 with retry / robust measurement /
/// quarantine / fallback as described in the module docs.
///
/// `run` executes one launch of a version and returns its cycles.
///
/// This is the legacy closure API — a thin driver over
/// [`TuningSession`](crate::session::TuningSession), pinned bit-equal
/// to the pre-refactor loop by the equivalence suite (see
/// [`crate::reference`]).
///
/// # Errors
/// * [`OrionError::AllCandidatesFailed`] when every version (fallbacks
///   included) has been quarantined;
/// * any non-transient, non-quarantineable launch error, immediately —
///   both wrapped with the kernel name and cycle of failure.
pub fn resilient_tune_loop(
    kernel: &str,
    ck: &CompiledKernel,
    iterations: u32,
    threshold: f64,
    policy: &ResiliencePolicy,
    mut run: impl FnMut(&KernelVersion) -> Result<u64, OrionError>,
) -> Result<ResilientOutcome, OrionError> {
    use crate::session::{SessionStep, TuningSession};
    let mut session = TuningSession::resilient(kernel, ck, iterations, threshold, *policy);
    while let SessionStep::Launch(v) = session.next_step()? {
        session.on_launch_result(run(&ck.versions[v]))?;
    }
    Ok(session.finish().into_resilient_outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompiledKernel, Direction, KernelVersion};
    use crate::runtime::TuneReason;
    use orion_alloc::realize::AllocReport;
    use orion_gpusim::exec::SimError;
    use orion_kir::mir::MModule;
    use orion_kir::types::FuncId;

    fn fake_version(warps: u32, fail_safe: bool) -> KernelVersion {
        KernelVersion {
            machine: MModule {
                funcs: vec![],
                entry: FuncId(0),
                regs_per_thread: 16,
                smem_slots_per_thread: 0,
                local_slots_per_thread: 0,
                user_smem_bytes: 0,
                static_stack_moves: 0,
            },
            target_warps: warps,
            achieved_warps: warps,
            occupancy: f64::from(warps) / 48.0,
            extra_smem: 0,
            report: AllocReport {
                kernel_max_live: 0,
                regs_per_thread: 16,
                smem_slots_per_thread: 0,
                local_slots_per_thread: 0,
                static_moves: 0,
                per_func: vec![],
            },
            fail_safe,
            label: format!("occ={warps}"),
        }
    }

    fn fake_compiled(warp_levels: &[u32]) -> CompiledKernel {
        let mut versions: Vec<KernelVersion> =
            warp_levels.iter().map(|&w| fake_version(w, false)).collect();
        versions.push(fake_version(4, true)); // fail-safe, not in the order
        CompiledKernel {
            tuning_order: (0..warp_levels.len()).collect(),
            versions,
            direction: Direction::Increasing,
            original: 0,
            max_live: 40,
        }
    }

    fn idx_of(ck: &CompiledKernel, v: &KernelVersion) -> usize {
        ck.index_of(&v.label).unwrap()
    }

    #[test]
    fn transient_failures_are_retried_and_tuning_converges() {
        let ck = fake_compiled(&[8, 16, 32, 48]);
        let times = [100u64, 80, 90, 70, 120];
        let mut flaky = 0u32;
        let policy = ResiliencePolicy::default();
        let out = resilient_tune_loop("k", &ck, 20, 0.02, &policy, |v| {
            flaky += 1;
            if flaky.is_multiple_of(4) {
                // Every 4th launch fails transiently, then succeeds.
                return Err(SimError::TransientLaunchFailure { code: 1 }.into());
            }
            Ok(times[idx_of(&ck, v)])
        })
        .expect("resilient loop absorbs transients");
        assert_eq!(out.selected, 1, "same pick as the fault-free walk");
        assert!(out.stats.retries > 0);
        assert_eq!(out.stats.failed_launches, out.stats.retries);
        assert!(
            out.total_cycles > out.iterations.iter().map(|&(_, c)| c).sum::<u64>(),
            "backoff cycles are charged to the run"
        );
    }

    #[test]
    fn outliers_do_not_flip_the_degradation_test() {
        // v1 is genuinely faster, but its second sample is a wild
        // outlier; median-of-k with rejection keeps the walk on course.
        let ck = fake_compiled(&[8, 16, 32]);
        let mut calls = std::collections::HashMap::new();
        let policy = ResiliencePolicy { samples: 3, ..ResiliencePolicy::default() };
        let out = resilient_tune_loop("k", &ck, 30, 0.02, &policy, |v| {
            let i = idx_of(&ck, v);
            let n = calls.entry(i).or_insert(0u32);
            *n += 1;
            let base = [100u64, 80, 95][i];
            Ok(if i == 1 && *n == 2 { base * 50 } else { base })
        })
        .unwrap();
        assert_eq!(out.selected, 1);
    }

    #[test]
    fn persistently_failing_candidate_is_quarantined() {
        let ck = fake_compiled(&[8, 16, 32, 48]);
        let times = [100u64, 0, 90, 95, 120];
        let policy = ResiliencePolicy::default();
        let out = resilient_tune_loop("k", &ck, 24, 0.02, &policy, |v| {
            let i = idx_of(&ck, v);
            if i == 1 {
                return Err(SimError::Watchdog { budget: 1000 }.into());
            }
            Ok(times[i])
        })
        .unwrap();
        assert_eq!(out.selected, 2, "best survivor after quarantine");
        assert_eq!(out.stats.quarantined, 1);
        assert!(out.iterations.iter().all(|&(v, _)| v != 1));
        assert!(out
            .decisions
            .iter()
            .any(|d| d.reason == TuneReason::Quarantined && d.version == 1));
    }

    #[test]
    fn finalized_version_dying_falls_back_to_fail_safe() {
        let ck = fake_compiled(&[8, 16, 32]);
        let times = [100u64, 80, 90, 120];
        let mut steady_runs = 0u32;
        let policy = ResiliencePolicy { samples: 1, ..ResiliencePolicy::default() };
        let out = resilient_tune_loop("k", &ck, 12, 0.02, &policy, |v| {
            let i = idx_of(&ck, v);
            if i == 1 {
                steady_runs += 1;
                if steady_runs > 3 {
                    // The finalized winner starts tripping the watchdog.
                    return Err(SimError::Watchdog { budget: 1 }.into());
                }
            }
            Ok(times[i])
        })
        .unwrap();
        assert_eq!(out.selected, 3, "fail-safe version takes over");
        assert_eq!(out.stats.fellback, 1);
        assert!(out.decisions.iter().any(|d| d.reason == TuneReason::FellBack));
    }

    #[test]
    fn sporadic_hard_faults_never_evict_the_finalized_version() {
        // A hang on every 5th launch of the winner: over a long run a
        // lifetime strike tally would inevitably quarantine it, but
        // successes reset the consecutive count, so it survives.
        let ck = fake_compiled(&[8, 16, 32]);
        let times = [100u64, 80, 90, 120];
        let mut n = 0u32;
        let policy = ResiliencePolicy { samples: 1, ..ResiliencePolicy::default() };
        let out = resilient_tune_loop("k", &ck, 60, 0.02, &policy, |v| {
            let i = idx_of(&ck, v);
            if i == 1 {
                n += 1;
                if n.is_multiple_of(5) {
                    return Err(SimError::Watchdog { budget: 1 }.into());
                }
            }
            Ok(times[i])
        })
        .unwrap();
        assert_eq!(out.selected, 1, "the sporadic faults are absorbed");
        assert_eq!(out.stats.fellback, 0);
        assert_eq!(out.stats.quarantined, 0);
        assert!(out.stats.strikes >= 10, "each hang was still charged: {:?}", out.stats);
    }

    #[test]
    fn all_candidates_failing_reports_all_candidates_failed() {
        let ck = fake_compiled(&[8, 16]);
        let policy = ResiliencePolicy::default();
        let err = resilient_tune_loop("matmul", &ck, 8, 0.02, &policy, |_| {
            Err(SimError::ResourceExceeded { detail: "regs".into() }.into())
        })
        .unwrap_err();
        assert!(matches!(
            err.root_cause(),
            OrionError::AllCandidatesFailed { quarantined } if *quarantined >= 2
        ));
        assert!(err.to_string().contains("matmul"), "context names the kernel: {err}");
    }

    #[test]
    fn fatal_errors_propagate_with_context() {
        let ck = fake_compiled(&[8, 16]);
        let policy = ResiliencePolicy::default();
        let err =
            resilient_tune_loop("srad", &ck, 8, 0.02, &policy, |_| Err(SimError::Deadlock.into()))
                .unwrap_err();
        assert!(matches!(err.root_cause(), OrionError::Sim(SimError::Deadlock)));
        assert!(err.to_string().contains("srad"));
    }

    #[test]
    fn robust_cycles_rejects_outliers() {
        // [100, 102] survive the ×4 band around the median; their mean.
        let mut s = [100, 102, 5000];
        assert_eq!(robust_cycles(&mut s, 4.0), 101);
        let mut s = [100];
        assert_eq!(robust_cycles(&mut s, 4.0), 100);
        let mut s = [90, 100, 110];
        assert_eq!(robust_cycles(&mut s, 4.0), 100);
        assert_eq!(robust_cycles(&mut [], 4.0), 0);
    }
}
