//! Frozen pre-refactor runtime walks — the behavioral oracle for the
//! [`TuningSession`](crate::session::TuningSession) refactor.
//!
//! PR 5 collapsed the three copy-adjacent runtime walks
//! ([`tune_loop`](crate::runtime::tune_loop),
//! [`resilient_tune_loop`](crate::resilient::resilient_tune_loop), and
//! the splitting path) onto one typed state machine, with the old entry
//! points surviving as thin drivers. This module is the *frozen* copy of
//! the pre-refactor loop bodies, kept verbatim (same statement order,
//! same counter updates, same telemetry) so the equivalence suite can
//! prove the unified session reproduces the exact decision logs,
//! finalized picks, and [`TuneReason`]s of the code it replaced — the
//! same technique `orion_alloc::reference` uses to pin the allocation
//! pipeline.
//!
//! Nothing outside tests should call these; they exist to be compared
//! against, not to run production traffic.

use crate::compiler::{CompiledKernel, KernelVersion};
use crate::error::OrionError;
use crate::resilient::{robust_measure, ResiliencePolicy, ResilienceStats, ResilientOutcome};
use crate::runtime::{DynamicTuner, TuneOutcome, TuneReason};

/// Frozen copy of the pre-refactor [`crate::runtime::tune_loop`].
///
/// # Errors
/// Propagates the first launch error.
pub fn tune_loop<E>(
    ck: &CompiledKernel,
    iterations: u32,
    threshold: f64,
    mut run: impl FnMut(&KernelVersion) -> Result<u64, E>,
) -> Result<TuneOutcome, E> {
    let mut tuner = DynamicTuner::new(ck, threshold);
    let mut iters = Vec::with_capacity(iterations as usize);
    let mut total = 0u64;
    for _ in 0..iterations {
        let v = tuner.select();
        let cycles = run(&ck.versions[v])?;
        total += cycles;
        iters.push((v, cycles));
        tuner.record(cycles);
    }
    let selected = tuner.finalized().unwrap_or_else(|| tuner.select());
    Ok(TuneOutcome {
        selected,
        iterations: iters,
        converged_after: tuner.trials(),
        total_cycles: total,
        decisions: tuner.into_decisions(),
    })
}

fn should_quarantine(e: &OrionError) -> bool {
    match e.root_cause() {
        OrionError::Sim(s) => s.is_quarantineable() || s.is_transient(),
        _ => false,
    }
}

fn run_with_retry(
    run: &mut impl FnMut(&KernelVersion) -> Result<u64, OrionError>,
    version: &KernelVersion,
    policy: &ResiliencePolicy,
    stats: &mut ResilienceStats,
) -> Result<u64, OrionError> {
    let mut attempt = 0u32;
    loop {
        stats.launches += 1;
        match run(version) {
            Ok(c) => return Ok(c),
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                stats.failed_launches += 1;
                stats.retries += 1;
                let backoff = policy.backoff_base_cycles << attempt.min(20);
                stats.backoff_cycles = stats.backoff_cycles.saturating_add(backoff);
                if orion_telemetry::is_enabled() {
                    orion_telemetry::counter("resilience", "retry", 1);
                }
                attempt += 1;
            }
            Err(e) => {
                stats.failed_launches += 1;
                return Err(e);
            }
        }
    }
}

/// Frozen copy of the pre-refactor
/// [`crate::resilient::resilient_tune_loop`].
///
/// # Errors
/// Same contract as the live entry point.
#[allow(clippy::too_many_lines)]
pub fn resilient_tune_loop(
    kernel: &str,
    ck: &CompiledKernel,
    iterations: u32,
    threshold: f64,
    policy: &ResiliencePolicy,
    mut run: impl FnMut(&KernelVersion) -> Result<u64, OrionError>,
) -> Result<ResilientOutcome, OrionError> {
    use crate::compiler::Direction;
    let mut tuner = DynamicTuner::new(ck, threshold);
    let mut stats = ResilienceStats::default();
    let mut strikes = vec![0u32; ck.versions.len()];
    let mut iters: Vec<(usize, u64)> = Vec::with_capacity(iterations as usize);
    let mut total: u64 = 0;
    let mut converged_after: Option<usize> = None;
    let mut it = 0u32;
    fn strike(
        strikes: &mut [u32],
        v: usize,
        policy: &ResiliencePolicy,
        tuner: &mut DynamicTuner,
        stats: &mut ResilienceStats,
    ) -> bool {
        stats.strikes += 1;
        if orion_telemetry::is_enabled() {
            orion_telemetry::counter("resilience", "strike", 1);
        }
        strikes[v] += 1;
        if strikes[v] >= policy.quarantine_strikes.max(1) {
            tuner.quarantine(v);
            true
        } else {
            false
        }
    }
    while it < iterations {
        if tuner.all_quarantined() {
            return Err(OrionError::AllCandidatesFailed { quarantined: tuner.quarantined_count() }
                .with_context(kernel, Some(total)));
        }
        let v_idx = tuner.select();
        let version = &ck.versions[v_idx];
        if tuner.finalized().is_some() {
            converged_after.get_or_insert(iters.len());
            match run_with_retry(&mut run, version, policy, &mut stats) {
                Ok(c) => {
                    strikes[v_idx] = 0;
                    total = total.saturating_add(c);
                    iters.push((v_idx, c));
                    it += 1;
                }
                Err(e) if should_quarantine(&e) => {
                    strike(&mut strikes, v_idx, policy, &mut tuner, &mut stats);
                }
                Err(e) => return Err(e.with_context(kernel, Some(total))),
            }
        } else {
            let k = policy.samples.max(1);
            let mut samples = Vec::with_capacity(2 * k);
            let mut target = k;
            let mut dead = false;
            let mut struck = false;
            loop {
                while samples.len() < target && it < iterations {
                    match run_with_retry(&mut run, version, policy, &mut stats) {
                        Ok(c) => {
                            strikes[v_idx] = 0;
                            total = total.saturating_add(c);
                            iters.push((v_idx, c));
                            it += 1;
                            samples.push(c);
                        }
                        Err(e) if should_quarantine(&e) => {
                            struck = true;
                            dead = strike(&mut strikes, v_idx, policy, &mut tuner, &mut stats);
                            break;
                        }
                        Err(e) => return Err(e.with_context(kernel, Some(total))),
                    }
                }
                if struck || it >= iterations || samples.len() < target || target > k {
                    break;
                }
                let m = robust_measure(&mut samples, policy.outlier_factor);
                let margin = (m.rel_spread * policy.noise_margin_factor)
                    .clamp(0.0, policy.noise_margin_cap.max(0.0));
                let borderline = margin > 0.0
                    && tuner.probe_slowdown(m.cycles).is_some_and(|slow| {
                        let boundary = match ck.direction {
                            Direction::Increasing => margin,
                            Direction::Decreasing => threshold.max(margin),
                        };
                        (slow - boundary).abs() <= margin * 0.5
                    });
                if !borderline {
                    break;
                }
                target += k;
            }
            if !dead && !samples.is_empty() && (!struck || it >= iterations) {
                let m = robust_measure(&mut samples, policy.outlier_factor);
                let margin = (m.rel_spread * policy.noise_margin_factor)
                    .clamp(0.0, policy.noise_margin_cap.max(0.0));
                tuner.record_noisy(m.cycles, margin);
            }
        }
    }
    let selected = tuner.finalized().unwrap_or_else(|| tuner.select());
    let decisions = tuner.into_decisions();
    stats.quarantined =
        decisions.iter().filter(|d| d.reason == TuneReason::Quarantined).count() as u64;
    stats.fellback = decisions.iter().filter(|d| d.reason == TuneReason::FellBack).count() as u64;
    Ok(ResilientOutcome {
        selected,
        converged_after: converged_after.unwrap_or(iters.len()),
        total_cycles: total.saturating_add(stats.backoff_cycles),
        iterations: iters,
        decisions,
        stats,
    })
}
