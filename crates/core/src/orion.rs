//! The user-facing Orion facade: compile a kernel, get the candidate
//! versions, the nvcc-like baseline, or a full occupancy sweep, and run
//! versions on the simulated device.

use crate::compiler::{compile, CompiledKernel, KernelVersion, TuningConfig};
use crate::error::OrionError;
use crate::policy::{
    analytic_bound, BanditPolicy, BoundCtx, Measurement, PolicyKind, PolicyVerdict,
};
use crate::runtime::TuneDecision;
use crate::splitting::{split_ranges, SplitConfig};
use crate::version::{CandidateSpace, VersionBuilder};
use orion_alloc::realize::{kernel_max_live, SlotBudget};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_gpusim::sim::{run_launch_opts, LaunchOptions, RunResult};
use orion_kir::function::Module;

/// Orion instance bound to a device and a tuning configuration.
#[derive(Debug, Clone)]
pub struct Orion {
    pub dev: DeviceSpec,
    pub cfg: TuningConfig,
}

impl Orion {
    /// Orion for `dev` with paper-default configuration at `block`
    /// threads per block.
    pub fn new(dev: DeviceSpec, block: u32) -> Self {
        Orion { dev, cfg: TuningConfig::new(block) }
    }

    /// Run the compile-time stage (Figure 8): candidate versions.
    ///
    /// # Errors
    /// Propagates verification/allocation failures.
    pub fn compile(&self, module: &Module) -> Result<CompiledKernel, OrionError> {
        compile(module, &self.dev, &self.cfg)
    }

    /// The nvcc-like baseline: single-thread-optimal register allocation
    /// (max-live registers, capped by hardware), no occupancy awareness;
    /// the driver derives whatever occupancy falls out.
    ///
    /// # Errors
    /// Propagates verification/allocation failures.
    pub fn baseline(&self, module: &Module) -> Result<KernelVersion, OrionError> {
        orion_kir::verify::verify(module)?;
        let max_live = kernel_max_live(module)?;
        let regs = (max_live.min(u32::from(self.dev.max_regs_per_thread)) as u16).max(2);
        VersionBuilder::new(&self.dev, self.cfg.block, module).realize(
            SlotBudget { reg_slots: regs, smem_slots: 0 },
            0,
            "nvcc",
        )
    }

    /// One version per achievable occupancy level (block-granular),
    /// ascending — the exhaustive sweep behind Figures 1/2/10/14/15 and
    /// the Orion-Min/Max bars of Figure 11. Levels above what register
    /// re-allocation can reach are pruned; levels below the binary's
    /// natural occupancy are realized by shared-memory padding.
    ///
    /// # Errors
    /// Fails when no level is achievable at all.
    pub fn sweep(&self, module: &Module) -> Result<Vec<KernelVersion>, OrionError> {
        orion_kir::verify::verify(module)?;
        let vb = VersionBuilder::new(&self.dev, self.cfg.block, module);
        let warps_per_block = self.cfg.block.div_ceil(self.dev.warp_size);
        let mut out: Vec<KernelVersion> = Vec::new();
        let mut w = warps_per_block;
        while w <= self.dev.max_warps_per_sm {
            if let Some(v) = vb.sweep_level(w)? {
                if !out.iter().any(|x| x.achieved_warps == v.achieved_warps) {
                    out.push(v);
                }
            }
            w += warps_per_block;
        }
        if out.is_empty() {
            return Err(OrionError::NoAchievableOccupancy);
        }
        out.sort_by_key(|v| v.achieved_warps);
        Ok(out)
    }

    /// Search the widened candidate lattice (occupancy level ×
    /// L1/shared split × split granularity;
    /// [`CandidateSpace::enumerate`]) with `kind`'s policy, measuring
    /// each proposed arm by covering `launch`'s grid exactly once per
    /// pull — whole-grid for coarse arms, summed contiguous slices for
    /// split arms — until the policy finalizes. Bandit policies get
    /// their per-arm pruning bounds from the *real* launch shape here
    /// (grid, SM count), not the nominal per-kernel context.
    ///
    /// This is the search itself, not an application loop: steady-state
    /// execution of the winner is the caller's business
    /// ([`Orion::run_version`] with
    /// [`SpaceOutcome::launch_options`]).
    ///
    /// # Errors
    /// Space enumeration and simulator failures propagate.
    pub fn tune_space(
        &self,
        module: &Module,
        launch: Launch,
        params: &[u32],
        global: &mut [u8],
        kind: PolicyKind,
        split: SplitConfig,
    ) -> Result<SpaceOutcome, OrionError> {
        let ck = self.compile(module)?;
        let space = CandidateSpace::enumerate(
            &self.dev,
            self.cfg.block,
            module,
            ck.direction,
            launch.grid,
            split,
        )?;
        let synthetic = space.to_compiled(ck.max_live);
        let mut policy = match kind {
            PolicyKind::Bandit(cfg) => {
                let ctx = BoundCtx::new(
                    self.cfg.block,
                    launch.grid,
                    self.dev.num_sms,
                    self.dev.warp_size,
                );
                let bounds: Vec<Option<u64>> =
                    space.arms.iter().map(|a| Some(analytic_bound(&a.version, &ctx))).collect();
                Box::new(BanditPolicy::new(&bounds, space.original, cfg)) as Box<_>
            }
            PolicyKind::PaperWalk => kind.build(&synthetic, self.cfg.slowdown_threshold),
        };
        let mut launches = 0u64;
        let mut total_cycles = 0u64;
        // Generous runaway guard: every policy shipped converges in at
        // most a few pulls per arm.
        let budget = 16 * space.arms.len().max(1) as u64;
        while matches!(policy.verdict(), PolicyVerdict::Exploring) && launches < budget {
            let Some(i) = policy.propose() else { break };
            let arm = &space.arms[i];
            let mut cycles = 0u64;
            for range in split_ranges(launch.grid, arm.pieces, 1) {
                let opts = LaunchOptions {
                    extra_smem_per_block: arm.version.extra_smem,
                    cta_range: Some(range),
                    ..LaunchOptions::default()
                };
                let opts = match arm.cache_config {
                    Some(c) => opts.with_cache_config(c),
                    None => opts,
                };
                let r =
                    run_launch_opts(&self.dev, &arm.version.machine, launch, params, global, opts)?;
                cycles = cycles.saturating_add(r.cycles);
                launches += 1;
            }
            total_cycles = total_cycles.saturating_add(cycles);
            policy.observe(i, Measurement::raw(cycles));
        }
        let selected = policy.select();
        Ok(SpaceOutcome {
            selected,
            launches,
            total_cycles,
            decisions: policy.into_decisions(),
            space,
        })
    }

    /// Simulate one launch of a version (wires the version's driver-side
    /// shared-memory padding into the launch).
    ///
    /// # Errors
    /// Propagates simulator failures.
    pub fn run_version(
        &self,
        version: &KernelVersion,
        launch: Launch,
        params: &[u32],
        global: &mut [u8],
    ) -> Result<RunResult, OrionError> {
        Ok(run_launch_opts(
            &self.dev,
            &version.machine,
            launch,
            params,
            global,
            LaunchOptions {
                extra_smem_per_block: version.extra_smem,
                cta_range: None,
                cycle_budget: None,
                ..LaunchOptions::default()
            },
        )?)
    }
}

/// Result of an [`Orion::tune_space`] search.
#[derive(Debug, Clone)]
pub struct SpaceOutcome {
    /// The enumerated lattice the search ran over.
    pub space: CandidateSpace,
    /// Index of the winning arm in [`CandidateSpace::arms`].
    pub selected: usize,
    /// Simulated launches spent (each grid slice counts as one) — the
    /// convergence-cost axis of the `search` bench.
    pub launches: u64,
    /// Total simulated cycles across all exploration launches.
    pub total_cycles: u64,
    /// The policy's decision log.
    pub decisions: Vec<TuneDecision>,
}

impl SpaceOutcome {
    /// The selected arm.
    #[must_use]
    pub fn selected_arm(&self) -> &crate::version::SpaceArm {
        &self.space.arms[self.selected]
    }

    /// Launch options reproducing the winning arm's execution shape for
    /// steady-state whole-grid runs (the split-granularity axis only
    /// shapes *measurement*, so it is not part of the steady-state
    /// options).
    #[must_use]
    pub fn launch_options(&self) -> LaunchOptions {
        let arm = self.selected_arm();
        let opts = LaunchOptions {
            extra_smem_per_block: arm.version.extra_smem,
            ..LaunchOptions::default()
        };
        match arm.cache_config {
            Some(c) => opts.with_cache_config(c),
            None => opts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn kernel(live: usize) -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
        let nt = b.mov(Operand::Special(SpecialReg::NTidX));
        let gid = b.imad(cta, nt, tid);
        let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let vals: Vec<_> = (0..live).map(|k| b.fmul(x, Operand::Imm(k as i64))).collect();
        let mut acc = b.mov_f32(0.0);
        for v in vals {
            acc = b.fadd(acc, v);
        }
        b.st(MemSpace::Global, Width::W32, addr, acc, 0);
        Module::new(b.finish())
    }

    #[test]
    fn sweep_covers_many_levels() {
        let orion = Orion::new(DeviceSpec::c2075(), 192);
        let m = kernel(8);
        let sweep = orion.sweep(&m).unwrap();
        assert!(sweep.len() >= 5, "{}", sweep.len());
        // Ascending occupancy, including the hardware max.
        assert!(sweep.windows(2).all(|w| w[0].achieved_warps < w[1].achieved_warps));
        assert_eq!(sweep.last().unwrap().achieved_warps, 48);
        // Low levels pad, high levels don't.
        assert!(sweep.first().unwrap().extra_smem > 0);
        assert_eq!(sweep.last().unwrap().extra_smem, 0);
    }

    #[test]
    fn baseline_uses_maxlive_registers() {
        let orion = Orion::new(DeviceSpec::gtx680(), 256);
        let m = kernel(40);
        let base = orion.baseline(&m).unwrap();
        assert!(base.machine.regs_per_thread >= 40);
        assert_eq!(base.machine.smem_slots_per_thread, 0);
        assert!(base.occupancy < 1.0);
    }

    #[test]
    fn run_version_executes() {
        let orion = Orion::new(DeviceSpec::gtx680(), 32);
        let m = kernel(4);
        let base = orion.baseline(&m).unwrap();
        let mut g = vec![0u8; 4 * 64];
        let r = orion.run_version(&base, Launch { grid: 2, block: 32 }, &[0], &mut g).unwrap();
        assert!(r.cycles > 0);
    }

    #[test]
    fn tune_space_converges_under_both_policies() {
        use crate::splitting::SplitConfig;
        let orion = Orion::new(DeviceSpec::gtx680(), 32);
        let m = kernel(8);
        let launch = Launch { grid: 16, block: 32 };
        for kind in
            [PolicyKind::PaperWalk, PolicyKind::Bandit(crate::policy::BanditConfig::default())]
        {
            let mut g = vec![0u8; 4 * 512];
            let out = orion
                .tune_space(&m, launch, &[0], &mut g, kind, SplitConfig::default())
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert!(out.selected < out.space.arms.len(), "{kind:?}");
            assert!(out.launches > 0, "{kind:?}");
            assert!(!out.decisions.is_empty(), "{kind:?}");
            // The search must actually terminate by decision, not by the
            // runaway guard.
            assert!(
                out.launches < 16 * out.space.arms.len() as u64,
                "{kind:?} hit the runaway guard at {} launches",
                out.launches
            );
        }
    }

    #[test]
    fn tune_space_search_is_deterministic_and_memory_safe() {
        use crate::splitting::SplitConfig;
        let orion = Orion::new(DeviceSpec::gtx680(), 32);
        let m = kernel(6);
        let launch = Launch { grid: 64, block: 32 };
        let kind = PolicyKind::Bandit(crate::policy::BanditConfig::default());
        let run = || {
            crate::cache::reset();
            let mut g = vec![0u8; 4 * 64 * 32];
            let out =
                orion.tune_space(&m, launch, &[0], &mut g, kind, SplitConfig::default()).unwrap();
            (out.selected, out.launches, out.decisions, g)
        };
        let (sel_a, l_a, d_a, g_a) = run();
        let (sel_b, l_b, d_b, g_b) = run();
        assert_eq!(sel_a, sel_b);
        assert_eq!(l_a, l_b);
        assert_eq!(d_a, d_b);
        // Every arm computes the same values, so exploring (including
        // cache-split overrides and sliced pulls) leaves global memory
        // exactly as a plain run would.
        assert_eq!(g_a, g_b);
    }
}
